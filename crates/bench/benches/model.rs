//! Criterion benchmarks of the model pipeline: GraphSAGE minibatch
//! embedding (training path), full-graph inference, one unsupervised
//! training step, predictor forward, word2vec training, and taxonomy
//! description scoring (BM25). These cover the operations behind every
//! table/figure plus the design-choice ablations DESIGN.md §6 lists
//! (mean vs sum aggregator, uniform vs weight-biased sampling).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hignn::prelude::*;
use hignn::sage::with_null_row;
use hignn_graph::{BipartiteGraph, SamplingMode, Side};
use hignn_tensor::{init, ParamStore, Tape};
use hignn_text::{train_word2vec, Bm25Index, Word2VecConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph(num_left: usize, num_right: usize, edges: usize, seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let list: Vec<(u32, u32, f32)> = (0..edges)
        .map(|_| {
            (
                rng.gen_range(0..num_left as u32),
                rng.gen_range(0..num_right as u32),
                rng.gen_range(1.0..5.0),
            )
        })
        .collect();
    BipartiteGraph::from_edges(num_left, num_right, list)
}

fn sage_cfg(sampling: SamplingMode, aggregator: Aggregator) -> BipartiteSageConfig {
    BipartiteSageConfig {
        input_dim: 32,
        dim: 32,
        fanouts: vec![8, 4],
        sampling,
        aggregator,
        ..Default::default()
    }
}

fn bench_embed_batch(c: &mut Criterion) {
    let g = random_graph(2000, 1000, 20_000, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let uf = with_null_row(&init::xavier_uniform(2000, 32, &mut rng));
    let if_ = with_null_row(&init::xavier_uniform(1000, 32, &mut rng));
    let batch: Vec<usize> = (0..256).collect();
    let mut group = c.benchmark_group("embed_batch_256");
    group.sample_size(20);
    for (name, sampling, agg) in [
        ("uniform_mean", SamplingMode::Uniform, Aggregator::Mean),
        ("weighted_mean", SamplingMode::WeightBiased, Aggregator::Mean),
        ("weighted_sum", SamplingMode::WeightBiased, Aggregator::Sum),
    ] {
        group.bench_function(name, |bench| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut store = ParamStore::new();
            let sage = BipartiteSage::new(&mut store, "s", sage_cfg(sampling, agg), &mut rng);
            bench.iter(|| {
                let mut tape = Tape::new(&store);
                black_box(sage.embed_batch(
                    &mut tape,
                    &g,
                    Side::Left,
                    &batch,
                    &uf,
                    &if_,
                    &mut rng,
                ))
            });
        });
    }
    group.finish();
}

fn bench_embed_all(c: &mut Criterion) {
    let g = random_graph(2000, 1000, 20_000, 4);
    let mut rng = StdRng::seed_from_u64(5);
    let uf = init::xavier_uniform(2000, 32, &mut rng);
    let if_ = init::xavier_uniform(1000, 32, &mut rng);
    let mut store = ParamStore::new();
    let sage = BipartiteSage::new(
        &mut store,
        "s",
        sage_cfg(SamplingMode::WeightBiased, Aggregator::Mean),
        &mut rng,
    );
    let mut group = c.benchmark_group("embed_all_2000x1000");
    group.sample_size(10);
    group.bench_function("full_inference", |bench| {
        bench.iter(|| black_box(sage.embed_all(&store, &g, &uf, &if_)));
    });
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let g = random_graph(500, 300, 4000, 6);
    let mut rng = StdRng::seed_from_u64(7);
    let uf = init::xavier_uniform(500, 32, &mut rng);
    let if_ = init::xavier_uniform(300, 32, &mut rng);
    let mut group = c.benchmark_group("unsupervised_train");
    group.sample_size(10);
    group.bench_function("one_epoch_500x300", |bench| {
        bench.iter(|| {
            let cfg = SageTrainConfig { epochs: 1, batch_edges: 256, ..Default::default() };
            black_box(train_unsupervised(
                &g,
                &uf,
                &if_,
                sage_cfg(SamplingMode::WeightBiased, Aggregator::Mean),
                &cfg,
                42,
            ))
        });
    });
    group.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let uh = init::xavier_uniform(1000, 96, &mut rng);
    let ih = init::xavier_uniform(500, 96, &mut rng);
    let up = init::xavier_uniform(1000, 3, &mut rng);
    let is = init::xavier_uniform(500, 4, &mut rng);
    let features = FeatureBlocks {
        user_hier: Some(&uh),
        item_hier: Some(&ih),
        user_profiles: &up,
        item_stats: &is,
    };
    let samples: Vec<hignn::predictor::Sample> = (0..2048)
        .map(|k| hignn::predictor::Sample::new((k % 1000) as u32, (k % 500) as u32, k % 5 == 0))
        .collect();
    let cfg = PredictorConfig { epochs: 1, batch: 512, ..Default::default() };
    let model = CvrPredictor::train(&features, &samples, &cfg);
    c.bench_function("predictor/predict_2048", |bench| {
        bench.iter(|| black_box(model.predict(&features, &samples)));
    });
}

fn bench_word2vec(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let sentences: Vec<Vec<u32>> = (0..200)
        .map(|_| (0..10).map(|_| rng.gen_range(0..500u32)).collect())
        .collect();
    let counts = vec![10u64; 500];
    let mut group = c.benchmark_group("word2vec");
    group.sample_size(10);
    group.bench_function("sgns_200_sentences", |bench| {
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(10);
            let cfg = Word2VecConfig { dim: 32, epochs: 1, ..Default::default() };
            black_box(train_word2vec(&sentences, &counts, &cfg, &mut rng))
        });
    });
    group.finish();
}

fn bench_bm25(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let docs: Vec<Vec<u32>> = (0..100)
        .map(|_| (0..200).map(|_| rng.gen_range(0..2000u32)).collect())
        .collect();
    let idx = Bm25Index::new(&docs);
    let query: Vec<u32> = (0..5).map(|_| rng.gen_range(0..2000u32)).collect();
    c.bench_function("bm25/score_all_100_topics", |bench| {
        bench.iter(|| black_box(idx.score_all(&query)));
    });
}

criterion_group!(
    benches,
    bench_embed_batch,
    bench_embed_all,
    bench_train_step,
    bench_predictor,
    bench_word2vec,
    bench_bm25
);
criterion_main!(benches);
