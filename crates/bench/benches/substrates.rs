//! Criterion micro-benchmarks of the substrate crates: matrix kernels,
//! neighbour/negative sampling, coarsening, clustering (Lloyd vs
//! single-pass vs mini-batch — the Section III.D complexity ablation),
//! and the AUC metric.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hignn_cluster::kmeans::{kmeans, KMeansConfig};
use hignn_cluster::streaming::{minibatch_kmeans, single_pass_kmeans};
use hignn_graph::coarsen::{coarsen, Assignment};
use hignn_graph::{sample_neighbors, BipartiteGraph, NegativeSampler, SamplingMode, Side};
use hignn_metrics::auc;
use hignn_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph(num_left: usize, num_right: usize, edges: usize, seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let list: Vec<(u32, u32, f32)> = (0..edges)
        .map(|_| {
            (
                rng.gen_range(0..num_left as u32),
                rng.gen_range(0..num_right as u32),
                rng.gen_range(1.0..5.0),
            )
        })
        .collect();
    BipartiteGraph::from_edges(num_left, num_right, list)
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("matrix");
    for &n in &[32usize, 128] {
        let a = init::xavier_uniform(n, n, &mut rng);
        let b = init::xavier_uniform(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
        group.bench_with_input(BenchmarkId::new("matmul_nt", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_nt(&b)));
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let g = random_graph(2000, 1000, 20_000, 2);
    let vertices: Vec<usize> = (0..256).collect();
    let mut group = c.benchmark_group("sampling");
    for (name, mode) in [
        ("uniform", SamplingMode::Uniform),
        ("weight_biased", SamplingMode::WeightBiased),
    ] {
        group.bench_function(name, |bench| {
            let mut rng = StdRng::seed_from_u64(3);
            bench.iter(|| {
                black_box(sample_neighbors(&g, Side::Left, &vertices, 8, mode, &mut rng))
            });
        });
    }
    group.bench_function("negative_alias", |bench| {
        let sampler = NegativeSampler::new(&g, Side::Right, 0.75);
        let mut rng = StdRng::seed_from_u64(4);
        bench.iter(|| black_box(sampler.sample_many(256, &mut rng)));
    });
    group.finish();
}

fn bench_coarsen(c: &mut Criterion) {
    let g = random_graph(2000, 1000, 20_000, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let left = Assignment::new((0..2000).map(|_| rng.gen_range(0..400u32)).collect(), 400);
    let right = Assignment::new((0..1000).map(|_| rng.gen_range(0..200u32)).collect(), 200);
    c.bench_function("coarsen/2000x1000_20k_edges", |bench| {
        bench.iter(|| black_box(coarsen(&g, &left, &right)));
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let data = init::xavier_uniform(2000, 32, &mut rng);
    let mut group = c.benchmark_group("kmeans_2000x32_k50");
    group.sample_size(10);
    group.bench_function("lloyd", |bench| {
        let mut rng = StdRng::seed_from_u64(8);
        bench.iter(|| black_box(kmeans(&data, &KMeansConfig::new(50), &mut rng)));
    });
    group.bench_function("single_pass", |bench| {
        let mut rng = StdRng::seed_from_u64(9);
        bench.iter(|| black_box(single_pass_kmeans(&data, 50, 200, &mut rng)));
    });
    group.bench_function("minibatch", |bench| {
        let mut rng = StdRng::seed_from_u64(10);
        bench.iter(|| black_box(minibatch_kmeans(&data, 50, 128, 30, &mut rng)));
    });
    group.finish();
}

fn bench_auc(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let scores: Vec<f32> = (0..100_000).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    let labels: Vec<bool> = (0..100_000).map(|_| rng.gen_bool(0.2)).collect();
    c.bench_function("auc/100k", |bench| {
        bench.iter(|| black_box(auc(&scores, &labels)));
    });
}

fn bench_segment_mean(c: &mut Criterion) {
    let g = random_graph(2000, 1000, 20_000, 12);
    let mut rng = StdRng::seed_from_u64(13);
    let emb = init::xavier_uniform(1000, 32, &mut rng);
    c.bench_function("neighborhood_mean/2000_vertices", |bench| {
        bench.iter(|| {
            black_box(hignn::sage::neighborhood_mean(
                &g,
                Side::Left,
                &emb,
                hignn::sage::Aggregator::Mean,
            ))
        });
    });
    let _ = Matrix::zeros(1, 1);
}

criterion_group!(
    benches,
    bench_matmul,
    bench_sampling,
    bench_coarsen,
    bench_kmeans,
    bench_auc,
    bench_segment_mean
);
criterion_main!(benches);
