//! Shared experiment pipeline: dataset → hierarchy → per-variant
//! predictors → AUC, plus the taxonomy pipeline. Every table/figure
//! binary composes these pieces.

use hignn::prelude::*;
use hignn_baselines::{DinConfig, DinModel, Variant};
use hignn_datasets::{replicate_positives, InteractionDataset, QueryItemDataset, Sample};
use hignn_graph::SamplingMode;
use hignn_metrics::auc;
use hignn_tensor::Matrix;
use hignn_text::{mean_embedding, train_word2vec, Word2VecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Converts dataset samples to predictor samples.
pub fn to_pred(samples: &[Sample]) -> Vec<hignn::predictor::Sample> {
    samples
        .iter()
        .map(|s| hignn::predictor::Sample { user: s.user, item: s.item, label: s.label })
        .collect()
}

/// Experiment-tuned HiGNN configuration (paper settings: d = 32, L
/// levels, `K_l = K_{l-1}/alpha`; sampling fanouts sized for laptop CPU).
pub fn hignn_config(input_dim: usize, levels: usize, alpha: f64, seed: u64) -> HignnConfig {
    HignnConfig {
        levels,
        sage: BipartiteSageConfig {
            input_dim,
            dim: 32,
            fanouts: vec![8, 4],
            sampling: SamplingMode::WeightBiased,
            ..Default::default()
        },
        train: SageTrainConfig {
            epochs: 6,
            batch_edges: 256,
            lr: 2e-3,
            neg_pool: 64,
            trainable_features: true,
            ..Default::default()
        },
        cluster_counts: ClusterCounts::AlphaDecay { alpha },
        kmeans: KMeansAlgo::Lloyd,
        // `ablation_quality` shows unit-norm embeddings can cost a little
        // CVR AUC at small scales (the norm carries degree signal), but
        // they stabilise the level-wise trend (Fig. 3) and the taxonomy's
        // K-means; kept on, matching GraphSAGE convention.
        normalize: true,
        seed,
    }
}

/// Predictor configuration following the paper (256/128/64, lr 1e-3,
/// batch 1024, leaky ReLU, L2).
pub fn predictor_config(seed: u64) -> PredictorConfig {
    PredictorConfig { epochs: 3, batch: 512, weight_decay: 1e-4, seed, ..Default::default() }
}

/// Trains the hierarchy for a dataset.
pub fn train_hierarchy(ds: &InteractionDataset, levels: usize, alpha: f64, seed: u64) -> Hierarchy {
    build_hierarchy(
        &ds.graph,
        &ds.user_features,
        &ds.item_features,
        &hignn_config(ds.user_features.cols(), levels, alpha, seed),
    )
}

/// Trains one hierarchy-backed variant's predictor and reports test AUC.
///
/// The training set is replicate-sampled to the paper's 1:3 ratio for the
/// dense dataset (`replicate = true`); cold-start experiments keep the
/// raw distribution (`replicate = false`).
pub fn variant_auc(
    ds: &InteractionDataset,
    hierarchy: &Hierarchy,
    variant: Variant,
    replicate: bool,
    seed: u64,
) -> f64 {
    let (uh, ih) = variant.embeddings(hierarchy);
    let features = FeatureBlocks {
        user_hier: uh.as_ref(),
        item_hier: ih.as_ref(),
        user_profiles: &ds.user_profiles,
        item_stats: &ds.item_stats,
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAB);
    let train_samples = if replicate {
        replicate_positives(&ds.train, 3.0, &mut rng)
    } else {
        ds.train.clone()
    };
    let model = CvrPredictor::train(&features, &to_pred(&train_samples), &predictor_config(seed));
    let probs = model.predict(&features, &to_pred(&ds.test));
    let labels: Vec<bool> = ds.test.iter().map(|s| s.label).collect();
    auc(&probs, &labels)
}

/// Trains the DIN baseline and reports test AUC.
pub fn din_auc(ds: &InteractionDataset, replicate: bool, seed: u64) -> f64 {
    let cfg = DinConfig { seed, epochs: 2, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1);
    let train_samples = if replicate {
        replicate_positives(&ds.train, 3.0, &mut rng)
    } else {
        ds.train.clone()
    };
    let model = DinModel::train(
        ds.num_items(),
        &ds.histories,
        &ds.user_profiles,
        &ds.item_stats,
        &to_pred(&train_samples),
        &cfg,
    );
    let probs = model.predict(&ds.histories, &ds.user_profiles, &ds.item_stats, &to_pred(&ds.test));
    let labels: Vec<bool> = ds.test.iter().map(|s| s.label).collect();
    auc(&probs, &labels)
}

/// Word2vec query/item features for the taxonomy pipeline (shared latent
/// space, Section V.B).
pub fn taxonomy_features(ds: &QueryItemDataset, dim: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x71);
    let cfg = Word2VecConfig { dim, epochs: 2, ..Default::default() };
    let corpus = ds.corpus();
    let emb = train_word2vec(&corpus, &counts_u64(ds), &cfg, &mut rng);
    let to_feats = |tokens: &[Vec<u32>]| -> Matrix {
        let mut m = Matrix::zeros(tokens.len(), dim);
        for (r, toks) in tokens.iter().enumerate() {
            m.set_row(r, &mean_embedding(toks, &emb));
        }
        m
    };
    (to_feats(&ds.query_tokens), to_feats(&ds.item_tokens))
}

fn counts_u64(ds: &QueryItemDataset) -> Vec<u64> {
    ds.vocab.counts().to_vec()
}

/// Taxonomy configuration following Section V (L = 4, shared weights,
/// CH-guided cluster counts).
pub fn taxonomy_config(input_dim: usize, levels: usize, seed: u64) -> TaxonomyConfig {
    TaxonomyConfig {
        hignn: HignnConfig {
            levels,
            sage: BipartiteSageConfig {
                input_dim,
                dim: 32,
                fanouts: vec![8, 4],
                sampling: SamplingMode::WeightBiased,
                shared_weights: true,
                ..Default::default()
            },
            train: SageTrainConfig {
                epochs: 6,
                batch_edges: 256,
                lr: 2e-3,
                neg_pool: 64,
                ..Default::default()
            },
            cluster_counts: ClusterCounts::ChSelect { divisors: vec![4.0, 6.0, 10.0] },
            kmeans: KMeansAlgo::Lloyd,
            normalize: true,
            seed,
        },
        ..Default::default()
    }
}

/// Builds the full taxonomy for a query-item dataset.
pub fn build_query_item_taxonomy(
    ds: &QueryItemDataset,
    levels: usize,
    seed: u64,
) -> (Taxonomy, Matrix, Matrix) {
    let (qf, if_) = taxonomy_features(ds, 32, seed);
    let tax = build_taxonomy(
        &ds.graph,
        &qf,
        &if_,
        &ds.query_texts,
        &ds.query_tokens,
        &ds.item_tokens,
        &taxonomy_config(32, levels, seed),
    );
    (tax, qf, if_)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
    use hignn_datasets::query_item::{generate_query_item, QueryItemConfig};

    fn tiny_ds() -> InteractionDataset {
        generate_taobao(&TaobaoConfig {
            num_users: 150,
            num_items: 80,
            train_interactions: 2500,
            test_interactions: 500,
            branching: vec![3, 3],
            num_categories: 10,
            focus: 0.8,
            base_purchase_logit: -1.5,
            affinity_gain: 2.5,
            quality_gain: 0.8,
            feature_dim: 8,
            max_history: 8,
            seed: 77,
        })
    }

    #[test]
    fn pipeline_end_to_end_small() {
        let ds = tiny_ds();
        let mut cfg = hignn_config(8, 2, 4.0, 5);
        cfg.sage.dim = 8;
        cfg.sage.fanouts = vec![3, 2];
        cfg.train.epochs = 1;
        let h = build_hierarchy(&ds.graph, &ds.user_features, &ds.item_features, &cfg);
        let a = variant_auc(&ds, &h, Variant::HiGnn, true, 5);
        assert!((0.0..=1.0).contains(&a));
        // With a real hierarchy the AUC should at least beat chance.
        assert!(a > 0.5, "HiGNN AUC {a}");
    }

    #[test]
    fn taxonomy_pipeline_small() {
        let ds = generate_query_item(&QueryItemConfig {
            num_queries: 80,
            num_items: 120,
            interactions: 2000,
            branching: vec![3, 3],
            num_categories: 10,
            focus: 0.85,
            title_tokens: 5,
            query_tokens: 3,
            seed: 13,
        });
        let (qf, if_) = taxonomy_features(&ds, 8, 3);
        assert_eq!(qf.shape(), (80, 8));
        assert_eq!(if_.shape(), (120, 8));
        assert!(qf.all_finite() && if_.all_finite());
    }
}
