//! Minimal command-line argument handling shared by all experiment
//! binaries.
//!
//! Every binary accepts:
//!
//! * `--scale <f64>`   — dataset scale factor (default 0.5; 1.0 doubles
//!   users/items/interactions),
//! * `--seed <u64>`    — base RNG seed,
//! * `--quick`         — shrink everything hard for smoke runs,
//! * `--levels <usize>` — hierarchy depth override where applicable.
//!
//! Malformed input is a *usage error*: [`ExpArgs::parse`] prints the
//! problem and the usage line to stderr and exits with status 2 (the
//! conventional "bad invocation" code), never panicking with a
//! backtrace at the user.

/// The usage line shown by `--help` and on every usage error.
pub const USAGE: &str = "usage: <bin> [--scale F] [--seed N] [--levels L] [--quick]";

/// Parsed experiment arguments.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Dataset scale factor.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Smoke-test mode.
    pub quick: bool,
    /// Optional hierarchy-depth override.
    pub levels: Option<usize>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs { scale: 0.5, seed: 2020, quick: false, levels: None }
    }
}

impl ExpArgs {
    /// Parses `std::env::args()`. On malformed input, prints the error
    /// and usage to stderr and exits with status 2; `--help` prints
    /// usage and exits 0.
    pub fn parse() -> Self {
        match Self::try_from_iter(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(Help) => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
        }
        .unwrap_or_else(|msg| {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        })
    }

    /// Parses from an explicit iterator, panicking on malformed input.
    /// Kept for tests and non-CLI callers; binaries should go through
    /// [`ExpArgs::parse`] for proper usage errors.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(args: impl IntoIterator<Item = String>) -> Self {
        match Self::try_from_iter(args) {
            Ok(Ok(args)) => args,
            Ok(Err(msg)) => panic!("{msg}"),
            Err(Help) => panic!("--help requested from from_iter"),
        }
    }

    /// Parses from an explicit iterator without any process side
    /// effects. `Err(Help)` means `--help`/`-h` was given; the inner
    /// `Result` carries either the parsed arguments or a one-line
    /// description of the usage error.
    pub fn try_from_iter(
        args: impl IntoIterator<Item = String>,
    ) -> Result<Result<Self, String>, Help> {
        let mut out = ExpArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => match value(&mut it, "--scale") {
                    Ok(v) => match v.parse::<f64>() {
                        Ok(s) if s.is_finite() && s > 0.0 => out.scale = s,
                        Ok(s) => {
                            return Ok(Err(format!(
                                "--scale must be a positive finite number, got `{s}`"
                            )))
                        }
                        Err(_) => {
                            return Ok(Err(format!("--scale needs a float, got `{v}`")))
                        }
                    },
                    Err(e) => return Ok(Err(e)),
                },
                "--seed" => match value(&mut it, "--seed") {
                    Ok(v) => match v.parse::<u64>() {
                        Ok(s) => out.seed = s,
                        Err(_) => {
                            return Ok(Err(format!(
                                "--seed needs a non-negative integer, got `{v}`"
                            )))
                        }
                    },
                    Err(e) => return Ok(Err(e)),
                },
                "--levels" => match value(&mut it, "--levels") {
                    Ok(v) => match v.parse::<usize>() {
                        Ok(l) if l > 0 => out.levels = Some(l),
                        Ok(_) => return Ok(Err("--levels must be at least 1".to_string())),
                        Err(_) => {
                            return Ok(Err(format!(
                                "--levels needs a positive integer, got `{v}`"
                            )))
                        }
                    },
                    Err(e) => return Ok(Err(e)),
                },
                "--quick" => out.quick = true,
                "--help" | "-h" => return Err(Help),
                other => return Ok(Err(format!("unknown argument `{other}`"))),
            }
        }
        if out.quick {
            out.scale = out.scale.min(0.1);
        }
        Ok(Ok(out))
    }
}

/// Marker for `--help`: not an error, but not parsed arguments either.
#[derive(Clone, Copy, Debug)]
pub struct Help;

/// Pulls the value following a flag, or reports the flag as dangling.
fn value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Result<ExpArgs, String>, Help> {
        ExpArgs::try_from_iter(args.iter().map(|s| s.to_string()))
    }

    fn ok(args: &[&str]) -> ExpArgs {
        parse(args).expect("not help").expect("not a usage error")
    }

    fn err(args: &[&str]) -> String {
        parse(args).expect("not help").expect_err("expected a usage error")
    }

    #[test]
    fn defaults() {
        let a = ok(&[]);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 2020);
        assert!(!a.quick);
        assert!(a.levels.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let a = ok(&["--scale", "2.0", "--seed", "7", "--levels", "4"]);
        assert_eq!(a.scale, 2.0);
        assert_eq!(a.seed, 7);
        assert_eq!(a.levels, Some(4));
    }

    #[test]
    fn quick_caps_scale() {
        let a = ok(&["--scale", "3.0", "--quick"]);
        assert!(a.quick);
        assert!(a.scale <= 0.1);
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(err(&["--bogus"]).contains("unknown argument `--bogus`"));
    }

    #[test]
    fn rejects_non_numeric_scale() {
        assert!(err(&["--scale", "big"]).contains("--scale needs a float"));
    }

    #[test]
    fn rejects_non_positive_scale() {
        assert!(err(&["--scale", "0"]).contains("positive"));
        assert!(err(&["--scale", "-1.5"]).contains("positive"));
        assert!(err(&["--scale", "inf"]).contains("positive finite"));
        assert!(err(&["--scale", "NaN"]).contains("positive finite"));
    }

    #[test]
    fn rejects_missing_scale_value() {
        assert!(err(&["--scale"]).contains("--scale needs a value"));
    }

    #[test]
    fn rejects_bad_seed() {
        assert!(err(&["--seed", "yes"]).contains("--seed needs a non-negative integer"));
        assert!(err(&["--seed", "-3"]).contains("--seed needs a non-negative integer"));
        assert!(err(&["--seed"]).contains("--seed needs a value"));
    }

    #[test]
    fn rejects_bad_levels() {
        assert!(err(&["--levels", "two"]).contains("--levels needs a positive integer"));
        assert!(err(&["--levels", "0"]).contains("at least 1"));
        assert!(err(&["--levels"]).contains("--levels needs a value"));
    }

    #[test]
    fn help_is_not_an_error() {
        assert!(parse(&["--help"]).is_err());
        assert!(parse(&["-h"]).is_err());
        // --help wins even after valid flags.
        assert!(parse(&["--scale", "1.0", "--help"]).is_err());
    }

    #[test]
    fn from_iter_still_panics_for_tests() {
        let r = std::panic::catch_unwind(|| {
            ExpArgs::from_iter(vec!["--bogus".to_string()])
        });
        assert!(r.is_err());
    }
}
