//! Minimal command-line argument handling shared by all experiment
//! binaries.
//!
//! Every binary accepts:
//!
//! * `--scale <f64>`   — dataset scale factor (default 0.5; 1.0 doubles
//!   users/items/interactions),
//! * `--seed <u64>`    — base RNG seed,
//! * `--quick`         — shrink everything hard for smoke runs,
//! * `--levels <usize>` — hierarchy depth override where applicable.

/// Parsed experiment arguments.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Dataset scale factor.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Smoke-test mode.
    pub quick: bool,
    /// Optional hierarchy-depth override.
    pub levels: Option<usize>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs { scale: 0.5, seed: 2020, quick: false, levels: None }
    }
}

impl ExpArgs {
    /// Parses `std::env::args()`, panicking with a usage message on
    /// malformed input.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = ExpArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    out.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--scale needs a float"));
                }
                "--seed" => {
                    out.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs an integer"));
                }
                "--levels" => {
                    out.levels = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| panic!("--levels needs an integer")),
                    );
                }
                "--quick" => out.quick = true,
                "--help" | "-h" => {
                    eprintln!(
                        "usage: <bin> [--scale F] [--seed N] [--levels L] [--quick]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument `{other}`"),
            }
        }
        if out.quick {
            out.scale = out.scale.min(0.1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ExpArgs {
        ExpArgs::from_iter(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 0.5);
        assert!(!a.quick);
        assert!(a.levels.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&["--scale", "2.0", "--seed", "7", "--levels", "4"]);
        assert_eq!(a.scale, 2.0);
        assert_eq!(a.seed, 7);
        assert_eq!(a.levels, Some(4));
    }

    #[test]
    fn quick_caps_scale() {
        let a = parse(&["--scale", "3.0", "--quick"]);
        assert!(a.quick);
        assert!(a.scale <= 0.1);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown() {
        parse(&["--bogus"]);
    }
}
