//! Plain-text table rendering for experiment output.

/// A simple fixed-width table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "Table: row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                s.push_str(&format!(" {cell:<w$} |"));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.header, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage lift with sign.
pub fn pct(v: f64) -> String {
    format!("{v:+.2}%")
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(&["method", "auc"]);
        t.row(&["HiGNN".into(), "0.870".into()]);
        t.row(&["DIN".into(), "0.844".into()]);
        let s = t.render();
        assert!(s.contains("| method |"));
        assert!(s.contains("| HiGNN  | 0.870 |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.87), "0.870");
        assert_eq!(pct(2.25), "+2.25%");
        assert_eq!(pct(-1.0), "-1.00%");
    }
}
