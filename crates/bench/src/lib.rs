//! # hignn-bench
//!
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation, plus criterion micro-benchmarks. See DESIGN.md §3 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured results.
//!
//! Binaries (each accepts `--scale`, `--seed`, `--quick`):
//!
//! * `table1_datasets` — Tables I & II (dataset/sample statistics).
//! * `table3_auc` — Table III (AUC of all six methods on both datasets).
//! * `fig3_sensitivity` — Figure 3 (AUC vs level L, AUC vs K-decay α).
//! * `table4_online_ab` — Table IV (two-day online A/B lifts).
//! * `table5_taxonomy_dataset` — Tables V & VI.
//! * `table7_taxonomy_quality` — Table VII (SHOAL vs HiGNN).
//! * `fig5_case_study` — Figure 5 (rendered topic tree).
//! * `ab_taxonomy_ctr` — Section V.D.4 (taxonomy-matched recommendation CTR).
//! * `serve` — serving engine: top-k latency/QPS vs threads and
//!   recall@k vs beam width against the exhaustive oracle
//!   (`BENCH_serve.json`).

#![warn(missing_docs)]

pub mod args;
pub mod pipeline;
pub mod report;

pub use args::ExpArgs;
