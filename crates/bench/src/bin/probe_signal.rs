//! Diagnostic probe (not a paper artifact): measures the AUC ceiling of
//! the synthetic CVR task by feeding the predictor *ground-truth* latent
//! features, and reports how well the learned hierarchy recovers the
//! planted tree (NMI per level). Used to calibrate generator and
//! training hyper-parameters.

use hignn::prelude::*;
use hignn_bench::pipeline::{predictor_config, to_pred, train_hierarchy};
use hignn_bench::ExpArgs;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use hignn_metrics::{auc, normalized_mutual_info};
use hignn_tensor::Matrix;

fn main() {
    let args = ExpArgs::parse();
    for (name, cfg, _replicate) in [
        ("Taobao #1", TaobaoConfig { seed: args.seed, ..TaobaoConfig::taobao1(args.scale) }, true),
        ("Taobao #2", TaobaoConfig { seed: args.seed + 1, ..TaobaoConfig::taobao2(args.scale) }, false),
    ] {
        let ds = generate_taobao(&cfg);
        let depth = ds.truth.hierarchy.depth();
        // Signal decomposition on the test set.
        let labels: Vec<bool> = ds.test.iter().map(|s| s.label).collect();
        let aff: Vec<f32> = ds
            .test
            .iter()
            .map(|s| ds.truth.affinity(s.user as usize, s.item as usize))
            .collect();
        let qual: Vec<f32> =
            ds.test.iter().map(|s| ds.truth.item_quality[s.item as usize]).collect();
        let true_p: Vec<f32> = ds
            .test
            .iter()
            .map(|s| ds.truth.purchase_prob(s.user as usize, s.item as usize))
            .collect();
        println!(
            "[{name}] signal AUC: affinity {:.4} | quality {:.4} | true prob {:.4}",
            auc(&aff, &labels),
            auc(&qual, &labels),
            auc(&true_p, &labels)
        );
        // Oracle features: one-hot of the user's preferred node per level
        // and the item's ancestor per level.
        let n_nodes = ds.truth.hierarchy.num_nodes();
        let uh = Matrix::from_fn(ds.num_users(), n_nodes, |u, j| {
            if ds.truth.user_paths[u].contains(&j) { 1.0 } else { 0.0 }
        });
        let ih = Matrix::from_fn(ds.num_items(), n_nodes, |i, j| {
            let leaf = ds.truth.item_leaf[i] as usize;
            if (0..=depth).any(|l| ds.truth.hierarchy.ancestor_at_level(leaf, l) == j) {
                1.0
            } else {
                0.0
            }
        });
        let features = FeatureBlocks {
            user_hier: Some(&uh),
            item_hier: Some(&ih),
            user_profiles: &ds.user_profiles,
            item_stats: &ds.item_stats,
        };
        let model = CvrPredictor::train(&features, &to_pred(&ds.train), &predictor_config(args.seed));
        let probs = model.predict(&features, &to_pred(&ds.test));
        
        println!("[{name}] ORACLE features AUC = {:.4}", auc(&probs, &labels));

        // No-graph floor: profiles + stats only.
        let floor = FeatureBlocks {
            user_hier: None,
            item_hier: None,
            user_profiles: &ds.user_profiles,
            item_stats: &ds.item_stats,
        };
        let model = CvrPredictor::train(&floor, &to_pred(&ds.train), &predictor_config(args.seed));
        let probs = model.predict(&floor, &to_pred(&ds.test));
        println!("[{name}] FLOOR (no graph)  AUC = {:.4}", auc(&probs, &labels));

        // Hierarchy recovery: NMI of learned item clusters vs true topics.
        let hierarchy = train_hierarchy(&ds, args.levels.unwrap_or(3), 5.0, args.seed);
        for l in 1..=hierarchy.num_levels() {
            let learned: Vec<u32> = {
                let a = hierarchy.item_clusters_at(l);
                (0..ds.num_items()).map(|i| a.cluster_of(i)).collect()
            };
            // Compare against each true tree level; report the best match.
            let mut best = (0usize, 0.0f64);
            for tree_level in 1..=depth {
                let truth: Vec<u32> = (0..ds.num_items())
                    .map(|i| {
                        ds.truth
                            .hierarchy
                            .ancestor_at_level(ds.truth.item_leaf[i] as usize, tree_level)
                            as u32
                    })
                    .collect();
                let nmi = normalized_mutual_info(&learned, &truth);
                if nmi > best.1 {
                    best = (tree_level, nmi);
                }
            }
            println!(
                "[{name}] learned item level {l} ({} clusters) ~ tree level {} NMI {:.3}",
                hierarchy.item_clusters_at(l).num_clusters(),
                best.0,
                best.1
            );
        }
    }
}
