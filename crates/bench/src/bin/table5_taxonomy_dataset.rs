//! Tables V & VI — statistics of the query-item taxonomy dataset
//! (Taobao #3 analogue) and its positive/negative sample split.
//!
//! Paper shape: the query-item graph is extremely sparse, and the
//! unsupervised loss is trained with a 1:3 positive:negative edge-sample
//! ratio.

use hignn_bench::report::{banner, Table};
use hignn_bench::ExpArgs;
use hignn_datasets::query_item::{generate_query_item, QueryItemConfig};
use hignn_graph::GraphStats;

fn main() {
    let args = ExpArgs::parse();
    let ds = generate_query_item(&QueryItemConfig {
        seed: args.seed + 3,
        ..QueryItemConfig::taobao3(args.scale)
    });
    let s = GraphStats::compute(&ds.graph);

    banner("Table V — Statistical Information of Taxonomy Dataset");
    let mut t = Table::new(&["Dataset", "Queries", "Items", "Q-I Edges", "Density"]);
    t.row(&[
        "Taobao #3 (synthetic)".to_string(),
        s.num_left.to_string(),
        s.num_right.to_string(),
        s.num_edges.to_string(),
        format!("{:.3e}", s.density),
    ]);
    t.print();

    banner("Table VI — Sample Information of Taxonomy Dataset");
    // The unsupervised loss draws 3 negatives per positive edge (Q = 3),
    // matching the paper's 1:3 construction.
    let positives = s.num_edges;
    let negatives = positives * 3;
    let mut t = Table::new(&["Dataset", "Positive", "Negative", "Total"]);
    t.row(&[
        "Taobao #3 (synthetic)".to_string(),
        positives.to_string(),
        negatives.to_string(),
        (positives + negatives).to_string(),
    ]);
    t.print();

    println!("\nvocabulary: {} tokens over {} query + {} item texts", ds.vocab.len(), ds.query_texts.len(), ds.item_texts.len());
    println!("ground truth: {} leaf topics at depth {}", ds.truth.hierarchy.num_leaves(), ds.truth.hierarchy.depth());
}
