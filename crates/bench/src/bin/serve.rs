//! Serving-engine benchmark: trains a hierarchy on a synthetic
//! Taobao-like graph, then measures the hierarchy-as-index top-k engine
//! end to end —
//!
//! * per-request latency (p50/p99) and QPS at 1/2/4 serving threads,
//! * recall@k against the exhaustive-scoring oracle at several beam
//!   widths (and beam ∞, which must be *bitwise* identical),
//! * 1-thread vs 4-thread batch equality (bitwise).
//!
//! Violating either bitwise contract exits 5 (divergence), matching the
//! workspace's determinism benches. Results land in `BENCH_serve.json`.
//!
//! ```sh
//! cargo run --release -p hignn-bench --bin serve -- [--scale F] [--seed N] [--levels L] [--quick]
//! ```

use hignn_bench::report::banner;
use hignn_bench::{pipeline, ExpArgs};
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use hignn_serve::{
    latency_sweep, recall_sweep, BeamWidth, ServeModel, TopKRequest, DEFAULT_BEAM_WIDTH,
    DEFAULT_SCORER_SEED, DEFAULT_TOP_K,
};
use hignn_tensor::ParallelExecutor;
use std::fmt::Write as _;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const BEAM_WIDTHS: [BeamWidth; 6] = [
    BeamWidth::Finite(1),
    BeamWidth::Finite(2),
    BeamWidth::Finite(4),
    BeamWidth::Finite(8),
    BeamWidth::Finite(16),
    BeamWidth::Infinite,
];

/// Bits of a batch result, for exact cross-thread comparison.
fn result_bits(results: &[Result<Vec<hignn_serve::ScoredItem>, hignn::error::HignnError>]) -> Vec<(u32, u32)> {
    results
        .iter()
        .flat_map(|r| {
            r.as_ref()
                .expect("bench requests are valid")
                .iter()
                .map(|s| (s.item, s.score.to_bits()))
        })
        .collect()
}

fn main() {
    let args = ExpArgs::parse();
    let levels = args.levels.unwrap_or(2);
    let k = DEFAULT_TOP_K;
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let ds = generate_taobao(&TaobaoConfig { seed: args.seed, ..TaobaoConfig::taobao1(args.scale) });
    banner("Serving engine — hierarchy-as-index top-k retrieval");
    println!(
        "host cores: {host_cores} | graph: {} users x {} items, {} edges | scale {} | L = {levels}",
        ds.num_users(),
        ds.num_items(),
        ds.graph.num_edges(),
        args.scale
    );

    let hierarchy = pipeline::train_hierarchy(&ds, levels, 5.0, args.seed);
    let model = ServeModel::from_hierarchy(hierarchy, DEFAULT_SCORER_SEED);
    println!(
        "model: {} users, {} items, {} levels | scorer seed {DEFAULT_SCORER_SEED}",
        model.num_users(),
        model.num_items(),
        model.num_levels()
    );

    // --- Latency/QPS at the default beam width, 1..N threads. ---
    let requests: usize = if args.quick { 64 } else { 512 };
    let stream: Vec<TopKRequest> = (0..requests)
        .map(|i| TopKRequest { user: i % model.num_users(), k, beam: DEFAULT_BEAM_WIDTH })
        .collect();
    let mut latency = Vec::new();
    for &threads in &THREAD_COUNTS {
        let p = latency_sweep(&model, &stream, threads).expect("bench stream is non-empty");
        println!(
            "threads {threads}: p50 {:.1}us | p99 {:.1}us | {:.0} qps{}",
            p.p50_us,
            p.p99_us,
            p.qps,
            if threads > host_cores { "  [core-gated]" } else { "" },
        );
        latency.push(p);
    }

    // --- Recall@k vs beam width, against the exhaustive oracle. ---
    let users: Vec<usize> = (0..model.num_users().min(128)).collect();
    let mut recall = Vec::new();
    for beam in BEAM_WIDTHS {
        let p = recall_sweep(&model, &users, k, beam).expect("bench user sample is non-empty");
        println!("beam {:>4}: recall@{k} {:.4}", beam.to_string(), p.recall);
        recall.push(p);
    }

    // --- Bitwise contracts. ---
    // Beam ∞ must return exactly the exhaustive items *and score bits*.
    let mut beam_inf_bitwise = true;
    for &user in &users {
        let approx = model.top_k(user, k, BeamWidth::Infinite).unwrap();
        let exact = model.exhaustive_top_k(user, k).unwrap();
        let ab: Vec<(u32, u32)> = approx.iter().map(|s| (s.item, s.score.to_bits())).collect();
        let eb: Vec<(u32, u32)> = exact.iter().map(|s| (s.item, s.score.to_bits())).collect();
        if ab != eb {
            eprintln!("DIVERGENCE: beam-inf top-{k} for user {user} != exhaustive");
            beam_inf_bitwise = false;
        }
    }
    // A fixed request stream must serve bitwise identically at 1 and 4
    // threads.
    let one = result_bits(&model.serve_batch(&stream, &ParallelExecutor::new(1)));
    let four = result_bits(&model.serve_batch(&stream, &ParallelExecutor::new(4)));
    let threads_bitwise = one == four;
    if !threads_bitwise {
        eprintln!("DIVERGENCE: 4-thread serve_batch differs from 1-thread");
    }
    println!(
        "beam-inf bitwise == exhaustive: {beam_inf_bitwise} | 1 vs 4 threads bitwise: {threads_bitwise}"
    );

    // --- BENCH_serve.json ---
    let mut lat_json = String::from("  \"latency\": [\n");
    for (i, p) in latency.iter().enumerate() {
        let comma = if i + 1 < latency.len() { "," } else { "" };
        let _ = writeln!(
            lat_json,
            "    {{\"threads\": {}, \"requests\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"qps\": {:.1}, \"core_gated\": {}}}{comma}",
            p.threads,
            p.requests,
            p.p50_us,
            p.p99_us,
            p.qps,
            p.threads > host_cores,
        );
    }
    lat_json.push_str("  ]");
    let mut rec_json = String::from("  \"recall\": [\n");
    for (i, p) in recall.iter().enumerate() {
        let comma = if i + 1 < recall.len() { "," } else { "" };
        let _ = writeln!(
            rec_json,
            "    {{\"beam_width\": \"{}\", \"recall\": {:.6}}}{comma}",
            p.beam, p.recall
        );
    }
    rec_json.push_str("  ]");
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"scale\": {},\n  \"seed\": {},\n  \"levels\": {levels},\n  \
         \"k\": {k},\n  \"default_beam_width\": \"{DEFAULT_BEAM_WIDTH}\",\n  \
         \"scorer_seed\": {DEFAULT_SCORER_SEED},\n  \
         \"num_users\": {},\n  \"num_items\": {},\n  \"available_cores\": {host_cores},\n\
         {lat_json},\n{rec_json},\n  \
         \"beam_inf_bitwise_exhaustive\": {beam_inf_bitwise},\n  \
         \"threads_bitwise_identical\": {threads_bitwise},\n  \
         \"note\": \"Latency percentiles are nearest-rank over per-request wall times at the \
         default beam width; QPS is batch wall-clock. Entries with core_gated = true ran more \
         serving threads than available_parallelism, so they measure dispatch overhead, not \
         scaling. Recall@k is measured against exhaustively scoring every item; beam width `inf` \
         is asserted bitwise identical to the exhaustive oracle, and a fixed request stream is \
         asserted bitwise identical at 1 and 4 serving threads.\"\n}}\n",
        args.scale,
        args.seed,
        model.num_users(),
        model.num_items(),
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
    if !beam_inf_bitwise || !threads_bitwise {
        std::process::exit(5);
    }
}
