//! Table VII — taxonomy quality: SHOAL vs HiGNN on the query-item
//! dataset (accuracy via sampled expert-style judgment against the
//! planted ground truth, diversity via the qualified-topic ratio).
//!
//! Paper shape to reproduce: HiGNN beats SHOAL on both accuracy (+4pts in
//! the paper) and diversity (+6pts), at a comparable number of levels.
//! Per the paper, SHOAL's per-level cluster counts are set equal to
//! HiGNN's for fairness.

use hignn_baselines::build_shoal;
use hignn_bench::pipeline::build_query_item_taxonomy;
use hignn_bench::report::{banner, Table};
use hignn_bench::ExpArgs;
use hignn_datasets::query_item::{generate_query_item, QueryItemConfig};
use hignn_metrics::{normalized_mutual_info, taxonomy_accuracy, taxonomy_diversity};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Ground-truth labels for judging a taxonomy level: the planted tree
/// level whose node count is closest to the level's topic count.
fn truth_labels_for(
    ds: &hignn_datasets::QueryItemDataset,
    topic_count: usize,
) -> Vec<u32> {
    let h = &ds.truth.hierarchy;
    let best_level = (1..=h.depth())
        .min_by_key(|&l| (h.level_nodes(l).len() as i64 - topic_count as i64).abs())
        .unwrap();
    (0..ds.graph.num_right())
        .map(|i| ds.truth.item_topic_at_level(i, best_level))
        .collect()
}

/// Topics smaller than this are excluded from judgment — the paper's
/// experts evaluate real browsing topics, and near-singleton clusters
/// would trivially score 100% purity (inflating agglomerative baselines
/// that produce many tiny fringe clusters).
const MIN_TOPIC_SIZE: usize = 5;

/// Evaluates a taxonomy the way the paper's experts do: pool the topics
/// of every level into one population, sample 100 topics, sample up to
/// 100 items per topic, and judge items against the topic's majority
/// ground-truth label. Diversity is the qualified-topic ratio over the
/// same pooled population.
fn evaluate(
    name: &str,
    levels: &[Vec<u32>],
    ds: &hignn_datasets::QueryItemDataset,
    rng: &mut StdRng,
) -> (f64, f64, usize) {
    // Re-encode each level's topics with level-unique ids so a single
    // pooled assignment covers the whole taxonomy: item i appears once
    // per level, labelled (level, topic).
    let mut pooled_assignment: Vec<u32> = Vec::new();
    let mut pooled_truth: Vec<u32> = Vec::new();
    let mut pooled_categories: Vec<u32> = Vec::new();
    let mut topic_offset = 0u32;
    for (lvl, assignment) in levels.iter().enumerate() {
        let topic_count = assignment.iter().copied().max().map_or(1, |m| m as usize + 1);
        let truth = truth_labels_for(ds, topic_count);
        let leaf_truth: Vec<u32> =
            (0..ds.graph.num_right()).map(|i| ds.truth.item_leaf_index(i)).collect();
        eprintln!(
            "[{name}] level {} ({topic_count} topics): leafNMI {:.3}",
            lvl + 1,
            normalized_mutual_info(assignment, &leaf_truth)
        );
        let mut sizes = vec![0usize; topic_count];
        for &t in assignment.iter() {
            sizes[t as usize] += 1;
        }
        for (i, &t) in assignment.iter().enumerate() {
            if sizes[t as usize] < MIN_TOPIC_SIZE {
                continue;
            }
            pooled_assignment.push(topic_offset + t);
            pooled_truth.push(truth[i]);
            pooled_categories.push(ds.truth.item_category[i]);
        }
        topic_offset += topic_count as u32;
    }
    let acc = taxonomy_accuracy(&pooled_assignment, &pooled_truth, 100, 100, rng);
    let div = taxonomy_diversity(&pooled_assignment, &pooled_categories, 3);
    eprintln!("[{name}] pooled accuracy {acc:.3}, pooled diversity {div:.3}");
    (acc, div, levels.len())
}

fn main() {
    let args = ExpArgs::parse();
    let levels = args.levels.unwrap_or(4);
    let ds = generate_query_item(&QueryItemConfig {
        seed: args.seed + 3,
        ..QueryItemConfig::taobao3(args.scale)
    });
    eprintln!(
        "dataset: {} queries, {} items, {} edges",
        ds.graph.num_left(),
        ds.graph.num_right(),
        ds.graph.num_edges()
    );

    eprintln!("building HiGNN taxonomy (L = {levels}) ...");
    let (tax, _qf, item_feats) = build_query_item_taxonomy(&ds, levels, args.seed);
    let hignn_levels: Vec<Vec<u32>> =
        (1..=tax.num_levels()).map(|l| tax.item_assignment(l)).collect();

    // SHOAL: same cluster counts, agglomerative over the fixed word2vec
    // item features (no trainable GNN).
    let counts: Vec<usize> = hignn_levels
        .iter()
        .map(|a| a.iter().copied().max().map_or(1, |m| m as usize + 1))
        .collect();
    eprintln!("building SHOAL taxonomy with cluster counts {counts:?} ...");
    let shoal = build_shoal(&item_feats, &counts);

    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x77);
    let (sa, sd, sl) = evaluate("SHOAL", &shoal.item_levels, &ds, &mut rng);
    let (ha, hd, hl) = evaluate("HiGNN", &hignn_levels, &ds, &mut rng);

    banner("Table VII — Taxonomy Quality Evaluation");
    let mut t = Table::new(&["Algorithm", "#Level", "Accuracy", "Diversity"]);
    t.row(&["SHOAL".into(), sl.to_string(), format!("{:.0}%", sa * 100.0), format!("{:.0}%", sd * 100.0)]);
    t.row(&["HiGNN".into(), hl.to_string(), format!("{:.0}%", ha * 100.0), format!("{:.0}%", hd * 100.0)]);
    t.print();
    println!(
        "\nHiGNN vs SHOAL: accuracy {:+.1} pts (paper +4), diversity {:+.1} pts (paper +6)",
        (ha - sa) * 100.0,
        (hd - sd) * 100.0
    );
}
