//! Kernel-level benchmark for the vectorized/zero-allocation hot path.
//!
//! Times (a) the register-tiled matmul kernels over training-shaped
//! operands, (b) the fused gather + mean-pool against the unfused
//! gather-then-pool composition, (c) one autograd tape step with a warm
//! buffer pool against the same step with fresh allocations, and (d) one
//! full single-thread unsupervised training epoch. Every fused/pooled
//! variant is asserted **bitwise identical** to its reference, and the
//! epoch is run twice to assert run-to-run determinism; any divergence
//! flips `deterministic` to false and exits with status 5.
//!
//! Writes machine-readable `BENCH_kernels.json`.
//!
//! ```sh
//! cargo run --release -p hignn-bench --bin kernels -- [--scale F] [--seed N] [--quick]
//! ```

use hignn::prelude::*;
use hignn_bench::report::banner;
use hignn_bench::ExpArgs;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use hignn_tensor::{init, Gradients, Matrix, ParamStore, Tape, Workspace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// 1-thread `train_epoch` edges/sec measured before this optimization
/// pass (BENCH_parallel.json, scale 0.5, seed 2020).
const BASELINE_EDGES_PER_SEC: f64 = 3805.3;

struct MatmulTiming {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    seconds: f64,
    gflops: f64,
}

fn time_reps(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn bench_matmuls(rng: &mut StdRng, reps: usize) -> Vec<MatmulTiming> {
    // Training-shaped operands: (batch x d) x (d x d) forward products,
    // their two transposed backward products, and an odd-sized shape that
    // exercises the scalar remainder edges of the tiled kernels.
    let shapes: [(usize, usize, usize); 4] =
        [(2048, 32, 32), (2048, 64, 64), (256, 128, 128), (513, 33, 65)];
    let mut out = Vec::new();
    for &(m, k, n) in &shapes {
        let a = init::xavier_uniform(m, k, rng);
        let b = init::xavier_uniform(k, n, rng);
        let bt = init::xavier_uniform(n, k, rng);
        let at = init::xavier_uniform(k, m, rng);
        let flops = (2 * m * k * n) as f64;
        for (name, secs) in [
            ("nn", time_reps(reps, || {
                std::hint::black_box(a.matmul(&b));
            })),
            ("nt", time_reps(reps, || {
                std::hint::black_box(a.matmul_nt(&bt));
            })),
            ("tn", time_reps(reps, || {
                std::hint::black_box(at.matmul_tn(&b));
            })),
        ] {
            out.push(MatmulTiming { name, m, k, n, seconds: secs, gflops: flops / secs / 1e9 });
        }
    }
    out
}

struct PairTiming {
    reference_secs: f64,
    optimized_secs: f64,
    bitwise_equal: bool,
}

impl PairTiming {
    fn speedup(&self) -> f64 {
        self.reference_secs / self.optimized_secs
    }
}

/// Fused gather + mean-pool vs gather-then-pool over an embedding-table
/// lookup shaped like the deepest GraphSAGE layer.
fn bench_gather_aggregate(rng: &mut StdRng, reps: usize) -> PairTiming {
    let table = init::xavier_uniform(5000, 64, rng);
    let group = 8;
    let idx: Vec<usize> = (0..2048 * group).map(|i| (i * 2654435761) % 5000).collect();
    let reference = table.gather_rows(&idx).mean_pool_rows(group);
    let fused = table.gather_mean_pool_rows(&idx, group);
    let bitwise_equal = reference.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        == fused.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    PairTiming {
        reference_secs: time_reps(reps, || {
            std::hint::black_box(table.gather_rows(&idx).mean_pool_rows(group)).len();
        }),
        optimized_secs: time_reps(reps, || {
            std::hint::black_box(table.gather_mean_pool_rows(&idx, group)).len();
        }),
        bitwise_equal,
    }
}

/// One forward/backward MLP step on a pooled tape (buffers leased from a
/// warm [`Workspace`]) vs the same step with fresh allocations.
fn bench_tape_step(rng: &mut StdRng, reps: usize) -> (PairTiming, u64) {
    let n = 512;
    let (d, h) = (64, 64);
    let mut store = ParamStore::new();
    let w1 = store.add("w1", init::xavier_uniform(d, h, rng));
    let b1 = store.add("b1", Matrix::zeros(1, h));
    let w2 = store.add("w2", init::xavier_uniform(h, 1, rng));
    let x = init::xavier_uniform(n, d, rng);
    let targets: Vec<f32> = (0..n).map(|i| (i % 2) as f32).collect();

    let step = |tape: &mut Tape| -> (f32, Gradients) {
        let xv = tape.input(x.clone());
        let w1v = tape.param(w1);
        let b1v = tape.param(b1);
        let w2v = tape.param(w2);
        let h1 = tape.matmul(xv, w1v);
        let h1 = tape.add_bias(h1, b1v);
        let h1 = tape.leaky_relu(h1, 0.01);
        let logits = tape.matmul(h1, w2v);
        let loss = tape.bce_with_logits(logits, &targets);
        let loss_val = tape.scalar(loss);
        (loss_val, tape.backward(loss))
    };
    let grad_bits = |g: &Gradients| -> Vec<u32> {
        g.iter().flat_map(|(_, m)| m.data().iter().map(|v| v.to_bits())).collect()
    };

    let mut fresh_tape = Tape::new(&store);
    let (fresh_loss, fresh_grads) = step(&mut fresh_tape);
    let ws = Workspace::new();
    // Warm the pool, then check bitwise identity of the pooled step.
    for _ in 0..2 {
        let mut t = Tape::with_workspace(&store, &ws);
        let (loss, grads) = step(&mut t);
        t.recycle();
        let equal = loss.to_bits() == fresh_loss.to_bits()
            && grad_bits(&grads) == grad_bits(&fresh_grads);
        grads.recycle_into(&ws);
        if !equal {
            return (
                PairTiming { reference_secs: f64::NAN, optimized_secs: f64::NAN, bitwise_equal: false },
                0,
            );
        }
    }

    // Interleaved rounds, min per mode: timing each variant once in a
    // single block let one-sided drift (CPU ramp-up, cache state) mask
    // itself as a pooled-vs-fresh difference — the recorded 0.833x
    // "regression" was exactly that artifact.
    let rounds = 5;
    let per_round = (reps / rounds).max(1);
    let allocs_before = ws.fresh_allocs();
    let mut pooled_secs = f64::INFINITY;
    let mut fresh_secs = f64::INFINITY;
    for _ in 0..rounds {
        fresh_secs = fresh_secs.min(time_reps(per_round, || {
            let mut t = Tape::new(&store);
            let _ = step(&mut t);
        }));
        pooled_secs = pooled_secs.min(time_reps(per_round, || {
            let mut t = Tape::with_workspace(&store, &ws);
            let (_, grads) = step(&mut t);
            t.recycle();
            grads.recycle_into(&ws);
        }));
    }
    let leaked_allocs = ws.fresh_allocs() - allocs_before;
    (
        PairTiming { reference_secs: fresh_secs, optimized_secs: pooled_secs, bitwise_equal: true },
        leaked_allocs,
    )
}

fn main() {
    let args = ExpArgs::parse();
    let reps = if args.quick { 5 } else { 30 };
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xBEEF);

    banner("Kernel microbenchmarks — tiled matmul, fused gather, pooled tape");
    let mut deterministic = true;

    let matmuls = bench_matmuls(&mut rng, reps);
    for t in &matmuls {
        println!(
            "matmul {}  {:>4}x{:<3} * {:>3}x{:<4} {:>9.1} us  {:>6.2} GFLOP/s",
            t.name,
            t.m,
            t.k,
            t.k,
            t.n,
            t.seconds * 1e6,
            t.gflops
        );
    }

    let gather = bench_gather_aggregate(&mut rng, reps);
    if !gather.bitwise_equal {
        eprintln!("DETERMINISM VIOLATION: fused gather+mean-pool diverged from composition");
        deterministic = false;
    }
    println!(
        "gather+pool  unfused {:>9.1} us  fused {:>9.1} us  ({:.2}x, bitwise {})",
        gather.reference_secs * 1e6,
        gather.optimized_secs * 1e6,
        gather.speedup(),
        gather.bitwise_equal
    );

    let (tape, leaked_allocs) = bench_tape_step(&mut rng, reps);
    if !tape.bitwise_equal {
        eprintln!("DETERMINISM VIOLATION: pooled tape step diverged from fresh tape");
        deterministic = false;
    }
    println!(
        "tape step    fresh   {:>9.1} us  pooled {:>8.1} us  ({:.2}x, {} fresh allocs after warmup)",
        tape.reference_secs * 1e6,
        tape.optimized_secs * 1e6,
        tape.speedup(),
        leaked_allocs
    );

    // Full single-thread epoch. One warmup run (metrics off) doubles as
    // the cold-start timing the edges/sec figure is based on — the
    // recorded baseline was a cold run too. The observability overhead
    // is then estimated from warmed off/on *pairs* with the order
    // alternating between pairs: each pair yields its own overhead
    // estimate from two back-to-back runs (so slow host drift hits both
    // sides of the ratio almost equally, and the alternating order
    // cancels what intra-pair bias remains), and the reported overhead
    // is the median of those estimates next to a noise band of half
    // their spread. An overhead inside the band is indistinguishable
    // from zero on this host. Loss bits must match across every run, on
    // or off.
    let ds = generate_taobao(&TaobaoConfig { seed: args.seed, ..TaobaoConfig::taobao1(args.scale) });
    let g = &ds.graph;
    let sage_cfg = BipartiteSageConfig { input_dim: ds.user_features.cols(), ..Default::default() };
    let train_cfg = SageTrainConfig { epochs: 1, ..Default::default() };
    let exec = ParallelExecutor::single();
    let run_epoch = |observed: bool| -> (f64, Vec<u32>) {
        if observed {
            hignn_obs::global().reset();
            hignn_obs::set_enabled(true);
        }
        let t0 = Instant::now();
        let trained = train_unsupervised_checked(
            g,
            &ds.user_features,
            &ds.item_features,
            sage_cfg.clone(),
            &train_cfg,
            args.seed,
            &exec,
            TrainGuard::default(),
            hignn::trainer::EpochHooks::default(),
        )
        .expect("no guard, no faults");
        let secs = t0.elapsed().as_secs_f64();
        if observed {
            hignn_obs::set_enabled(false);
        }
        (secs, trained.epoch_losses.iter().map(|l| l.to_bits()).collect())
    };

    let (epoch_secs, expected_bits) = run_epoch(false);
    let pairs = if args.quick { 3 } else { 5 };
    let mut off_samples = Vec::new();
    let mut on_samples = Vec::new();
    let mut pair_overheads = Vec::new();
    let mut obs_inert = true;
    for pair in 0..pairs {
        let mut timed_epoch = |observed: bool| -> f64 {
            let (secs, bits) = run_epoch(observed);
            if bits != expected_bits {
                if observed {
                    eprintln!(
                        "DETERMINISM VIOLATION: metrics-on epoch loss diverged from metrics-off"
                    );
                    obs_inert = false;
                } else {
                    eprintln!("DETERMINISM VIOLATION: repeated epoch loss diverged");
                }
                deterministic = false;
            }
            secs
        };
        let (off, on) = if pair % 2 == 0 {
            let off = timed_epoch(false);
            let on = timed_epoch(true);
            (off, on)
        } else {
            let on = timed_epoch(true);
            let off = timed_epoch(false);
            (off, on)
        };
        off_samples.push(off);
        on_samples.push(on);
        pair_overheads.push((on - off) / off * 100.0);
    }
    let batches_recorded = hignn_obs::global().counter_get("train.batches");
    if batches_recorded == 0 {
        eprintln!("OBSERVABILITY ERROR: metrics-on epoch recorded no batches");
        deterministic = false;
    }
    let off_secs = off_samples.iter().copied().fold(f64::INFINITY, f64::min);
    let obs_secs = on_samples.iter().copied().fold(f64::INFINITY, f64::min);
    pair_overheads.sort_by(|a, b| a.total_cmp(b));
    let obs_overhead_pct = pair_overheads[pair_overheads.len() / 2];
    let noise_pct = (pair_overheads[pair_overheads.len() - 1] - pair_overheads[0]) / 2.0;
    let within_noise = obs_overhead_pct.abs() <= noise_pct;
    println!(
        "observability  off {:.3}s  on {:.3}s  ({:+.2}% overhead, noise band \u{b1}{:.2}%{}, {} batches, inert {})",
        off_secs,
        obs_secs,
        obs_overhead_pct,
        noise_pct,
        if within_noise { ", within noise" } else { "" },
        batches_recorded,
        obs_inert
    );
    let edges_per_sec = g.num_edges() as f64 / epoch_secs;
    let is_baseline_config = (args.scale - 0.5).abs() < 1e-12 && args.seed == 2020;
    let speedup_vs_baseline =
        if is_baseline_config { edges_per_sec / BASELINE_EDGES_PER_SEC } else { f64::NAN };
    println!(
        "train epoch  1 thread  {:.3}s  ({:.0} edges/s{})",
        epoch_secs,
        edges_per_sec,
        if is_baseline_config {
            format!(", {speedup_vs_baseline:.2}x vs pre-optimization {BASELINE_EDGES_PER_SEC}")
        } else {
            String::new()
        }
    );

    let mut matmul_json = String::from("  \"matmul\": [\n");
    for (i, t) in matmuls.iter().enumerate() {
        let comma = if i + 1 < matmuls.len() { "," } else { "" };
        let _ = writeln!(
            matmul_json,
            "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"seconds\": {:.9}, \"gflops\": {:.3}}}{comma}",
            t.name, t.m, t.k, t.n, t.seconds, t.gflops
        );
    }
    matmul_json.push_str("  ]");

    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"scale\": {},\n  \"seed\": {},\n\
         {matmul_json},\n  \
         \"gather_aggregate\": {{\"unfused_seconds\": {:.9}, \"fused_seconds\": {:.9}, \"speedup\": {:.3}}},\n  \
         \"tape_step\": {{\"fresh_seconds\": {:.9}, \"pooled_seconds\": {:.9}, \"speedup\": {:.3}, \"fresh_allocs_after_warmup\": {leaked_allocs}}},\n  \
         \"train_epoch\": {{\"threads\": 1, \"seconds\": {:.6}, \"edges_per_sec\": {:.1}, \
         \"baseline_edges_per_sec\": {BASELINE_EDGES_PER_SEC}, \"speedup_vs_baseline\": {}}},\n  \
         \"observability\": {{\"baseline_seconds\": {off_secs:.6}, \"observed_seconds\": {obs_secs:.6}, \
         \"overhead_pct\": {obs_overhead_pct:.3}, \"noise_pct\": {noise_pct:.3}, \
         \"within_noise\": {within_noise}, \"batches_recorded\": {batches_recorded}, \
         \"inert\": {obs_inert}}},\n  \
         \"deterministic\": {deterministic},\n  \
         \"note\": \"every fused/pooled kernel is asserted bitwise identical to its naive \
         reference in-process; speedup_vs_baseline is only meaningful at scale 0.5, seed 2020 \
         (the configuration of the recorded baseline) and is null otherwise. Observability \
         overhead_pct is the median of per-pair (on-off)/off estimates over warmed, \
         order-alternating off/on pairs; noise_pct is half the spread of those estimates, and \
         an overhead inside that band is indistinguishable from zero.\"\n}}\n",
        args.scale,
        args.seed,
        gather.reference_secs,
        gather.optimized_secs,
        gather.speedup(),
        tape.reference_secs,
        tape.optimized_secs,
        tape.speedup(),
        epoch_secs,
        edges_per_sec,
        if is_baseline_config { format!("{speedup_vs_baseline:.3}") } else { "null".to_string() },
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("\nwrote BENCH_kernels.json (deterministic = {deterministic})");
    if !deterministic {
        std::process::exit(5);
    }
}
