//! Kernel-level benchmark for the vectorized/zero-allocation hot path.
//!
//! Times (a) the register-tiled matmul kernels over training-shaped
//! operands in both math tiers (Bitwise and FastMath, see DESIGN.md
//! §14), (b) the fused gather + mean-pool against the unfused
//! gather-then-pool composition, (c) one autograd tape step with a warm
//! buffer pool against the same step with fresh allocations, and (d) one
//! full single-thread unsupervised training epoch per tier. Every
//! fused/pooled Bitwise variant is asserted **bitwise identical** to its
//! reference; every FastMath kernel is differentially checked against an
//! f64 oracle in-process, and the FastMath epoch must be
//! self-deterministic and end-metric equivalent (mean loss,
//! link-prediction AUC) to the Bitwise epoch. Any violation exits with
//! status 5.
//!
//! Writes machine-readable `BENCH_kernels.json` (top-level figures are
//! the Bitwise tier; the FastMath tier lives under `"fastmath"`).
//!
//! ```sh
//! cargo run --release -p hignn-bench --bin kernels -- [--scale F] [--seed N] [--quick]
//! ```

use hignn::prelude::*;
use hignn_bench::report::banner;
use hignn_bench::ExpArgs;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use hignn_metrics::auc;
use hignn_tensor::{init, simd, Gradients, MathMode, Matrix, ParamStore, Tape, Workspace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// 1-thread `train_epoch` edges/sec measured before this optimization
/// pass (BENCH_parallel.json, scale 0.5, seed 2020).
const BASELINE_EDGES_PER_SEC: f64 = 3805.3;

/// End-metric equivalence tolerances between the tiers (scale 0.5,
/// seed 2020 is the reference configuration; the same bounds are
/// checked at any configuration).
const LOSS_REL_TOL: f64 = 0.02;
const AUC_ABS_TOL: f64 = 0.02;

struct MatmulTiming {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    seconds: f64,
    gflops: f64,
}

fn time_reps(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn bench_matmuls(rng: &mut StdRng, reps: usize, mode: MathMode) -> Vec<MatmulTiming> {
    // Training-shaped operands: (batch x d) x (d x d) forward products,
    // their two transposed backward products, and an odd-sized shape that
    // exercises the scalar remainder edges of the tiled kernels.
    let shapes: [(usize, usize, usize); 4] =
        [(2048, 32, 32), (2048, 64, 64), (256, 128, 128), (513, 33, 65)];
    let mut timings = Vec::new();
    for &(m, k, n) in &shapes {
        let a = init::xavier_uniform(m, k, rng);
        let b = init::xavier_uniform(k, n, rng);
        let bt = init::xavier_uniform(n, k, rng);
        let at = init::xavier_uniform(k, m, rng);
        let flops = (2 * m * k * n) as f64;
        let mut out = Matrix::zeros(m, n);
        for (name, secs) in [
            ("nn", time_reps(reps, || {
                a.matmul_into_mode(&b, &mut out, mode);
                std::hint::black_box(&out);
            })),
            ("nt", time_reps(reps, || {
                a.matmul_nt_into_mode(&bt, &mut out, mode);
                std::hint::black_box(&out);
            })),
            ("tn", time_reps(reps, || {
                at.matmul_tn_into_mode(&b, &mut out, mode);
                std::hint::black_box(&out);
            })),
        ] {
            timings.push(MatmulTiming { name, m, k, n, seconds: secs, gflops: flops / secs / 1e9 });
        }
    }
    timings
}

/// Differential check of every FastMath kernel against an f64 oracle,
/// run in-process before anything is timed. Matmul layouts (including
/// the fused concat2 form) are toleranced; the value-identical kernels
/// (gather+mean-pool, leaky ReLU) must match the scalar bits exactly.
/// Returns human-readable failure descriptions (empty = all green).
fn verify_fast_kernels() -> Vec<String> {
    let mut failures: Vec<String> = Vec::new();
    let val = |i: usize, j: usize, s: usize| (((i * 31 + j * 7 + s * 13) % 97) as f32 - 48.0) / 32.0;
    let close = |got: f32, want: f64, tol: f64| ((got as f64) - want).abs() <= tol * (1.0 + want.abs());

    // Matmul layouts at a tile-aligned shape and a remainder shape that
    // crosses every scalar edge of the AVX2 microkernel.
    for &(m, k, n) in &[(64usize, 64usize, 64usize), (33, 47, 65)] {
        let a = Matrix::from_fn(m, k, |i, j| val(i, j, 1));
        let b = Matrix::from_fn(k, n, |i, j| val(i, j, 2));
        let mut oracle = vec![0f64; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a.get(i, p) as f64;
                for j in 0..n {
                    oracle[i * n + j] += av * b.get(p, j) as f64;
                }
            }
        }
        let mut check = |name: &str, got: &Matrix| {
            for i in 0..m {
                for j in 0..n {
                    if !close(got.get(i, j), oracle[i * n + j], 1e-4) {
                        failures.push(format!(
                            "{name} {m}x{k}x{n} at ({i},{j}): {} vs oracle {}",
                            got.get(i, j),
                            oracle[i * n + j]
                        ));
                        return;
                    }
                }
            }
        };
        check("fast matmul nn", &a.matmul_mode(&b, MathMode::FastMath));
        let bt = Matrix::from_fn(n, k, |i, j| b.get(j, i));
        let mut out = Matrix::zeros(m, n);
        a.matmul_nt_into_mode(&bt, &mut out, MathMode::FastMath);
        check("fast matmul nt", &out);
        let at = Matrix::from_fn(k, m, |i, j| a.get(j, i));
        at.matmul_tn_into_mode(&b, &mut out, MathMode::FastMath);
        check("fast matmul tn", &out);
        let c1 = k / 3 + 1;
        let a1 = Matrix::from_fn(m, c1, |i, j| a.get(i, j));
        let a2 = Matrix::from_fn(m, k - c1, |i, j| a.get(i, c1 + j));
        check("fast concat2-matmul", &Matrix::concat2_matmul_mode(&a1, &a2, &b, MathMode::FastMath));
    }

    // Fused gather + mean-pool: value-identical tier rule — the fast
    // kernel must reproduce the Bitwise bits, not just a tolerance.
    let table = Matrix::from_fn(50, 33, |i, j| val(i, j, 3));
    let idx: Vec<usize> = (0..64).map(|i| (i * 7) % 50).collect();
    let reference = table.gather_mean_pool_rows(&idx, 4);
    let mut fast = Matrix::zeros(16, 33);
    table.gather_mean_pool_rows_into_mode(&idx, 4, &mut fast, MathMode::FastMath);
    if reference.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        != fast.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    {
        failures.push("fast gather+mean-pool is not value-identical to the scalar kernel".into());
    }

    // Leaky ReLU forward/backward: value-identical tier rule.
    let x: Vec<f32> = (0..100).map(|i| val(i, 0, 4)).collect();
    let mut fwd = x.clone();
    simd::leaky_relu_fast(&mut fwd, 0.01);
    let fwd_ref: Vec<f32> = x.iter().map(|&v| if v > 0.0 { v } else { 0.01 * v }).collect();
    if fwd.iter().map(|v| v.to_bits()).ne(fwd_ref.iter().map(|v| v.to_bits())) {
        failures.push("fast leaky_relu is not value-identical to the scalar kernel".into());
    }
    let mut bwd: Vec<f32> = (0..100).map(|i| val(i, 1, 5)).collect();
    let bwd_ref: Vec<f32> =
        bwd.iter().zip(&x).map(|(&g, &v)| if v > 0.0 { g } else { 0.01 * g }).collect();
    simd::leaky_relu_bwd_fast(&mut bwd, &x, 0.01);
    if bwd.iter().map(|v| v.to_bits()).ne(bwd_ref.iter().map(|v| v.to_bits())) {
        failures.push("fast leaky_relu_bwd is not value-identical to the scalar kernel".into());
    }

    // Fused Adam step vs an f64 oracle of the same update.
    let g: Vec<f32> = (0..100).map(|i| val(i, 2, 6)).collect();
    let mut p: Vec<f32> = (0..100).map(|i| val(i, 3, 7)).collect();
    let mut m: Vec<f32> = (0..100).map(|i| val(i, 4, 8) * 0.1).collect();
    let mut v: Vec<f32> = (0..100).map(|i| (val(i, 5, 9) * 0.1).abs()).collect();
    let (lr, b1, b2, eps, bc1, bc2) = (1e-3f32, 0.9f32, 0.999f32, 1e-8f32, 0.1f32, 0.001f32);
    let oracle_p: Vec<f64> = (0..100)
        .map(|i| {
            let gi = g[i] as f64;
            let mi = 0.9 * m[i] as f64 + 0.1 * gi;
            let vi = 0.999 * v[i] as f64 + 0.001 * gi * gi;
            p[i] as f64 - 1e-3 * (mi / 0.1) / ((vi / 0.001).sqrt() + 1e-8)
        })
        .collect();
    simd::adam_step_fast(&mut p, &mut m, &mut v, &g, lr, b1, b2, eps, bc1, bc2);
    for i in 0..100 {
        if !close(p[i], oracle_p[i], 1e-5) {
            failures.push(format!("fast adam_step at [{i}]: {} vs oracle {}", p[i], oracle_p[i]));
            break;
        }
    }

    // Squared distance (k-means assignment) vs an f64 oracle.
    let a: Vec<f32> = (0..100).map(|i| val(i, 6, 10)).collect();
    let b: Vec<f32> = (0..100).map(|i| val(i, 7, 11)).collect();
    let oracle: f64 = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    let fast = simd::sq_dist_fast(&a, &b);
    if !close(fast, oracle, 1e-5) {
        failures.push(format!("fast sq_dist: {fast} vs oracle {oracle}"));
    }

    // FastMath self-determinism: the tier reorders accumulation, but a
    // rerun must reproduce the exact same bits.
    let a = Matrix::from_fn(33, 47, |i, j| val(i, j, 12));
    let b = Matrix::from_fn(47, 65, |i, j| val(i, j, 13));
    let once = a.matmul_mode(&b, MathMode::FastMath);
    let twice = a.matmul_mode(&b, MathMode::FastMath);
    if once.data().iter().map(|v| v.to_bits()).ne(twice.data().iter().map(|v| v.to_bits())) {
        failures.push("fast matmul is not self-deterministic across reruns".into());
    }

    failures
}

struct PairTiming {
    reference_secs: f64,
    optimized_secs: f64,
    bitwise_equal: bool,
}

impl PairTiming {
    fn speedup(&self) -> f64 {
        self.reference_secs / self.optimized_secs
    }
}

/// Fused gather + mean-pool vs gather-then-pool over an embedding-table
/// lookup shaped like the deepest GraphSAGE layer.
fn bench_gather_aggregate(rng: &mut StdRng, reps: usize) -> PairTiming {
    let table = init::xavier_uniform(5000, 64, rng);
    let group = 8;
    let idx: Vec<usize> = (0..2048 * group).map(|i| (i * 2654435761) % 5000).collect();
    let reference = table.gather_rows(&idx).mean_pool_rows(group);
    let fused = table.gather_mean_pool_rows(&idx, group);
    let bitwise_equal = reference.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        == fused.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    PairTiming {
        reference_secs: time_reps(reps, || {
            std::hint::black_box(table.gather_rows(&idx).mean_pool_rows(group)).len();
        }),
        optimized_secs: time_reps(reps, || {
            std::hint::black_box(table.gather_mean_pool_rows(&idx, group)).len();
        }),
        bitwise_equal,
    }
}

/// One forward/backward MLP step on a pooled tape (buffers leased from a
/// warm [`Workspace`]) vs the same step with fresh allocations.
fn bench_tape_step(rng: &mut StdRng, reps: usize) -> (PairTiming, u64) {
    let n = 512;
    let (d, h) = (64, 64);
    let mut store = ParamStore::new();
    let w1 = store.add("w1", init::xavier_uniform(d, h, rng));
    let b1 = store.add("b1", Matrix::zeros(1, h));
    let w2 = store.add("w2", init::xavier_uniform(h, 1, rng));
    let x = init::xavier_uniform(n, d, rng);
    let targets: Vec<f32> = (0..n).map(|i| (i % 2) as f32).collect();

    let step = |tape: &mut Tape| -> (f32, Gradients) {
        let xv = tape.input(x.clone());
        let w1v = tape.param(w1);
        let b1v = tape.param(b1);
        let w2v = tape.param(w2);
        let h1 = tape.matmul(xv, w1v);
        let h1 = tape.add_bias(h1, b1v);
        let h1 = tape.leaky_relu(h1, 0.01);
        let logits = tape.matmul(h1, w2v);
        let loss = tape.bce_with_logits(logits, &targets);
        let loss_val = tape.scalar(loss);
        (loss_val, tape.backward(loss))
    };
    let grad_bits = |g: &Gradients| -> Vec<u32> {
        g.iter().flat_map(|(_, m)| m.data().iter().map(|v| v.to_bits())).collect()
    };

    let mut fresh_tape = Tape::new(&store);
    let (fresh_loss, fresh_grads) = step(&mut fresh_tape);
    let ws = Workspace::new();
    // Warm the pool, then check bitwise identity of the pooled step.
    for _ in 0..2 {
        let mut t = Tape::with_workspace(&store, &ws);
        let (loss, grads) = step(&mut t);
        t.recycle();
        let equal = loss.to_bits() == fresh_loss.to_bits()
            && grad_bits(&grads) == grad_bits(&fresh_grads);
        grads.recycle_into(&ws);
        if !equal {
            return (
                PairTiming { reference_secs: f64::NAN, optimized_secs: f64::NAN, bitwise_equal: false },
                0,
            );
        }
    }

    // Interleaved rounds, min per mode: timing each variant once in a
    // single block let one-sided drift (CPU ramp-up, cache state) mask
    // itself as a pooled-vs-fresh difference — the recorded 0.833x
    // "regression" was exactly that artifact.
    let rounds = 5;
    let per_round = (reps / rounds).max(1);
    let allocs_before = ws.fresh_allocs();
    let mut pooled_secs = f64::INFINITY;
    let mut fresh_secs = f64::INFINITY;
    for _ in 0..rounds {
        fresh_secs = fresh_secs.min(time_reps(per_round, || {
            let mut t = Tape::new(&store);
            let _ = step(&mut t);
        }));
        pooled_secs = pooled_secs.min(time_reps(per_round, || {
            let mut t = Tape::with_workspace(&store, &ws);
            let (_, grads) = step(&mut t);
            t.recycle();
            grads.recycle_into(&ws);
        }));
    }
    let leaked_allocs = ws.fresh_allocs() - allocs_before;
    (
        PairTiming { reference_secs: fresh_secs, optimized_secs: pooled_secs, bitwise_equal: true },
        leaked_allocs,
    )
}

fn matmul_json(timings: &[MatmulTiming], indent: &str) -> String {
    let mut s = format!("{indent}\"matmul\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "{indent}  {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"seconds\": {:.9}, \"gflops\": {:.3}}}{comma}",
            t.name, t.m, t.k, t.n, t.seconds, t.gflops
        );
    }
    let _ = write!(s, "{indent}]");
    s
}

fn main() {
    let args = ExpArgs::parse();
    let reps = if args.quick { 5 } else { 30 };
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xBEEF);

    banner("Kernel microbenchmarks — tiled matmul, fused gather, pooled tape");
    let mut deterministic = true;
    let mut fast_ok = true;
    let backend = simd::backend().name();
    println!("simd backend: {backend} (FastMath tier)");

    // Differential verification gates the FastMath timings: a broken
    // fast kernel must fail the run (exit 5), not publish numbers.
    let kernel_failures = verify_fast_kernels();
    for f in &kernel_failures {
        eprintln!("FASTMATH TOLERANCE VIOLATION: {f}");
    }
    if !kernel_failures.is_empty() {
        fast_ok = false;
    }

    let matmuls = bench_matmuls(&mut rng, reps, MathMode::Bitwise);
    let fast_matmuls = bench_matmuls(&mut rng, reps, MathMode::FastMath);
    for (tier, set) in [("bitwise", &matmuls), ("fast", &fast_matmuls)] {
        for t in set {
            println!(
                "matmul {:<7} {}  {:>4}x{:<3} * {:>3}x{:<4} {:>9.1} us  {:>6.2} GFLOP/s",
                tier,
                t.name,
                t.m,
                t.k,
                t.k,
                t.n,
                t.seconds * 1e6,
                t.gflops
            );
        }
    }

    let gather = bench_gather_aggregate(&mut rng, reps);
    if !gather.bitwise_equal {
        eprintln!("DETERMINISM VIOLATION: fused gather+mean-pool diverged from composition");
        deterministic = false;
    }
    println!(
        "gather+pool  unfused {:>9.1} us  fused {:>9.1} us  ({:.2}x, bitwise {})",
        gather.reference_secs * 1e6,
        gather.optimized_secs * 1e6,
        gather.speedup(),
        gather.bitwise_equal
    );

    let (tape, leaked_allocs) = bench_tape_step(&mut rng, reps);
    if !tape.bitwise_equal {
        eprintln!("DETERMINISM VIOLATION: pooled tape step diverged from fresh tape");
        deterministic = false;
    }
    println!(
        "tape step    fresh   {:>9.1} us  pooled {:>8.1} us  ({:.2}x, {} fresh allocs after warmup)",
        tape.reference_secs * 1e6,
        tape.optimized_secs * 1e6,
        tape.speedup(),
        leaked_allocs
    );

    // Full single-thread epoch. One warmup run (metrics off) doubles as
    // the cold-start timing the edges/sec figure is based on — the
    // recorded baseline was a cold run too. The observability overhead
    // is then estimated from warmed off/on *pairs* with the order
    // alternating between pairs: each pair yields its own overhead
    // estimate from two back-to-back runs (so slow host drift hits both
    // sides of the ratio almost equally, and the alternating order
    // cancels what intra-pair bias remains), and the reported overhead
    // is the median of those estimates next to a noise band of half
    // their spread. An overhead inside the band is indistinguishable
    // from zero on this host. Loss bits must match across every run, on
    // or off.
    let ds = generate_taobao(&TaobaoConfig { seed: args.seed, ..TaobaoConfig::taobao1(args.scale) });
    let g = &ds.graph;
    let sage_cfg = BipartiteSageConfig { input_dim: ds.user_features.cols(), ..Default::default() };
    let train_cfg = SageTrainConfig { epochs: 1, ..Default::default() };
    let exec = ParallelExecutor::single();
    let run_epoch = |observed: bool, cfg: &SageTrainConfig| -> (f64, Vec<u32>, TrainedSage) {
        if observed {
            hignn_obs::global().reset();
            hignn_obs::set_enabled(true);
        }
        let t0 = Instant::now();
        let trained = train_unsupervised_checked(
            g,
            &ds.user_features,
            &ds.item_features,
            sage_cfg.clone(),
            cfg,
            args.seed,
            &exec,
            TrainGuard::default(),
            hignn::trainer::EpochHooks::default(),
        )
        .expect("no guard, no faults");
        let secs = t0.elapsed().as_secs_f64();
        if observed {
            hignn_obs::set_enabled(false);
        }
        let bits = trained.epoch_losses.iter().map(|l| l.to_bits()).collect();
        (secs, bits, trained)
    };

    let (epoch_secs, expected_bits, bitwise_model) = run_epoch(false, &train_cfg);
    let pairs = if args.quick { 3 } else { 5 };
    let mut off_samples = Vec::new();
    let mut on_samples = Vec::new();
    let mut pair_overheads = Vec::new();
    let mut obs_inert = true;
    for pair in 0..pairs {
        let mut timed_epoch = |observed: bool| -> f64 {
            let (secs, bits, _) = run_epoch(observed, &train_cfg);
            if bits != expected_bits {
                if observed {
                    eprintln!(
                        "DETERMINISM VIOLATION: metrics-on epoch loss diverged from metrics-off"
                    );
                    obs_inert = false;
                } else {
                    eprintln!("DETERMINISM VIOLATION: repeated epoch loss diverged");
                }
                deterministic = false;
            }
            secs
        };
        let (off, on) = if pair % 2 == 0 {
            let off = timed_epoch(false);
            let on = timed_epoch(true);
            (off, on)
        } else {
            let on = timed_epoch(true);
            let off = timed_epoch(false);
            (off, on)
        };
        off_samples.push(off);
        on_samples.push(on);
        pair_overheads.push((on - off) / off * 100.0);
    }
    let batches_recorded = hignn_obs::global().counter_get("train.batches");
    if batches_recorded == 0 {
        eprintln!("OBSERVABILITY ERROR: metrics-on epoch recorded no batches");
        deterministic = false;
    }
    let off_secs = off_samples.iter().copied().fold(f64::INFINITY, f64::min);
    let obs_secs = on_samples.iter().copied().fold(f64::INFINITY, f64::min);
    pair_overheads.sort_by(|a, b| a.total_cmp(b));
    let obs_overhead_pct = pair_overheads[pair_overheads.len() / 2];
    let noise_pct = (pair_overheads[pair_overheads.len() - 1] - pair_overheads[0]) / 2.0;
    let within_noise = obs_overhead_pct.abs() <= noise_pct;
    println!(
        "observability  off {:.3}s  on {:.3}s  ({:+.2}% overhead, noise band \u{b1}{:.2}%{}, {} batches, inert {})",
        off_secs,
        obs_secs,
        obs_overhead_pct,
        noise_pct,
        if within_noise { ", within noise" } else { "" },
        batches_recorded,
        obs_inert
    );
    let edges_per_sec = g.num_edges() as f64 / epoch_secs;
    let is_baseline_config = (args.scale - 0.5).abs() < 1e-12 && args.seed == 2020;
    let speedup_vs_baseline =
        if is_baseline_config { edges_per_sec / BASELINE_EDGES_PER_SEC } else { f64::NAN };
    println!(
        "train epoch  1 thread  {:.3}s  ({:.0} edges/s{})",
        epoch_secs,
        edges_per_sec,
        if is_baseline_config {
            format!(", {speedup_vs_baseline:.2}x vs pre-optimization {BASELINE_EDGES_PER_SEC}")
        } else {
            String::new()
        }
    );

    // FastMath tier epoch: cold-run timing comparable to the Bitwise
    // figure above, plus the tier's contract — self-determinism
    // (reruns reproduce the same bits) and end-metric equivalence
    // (mean loss, link-prediction AUC) to the Bitwise model.
    let train_cfg_fast = SageTrainConfig { epochs: 1, math: MathMode::FastMath, ..train_cfg };
    let (fast_secs, fast_bits, fast_model) = run_epoch(false, &train_cfg_fast);
    let (_, fast_bits_again, _) = run_epoch(false, &train_cfg_fast);
    let fast_self_deterministic = fast_bits == fast_bits_again;
    if !fast_self_deterministic {
        eprintln!("DETERMINISM VIOLATION: FastMath epoch loss diverged across reruns");
        fast_ok = false;
    }
    let fast_edges_per_sec = g.num_edges() as f64 / fast_secs;
    let speedup_fast = fast_edges_per_sec / edges_per_sec;
    println!(
        "train epoch  1 thread  {:.3}s  ({:.0} edges/s, fast tier, {:.2}x vs bitwise)",
        fast_secs, fast_edges_per_sec, speedup_fast
    );

    // Link-prediction AUC over the training graph: stride-sampled
    // positive edges against LCG-drawn non-edges, scored by each
    // trained model (inference itself runs Bitwise in both, so the
    // diff isolates what FastMath training changed in the weights).
    let eval_auc = |model: &TrainedSage| -> f64 {
        let (zu, zi) = model.embed_all_with(g, &ds.user_features, &ds.item_features, &exec);
        let take = g.num_edges().min(1500);
        let stride = (g.num_edges() / take).max(1);
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(2 * take);
        let mut labels: Vec<bool> = Vec::with_capacity(2 * take);
        for &(u, i, _) in g.edges().iter().step_by(stride).take(take) {
            pairs.push((u, i));
            labels.push(true);
        }
        let mut state = args.seed ^ 0x5EED;
        let mut negs = 0;
        while negs < take {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((state >> 33) as usize) % g.num_left();
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = ((state >> 33) as usize) % g.num_right();
            if g.edge_weight(u, i).is_none() {
                pairs.push((u as u32, i as u32));
                labels.push(false);
                negs += 1;
            }
        }
        let scores = model.score_pairs(&zu, &zi, &pairs, 1.0);
        auc(&scores, &labels)
    };
    let loss_bitwise = *bitwise_model.epoch_losses.last().expect("one epoch") as f64;
    let loss_fast = *fast_model.epoch_losses.last().expect("one epoch") as f64;
    let loss_rel_diff = (loss_fast - loss_bitwise).abs() / loss_bitwise.abs().max(1e-9);
    if loss_rel_diff > LOSS_REL_TOL {
        eprintln!(
            "FASTMATH TOLERANCE VIOLATION: epoch loss {loss_fast} vs bitwise {loss_bitwise} \
             (rel diff {loss_rel_diff:.4} > {LOSS_REL_TOL})"
        );
        fast_ok = false;
    }
    let auc_bitwise = eval_auc(&bitwise_model);
    let auc_fast = eval_auc(&fast_model);
    let auc_abs_diff = (auc_fast - auc_bitwise).abs();
    if auc_abs_diff > AUC_ABS_TOL {
        eprintln!(
            "FASTMATH TOLERANCE VIOLATION: AUC {auc_fast:.4} vs bitwise {auc_bitwise:.4} \
             (abs diff {auc_abs_diff:.4} > {AUC_ABS_TOL})"
        );
        fast_ok = false;
    }
    println!(
        "fastmath equivalence  loss {loss_bitwise:.5} vs {loss_fast:.5} (rel {loss_rel_diff:.5})  \
         auc {auc_bitwise:.4} vs {auc_fast:.4} (abs {auc_abs_diff:.4})  kernels {}",
        if kernel_failures.is_empty() { "ok" } else { "FAILED" }
    );

    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"scale\": {},\n  \"seed\": {},\n  \
         \"mode\": \"bitwise\",\n  \"simd_backend\": \"{backend}\",\n\
         {},\n  \
         \"gather_aggregate\": {{\"unfused_seconds\": {:.9}, \"fused_seconds\": {:.9}, \"speedup\": {:.3}}},\n  \
         \"tape_step\": {{\"fresh_seconds\": {:.9}, \"pooled_seconds\": {:.9}, \"speedup\": {:.3}, \"fresh_allocs_after_warmup\": {leaked_allocs}}},\n  \
         \"train_epoch\": {{\"threads\": 1, \"seconds\": {:.6}, \"edges_per_sec\": {:.1}, \
         \"baseline_edges_per_sec\": {BASELINE_EDGES_PER_SEC}, \"speedup_vs_baseline\": {}}},\n  \
         \"observability\": {{\"baseline_seconds\": {off_secs:.6}, \"observed_seconds\": {obs_secs:.6}, \
         \"overhead_pct\": {obs_overhead_pct:.3}, \"noise_pct\": {noise_pct:.3}, \
         \"within_noise\": {within_noise}, \"batches_recorded\": {batches_recorded}, \
         \"inert\": {obs_inert}}},\n  \
         \"fastmath\": {{\n    \"mode\": \"fast\",\n    \"simd_backend\": \"{backend}\",\n    \
         \"kernel_checks_passed\": {},\n    \"kernel_failures\": {},\n\
         {},\n    \
         \"train_epoch\": {{\"threads\": 1, \"seconds\": {fast_secs:.6}, \"edges_per_sec\": {fast_edges_per_sec:.1}, \
         \"speedup_vs_bitwise\": {speedup_fast:.3}}},\n    \
         \"equivalence\": {{\"loss_bitwise\": {loss_bitwise:.6}, \"loss_fast\": {loss_fast:.6}, \
         \"loss_rel_diff\": {loss_rel_diff:.6}, \"loss_rel_tol\": {LOSS_REL_TOL}, \
         \"auc_bitwise\": {auc_bitwise:.6}, \"auc_fast\": {auc_fast:.6}, \
         \"auc_abs_diff\": {auc_abs_diff:.6}, \"auc_abs_tol\": {AUC_ABS_TOL}}},\n    \
         \"self_deterministic\": {fast_self_deterministic},\n    \
         \"ok\": {fast_ok}\n  }},\n  \
         \"deterministic\": {deterministic},\n  \
         \"note\": \"top-level figures are the Bitwise tier: every fused/pooled kernel is asserted \
         bitwise identical to its naive reference in-process; speedup_vs_baseline is only \
         meaningful at scale 0.5, seed 2020 (the configuration of the recorded baseline) and is \
         null otherwise. The fastmath section is the SIMD tier (DESIGN.md §14): kernels are \
         differentially verified against an f64 oracle, the epoch must be self-deterministic, and \
         loss/AUC must match the Bitwise tier within the stated tolerances — any violation exits 5. \
         Observability overhead_pct is the median of per-pair (on-off)/off estimates over warmed, \
         order-alternating off/on pairs; noise_pct is half the spread of those estimates, and \
         an overhead inside that band is indistinguishable from zero.\"\n}}\n",
        args.scale,
        args.seed,
        matmul_json(&matmuls, "  "),
        gather.reference_secs,
        gather.optimized_secs,
        gather.speedup(),
        tape.reference_secs,
        tape.optimized_secs,
        tape.speedup(),
        epoch_secs,
        edges_per_sec,
        if is_baseline_config { format!("{speedup_vs_baseline:.3}") } else { "null".to_string() },
        kernel_failures.is_empty(),
        kernel_failures.len(),
        matmul_json(&fast_matmuls, "    "),
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("\nwrote BENCH_kernels.json (deterministic = {deterministic}, fastmath ok = {fast_ok})");
    if !deterministic || !fast_ok {
        std::process::exit(5);
    }
}
