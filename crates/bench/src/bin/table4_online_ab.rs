//! Table IV — online A/B test of HiGNN-ranked recommendations for new
//! arrival products (cold-start pool) over two days.
//!
//! Control arm: the production-style DIN ranking. Treatment arm: HiGNN's
//! CVR predictor ranking. Paper shape to reproduce: positive lift on all
//! four metrics, with CNT and CVR improved by ≈2% or more on both days.

use hignn::prelude::*;
use hignn_baselines::{DinConfig, DinModel, Variant};
use hignn_bench::pipeline::{predictor_config, to_pred, train_hierarchy};
use hignn_bench::report::banner;
use hignn_bench::ExpArgs;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use hignn_simulator::{run_ab, AbConfig, ScoreFnRanker};

fn main() {
    let args = ExpArgs::parse();
    // Cold-start dataset: the paper applies the model "on the real Taobao
    // e-commerce online system for new arrival products".
    let ds = generate_taobao(&TaobaoConfig {
        seed: args.seed + 1,
        ..TaobaoConfig::taobao2(args.scale)
    });
    eprintln!(
        "dataset: {} users, {} items, {} edges",
        ds.num_users(),
        ds.num_items(),
        ds.graph.num_edges()
    );

    // Control: DIN.
    eprintln!("training DIN (control) ...");
    let din = DinModel::train(
        ds.num_items(),
        &ds.histories,
        &ds.user_profiles,
        &ds.item_stats,
        &to_pred(&ds.train),
        &DinConfig { seed: args.seed, epochs: 2, ..Default::default() },
    );

    // Treatment: HiGNN predictor.
    eprintln!("training HiGNN (treatment) ...");
    let hierarchy = train_hierarchy(&ds, args.levels.unwrap_or(3), 5.0, args.seed);
    let (uh, ih) = Variant::HiGnn.embeddings(&hierarchy);
    let features = FeatureBlocks {
        user_hier: uh.as_ref(),
        item_hier: ih.as_ref(),
        user_profiles: &ds.user_profiles,
        item_stats: &ds.item_stats,
    };
    let hignn_model = CvrPredictor::train(&features, &to_pred(&ds.train), &predictor_config(args.seed));

    let din_ranker = ScoreFnRanker::new("DIN", |user, candidates| {
        let samples: Vec<hignn::predictor::Sample> = candidates
            .iter()
            .map(|&i| hignn::predictor::Sample::new(user as u32, i, false))
            .collect();
        din.predict(&ds.histories, &ds.user_profiles, &ds.item_stats, &samples)
    });
    let hignn_ranker = ScoreFnRanker::new("HiGNN", |user, candidates| {
        let samples: Vec<hignn::predictor::Sample> = candidates
            .iter()
            .map(|&i| hignn::predictor::Sample::new(user as u32, i, false))
            .collect();
        hignn_model.predict(&features, &samples)
    });

    // Candidate pool: the sparsest third of items ("new arrivals").
    let mut by_clicks: Vec<(u32, f32)> = (0..ds.num_items() as u32)
        .map(|i| {
            let w: f32 = ds
                .graph
                .neighbors(hignn_graph::Side::Right, i as usize)
                .1
                .iter()
                .sum();
            (i, w)
        })
        .collect();
    by_clicks.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let pool: Vec<u32> = by_clicks[..ds.num_items() / 3].iter().map(|&(i, _)| i).collect();

    let sessions = ((20_000.0 * args.scale) as usize).max(500);
    let cfg = AbConfig { sessions_per_day: sessions, days: 2, seed: args.seed ^ 0xAB, ..Default::default() };
    eprintln!("running A/B: {} sessions/day x {} days ...", cfg.sessions_per_day, cfg.days);
    let outcome = run_ab(&ds.truth, &pool, &din_ranker, &hignn_ranker, &cfg);

    banner("Table IV — Online A/B Testing of Performance Evaluation");
    for (d, cmp) in outcome.days.iter().enumerate() {
        println!("\nDay {}:\n{cmp}", d + 1);
    }
    println!("\nAll days combined:\n{}", outcome.total());
    println!(
        "\npaper shape: all four metrics lifted; CNT and CVR improved by more than 2% on both days."
    );
}
