//! Extension experiment (not a paper table): top-K recommendation
//! quality. The paper's introduction motivates HiGNN with *"improving
//! the performance of top-K recommendation and preference ranking"*;
//! this binary measures precision/recall@K of HiGNN-ranked
//! recommendations against test-day purchases, compared with the
//! no-graph predictor and a popularity ranking.

use hignn::prelude::*;
use hignn_baselines::Variant;
use hignn_bench::pipeline::{predictor_config, to_pred, train_hierarchy};
use hignn_bench::report::{banner, f3, Table};
use hignn_bench::ExpArgs;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};

fn main() {
    let args = ExpArgs::parse();
    let k = 10;
    let ds = generate_taobao(&TaobaoConfig { seed: args.seed, ..TaobaoConfig::taobao1(args.scale) });
    eprintln!(
        "dataset: {} users, {} items, {} edges",
        ds.num_users(),
        ds.num_items(),
        ds.graph.num_edges()
    );
    let positives: Vec<(u32, u32)> = ds
        .test
        .iter()
        .filter(|s| s.label)
        .map(|s| (s.user, s.item))
        .collect();
    eprintln!("{} held-out purchases across the test day", positives.len());
    let candidates: Vec<u32> = (0..ds.num_items() as u32).collect();

    eprintln!("training HiGNN ...");
    let hierarchy = train_hierarchy(&ds, args.levels.unwrap_or(3), 5.0, args.seed);

    banner(&format!("Top-{k} recommendation (extension experiment)"));
    let mut table = Table::new(&["Ranker", &format!("P@{k}"), &format!("R@{k}"), "Hit rate"]);

    for (name, variant) in [
        ("no-graph (DIN inputs)", Variant::Din),
        ("GE (flat graph)", Variant::Ge),
        ("HiGNN (hierarchical)", Variant::HiGnn),
    ] {
        let (uh, ih) = variant.embeddings(&hierarchy);
        let features = FeatureBlocks {
            user_hier: uh.as_ref(),
            item_hier: ih.as_ref(),
            user_profiles: &ds.user_profiles,
            item_stats: &ds.item_stats,
        };
        let model = CvrPredictor::train(&features, &to_pred(&ds.train), &predictor_config(args.seed));
        // Evaluate on a bounded user sample to keep single-core runtime
        // reasonable (users are macro-averaged anyway).
        let sample: Vec<(u32, u32)> = positives.iter().copied().take(300).collect();
        let report = evaluate_top_k(&model, &features, &sample, &candidates, k);
        eprintln!("{name}: {report}");
        table.row(&[
            name.to_string(),
            f3(report.precision_at_k),
            f3(report.recall_at_k),
            f3(report.hit_rate),
        ]);
    }
    table.print();
    println!("\nexpected shape: HiGNN >= GE > no-graph on all three columns.");
}
