//! Section V.D.4 — online A/B test of taxonomy-matched recommendations:
//! HiGNN topics vs SHOAL topics driving the same topic-affinity ranker.
//!
//! Both methods produce an item → topic assignment over the serving
//! catalogue; recommendations then match users to items whose topic they
//! historically clicked. A better taxonomy groups items by true intent,
//! so its recommendations land closer to user affinity. Paper shape to
//! reproduce: the HiGNN-taxonomy arm lifts CTR (+3.8% in the paper).

use hignn_baselines::build_shoal;
use hignn_bench::pipeline::train_hierarchy;
use hignn_bench::report::banner;
use hignn_bench::ExpArgs;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use hignn_simulator::{run_ab, AbConfig, TopicAffinityRanker};

fn main() {
    let args = ExpArgs::parse();
    let ds = generate_taobao(&TaobaoConfig { seed: args.seed, ..TaobaoConfig::taobao1(args.scale) });
    eprintln!(
        "dataset: {} users, {} items, {} edges",
        ds.num_users(),
        ds.num_items(),
        ds.graph.num_edges()
    );

    eprintln!("training HiGNN hierarchy ...");
    let hierarchy = train_hierarchy(&ds, args.levels.unwrap_or(3), 5.0, args.seed);
    // Serve from a mid-granularity level: fine enough to be topical,
    // coarse enough that user histories cover the topics.
    let serve_level = 2.min(hierarchy.num_levels());
    let hignn_topics: Vec<u32> = {
        let a = hierarchy.item_clusters_at(serve_level);
        (0..ds.num_items()).map(|i| a.cluster_of(i)).collect()
    };
    let k = hignn_topics.iter().copied().max().map_or(1, |m| m as usize + 1);
    eprintln!("HiGNN serving topics: {k} clusters (hierarchy level {serve_level})");

    // SHOAL: same cluster count, agglomerative clustering over a fixed
    // (non-trainable) graph metric: each item's one-step propagated
    // neighbourhood features. This mirrors SHOAL's "well-defined metric"
    // embeddings — collaborative signal, but no trainable non-linear GNN.
    eprintln!("building SHOAL topics ({k} clusters) over fixed propagated features ...");
    let prop1 = hignn::sage::neighborhood_mean(
        &ds.graph,
        hignn_graph::Side::Right,
        &ds.user_features,
        hignn::sage::Aggregator::Mean,
    );
    // Second hop: item <- users <- items, aggregating co-clicked items.
    let user_side = hignn::sage::neighborhood_mean(
        &ds.graph,
        hignn_graph::Side::Left,
        &ds.item_features,
        hignn::sage::Aggregator::Mean,
    );
    let prop2 = hignn::sage::neighborhood_mean(
        &ds.graph,
        hignn_graph::Side::Right,
        &user_side,
        hignn::sage::Aggregator::Mean,
    );
    let shoal_feats =
        hignn_tensor::Matrix::concat_cols(&[&ds.item_features, &prop1, &prop2]);
    let shoal = build_shoal(&shoal_feats, &[k]);
    let shoal_topics = shoal.item_levels[0].clone();

    let popularity: Vec<f32> = (0..ds.num_items())
        .map(|i| ds.graph.neighbors(hignn_graph::Side::Right, i).1.iter().sum::<f32>())
        .collect();
    let control =
        TopicAffinityRanker::new("SHOAL-topics", shoal_topics, &ds.histories, popularity.clone());
    let treatment =
        TopicAffinityRanker::new("HiGNN-topics", hignn_topics, &ds.histories, popularity);

    let pool: Vec<u32> = (0..ds.num_items() as u32).collect();
    let sessions = ((30_000.0 * args.scale) as usize).max(1000);
    let cfg = AbConfig {
        sessions_per_day: sessions,
        days: 1,
        seed: args.seed ^ 0x3A,
        ..Default::default()
    };
    eprintln!("running A/B with {} sessions ...", cfg.sessions_per_day);
    let outcome = run_ab(&ds.truth, &pool, &control, &treatment, &cfg);
    let total = outcome.total();

    banner("Section V.D.4 — taxonomy-matched recommendation A/B (CTR)");
    println!("{total}");
    println!(
        "\nHiGNN-topic recommendations vs SHOAL-topic recommendations: CTR {:+.2}% (paper: +3.8%)",
        total.ctr_lift()
    );
}
