//! Thread-scaling benchmark for the data-parallel execution layer.
//!
//! Times one unsupervised training epoch and one Lloyd K-means round at
//! 1/2/4/8 worker threads on a synthetic Taobao-like graph, verifies the
//! results are bit-identical across thread counts, and writes a
//! machine-readable `BENCH_parallel.json` (throughput + speedup vs the
//! 1-thread baseline) as the perf trajectory for future PRs.
//!
//! ```sh
//! cargo run --release -p hignn-bench --bin scaling -- [--scale F] [--seed N] [--quick]
//! ```

use hignn::prelude::*;
use hignn_bench::report::banner;
use hignn_bench::ExpArgs;
use hignn_cluster::kmeans::{kmeans_with, KMeansConfig};
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Timing {
    threads: usize,
    seconds: f64,
    items_per_sec: f64,
}

fn speedup(timings: &[Timing], threads: usize) -> f64 {
    let base = timings.iter().find(|t| t.threads == 1).map(|t| t.seconds).unwrap_or(f64::NAN);
    let this = timings.iter().find(|t| t.threads == threads).map(|t| t.seconds);
    this.map(|s| base / s).unwrap_or(f64::NAN)
}

fn json_section(name: &str, timings: &[Timing], unit: &str, host_cores: usize) -> String {
    let mut s = format!("  \"{name}\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"threads\": {}, \"seconds\": {:.6}, \"{unit}\": {:.1}, \"speedup\": {:.3}, \
             \"core_gated\": {}}}{comma}",
            t.threads,
            t.seconds,
            t.items_per_sec,
            speedup(timings, t.threads),
            t.threads > host_cores,
        );
    }
    s.push_str("  ]");
    s
}

fn main() {
    let args = ExpArgs::parse();
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let ds = generate_taobao(&TaobaoConfig { seed: args.seed, ..TaobaoConfig::taobao1(args.scale) });
    let g = &ds.graph;
    banner("Thread scaling — one training epoch + one K-means round");
    println!(
        "host cores: {host_cores} | graph: {} users x {} items, {} edges | scale {}",
        g.num_left(),
        g.num_right(),
        g.num_edges(),
        args.scale
    );

    let sage_cfg = BipartiteSageConfig {
        input_dim: ds.user_features.cols(),
        ..Default::default()
    };
    let train_cfg = SageTrainConfig { epochs: 1, ..Default::default() };
    let k = (g.num_left() / 20).max(4);

    let mut train_timings = Vec::new();
    let mut kmeans_timings = Vec::new();
    let mut loss_bits: Option<Vec<u32>> = None;
    let mut inertia_bits: Option<u64> = None;
    let mut deterministic = true;

    for &threads in &THREAD_COUNTS {
        let exec = ParallelExecutor::new(threads);

        // One unsupervised epoch (Eq. 5 loss, data-parallel shards).
        let t0 = Instant::now();
        let trained = train_unsupervised_checked(
            g,
            &ds.user_features,
            &ds.item_features,
            sage_cfg.clone(),
            &train_cfg,
            args.seed,
            &exec,
            TrainGuard::default(),
            hignn::trainer::EpochHooks::default(),
        )
        .expect("no guard, no faults");
        let train_secs = t0.elapsed().as_secs_f64();
        train_timings.push(Timing {
            threads,
            seconds: train_secs,
            items_per_sec: g.num_edges() as f64 / train_secs,
        });

        let bits: Vec<u32> = trained.epoch_losses.iter().map(|l| l.to_bits()).collect();
        match &loss_bits {
            None => loss_bits = Some(bits),
            Some(expected) => {
                if *expected != bits {
                    eprintln!("DETERMINISM VIOLATION: {threads}-thread epoch loss diverged");
                    deterministic = false;
                }
            }
        }

        // One Lloyd round over the level-1 user embeddings.
        let (zu, _zi) = trained.embed_all_with(g, &ds.user_features, &ds.item_features, &exec);
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5CA1);
        let t1 = Instant::now();
        let result =
            kmeans_with(&zu, &KMeansConfig { k, max_iters: 1, tol: 0.0 }, &mut rng, &exec);
        let km_secs = t1.elapsed().as_secs_f64();
        kmeans_timings.push(Timing {
            threads,
            seconds: km_secs,
            items_per_sec: zu.rows() as f64 / km_secs,
        });

        match inertia_bits {
            None => inertia_bits = Some(result.inertia.to_bits()),
            Some(expected) => {
                if expected != result.inertia.to_bits() {
                    eprintln!("DETERMINISM VIOLATION: {threads}-thread K-means inertia diverged");
                    deterministic = false;
                }
            }
        }

        println!(
            "threads {threads}: epoch {:.3}s ({:.0} edges/s, {:.2}x) | kmeans {:.4}s ({:.0} rows/s, {:.2}x){}",
            train_secs,
            g.num_edges() as f64 / train_secs,
            speedup(&train_timings, threads),
            km_secs,
            zu.rows() as f64 / km_secs,
            speedup(&kmeans_timings, threads),
            if threads > host_cores { "  [core-gated]" } else { "" },
        );
    }

    // An honest scaling figure needs at least as many cores as worker
    // threads; with every multi-thread point gated the bench measures
    // dispatch overhead, not the parallel engine's speedup.
    let speedups_ungated = host_cores >= *THREAD_COUNTS.iter().max().unwrap();
    if !speedups_ungated {
        println!(
            "note: only {host_cores} core(s) available — speedups at threads > {host_cores} \
             are core-gated (ungated speedup unmeasured on this host)"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"scaling\",\n  \"host_cores\": {host_cores},\n  \
         \"available_parallelism\": {host_cores},\n  \
         \"speedups_ungated\": {speedups_ungated},\n  \"scale\": {},\n  \
         \"seed\": {},\n  \"graph\": {{\"users\": {}, \"items\": {}, \"edges\": {}}},\n\
         {},\n{},\n  \"deterministic\": {deterministic},\n  \
         \"note\": \"speedup is wall-clock T(1 thread)/T(N threads) on this host. Entries with \
         core_gated = true ran more worker threads than available_parallelism: the host cannot \
         execute them concurrently, so those figures measure dispatch overhead, not scaling — \
         only when speedups_ungated is true do the multi-thread speedups reflect the parallel \
         engine. Determinism is asserted bitwise across all thread counts.\"\n}}\n",
        args.scale,
        args.seed,
        g.num_left(),
        g.num_right(),
        g.num_edges(),
        json_section("train_epoch", &train_timings, "edges_per_sec", host_cores),
        json_section("kmeans_round", &kmeans_timings, "rows_per_sec", host_cores),
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("\nwrote BENCH_parallel.json (deterministic = {deterministic})");
    if !deterministic {
        std::process::exit(5);
    }
}
