//! Objective comparison (extension): the three pluggable training
//! objectives (`--objective edge|contrastive|cluster` on the CLI) run
//! through the identical Algorithm-1 pipeline — same dataset, same
//! hierarchy depth, same downstream CVR predictor — so the only thing
//! that varies is the per-level loss. Reports end-task AUC, the level-1
//! epoch-loss trajectory (read back through the objective-namespaced
//! observability series, which exercises that wiring end to end), and
//! wall-clock build time.
//!
//! Loss *values* are not comparable across objectives (Eq. 5 BCE,
//! InfoNCE, and Eq. 5 + λ·spread live on different scales); each
//! trajectory is only meaningful relative to its own first epoch. AUC
//! and build time are directly comparable.
//!
//! Writes machine-readable `BENCH_objectives.json`.

use hignn::objective::{DEFAULT_LAMBDA, DEFAULT_TEMPERATURE};
use hignn::prelude::*;
use hignn_baselines::Variant;
use hignn_bench::pipeline::{hignn_config, variant_auc};
use hignn_bench::report::{banner, f3, Table};
use hignn_bench::ExpArgs;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use std::time::Instant;

fn main() {
    let args = ExpArgs::parse();
    let levels = args.levels.unwrap_or(3);
    let ds = generate_taobao(&TaobaoConfig { seed: args.seed, ..TaobaoConfig::taobao1(args.scale) });
    eprintln!(
        "dataset: {} users, {} items, {} edges",
        ds.num_users(),
        ds.num_items(),
        ds.graph.num_edges()
    );
    hignn_obs::set_enabled(true);

    let specs = [
        ObjectiveSpec::EdgeReconstruction,
        ObjectiveSpec::HierarchicalContrastive { temperature: DEFAULT_TEMPERATURE },
        ObjectiveSpec::ClusterConstraint { lambda: DEFAULT_LAMBDA },
    ];

    banner("Training-objective comparison (HiGNN AUC on Taobao #1 analogue)");
    let mut table = Table::new(&["Objective", "AUC", "L1 first loss", "L1 final loss", "Train (s)"]);
    let mut entries = Vec::new();
    for spec in specs {
        hignn_obs::global().reset();
        let mut cfg = hignn_config(ds.user_features.cols(), levels, 5.0, args.seed);
        cfg.train.objective = spec;
        // The stack quadruples epochs on graphs under 2000 edges (small
        // coarse levels would be undertrained otherwise); apply the same
        // rule to know how long level 1's segment of the loss series is.
        let epochs = if ds.graph.num_edges() < 2000 {
            (cfg.train.epochs * 4).min(60)
        } else {
            cfg.train.epochs
        };
        let t0 = Instant::now();
        let hierarchy = build_hierarchy(&ds.graph, &ds.user_features, &ds.item_features, &cfg);
        let train_s = t0.elapsed().as_secs_f64();
        let auc = variant_auc(&ds, &hierarchy, Variant::HiGnn, true, args.seed);

        // Epoch losses, recovered through the objective-namespaced obs
        // series: one segment per level, level 1 first (coarser levels
        // may run more epochs than level 1 — see above).
        let losses = hignn_obs::global().series_get(spec.kind().obs_epoch_loss());
        assert!(
            losses.len() >= epochs,
            "objective.{}.epoch_loss series has {} entries, expected at least {}",
            spec.kind().name(),
            losses.len(),
            epochs
        );
        let (first, last) = (losses[0], losses[epochs - 1]);
        let name = spec.kind().name();
        eprintln!("{name:<12} AUC {auc:.4}  loss {first:.4} -> {last:.4}  ({train_s:.1}s)");
        table.row(&[
            name.to_string(),
            f3(auc),
            format!("{first:.4}"),
            format!("{last:.4}"),
            format!("{train_s:.1}"),
        ]);
        let series = losses.iter().map(|v| format!("{v:.6}")).collect::<Vec<_>>().join(", ");
        entries.push(format!(
            "    {{\"name\": \"{name}\", \"auc\": {auc:.6}, \"level1_epochs\": {epochs}, \
             \"first_epoch_loss\": {first:.6}, \"final_epoch_loss\": {last:.6}, \
             \"train_seconds\": {train_s:.3}, \"epoch_losses\": [{series}]}}"
        ));
    }
    table.print();
    println!(
        "\nexpected: all three objectives produce finite, decreasing level-1 loss; \
         edge reconstruction (the paper's Eq. 5) and the clustering constraint \
         should lead on CVR AUC, with contrastive competitive despite never \
         training the pairwise scorer."
    );

    let json = format!(
        "{{\n  \"bench\": \"objectives\",\n  \"scale\": {},\n  \"seed\": {},\n  \
         \"levels\": {levels},\n  \"objectives\": [\n{}\n  ],\n  \
         \"note\": \"epoch_losses concatenates per-level segments, level 1 (level1_epochs \
         entries) first; coarse levels may run more epochs. Loss values are comparable within \
         one objective's trajectory, not across objectives.\"\n}}\n",
        args.scale,
        args.seed,
        entries.join(",\n"),
    );
    std::fs::write("BENCH_objectives.json", &json).expect("write BENCH_objectives.json");
    println!("\nwrote BENCH_objectives.json");
}
