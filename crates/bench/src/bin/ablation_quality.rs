//! Ablation study (extension): the design choices DESIGN.md §6 calls
//! out, each measured by end-task AUC on the dense dataset with
//! everything else held at the defaults.
//!
//! * aggregator: mean (paper) vs sum vs max,
//! * neighbour sampling: weight-biased (paper's S(e)) vs uniform,
//! * K-means: Lloyd vs single-pass (the paper's large-scale variant),
//! * embedding normalisation: on vs off,
//! * trainable input features: on vs off,
//! * negative-sample γ: batch-mean (default) vs fixed 0 (the naive
//!   reading of Eq. 5 that lets the scorer cheat on the weight column).

use hignn::prelude::*;
use hignn_baselines::Variant;
use hignn_bench::pipeline::{hignn_config, variant_auc};
use hignn_bench::report::{banner, f3, Table};
use hignn_bench::ExpArgs;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use std::time::Instant;

fn main() {
    let args = ExpArgs::parse();
    let levels = args.levels.unwrap_or(3);
    let ds = generate_taobao(&TaobaoConfig { seed: args.seed, ..TaobaoConfig::taobao1(args.scale) });
    eprintln!(
        "dataset: {} users, {} items, {} edges",
        ds.num_users(),
        ds.num_items(),
        ds.graph.num_edges()
    );

    let base = || hignn_config(ds.user_features.cols(), levels, 5.0, args.seed);
    let configs: Vec<(&str, HignnConfig)> = vec![
        ("baseline (paper defaults)", base()),
        ("aggregator = sum", {
            let mut c = base();
            c.sage.aggregator = Aggregator::Sum;
            c
        }),
        ("aggregator = max", {
            let mut c = base();
            c.sage.aggregator = Aggregator::Max;
            c
        }),
        ("sampling = uniform", {
            let mut c = base();
            c.sage.sampling = hignn_graph::SamplingMode::Uniform;
            c
        }),
        ("kmeans = single-pass", {
            let mut c = base();
            c.kmeans = KMeansAlgo::SinglePass;
            c
        }),
        ("normalize = off", {
            let mut c = base();
            c.normalize = false;
            c
        }),
        ("trainable features = off", {
            let mut c = base();
            c.train.trainable_features = false;
            c
        }),
        ("gamma = fixed 0 (naive Eq. 5)", {
            let mut c = base();
            c.train.gamma = Some(0.0);
            c
        }),
    ];

    banner("Design-choice ablations (HiGNN AUC on Taobao #1 analogue)");
    let mut table = Table::new(&["Configuration", "AUC", "Train (s)"]);
    for (name, cfg) in configs {
        let t0 = Instant::now();
        let hierarchy =
            build_hierarchy(&ds.graph, &ds.user_features, &ds.item_features, &cfg);
        let train_s = t0.elapsed().as_secs_f64();
        let auc = variant_auc(&ds, &hierarchy, Variant::HiGnn, true, args.seed);
        eprintln!("{name:<32} AUC {auc:.4} ({train_s:.1}s)");
        table.row(&[name.to_string(), f3(auc), format!("{train_s:.1}")]);
    }
    table.print();
    println!(
        "\nexpected: the baseline (mean aggregator, weight-biased sampling, \
         normalised, trainable features, batch-mean gamma) at or near the top; \
         the naive gamma and untrained features noticeably behind."
    );
}
