//! Table I & II — dataset and sample statistics of the user-item
//! datasets (Taobao #1 dense analogue, Taobao #2 cold-start analogue).
//!
//! Paper shape to reproduce: #2's density is an order of magnitude below
//! #1's, and replicate sampling brings the training positive:negative
//! ratio to 1:3 on #1 while #2 keeps its raw, unbalanced distribution.

use hignn_bench::report::{banner, Table};
use hignn_bench::ExpArgs;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use hignn_datasets::{replicate_positives, SampleStats};
use hignn_graph::GraphStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::parse();
    let mut rng = StdRng::seed_from_u64(args.seed);

    let d1 = generate_taobao(&TaobaoConfig { seed: args.seed, ..TaobaoConfig::taobao1(args.scale) });
    let d2 = generate_taobao(&TaobaoConfig {
        seed: args.seed + 1,
        ..TaobaoConfig::taobao2(args.scale)
    });

    banner("Table I — Statistical Information of Datasets");
    let mut t = Table::new(&["Dataset", "Users", "Items", "User-Item Clicks", "Density"]);
    for (name, ds) in [("Taobao #1 (synthetic)", &d1), ("Taobao #2 (synthetic)", &d2)] {
        let s = GraphStats::compute(&ds.graph);
        t.row(&[
            name.to_string(),
            s.num_left.to_string(),
            s.num_right.to_string(),
            format!("{:.0}", s.total_weight),
            format!("{:.3e}", s.density),
        ]);
    }
    t.print();

    banner("Table II — Samples Information of Datasets");
    let mut t = Table::new(&[
        "Dataset",
        "Train Positive",
        "Train Negative",
        "Train Total",
        "Test Total",
        "Ratio",
    ]);
    // #1 uses the paper's 1:3 replicate sampling; #2 keeps raw samples.
    let train1 = replicate_positives(&d1.train, 3.0, &mut rng);
    let s1 = SampleStats::of(&train1);
    let s2 = SampleStats::of(&d2.train);
    for (name, s, test_len) in [
        ("Taobao #1 (replicated 1:3)", s1, d1.test.len()),
        ("Taobao #2 (raw, cold-start)", s2, d2.test.len()),
    ] {
        t.row(&[
            name.to_string(),
            s.positives.to_string(),
            s.negatives.to_string(),
            s.total().to_string(),
            test_len.to_string(),
            format!("1:{:.2}", s.neg_per_pos()),
        ]);
    }
    t.print();

    let density_ratio =
        GraphStats::compute(&d1.graph).density / GraphStats::compute(&d2.graph).density;
    println!("\ndensity(#1) / density(#2) = {density_ratio:.1} (paper: ~19.7)");
}
