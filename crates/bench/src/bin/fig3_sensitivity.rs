//! Figure 3 — sensitivity of AUC to the level count `L` and the K-means
//! decay `α` (`K_l = K_{l-1}/α`) on the dense dataset.
//!
//! Paper shape to reproduce: AUC increases with `L` up to about 3
//! (DIN is the `L = 0` point), and smaller `α` (5) beats larger
//! (10, 20) because aggressive coarsening loses information.
//!
//! One hierarchy is trained per `α` at the maximum depth; smaller `L`
//! values reuse its level prefixes (truncations), exactly as the variants
//! of Table III do.

use hignn::prelude::*;
use hignn_baselines::{truncated_item_embeddings, truncated_user_embeddings};
use hignn_bench::pipeline::{din_auc, predictor_config, to_pred, train_hierarchy};
use hignn_bench::report::{banner, f3, Table};
use hignn_bench::ExpArgs;
use hignn_datasets::replicate_positives;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use hignn_metrics::auc;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::parse();
    let max_levels = args.levels.unwrap_or(4);
    let alphas = [5.0, 10.0, 20.0];

    let ds = generate_taobao(&TaobaoConfig { seed: args.seed, ..TaobaoConfig::taobao1(args.scale) });
    eprintln!(
        "dataset: {} users, {} items, {} edges",
        ds.num_users(),
        ds.num_items(),
        ds.graph.num_edges()
    );
    let din = din_auc(&ds, true, args.seed);
    eprintln!("DIN (L = 0 reference): AUC {din:.4}");

    banner("Figure 3 — AUC vs level L and K-decay α (Taobao #1 analogue)");
    let mut header = vec!["alpha".to_string(), "L=0 (DIN)".to_string()];
    for l in 1..=max_levels {
        header.push(format!("L={l}"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    for alpha in alphas {
        eprintln!("training hierarchy for alpha = {alpha} ...");
        let hierarchy = train_hierarchy(&ds, max_levels, alpha, args.seed);
        let mut row = vec![format!("{alpha}"), f3(din)];
        for l in 1..=max_levels {
            let a = if l <= hierarchy.num_levels() {
                let uh = truncated_user_embeddings(&hierarchy, l);
                let ih = truncated_item_embeddings(&hierarchy, l);
                let features = FeatureBlocks {
                    user_hier: Some(&uh),
                    item_hier: Some(&ih),
                    user_profiles: &ds.user_profiles,
                    item_stats: &ds.item_stats,
                };
                let mut rng = StdRng::seed_from_u64(args.seed ^ 0xF3);
                let train = replicate_positives(&ds.train, 3.0, &mut rng);
                let model = CvrPredictor::train(
                    &features,
                    &to_pred(&train),
                    &predictor_config(args.seed),
                );
                let probs = model.predict(&features, &to_pred(&ds.test));
                let labels: Vec<bool> = ds.test.iter().map(|s| s.label).collect();
                auc(&probs, &labels)
            } else {
                f64::NAN // hierarchy collapsed before reaching this depth
            };
            eprintln!("  alpha {alpha} L {l}: AUC {a:.4}");
            row.push(if a.is_nan() { "-".into() } else { f3(a) });
        }
        table.row(&row);
    }
    table.print();
    println!(
        "\npaper shape: AUC rises with L (peaking near L = 3) and smaller alpha wins (alpha = 5 best)."
    );
}
