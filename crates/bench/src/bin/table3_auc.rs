//! Table III — CVR prediction AUC of CGNN / DIN / GE / HUP-only /
//! HIA-only / HiGNN on the dense (#1) and cold-start (#2) datasets.
//!
//! Paper shape to reproduce (absolute numbers depend on the synthetic
//! substrate):
//!
//! * HiGNN best on both datasets,
//! * GE > DIN (graph embeddings beat no-graph),
//! * HUP-only / HIA-only between GE and HiGNN,
//! * CGNN below HUP-only (fixed 2-level user hierarchy),
//! * HiGNN's margin over DIN larger on the sparser #2.

use hignn_baselines::Variant;
use hignn_bench::pipeline::{din_auc, train_hierarchy, variant_auc};
use hignn_bench::report::{banner, f3, Table};
use hignn_bench::ExpArgs;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use std::time::Instant;

fn main() {
    let args = ExpArgs::parse();
    let levels = args.levels.unwrap_or(3);
    let alpha = 5.0;

    let datasets = [
        ("Taobao #1", TaobaoConfig { seed: args.seed, ..TaobaoConfig::taobao1(args.scale) }, true),
        (
            "Taobao #2",
            TaobaoConfig { seed: args.seed + 1, ..TaobaoConfig::taobao2(args.scale) },
            false,
        ),
    ];
    let variants = [
        Variant::Cgnn,
        Variant::Din,
        Variant::Ge,
        Variant::HupOnly,
        Variant::HiaOnly,
        Variant::HiGnn,
    ];

    banner("Table III — Performance Evaluation (AUC)");
    let mut table = Table::new(&["Dataset", "CGNN", "DIN", "GE", "HUP-o", "HIA-o", "HiGNN"]);
    let mut din_scores = Vec::new();
    let mut hignn_scores = Vec::new();

    for (name, cfg, replicate) in datasets {
        eprintln!("[{name}] generating dataset (scale {})...", args.scale);
        let ds = generate_taobao(&cfg);
        eprintln!(
            "[{name}] {} users, {} items, {} edges",
            ds.num_users(),
            ds.num_items(),
            ds.graph.num_edges()
        );
        let t0 = Instant::now();
        let hierarchy = train_hierarchy(&ds, levels, alpha, args.seed);
        eprintln!(
            "[{name}] hierarchy trained: {} levels in {:.1}s",
            hierarchy.num_levels(),
            t0.elapsed().as_secs_f64()
        );
        let mut row = vec![name.to_string()];
        for v in variants {
            let t0 = Instant::now();
            let a = match v {
                Variant::Din => din_auc(&ds, replicate, args.seed),
                _ => variant_auc(&ds, &hierarchy, v, replicate, args.seed),
            };
            eprintln!("[{name}] {:<8} AUC {a:.4} ({:.1}s)", v.name(), t0.elapsed().as_secs_f64());
            if v == Variant::Din {
                din_scores.push(a);
            }
            if v == Variant::HiGnn {
                hignn_scores.push(a);
            }
            row.push(f3(a));
        }
        table.row(&row);
    }
    table.print();

    for (k, name) in ["Taobao #1", "Taobao #2"].iter().enumerate() {
        let gain = (hignn_scores[k] - din_scores[k]) / din_scores[k] * 100.0;
        println!(
            "{name}: HiGNN over DIN {gain:+.2}% (paper: +3.08% on #1, +3.33% on #2)"
        );
    }
}
