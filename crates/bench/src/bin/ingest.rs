//! Staleness benchmark for streaming ingestion: how much link-prediction
//! quality does the incremental path (inductive embeddings + streaming
//! cluster maintenance + bounded re-coarsen, upper levels frozen) give
//! up against retraining the whole hierarchy from scratch?
//!
//! Protocol: the top ~10% of user and item ids are held out as future
//! arrivals. A base hierarchy is trained on edges among the remaining
//! nodes only; the held-out edges then stream in over several
//! checkpoints. At each checkpoint the ingesting writer emits an HGHD
//! delta, and a full model is retrained from scratch on the same
//! cumulative edge set. Each model's hierarchical embeddings are then
//! evaluated by an identically configured link-prediction probe (the
//! workspace's Eq. 7 predictor trained to separate cumulative edges
//! from seeded random non-edges — raw `z_u·z_i` is meaningless here
//! because training scores pairs through a learned MLP that is not
//! persisted). The probe is tested on a never-ingested eval slice
//! (1 in 5 streamed edges) vs fresh non-edges; the **staleness gap** is
//! `AUC(full retrain) - AUC(incremental)`.
//!
//! Contract: at `--scale >= 0.49` the gap must stay within 0.05 at
//! every checkpoint, or the run exits 5. Results land in
//! `BENCH_ingest.json` (delta seqs are asserted strictly monotone).
//!
//! ```sh
//! cargo run --release -p hignn-bench --bin ingest -- [--scale F] [--seed N] [--levels L] [--quick]
//! ```

use hignn::ingest::{write_delta, IngestConfig, IngestEngine};
use hignn::prelude::*;
use hignn_bench::pipeline::{hignn_config, predictor_config};
use hignn_bench::report::banner;
use hignn_bench::ExpArgs;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use hignn_graph::BipartiteGraph;
use hignn_metrics::auc;
use hignn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::fmt::Write as _;

const GAP_BUDGET: f64 = 0.05;
/// Below this scale the eval slices are too small for the gap contract
/// to be meaningful; the gap is still reported.
const CONTRACT_SCALE: f64 = 0.49;

/// First `rows` rows of `m`, copied.
fn row_prefix(m: &Matrix, rows: usize) -> Matrix {
    let cols = m.cols();
    Matrix::from_vec(rows, cols, m.data()[..rows * cols].to_vec())
}

/// Pairs each positive with one seeded random non-edge for the same
/// user.
fn with_negatives(
    positives: &[(u32, u32)],
    known: &HashSet<(u32, u32)>,
    num_items: usize,
    seed: u64,
) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(positives.len() * 2);
    for &(u, i) in positives {
        out.push(Sample { user: u, item: i, label: true });
        let j = loop {
            let j = rng.gen_range(0..num_items) as u32;
            if !known.contains(&(u, j)) {
                break j;
            }
        };
        out.push(Sample { user: u, item: j, label: false });
    }
    out
}

/// Link-prediction AUC of a hierarchy's embeddings through a learned
/// probe: an Eq. 7 predictor is trained (identical config for every
/// model under comparison) to separate `train` edges from non-edges
/// over `z^H` features, then scored on the held-out `test` samples.
fn probe_auc(
    h: &Hierarchy,
    profiles: &Matrix,
    stats: &Matrix,
    train: &[Sample],
    test: &[Sample],
    seed: u64,
) -> f64 {
    let uh = h.hierarchical_users();
    let ih = h.hierarchical_items();
    let features = FeatureBlocks {
        user_hier: Some(&uh),
        item_hier: Some(&ih),
        user_profiles: profiles,
        item_stats: stats,
    };
    let model = CvrPredictor::train(&features, train, &predictor_config(seed));
    let probs = model.predict(&features, test);
    let labels: Vec<bool> = test.iter().map(|s| s.label).collect();
    auc(&probs, &labels)
}

fn main() {
    let args = ExpArgs::parse();
    let levels = args.levels.unwrap_or(2);
    let alpha = 5.0;
    let checkpoints = if args.quick { 2 } else { 4 };

    let ds = generate_taobao(&TaobaoConfig { seed: args.seed, ..TaobaoConfig::taobao1(args.scale) });
    banner("Streaming ingestion — incremental vs full-retrain staleness");

    // Node-id holdout: the top ~10% of each side arrives later.
    let old_u = (ds.num_users() * 9).div_euclid(10).max(2);
    let old_i = (ds.num_items() * 9).div_euclid(10).max(2);
    let mut base_edges = Vec::new();
    let mut streamed = Vec::new();
    for &(u, i, w) in ds.graph.edges() {
        if (u as usize) < old_u && (i as usize) < old_i {
            base_edges.push((u, i, w));
        } else {
            streamed.push((u, i, w));
        }
    }
    println!(
        "graph: {} users x {} items, {} edges | base: {old_u} x {old_i}, {} edges | \
         streaming {} edges over {checkpoints} checkpoints | scale {} | L = {levels}",
        ds.num_users(),
        ds.num_items(),
        ds.graph.num_edges(),
        base_edges.len(),
        streamed.len(),
        args.scale,
    );

    let base_graph = BipartiteGraph::from_edges(old_u, old_i, base_edges.clone());
    let cfg = hignn_config(ds.user_features.cols(), levels, alpha, args.seed);
    let base_h = build_hierarchy(
        &base_graph,
        &row_prefix(&ds.user_features, old_u),
        &row_prefix(&ds.item_features, old_i),
        &cfg,
    );
    let mut engine = IngestEngine::new(base_h, base_graph, IngestConfig::default())
        .expect("base graph matches base hierarchy");

    // Per checkpoint: 1 in 5 streamed edges is held for eval (never
    // shown to either model); the rest are ingested.
    let chunk = streamed.len().div_euclid(checkpoints).max(1);
    let mut known: HashSet<(u32, u32)> = base_edges.iter().map(|&(u, i, _)| (u, i)).collect();
    let mut cumulative = base_edges;
    let mut eval: Vec<(u32, u32)> = Vec::new();
    let mut rows = Vec::new();
    let mut last_seq = 0u64;
    let mut max_gap = f64::NEG_INFINITY;

    for c in 0..checkpoints {
        let lo = c * chunk;
        let hi = if c + 1 == checkpoints { streamed.len() } else { (c + 1) * chunk };
        let mut batch = Vec::new();
        for (off, &(u, i, w)) in streamed[lo..hi].iter().enumerate() {
            known.insert((u, i));
            if off % 5 == 0 {
                eval.push((u, i));
            } else {
                batch.push((u, i, w));
            }
        }

        let (report, delta) = engine.ingest(&batch).expect("streamed batch is valid");
        assert!(delta.seq > last_seq, "delta versions must be strictly monotone");
        last_seq = delta.seq;
        let mut delta_bytes = Vec::new();
        write_delta(&mut delta_bytes, &delta).expect("in-memory encode");

        // Full retrain on the identical cumulative edge set.
        cumulative.extend_from_slice(&batch);
        let cur_u = engine.hierarchy().num_users();
        let cur_i = engine.hierarchy().num_items();
        let full_graph = BipartiteGraph::from_edges(cur_u, cur_i, cumulative.clone());
        let full_h = build_hierarchy(
            &full_graph,
            &row_prefix(&ds.user_features, cur_u),
            &row_prefix(&ds.item_features, cur_i),
            &cfg,
        );

        // Score both on every eval edge whose endpoints exist by now.
        let scorable: Vec<(u32, u32)> = eval
            .iter()
            .copied()
            .filter(|&(u, i)| (u as usize) < cur_u && (i as usize) < cur_i)
            .collect();
        // One probe-sample set shared by both models: cumulative edges
        // (deterministically thinned) for training, the eval slice for
        // testing, each paired with seeded non-edges.
        let thin = cumulative.len().div_euclid(4000) + 1;
        let train_pairs: Vec<(u32, u32)> =
            cumulative.iter().step_by(thin).map(|&(u, i, _)| (u, i)).collect();
        let probe_train =
            with_negatives(&train_pairs, &known, cur_i, args.seed ^ 0x5EED ^ c as u64);
        let probe_test = with_negatives(&scorable, &known, cur_i, args.seed ^ 0xE7A1 ^ c as u64);
        let profiles = row_prefix(&ds.user_profiles, cur_u);
        let stats = row_prefix(&ds.item_stats, cur_i);
        let auc_inc = probe_auc(
            engine.hierarchy(),
            &profiles,
            &stats,
            &probe_train,
            &probe_test,
            args.seed,
        );
        let auc_full = probe_auc(&full_h, &profiles, &stats, &probe_train, &probe_test, args.seed);
        let gap = auc_full - auc_inc;
        max_gap = max_gap.max(gap);
        println!(
            "checkpoint {}: seq {} | +{}u +{}i, {} edges, {} moves | delta {} B | \
             eval {} pairs | AUC inc {auc_inc:.4} vs full {auc_full:.4} | gap {gap:+.4}",
            c + 1,
            delta.seq,
            report.new_users,
            report.new_items,
            report.new_edges,
            report.moved_users + report.moved_items,
            delta_bytes.len(),
            scorable.len(),
        );
        rows.push((delta.seq, report, delta_bytes.len(), scorable.len(), auc_inc, auc_full, gap));
    }

    let enforced = args.scale >= CONTRACT_SCALE;
    let within = max_gap <= GAP_BUDGET;
    println!(
        "max staleness gap {max_gap:+.4} (budget {GAP_BUDGET}, {})",
        if enforced { "enforced" } else { "report-only at this scale" }
    );

    let mut cp_json = String::from("  \"checkpoints\": [\n");
    for (idx, (seq, r, bytes, pairs, auc_inc, auc_full, gap)) in rows.iter().enumerate() {
        let comma = if idx + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            cp_json,
            "    {{\"seq\": {seq}, \"new_users\": {}, \"new_items\": {}, \"new_edges\": {}, \
             \"moved\": {}, \"dirty_clusters\": {}, \"delta_bytes\": {bytes}, \
             \"eval_pairs\": {pairs}, \"auc_incremental\": {auc_inc:.6}, \
             \"auc_full_retrain\": {auc_full:.6}, \"gap\": {gap:.6}}}{comma}",
            r.new_users,
            r.new_items,
            r.new_edges,
            r.moved_users + r.moved_items,
            r.dirty_user_clusters + r.dirty_item_clusters,
        );
    }
    cp_json.push_str("  ]");
    let json = format!(
        "{{\n  \"bench\": \"ingest\",\n  \"scale\": {},\n  \"seed\": {},\n  \"levels\": {levels},\n  \
         \"alpha\": {alpha},\n  \"num_users\": {},\n  \"num_items\": {},\n  \
         \"base_users\": {old_u},\n  \"base_items\": {old_i},\n  \
         \"num_checkpoints\": {checkpoints},\n{cp_json},\n  \
         \"max_gap\": {max_gap:.6},\n  \"gap_budget\": {GAP_BUDGET},\n  \
         \"gap_enforced\": {enforced},\n  \"within_budget\": {within},\n  \
         \"note\": \"Staleness of incremental ingestion: the top ~10% of node ids are held out, \
         a base hierarchy is trained without them, and their edges stream in over the \
         checkpoints. At each checkpoint `auc_incremental` scores the streamed (delta-patched) \
         hierarchy and `auc_full_retrain` a from-scratch retrain on the identical cumulative \
         edges. Each score is the held-out AUC of an identically configured link-prediction \
         probe (the Eq. 7 predictor) trained over that model's z^H features to separate \
         cumulative edges from seeded non-edges, tested on a never-ingested eval slice \
         (1 in 5 streamed edges) vs fresh non-edges. Raw dot(z_u^H, z_i^H) is not used: \
         training scores pairs through a learned MLP that is not persisted, so raw dots \
         carry no ranking signal. gap = full - incremental; the budget is \
         enforced (exit 5) at scale >= {CONTRACT_SCALE}. delta_bytes is the encoded HGHD size \
         a replica fetches instead of a full model reload.\"\n}}\n",
        args.scale,
        args.seed,
        ds.num_users(),
        ds.num_items(),
    );
    std::fs::write("BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    println!("\nwrote BENCH_ingest.json");
    if enforced && !within {
        eprintln!("STALENESS CONTRACT VIOLATION: gap {max_gap:.4} > {GAP_BUDGET}");
        std::process::exit(5);
    }
}
