//! Property-based tests for the clustering substrate.

use hignn_cluster::agglomerative::average_linkage;
use hignn_cluster::ch_index::calinski_harabasz;
use hignn_cluster::kmeans::{kmeans, mean_by_cluster, nearest_centroid, KMeansConfig};
use hignn_tensor::Matrix;
use proptest::prelude::*;

fn data_strategy() -> impl Strategy<Value = Matrix> {
    (4usize..30).prop_flat_map(|n| {
        prop::collection::vec(-10.0f32..10.0, n * 2)
            .prop_map(move |v| Matrix::from_vec(n, 2, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kmeans_assignment_is_locally_optimal(data in data_strategy(), k in 1usize..6, seed in 0u64..50) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let res = kmeans(&data, &KMeansConfig::new(k), &mut rng);
        // Every point is assigned to its nearest centroid.
        for i in 0..data.rows() {
            let (best, _) = nearest_centroid(&res.centroids, data.row(i));
            let assigned_d = res.centroids.row_sq_dist(res.assignment[i] as usize, data.row(i));
            let best_d = res.centroids.row_sq_dist(best, data.row(i));
            prop_assert!(assigned_d <= best_d + 1e-5);
        }
        // Inertia equals the sum of assigned squared distances.
        let manual: f64 = (0..data.rows())
            .map(|i| res.centroids.row_sq_dist(res.assignment[i] as usize, data.row(i)) as f64)
            .sum();
        prop_assert!((res.inertia - manual).abs() < 1e-3 * (1.0 + manual));
    }

    #[test]
    fn kmeans_inertia_never_worse_with_more_clusters(data in data_strategy(), seed in 0u64..20) {
        use rand::{rngs::StdRng, SeedableRng};
        // Best-of-3 restarts to smooth out local optima, then k=1 vs k=3.
        let best = |k: usize| -> f64 {
            (0..3)
                .map(|s| {
                    let mut rng = StdRng::seed_from_u64(seed * 7 + s);
                    kmeans(&data, &KMeansConfig::new(k), &mut rng).inertia
                })
                .fold(f64::MAX, f64::min)
        };
        let k1 = best(1);
        let k3 = best(3.min(data.rows()));
        prop_assert!(k3 <= k1 + 1e-3 * (1.0 + k1), "k3 {k3} > k1 {k1}");
    }

    #[test]
    fn mean_by_cluster_is_centroid_of_members(data in data_strategy(), k in 1usize..5) {
        let assignment: Vec<u32> = (0..data.rows()).map(|i| (i % k) as u32).collect();
        let means = mean_by_cluster(&data, &assignment, k);
        for c in 0..k {
            let members: Vec<usize> =
                (0..data.rows()).filter(|&i| assignment[i] as usize == c).collect();
            if members.is_empty() {
                continue;
            }
            for col in 0..2 {
                let manual: f32 = members.iter().map(|&i| data.get(i, col)).sum::<f32>()
                    / members.len() as f32;
                prop_assert!((means.get(c, col) - manual).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn hac_cuts_are_nested(data in data_strategy()) {
        let dend = average_linkage(&data);
        let n = data.rows();
        let fine = dend.cut_k((n / 2).max(2));
        let coarse = dend.cut_k(2);
        // Same fine cluster => same coarse cluster (hierarchical nesting).
        for i in 0..n {
            for j in 0..n {
                if fine[i] == fine[j] {
                    prop_assert_eq!(coarse[i], coarse[j]);
                }
            }
        }
    }

    #[test]
    fn ch_index_nonnegative_and_finite_on_nondegenerate(data in data_strategy(), k in 2usize..4) {
        prop_assume!(data.rows() > k);
        let assignment: Vec<u32> = (0..data.rows()).map(|i| (i % k) as u32).collect();
        let ch = calinski_harabasz(&data, &assignment, k);
        prop_assert!(ch >= 0.0);
    }
}
