//! K-means clustering (k-means++ seeding + Lloyd iterations).
//!
//! This is the deterministic clustering stage of HiGNN (Algorithm 1,
//! `K_u(Z_u^l)` / `K_i(Z_i^l)`): given the embedding matrix a bipartite
//! GraphSAGE level produced, cluster each side in its own feature space.
//!
//! The assignment and update steps — the O(n·k·d) bulk of Lloyd — run
//! data-parallel over fixed row chunks ([`ROW_CHUNK`]); per-chunk
//! partials merge in chunk order, so any worker count produces
//! bit-identical clusterings (see [`hignn_tensor::parallel`]).

use hignn_tensor::parallel::{ParallelExecutor, ROW_CHUNK};
use hignn_tensor::{simd, Matrix, MathMode};
use rand::Rng;

/// Configuration for [`kmeans`].
#[derive(Clone, Debug)]
pub struct KMeansConfig {
    /// Number of clusters. Clamped to the number of points.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence tolerance on relative inertia improvement.
    pub tol: f64,
}

impl KMeansConfig {
    /// Standard configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        KMeansConfig { k, max_iters: 50, tol: 1e-4 }
    }
}

/// Result of a clustering run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// `k x d` centroid matrix.
    pub centroids: Matrix,
    /// Cluster id per point.
    pub assignment: Vec<u32>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations performed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }
}

/// Runs k-means++ seeding followed by Lloyd iterations.
///
/// ```
/// use hignn_cluster::kmeans::{kmeans, KMeansConfig};
/// use hignn_tensor::Matrix;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let data = Matrix::from_vec(4, 1, vec![0.0, 0.1, 9.9, 10.0]);
/// let res = kmeans(&data, &KMeansConfig::new(2), &mut StdRng::seed_from_u64(0));
/// assert_eq!(res.assignment[0], res.assignment[1]);
/// assert_ne!(res.assignment[0], res.assignment[3]);
/// ```
///
/// # Panics
/// Panics if `data` has no rows or `cfg.k == 0`.
pub fn kmeans(data: &Matrix, cfg: &KMeansConfig, rng: &mut impl Rng) -> KMeansResult {
    kmeans_with(data, cfg, rng, &ParallelExecutor::single())
}

/// [`kmeans`] with an explicit executor for the assignment and update
/// steps. The worker count never changes the result: both steps
/// decompose over fixed [`ROW_CHUNK`] row chunks whose partials merge
/// in chunk order, so `kmeans_with(.., N workers)` is bit-identical to
/// [`kmeans`].
pub fn kmeans_with(
    data: &Matrix,
    cfg: &KMeansConfig,
    rng: &mut impl Rng,
    exec: &ParallelExecutor,
) -> KMeansResult {
    kmeans_with_mode(data, cfg, rng, exec, MathMode::Bitwise)
}

/// [`kmeans_with`] in the given math tier.
///
/// The mode only switches the distance kernel of the assignment steps
/// (the O(n·k·d) bulk of Lloyd); k-means++ seeding and the centroid
/// update keep the bitwise scalar path in both tiers, so FastMath
/// changes at most which centroid wins a near-tie, never the RNG
/// consumption pattern.
pub fn kmeans_with_mode(
    data: &Matrix,
    cfg: &KMeansConfig,
    rng: &mut impl Rng,
    exec: &ParallelExecutor,
    mode: MathMode,
) -> KMeansResult {
    let _span = hignn_obs::span("cluster.kmeans");
    assert!(data.rows() > 0, "kmeans: empty data");
    assert!(cfg.k > 0, "kmeans: k must be positive");
    let k = cfg.k.min(data.rows());
    let d = data.cols();
    // Serial fallback for small problems: below the work threshold,
    // thread spawn overhead dominates the O(n·k·d) step itself
    // (BENCH_parallel.json measured sub-1.0× speedups there). Chunk
    // decomposition is unchanged, so this never changes bits.
    let exec = &exec.throttle(data.rows() * d * k);
    let mut centroids = kmeans_pp_seed(data, k, rng);
    let mut assignment = vec![0u32; data.rows()];
    let mut inertia = f64::MAX;
    let mut iterations = 0;

    for iter in 0..cfg.max_iters {
        iterations = iter + 1;
        // Assignment step (parallel over row chunks).
        let new_inertia;
        (assignment, new_inertia) = assign_all_mode(&centroids, data, exec, mode);
        // Update step: per-chunk partial sums/counts, merged in chunk
        // order so the f32 accumulation order is fixed.
        let partials = exec.map_chunks(data.rows(), ROW_CHUNK, |_, range| {
            let mut sums = vec![0f32; k * d];
            let mut counts = vec![0usize; k];
            for i in range {
                let c = assignment[i] as usize;
                counts[c] += 1;
                for (s, &v) in sums[c * d..(c + 1) * d].iter_mut().zip(data.row(i)) {
                    *s += v;
                }
            }
            (sums, counts)
        });
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for (part_sums, part_counts) in partials {
            for (s, v) in sums.data_mut().iter_mut().zip(part_sums) {
                *s += v;
            }
            for (c, v) in counts.iter_mut().zip(part_counts) {
                *c += v;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                // Re-seed an empty cluster at the point farthest from its
                // centroid, the standard fix that keeps k clusters alive.
                // Non-finite distances are demoted below every finite one
                // (`farthest_score`), so a NaN-feature row can neither
                // panic the comparator nor become a reseed target.
                let far = (0..data.rows())
                    .max_by(|&a, &b| {
                        let da = farthest_score(
                            centroids.row_sq_dist(assignment[a] as usize, data.row(a)),
                        );
                        let db = farthest_score(
                            centroids.row_sq_dist(assignment[b] as usize, data.row(b)),
                        );
                        da.total_cmp(&db)
                    })
                    .unwrap();
                centroids.set_row(c, data.row(far));
            } else {
                let inv = 1.0 / count as f32;
                let sum_row: Vec<f32> = sums.row(c).iter().map(|&s| s * inv).collect();
                centroids.set_row(c, &sum_row);
            }
        }
        // Convergence check on relative improvement.
        if inertia.is_finite() {
            let improvement = (inertia - new_inertia) / inertia.max(1e-12);
            if improvement.abs() < cfg.tol {
                break;
            }
        }
        inertia = new_inertia;
    }

    // Final assignment against the last centroid update.
    let (assignment, final_inertia) = assign_all_mode(&centroids, data, exec, mode);
    if hignn_obs::enabled() {
        hignn_obs::counter_add("cluster.kmeans_runs", 1);
        hignn_obs::counter_add("cluster.kmeans_iterations", iterations as u64);
        hignn_obs::counter_add("cluster.kmeans_points", data.rows() as u64);
        hignn_obs::gauge_set("cluster.last_inertia", final_inertia);
    }
    KMeansResult { centroids, assignment, inertia: final_inertia, iterations }
}

/// Assigns every row of `data` to its nearest centroid, data-parallel
/// over fixed [`ROW_CHUNK`] chunks. Returns the assignment plus the
/// total squared distance (inertia), with per-chunk partial inertias
/// summed in chunk order — bit-identical at any worker count.
pub fn assign_all(
    centroids: &Matrix,
    data: &Matrix,
    exec: &ParallelExecutor,
) -> (Vec<u32>, f64) {
    assign_all_mode(centroids, data, exec, MathMode::Bitwise)
}

/// [`assign_all`] in the given math tier (FastMath vectorises the
/// per-point squared distances; chunking and merge order are
/// unchanged, so each mode is still thread-count-invariant).
pub fn assign_all_mode(
    centroids: &Matrix,
    data: &Matrix,
    exec: &ParallelExecutor,
    mode: MathMode,
) -> (Vec<u32>, f64) {
    let exec = &exec.throttle(data.rows() * data.cols() * centroids.rows());
    let chunks = exec.map_chunks(data.rows(), ROW_CHUNK, |_, range| {
        let mut assigned = Vec::with_capacity(range.len());
        let mut inertia = 0f64;
        for i in range {
            let (c, d) = nearest_centroid_mode(centroids, data.row(i), mode);
            assigned.push(c as u32);
            inertia += d as f64;
        }
        (assigned, inertia)
    });
    let mut assignment = Vec::with_capacity(data.rows());
    let mut inertia = 0f64;
    for (assigned, partial) in chunks {
        assignment.extend(assigned);
        inertia += partial;
    }
    (assignment, inertia)
}

/// k-means++ seeding: first centre uniform, subsequent centres with
/// probability proportional to squared distance from the nearest chosen
/// centre. A row with non-finite distance (NaN features, overflow)
/// gets zero seeding weight — it can never be drawn as a centre, and
/// it cannot poison the cumulative sum into a `gen_range(0.0..NaN)`
/// panic. For all-finite data this is the identity, so bits are
/// unchanged.
pub fn kmeans_pp_seed(data: &Matrix, k: usize, rng: &mut impl Rng) -> Matrix {
    let n = data.rows();
    let k = k.min(n);
    let mut centroids = Matrix::zeros(k, data.cols());
    let first = rng.gen_range(0..n);
    centroids.set_row(0, data.row(first));
    let weight = |d: f32| if d.is_finite() { d as f64 } else { 0.0 };
    let mut dist2: Vec<f32> = (0..n)
        .map(|i| centroids.row_sq_dist(0, data.row(i)))
        .collect();
    for c in 1..k {
        let total: f64 = dist2.iter().map(|&d| weight(d)).sum();
        let chosen = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut x = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in dist2.iter().enumerate() {
                x -= weight(d);
                if x <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.set_row(c, data.row(chosen));
        for (i, d) in dist2.iter_mut().enumerate() {
            let nd = centroids.row_sq_dist(c, data.row(i));
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

/// Index and squared distance of the centroid nearest to `point`.
#[inline]
pub fn nearest_centroid(centroids: &Matrix, point: &[f32]) -> (usize, f32) {
    nearest_centroid_mode(centroids, point, MathMode::Bitwise)
}

/// [`nearest_centroid`] in the given math tier.
///
/// Distances compare under IEEE-754 total order (`f32::total_cmp`), so
/// NaN sorts *last*: a NaN distance — from a NaN-feature point or a
/// poisoned centroid — can never win over any finite or infinite one,
/// and ties keep the lowest centroid index. Before this, `d < best_d`
/// silently evaluated `false` for NaN, which happened to keep index 0
/// but left the selection semantics an accident of comparator direction
/// rather than a documented NaN-last policy. A point whose distance to
/// *every* centroid is NaN deterministically maps to centroid 0 with
/// reported distance `f32::INFINITY`.
#[inline]
pub fn nearest_centroid_mode(centroids: &Matrix, point: &[f32], mode: MathMode) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for c in 0..centroids.rows() {
        let d = match mode {
            MathMode::Bitwise => centroids.row_sq_dist(c, point),
            MathMode::FastMath => simd::sq_dist_fast(centroids.row(c), point),
        };
        if d.total_cmp(&best_d) == std::cmp::Ordering::Less {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Maps a squared distance to a "how far" score for empty-cluster
/// reseeding: non-finite values (NaN, `inf` from overflow) become
/// `f32::NEG_INFINITY` so they are never chosen as reseed targets —
/// copying a NaN row into a centroid would poison every later
/// assignment round.
#[inline]
fn farthest_score(d: f32) -> f32 {
    if d.is_finite() {
        d
    } else {
        f32::NEG_INFINITY
    }
}

/// Mean member embedding per cluster — the paper's cluster feature
/// `X_{C_u}` ("the average user embedding of users who belong to the
/// cluster").
///
/// Clusters with no members get a zero row.
pub fn mean_by_cluster(data: &Matrix, assignment: &[u32], k: usize) -> Matrix {
    assert_eq!(data.rows(), assignment.len(), "mean_by_cluster: size mismatch");
    let mut out = Matrix::zeros(k, data.cols());
    let mut counts = vec![0usize; k];
    for (i, &c) in assignment.iter().enumerate() {
        let c = c as usize;
        assert!(c < k, "cluster id {c} out of range");
        counts[c] += 1;
        for (o, &v) in out.row_mut(c).iter_mut().zip(data.row(i)) {
            *o += v;
        }
    }
    for (c, &count) in counts.iter().enumerate() {
        if count > 0 {
            let inv = 1.0 / count as f32;
            for o in out.row_mut(c) {
                *o *= inv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Three well-separated blobs in 2-D.
    fn blobs(rng: &mut StdRng) -> (Matrix, Vec<u32>) {
        let centers = [(0.0f32, 0.0f32), (10.0, 10.0), (-10.0, 10.0)];
        let mut data = Matrix::zeros(90, 2);
        let mut truth = Vec::with_capacity(90);
        for i in 0..90 {
            let c = i % 3;
            let (cx, cy) = centers[c];
            data.set(i, 0, cx + rng.gen_range(-1.0..1.0));
            data.set(i, 1, cy + rng.gen_range(-1.0..1.0));
            truth.push(c as u32);
        }
        (data, truth)
    }

    /// Fraction of point pairs on which two clusterings agree (Rand index).
    fn rand_index(a: &[u32], b: &[u32]) -> f64 {
        let n = a.len();
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                total += 1;
                if (a[i] == a[j]) == (b[i] == b[j]) {
                    agree += 1;
                }
            }
        }
        agree as f64 / total as f64
    }

    #[test]
    fn recovers_separated_blobs() {
        let mut rng = StdRng::seed_from_u64(42);
        let (data, truth) = blobs(&mut rng);
        let res = kmeans(&data, &KMeansConfig::new(3), &mut rng);
        assert_eq!(res.k(), 3);
        assert!(rand_index(&res.assignment, &truth) > 0.99);
        assert!(res.inertia < 90.0 * 2.0); // within-blob variance only
    }

    #[test]
    fn k_clamped_to_n() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = Matrix::from_vec(2, 1, vec![0.0, 5.0]);
        let res = kmeans(&data, &KMeansConfig::new(10), &mut rng);
        assert_eq!(res.k(), 2);
        assert!(res.inertia < 1e-9);
    }

    #[test]
    fn single_cluster() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = Matrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let res = kmeans(&data, &KMeansConfig::new(1), &mut rng);
        assert!(res.assignment.iter().all(|&c| c == 0));
        assert!((res.centroids.get(0, 0) - 1.5).abs() < 1e-5);
    }

    #[test]
    fn identical_points_dont_crash() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = Matrix::from_vec(5, 2, vec![1.0; 10]);
        let res = kmeans(&data, &KMeansConfig::new(3), &mut rng);
        assert!(res.inertia < 1e-9);
        assert!(res.assignment.iter().all(|&c| (c as usize) < res.k()));
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = blobs(&mut StdRng::seed_from_u64(9));
        let r1 = kmeans(&data, &KMeansConfig::new(3), &mut StdRng::seed_from_u64(5));
        let r2 = kmeans(&data, &KMeansConfig::new(3), &mut StdRng::seed_from_u64(5));
        assert_eq!(r1.assignment, r2.assignment);
    }

    #[test]
    fn worker_count_does_not_change_bits() {
        // > ROW_CHUNK points so the parallel path genuinely chunks.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 700;
        let mut data = Matrix::zeros(n, 3);
        for i in 0..n {
            for j in 0..3 {
                data.set(i, j, rng.gen_range(-1.0f32..1.0) + (i % 4) as f32 * 5.0);
            }
        }
        let base = kmeans(&data, &KMeansConfig::new(4), &mut StdRng::seed_from_u64(3));
        for workers in [2, 4, 8] {
            let exec = ParallelExecutor::new(workers);
            let r = kmeans_with(&data, &KMeansConfig::new(4), &mut StdRng::seed_from_u64(3), &exec);
            assert_eq!(r.assignment, base.assignment, "workers = {workers}");
            assert_eq!(r.centroids.data(), base.centroids.data(), "workers = {workers}");
            assert_eq!(r.inertia.to_bits(), base.inertia.to_bits(), "workers = {workers}");
        }
    }

    #[test]
    fn fastmath_assignment_recovers_blobs() {
        let mut rng = StdRng::seed_from_u64(42);
        let (data, truth) = blobs(&mut rng);
        let exec = ParallelExecutor::single();
        let res =
            kmeans_with_mode(&data, &KMeansConfig::new(3), &mut rng, &exec, MathMode::FastMath);
        assert!(rand_index(&res.assignment, &truth) > 0.99);
        // FastMath is itself deterministic: same seed, same bits.
        let mut rng2 = StdRng::seed_from_u64(42);
        let (data2, _) = blobs(&mut rng2);
        let res2 =
            kmeans_with_mode(&data2, &KMeansConfig::new(3), &mut rng2, &exec, MathMode::FastMath);
        assert_eq!(res.assignment, res2.assignment);
        assert_eq!(res.centroids.data(), res2.centroids.data());
    }

    #[test]
    fn mean_by_cluster_averages() {
        let data = Matrix::from_vec(4, 2, vec![0.0, 0.0, 2.0, 2.0, 10.0, 0.0, 0.0, 10.0]);
        let m = mean_by_cluster(&data, &[0, 0, 1, 1], 3);
        assert_eq!(m.row(0), &[1.0, 1.0]);
        assert_eq!(m.row(1), &[5.0, 5.0]);
        assert_eq!(m.row(2), &[0.0, 0.0]); // empty cluster
    }

    #[test]
    fn nearest_centroid_is_nan_last() {
        let centroids = Matrix::from_vec(3, 2, vec![0.0, 0.0, 10.0, 10.0, f32::NAN, f32::NAN]);
        // A finite point never lands on the poisoned centroid 2, whose
        // distance is NaN and therefore sorts last in total order.
        let (c, d) = nearest_centroid(&centroids, &[9.0, 9.0]);
        assert_eq!(c, 1);
        assert!(d.is_finite());
        // An all-NaN point has NaN distance to every centroid: it maps
        // deterministically to centroid 0 with distance +inf.
        let (c, d) = nearest_centroid(&centroids, &[f32::NAN, f32::NAN]);
        assert_eq!(c, 0);
        assert_eq!(d, f32::INFINITY);
        // FastMath tier obeys the same policy.
        let (c, _) = nearest_centroid_mode(&centroids, &[9.0, 9.0], MathMode::FastMath);
        assert_eq!(c, 1);
    }

    #[test]
    fn kmeans_survives_nan_row() {
        // A NaN row must neither panic the empty-cluster reseed
        // comparator (formerly `partial_cmp().unwrap()`) nor be copied
        // into a centroid. The run stays deterministic.
        let mut data = Matrix::from_vec(7, 1, vec![0.0, 0.1, 0.2, 9.9, 10.0, 10.1, 0.0]);
        data.set(6, 0, f32::NAN);
        let r1 = kmeans(&data, &KMeansConfig::new(2), &mut StdRng::seed_from_u64(4));
        let r2 = kmeans(&data, &KMeansConfig::new(2), &mut StdRng::seed_from_u64(4));
        assert_eq!(r1.assignment, r2.assignment);
        assert_eq!(r1.centroids.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                   r2.centroids.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>());
        // The NaN row pollutes the running mean of whichever cluster it
        // joins in the update step, but the reseed policy keeps at
        // least one centroid finite, so finite points stay servable.
        assert!((0..r1.k()).any(|c| r1.centroids.row(c).iter().all(|v| v.is_finite())));
    }

    #[test]
    fn seeding_spreads_centers() {
        // With two tight far-apart blobs, the two seeds should land in
        // different blobs essentially always.
        let mut rng = StdRng::seed_from_u64(7);
        let mut data = Matrix::zeros(20, 1);
        for i in 0..10 {
            data.set(i, 0, rng.gen_range(-0.1..0.1));
            data.set(10 + i, 0, 100.0 + rng.gen_range(-0.1..0.1));
        }
        for seed in 0..20 {
            let mut r = StdRng::seed_from_u64(seed);
            let seeds = kmeans_pp_seed(&data, 2, &mut r);
            let gap = (seeds.get(0, 0) - seeds.get(1, 0)).abs();
            assert!(gap > 50.0, "seed {seed}: centers too close ({gap})");
        }
    }
}
