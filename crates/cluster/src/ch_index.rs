//! Calinski-Harabasz index and CH-guided cluster-count selection.
//!
//! Section V.C.1 of the paper: *"the taxonomy results are very sensitive
//! to the number of clusters ... we exploit the Calinski-Harabasz Index to
//! maximize the between-cluster variance and minimize the within-cluster
//! variance"* (Eq. 13):
//!
//! `CH = (D_B(k) / D_W(k)) * ((N - k) / (k - 1))`

use crate::kmeans::{kmeans, KMeansConfig};
use hignn_tensor::Matrix;
use rand::Rng;

/// Computes the Calinski-Harabasz index of a clustering.
///
/// Returns 0 for degenerate cases (`k < 2`, `k >= n`, or zero
/// within-cluster variance paired with zero between-cluster variance).
pub fn calinski_harabasz(data: &Matrix, assignment: &[u32], k: usize) -> f64 {
    assert_eq!(data.rows(), assignment.len(), "calinski_harabasz: size mismatch");
    let n = data.rows();
    if k < 2 || n <= k {
        return 0.0;
    }
    let d = data.cols();
    // Global mean.
    let mut global = vec![0f64; d];
    for i in 0..n {
        for (g, &v) in global.iter_mut().zip(data.row(i)) {
            *g += v as f64;
        }
    }
    for g in &mut global {
        *g /= n as f64;
    }
    // Cluster means and sizes.
    let mut means = vec![vec![0f64; d]; k];
    let mut sizes = vec![0usize; k];
    for (i, &a) in assignment.iter().enumerate().take(n) {
        let c = a as usize;
        sizes[c] += 1;
        for (m, &v) in means[c].iter_mut().zip(data.row(i)) {
            *m += v as f64;
        }
    }
    for (mean, &size) in means.iter_mut().zip(&sizes) {
        if size > 0 {
            for m in mean {
                *m /= size as f64;
            }
        }
    }
    // Between-cluster dispersion.
    let mut db = 0f64;
    for c in 0..k {
        if sizes[c] == 0 {
            continue;
        }
        let dist: f64 = means[c]
            .iter()
            .zip(&global)
            .map(|(m, g)| (m - g) * (m - g))
            .sum();
        db += sizes[c] as f64 * dist;
    }
    // Within-cluster dispersion.
    let mut dw = 0f64;
    for (i, &a) in assignment.iter().enumerate().take(n) {
        let c = a as usize;
        let dist: f64 = data
            .row(i)
            .iter()
            .zip(&means[c])
            .map(|(&v, m)| (v as f64 - m) * (v as f64 - m))
            .sum();
        dw += dist;
    }
    if dw <= 1e-12 {
        return if db <= 1e-12 { 0.0 } else { f64::INFINITY };
    }
    (db / dw) * ((n - k) as f64 / (k - 1) as f64)
}

/// Picks the `k` among `candidates` that maximises the CH index of a
/// k-means clustering, returning `(best_k, best_assignment, best_ch)`.
pub fn select_k_by_ch(
    data: &Matrix,
    candidates: &[usize],
    rng: &mut impl Rng,
) -> (usize, Vec<u32>, f64) {
    let _span = hignn_obs::span("cluster.ch_select");
    assert!(!candidates.is_empty(), "select_k_by_ch: no candidates");
    let mut best: Option<(usize, Vec<u32>, f64)> = None;
    for &k in candidates {
        if k < 2 || k >= data.rows() {
            continue;
        }
        let res = kmeans(data, &KMeansConfig::new(k), rng);
        let ch = calinski_harabasz(data, &res.assignment, res.k());
        if best.as_ref().is_none_or(|(_, _, b)| ch > *b) {
            best = Some((res.k(), res.assignment, ch));
        }
    }
    best.unwrap_or_else(|| {
        // All candidates degenerate: fall back to the smallest valid k.
        let k = candidates.iter().copied().min().unwrap().max(1).min(data.rows());
        let res = kmeans(data, &KMeansConfig::new(k), rng);
        (res.k(), res.assignment, 0.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(k: usize, per: usize, spread: f32, rng: &mut StdRng) -> (Matrix, Vec<u32>) {
        let mut data = Matrix::zeros(k * per, 2);
        let mut truth = Vec::new();
        for c in 0..k {
            let cx = (c as f32) * 20.0;
            for i in 0..per {
                let r = c * per + i;
                data.set(r, 0, cx + rng.gen_range(-spread..spread));
                data.set(r, 1, rng.gen_range(-spread..spread));
                truth.push(c as u32);
            }
        }
        (data, truth)
    }

    #[test]
    fn true_clustering_scores_higher_than_random() {
        let mut rng = StdRng::seed_from_u64(1);
        let (data, truth) = blobs(3, 30, 1.0, &mut rng);
        let random: Vec<u32> = (0..90).map(|_| rng.gen_range(0..3)).collect();
        let good = calinski_harabasz(&data, &truth, 3);
        let bad = calinski_harabasz(&data, &random, 3);
        assert!(good > bad * 10.0, "good {good} bad {bad}");
    }

    #[test]
    fn degenerate_cases_are_zero() {
        let data = Matrix::from_vec(3, 1, vec![0.0, 1.0, 2.0]);
        assert_eq!(calinski_harabasz(&data, &[0, 0, 0], 1), 0.0);
        assert_eq!(calinski_harabasz(&data, &[0, 1, 2], 3), 0.0);
    }

    #[test]
    fn zero_within_variance_is_infinite() {
        // Two distinct points each forming their own tight "cluster" of two.
        let data = Matrix::from_vec(4, 1, vec![0.0, 0.0, 10.0, 10.0]);
        let ch = calinski_harabasz(&data, &[0, 0, 1, 1], 2);
        assert!(ch.is_infinite());
    }

    #[test]
    fn select_k_finds_true_k() {
        let mut rng = StdRng::seed_from_u64(2);
        let (data, _) = blobs(4, 40, 1.0, &mut rng);
        let (k, assignment, ch) = select_k_by_ch(&data, &[2, 3, 4, 5, 6, 8], &mut rng);
        assert_eq!(k, 4, "CH selected k = {k} (ch = {ch})");
        assert_eq!(assignment.len(), 160);
        assert!(ch > 100.0);
    }
}
