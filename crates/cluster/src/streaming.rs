//! Single-pass and mini-batch K-means.
//!
//! The paper's complexity analysis (Section III.D) states: *"For the first
//! layer of Kmeans, we use the single-pass version which estimates the
//! cluster centers with a single pass over all data and is appropriate for
//! large-scale clustering"*, giving `O(M*K_u + N*K_i)`. [`SequentialKMeans`]
//! implements that estimator (MacQueen-style running means); a mini-batch
//! variant is provided for the middle ground between single-pass and full
//! Lloyd.

use crate::kmeans::{assign_all, kmeans_pp_seed, nearest_centroid};
use hignn_tensor::parallel::{ParallelExecutor, ROW_CHUNK};
use hignn_tensor::Matrix;
use rand::Rng;

/// MacQueen sequential (single-pass) K-means.
///
/// Centres are seeded with k-means++ on a bounded prefix sample, then each
/// point is assigned to its nearest centre exactly once and the centre is
/// moved by the running-mean rule `c += (x - c) / n_c`.
///
/// # Invariants
///
/// * `counts.len() == centroids.rows()`, always.
/// * `counts[c] == 0` iff centre `c` has never received a point, in
///   which case its row still holds its *seed position* — it is a
///   **dead cluster**, not a zero row. [`Self::observe`] increments the
///   count *before* forming the learning rate `1/counts[c]`, so the
///   rate is always finite; no refactor may reorder those two steps
///   (the `debug_assert!` guards it).
/// * Dead clusters are a policy decision for the caller:
///   [`Self::dead_clusters`] reports them, [`Self::reseed_dead`]
///   relocates them onto real data. Nothing reseeds implicitly —
///   streaming ingestion needs stable cluster ids.
/// * Non-finite points (any NaN/±inf feature) are routed
///   deterministically by the NaN-last [`nearest_centroid`] and **never
///   update a centre**: one bad row cannot poison a running mean and
///   thereby corrupt every later assignment.
#[derive(Clone, Debug)]
pub struct SequentialKMeans {
    centroids: Matrix,
    counts: Vec<usize>,
}

impl SequentialKMeans {
    /// Seeds `k` centres from `seed_sample` (k-means++).
    pub fn new(seed_sample: &Matrix, k: usize, rng: &mut impl Rng) -> Self {
        let centroids = kmeans_pp_seed(seed_sample, k, rng);
        let counts = vec![0usize; centroids.rows()];
        SequentialKMeans { centroids, counts }
    }

    /// Reconstructs the estimator from persisted state — the entry
    /// point for streaming ingestion, which resumes from the exact
    /// per-cluster member means and sizes of a trained hierarchy.
    ///
    /// # Panics
    /// Panics if `counts.len() != centroids.rows()`.
    pub fn from_state(centroids: Matrix, counts: Vec<usize>) -> Self {
        assert_eq!(
            counts.len(),
            centroids.rows(),
            "SequentialKMeans::from_state: one count per centroid"
        );
        SequentialKMeans { centroids, counts }
    }

    /// Consumes one point, returning its assigned cluster.
    ///
    /// A non-finite point is assigned (NaN-last, deterministic) but
    /// does **not** move the centre or bump its count.
    pub fn observe(&mut self, point: &[f32]) -> u32 {
        let (c, _) = nearest_centroid(&self.centroids, point);
        if !point.iter().all(|v| v.is_finite()) {
            return c as u32;
        }
        self.counts[c] += 1;
        debug_assert!(self.counts[c] > 0, "count must be bumped before the learning rate");
        let lr = 1.0 / self.counts[c] as f32;
        let row = self.centroids.row_mut(c);
        for (cv, &pv) in row.iter_mut().zip(point) {
            *cv += lr * (pv - *cv);
        }
        c as u32
    }

    /// Current centroids.
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Points consumed per cluster.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Assigns a point without updating centres.
    pub fn assign(&self, point: &[f32]) -> u32 {
        nearest_centroid(&self.centroids, point).0 as u32
    }

    /// Overwrites one centre and its count with exact values (used
    /// after a re-coarsen recomputes member means offline).
    ///
    /// # Panics
    /// Panics if `c` is out of range or `center` has the wrong length.
    pub fn set_center(&mut self, c: usize, center: &[f32], count: usize) {
        assert_eq!(center.len(), self.centroids.cols(), "set_center: dimension mismatch");
        self.centroids.set_row(c, center);
        self.counts[c] = count;
    }

    /// Ids of dead clusters — centres that never received a point and
    /// therefore still sit at their seed position (the "report" half of
    /// the reseed-or-report policy).
    pub fn dead_clusters(&self) -> Vec<usize> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n == 0)
            .map(|(c, _)| c)
            .collect()
    }

    /// Relocates every dead cluster onto the data point farthest from
    /// its nearest *live* centre (the "reseed" half of the policy),
    /// deterministically: dead ids ascending, ties at equal distance
    /// keep the lowest row index, non-finite rows never chosen.
    /// Each reseeded centre starts with `counts == 1`. Returns the
    /// reseeded ids.
    pub fn reseed_dead(&mut self, data: &Matrix) -> Vec<usize> {
        assert_eq!(data.cols(), self.centroids.cols(), "reseed_dead: dimension mismatch");
        let mut reseeded = Vec::new();
        for c in self.dead_clusters() {
            let mut best: Option<(usize, f32)> = None;
            for i in 0..data.rows() {
                let (_, d) = nearest_centroid(&self.centroids, data.row(i));
                if !d.is_finite() {
                    continue;
                }
                if best.is_none_or(|(_, bd)| d > bd) {
                    best = Some((i, d));
                }
            }
            if let Some((i, _)) = best {
                self.centroids.set_row(c, data.row(i));
                self.counts[c] = 1;
                reseeded.push(c);
            }
        }
        reseeded
    }
}

/// Runs single-pass K-means over an entire matrix: seed on a prefix
/// sample, stream all rows once, then re-assign every row against the
/// final centres (so the output assignment is consistent).
pub fn single_pass_kmeans(
    data: &Matrix,
    k: usize,
    seed_sample_size: usize,
    rng: &mut impl Rng,
) -> (Matrix, Vec<u32>) {
    single_pass_kmeans_with(data, k, seed_sample_size, rng, &ParallelExecutor::single())
}

/// [`single_pass_kmeans`] with an explicit executor. The MacQueen
/// streaming pass is inherently sequential (each observation moves a
/// centre), so only the final full re-assignment — the other O(n·k·d)
/// half — runs in parallel. Bit-identical at any worker count.
pub fn single_pass_kmeans_with(
    data: &Matrix,
    k: usize,
    seed_sample_size: usize,
    rng: &mut impl Rng,
    exec: &ParallelExecutor,
) -> (Matrix, Vec<u32>) {
    let _span = hignn_obs::span("cluster.single_pass_kmeans");
    hignn_obs::counter_add("cluster.single_pass_points", data.rows() as u64);
    assert!(data.rows() > 0, "single_pass_kmeans: empty data");
    let sample_rows = seed_sample_size.clamp(k.min(data.rows()), data.rows());
    let sample_idx: Vec<usize> = (0..sample_rows).collect();
    let sample = data.gather_rows(&sample_idx);
    let mut skm = SequentialKMeans::new(&sample, k, rng);
    for i in 0..data.rows() {
        skm.observe(data.row(i));
    }
    let (assignment, _inertia) = assign_all(&skm.centroids, data, exec);
    (skm.centroids, assignment)
}

/// Mini-batch K-means (Sculley 2010): repeated small batches with
/// per-centre learning rates.
pub fn minibatch_kmeans(
    data: &Matrix,
    k: usize,
    batch_size: usize,
    num_batches: usize,
    rng: &mut impl Rng,
) -> (Matrix, Vec<u32>) {
    minibatch_kmeans_with(data, k, batch_size, num_batches, rng, &ParallelExecutor::single())
}

/// [`minibatch_kmeans`] with an explicit executor: each batch's
/// assignment step and the final full re-assignment run data-parallel
/// over fixed chunks; the centre updates (sequential running means)
/// stay on the calling thread. Bit-identical at any worker count.
pub fn minibatch_kmeans_with(
    data: &Matrix,
    k: usize,
    batch_size: usize,
    num_batches: usize,
    rng: &mut impl Rng,
    exec: &ParallelExecutor,
) -> (Matrix, Vec<u32>) {
    assert!(data.rows() > 0, "minibatch_kmeans: empty data");
    let k = k.min(data.rows());
    let mut centroids = kmeans_pp_seed(data, k, rng);
    let mut counts = vec![0usize; k];
    for _ in 0..num_batches {
        let batch: Vec<usize> = (0..batch_size.min(data.rows()))
            .map(|_| rng.gen_range(0..data.rows()))
            .collect();
        // Cache assignments (parallel) then apply updates (sequential).
        let assigned: Vec<usize> = exec
            .map_chunks(batch.len(), ROW_CHUNK, |_, range| {
                batch[range]
                    .iter()
                    .map(|&i| nearest_centroid(&centroids, data.row(i)).0)
                    .collect::<Vec<usize>>()
            })
            .into_iter()
            .flatten()
            .collect();
        for (&i, &c) in batch.iter().zip(&assigned) {
            counts[c] += 1;
            let lr = 1.0 / counts[c] as f32;
            let row = centroids.row_mut(c);
            for (cv, &pv) in row.iter_mut().zip(data.row(i)) {
                *cv += lr * (pv - *cv);
            }
        }
    }
    let (assignment, _inertia) = assign_all(&centroids, data, exec);
    (centroids, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs(rng: &mut StdRng, n_per: usize) -> Matrix {
        let mut data = Matrix::zeros(2 * n_per, 2);
        for i in 0..n_per {
            data.set(i, 0, rng.gen_range(-1.0..1.0));
            data.set(i, 1, rng.gen_range(-1.0..1.0));
            data.set(n_per + i, 0, 20.0 + rng.gen_range(-1.0..1.0));
            data.set(n_per + i, 1, 20.0 + rng.gen_range(-1.0..1.0));
        }
        data
    }

    #[test]
    fn single_pass_separates_blobs() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = two_blobs(&mut rng, 200);
        let (_c, assignment) = single_pass_kmeans(&data, 2, 64, &mut rng);
        // All of blob A in one cluster, all of blob B in the other.
        let a = assignment[0];
        assert!(assignment[..200].iter().all(|&x| x == a));
        assert!(assignment[200..].iter().all(|&x| x != a));
    }

    #[test]
    fn sequential_running_mean_is_exact_for_one_cluster() {
        let mut rng = StdRng::seed_from_u64(2);
        let seed = Matrix::from_vec(1, 1, vec![0.0]);
        let mut skm = SequentialKMeans::new(&seed, 1, &mut rng);
        for v in [2.0f32, 4.0, 6.0] {
            skm.observe(&[v]);
        }
        // Running mean starting from seed 0: after 2,4,6 -> mean of [2,4,6]
        // because the first observation resets toward (0 + (2-0)/1) = 2.
        assert!((skm.centroids().get(0, 0) - 4.0).abs() < 1e-5);
        assert_eq!(skm.counts(), &[3]);
    }

    #[test]
    fn minibatch_separates_blobs() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = two_blobs(&mut rng, 150);
        let (_c, assignment) = minibatch_kmeans(&data, 2, 32, 50, &mut rng);
        let a = assignment[0];
        assert!(assignment[..150].iter().all(|&x| x == a));
        assert!(assignment[150..].iter().all(|&x| x != a));
    }

    #[test]
    fn assign_does_not_mutate() {
        let mut rng = StdRng::seed_from_u64(4);
        let seed = Matrix::from_vec(2, 1, vec![0.0, 10.0]);
        let skm = SequentialKMeans::new(&seed, 2, &mut rng);
        let before = skm.centroids().clone();
        let _ = skm.assign(&[3.0]);
        assert_eq!(skm.centroids(), &before);
    }

    #[test]
    fn worker_count_does_not_change_bits() {
        let mut rng = StdRng::seed_from_u64(8);
        let data = two_blobs(&mut rng, 400); // 800 rows > ROW_CHUNK
        let (c1, a1) = single_pass_kmeans(&data, 2, 64, &mut StdRng::seed_from_u64(5));
        let (m1, b1) = minibatch_kmeans(&data, 2, 32, 20, &mut StdRng::seed_from_u64(6));
        for workers in [2, 4] {
            let exec = ParallelExecutor::new(workers);
            let (c, a) =
                single_pass_kmeans_with(&data, 2, 64, &mut StdRng::seed_from_u64(5), &exec);
            assert_eq!(a, a1, "single-pass workers = {workers}");
            assert_eq!(c.data(), c1.data(), "single-pass workers = {workers}");
            let (m, b) =
                minibatch_kmeans_with(&data, 2, 32, 20, &mut StdRng::seed_from_u64(6), &exec);
            assert_eq!(b, b1, "mini-batch workers = {workers}");
            assert_eq!(m.data(), m1.data(), "mini-batch workers = {workers}");
        }
    }

    #[test]
    fn nan_row_is_routed_deterministically_and_never_poisons_a_centre() {
        // Regression: a NaN-feature point used to win the running-mean
        // update for whatever centre the broken comparator picked,
        // turning that centroid NaN and corrupting every later
        // assignment. Now it is assigned NaN-last (centre 0) and the
        // estimator state is untouched.
        let mut skm = SequentialKMeans::from_state(
            Matrix::from_vec(2, 2, vec![0.0, 0.0, 10.0, 10.0]),
            vec![4, 4],
        );
        let before = skm.centroids().clone();
        let c = skm.observe(&[f32::NAN, 1.0]);
        assert_eq!(c, 0, "NaN-last routing is deterministic");
        assert_eq!(skm.centroids(), &before, "centre must not absorb NaN");
        assert_eq!(skm.counts(), &[4, 4], "counts must not change");
        // assign() follows the same policy.
        assert_eq!(skm.assign(&[f32::NAN, f32::NAN]), 0);
        // Later finite points still stream normally.
        let c = skm.observe(&[9.0, 9.0]);
        assert_eq!(c, 1);
        assert_eq!(skm.counts(), &[4, 5]);
        assert!(skm.centroids().row(1).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn dead_cluster_keeps_seed_until_reseed_or_report() {
        // Centre 2 is seeded far from all data: it never receives a
        // point, keeps its seed position bit-exactly (documented
        // invariant), and is reported by dead_clusters().
        let mut skm = SequentialKMeans::from_state(
            Matrix::from_vec(3, 1, vec![0.0, 10.0, 1000.0]),
            vec![0, 0, 0],
        );
        let data = Matrix::from_vec(6, 1, vec![0.0, 1.0, -1.0, 9.0, 10.0, 11.0]);
        for i in 0..data.rows() {
            skm.observe(data.row(i));
        }
        assert_eq!(skm.counts()[2], 0);
        assert_eq!(skm.centroids().get(2, 0), 1000.0, "dead centre keeps its seed");
        assert_eq!(skm.dead_clusters(), vec![2]);

        // Reseed policy: the dead centre relocates onto the data point
        // farthest from its nearest centre and comes alive.
        let reseeded = skm.reseed_dead(&data);
        assert_eq!(reseeded, vec![2]);
        assert_eq!(skm.counts()[2], 1);
        let moved_to = skm.centroids().get(2, 0);
        assert!(data.data().contains(&moved_to), "reseed lands on a real point");
        assert!(skm.dead_clusters().is_empty());
        // Deterministic: same state, same choice.
        let mut again = SequentialKMeans::from_state(
            Matrix::from_vec(3, 1, vec![0.0, 10.0, 1000.0]),
            vec![0, 0, 0],
        );
        for i in 0..data.rows() {
            again.observe(data.row(i));
        }
        again.reseed_dead(&data);
        assert_eq!(again.centroids().data(), skm.centroids().data());
    }

    #[test]
    fn handles_k_greater_than_sample() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = Matrix::from_vec(3, 1, vec![0.0, 5.0, 10.0]);
        let (c, assignment) = single_pass_kmeans(&data, 10, 10, &mut rng);
        assert!(c.rows() <= 3);
        assert_eq!(assignment.len(), 3);
    }
}
