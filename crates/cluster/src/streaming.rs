//! Single-pass and mini-batch K-means.
//!
//! The paper's complexity analysis (Section III.D) states: *"For the first
//! layer of Kmeans, we use the single-pass version which estimates the
//! cluster centers with a single pass over all data and is appropriate for
//! large-scale clustering"*, giving `O(M*K_u + N*K_i)`. [`SequentialKMeans`]
//! implements that estimator (MacQueen-style running means); a mini-batch
//! variant is provided for the middle ground between single-pass and full
//! Lloyd.

use crate::kmeans::{assign_all, kmeans_pp_seed, nearest_centroid};
use hignn_tensor::parallel::{ParallelExecutor, ROW_CHUNK};
use hignn_tensor::Matrix;
use rand::Rng;

/// MacQueen sequential (single-pass) K-means.
///
/// Centres are seeded with k-means++ on a bounded prefix sample, then each
/// point is assigned to its nearest centre exactly once and the centre is
/// moved by the running-mean rule `c += (x - c) / n_c`.
#[derive(Clone, Debug)]
pub struct SequentialKMeans {
    centroids: Matrix,
    counts: Vec<usize>,
}

impl SequentialKMeans {
    /// Seeds `k` centres from `seed_sample` (k-means++).
    pub fn new(seed_sample: &Matrix, k: usize, rng: &mut impl Rng) -> Self {
        let centroids = kmeans_pp_seed(seed_sample, k, rng);
        let counts = vec![0usize; centroids.rows()];
        SequentialKMeans { centroids, counts }
    }

    /// Consumes one point, returning its assigned cluster.
    pub fn observe(&mut self, point: &[f32]) -> u32 {
        let (c, _) = nearest_centroid(&self.centroids, point);
        self.counts[c] += 1;
        let lr = 1.0 / self.counts[c] as f32;
        let row = self.centroids.row_mut(c);
        for (cv, &pv) in row.iter_mut().zip(point) {
            *cv += lr * (pv - *cv);
        }
        c as u32
    }

    /// Current centroids.
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Points consumed per cluster.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Assigns a point without updating centres.
    pub fn assign(&self, point: &[f32]) -> u32 {
        nearest_centroid(&self.centroids, point).0 as u32
    }
}

/// Runs single-pass K-means over an entire matrix: seed on a prefix
/// sample, stream all rows once, then re-assign every row against the
/// final centres (so the output assignment is consistent).
pub fn single_pass_kmeans(
    data: &Matrix,
    k: usize,
    seed_sample_size: usize,
    rng: &mut impl Rng,
) -> (Matrix, Vec<u32>) {
    single_pass_kmeans_with(data, k, seed_sample_size, rng, &ParallelExecutor::single())
}

/// [`single_pass_kmeans`] with an explicit executor. The MacQueen
/// streaming pass is inherently sequential (each observation moves a
/// centre), so only the final full re-assignment — the other O(n·k·d)
/// half — runs in parallel. Bit-identical at any worker count.
pub fn single_pass_kmeans_with(
    data: &Matrix,
    k: usize,
    seed_sample_size: usize,
    rng: &mut impl Rng,
    exec: &ParallelExecutor,
) -> (Matrix, Vec<u32>) {
    let _span = hignn_obs::span("cluster.single_pass_kmeans");
    hignn_obs::counter_add("cluster.single_pass_points", data.rows() as u64);
    assert!(data.rows() > 0, "single_pass_kmeans: empty data");
    let sample_rows = seed_sample_size.clamp(k.min(data.rows()), data.rows());
    let sample_idx: Vec<usize> = (0..sample_rows).collect();
    let sample = data.gather_rows(&sample_idx);
    let mut skm = SequentialKMeans::new(&sample, k, rng);
    for i in 0..data.rows() {
        skm.observe(data.row(i));
    }
    let (assignment, _inertia) = assign_all(&skm.centroids, data, exec);
    (skm.centroids, assignment)
}

/// Mini-batch K-means (Sculley 2010): repeated small batches with
/// per-centre learning rates.
pub fn minibatch_kmeans(
    data: &Matrix,
    k: usize,
    batch_size: usize,
    num_batches: usize,
    rng: &mut impl Rng,
) -> (Matrix, Vec<u32>) {
    minibatch_kmeans_with(data, k, batch_size, num_batches, rng, &ParallelExecutor::single())
}

/// [`minibatch_kmeans`] with an explicit executor: each batch's
/// assignment step and the final full re-assignment run data-parallel
/// over fixed chunks; the centre updates (sequential running means)
/// stay on the calling thread. Bit-identical at any worker count.
pub fn minibatch_kmeans_with(
    data: &Matrix,
    k: usize,
    batch_size: usize,
    num_batches: usize,
    rng: &mut impl Rng,
    exec: &ParallelExecutor,
) -> (Matrix, Vec<u32>) {
    assert!(data.rows() > 0, "minibatch_kmeans: empty data");
    let k = k.min(data.rows());
    let mut centroids = kmeans_pp_seed(data, k, rng);
    let mut counts = vec![0usize; k];
    for _ in 0..num_batches {
        let batch: Vec<usize> = (0..batch_size.min(data.rows()))
            .map(|_| rng.gen_range(0..data.rows()))
            .collect();
        // Cache assignments (parallel) then apply updates (sequential).
        let assigned: Vec<usize> = exec
            .map_chunks(batch.len(), ROW_CHUNK, |_, range| {
                batch[range]
                    .iter()
                    .map(|&i| nearest_centroid(&centroids, data.row(i)).0)
                    .collect::<Vec<usize>>()
            })
            .into_iter()
            .flatten()
            .collect();
        for (&i, &c) in batch.iter().zip(&assigned) {
            counts[c] += 1;
            let lr = 1.0 / counts[c] as f32;
            let row = centroids.row_mut(c);
            for (cv, &pv) in row.iter_mut().zip(data.row(i)) {
                *cv += lr * (pv - *cv);
            }
        }
    }
    let (assignment, _inertia) = assign_all(&centroids, data, exec);
    (centroids, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs(rng: &mut StdRng, n_per: usize) -> Matrix {
        let mut data = Matrix::zeros(2 * n_per, 2);
        for i in 0..n_per {
            data.set(i, 0, rng.gen_range(-1.0..1.0));
            data.set(i, 1, rng.gen_range(-1.0..1.0));
            data.set(n_per + i, 0, 20.0 + rng.gen_range(-1.0..1.0));
            data.set(n_per + i, 1, 20.0 + rng.gen_range(-1.0..1.0));
        }
        data
    }

    #[test]
    fn single_pass_separates_blobs() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = two_blobs(&mut rng, 200);
        let (_c, assignment) = single_pass_kmeans(&data, 2, 64, &mut rng);
        // All of blob A in one cluster, all of blob B in the other.
        let a = assignment[0];
        assert!(assignment[..200].iter().all(|&x| x == a));
        assert!(assignment[200..].iter().all(|&x| x != a));
    }

    #[test]
    fn sequential_running_mean_is_exact_for_one_cluster() {
        let mut rng = StdRng::seed_from_u64(2);
        let seed = Matrix::from_vec(1, 1, vec![0.0]);
        let mut skm = SequentialKMeans::new(&seed, 1, &mut rng);
        for v in [2.0f32, 4.0, 6.0] {
            skm.observe(&[v]);
        }
        // Running mean starting from seed 0: after 2,4,6 -> mean of [2,4,6]
        // because the first observation resets toward (0 + (2-0)/1) = 2.
        assert!((skm.centroids().get(0, 0) - 4.0).abs() < 1e-5);
        assert_eq!(skm.counts(), &[3]);
    }

    #[test]
    fn minibatch_separates_blobs() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = two_blobs(&mut rng, 150);
        let (_c, assignment) = minibatch_kmeans(&data, 2, 32, 50, &mut rng);
        let a = assignment[0];
        assert!(assignment[..150].iter().all(|&x| x == a));
        assert!(assignment[150..].iter().all(|&x| x != a));
    }

    #[test]
    fn assign_does_not_mutate() {
        let mut rng = StdRng::seed_from_u64(4);
        let seed = Matrix::from_vec(2, 1, vec![0.0, 10.0]);
        let skm = SequentialKMeans::new(&seed, 2, &mut rng);
        let before = skm.centroids().clone();
        let _ = skm.assign(&[3.0]);
        assert_eq!(skm.centroids(), &before);
    }

    #[test]
    fn worker_count_does_not_change_bits() {
        let mut rng = StdRng::seed_from_u64(8);
        let data = two_blobs(&mut rng, 400); // 800 rows > ROW_CHUNK
        let (c1, a1) = single_pass_kmeans(&data, 2, 64, &mut StdRng::seed_from_u64(5));
        let (m1, b1) = minibatch_kmeans(&data, 2, 32, 20, &mut StdRng::seed_from_u64(6));
        for workers in [2, 4] {
            let exec = ParallelExecutor::new(workers);
            let (c, a) =
                single_pass_kmeans_with(&data, 2, 64, &mut StdRng::seed_from_u64(5), &exec);
            assert_eq!(a, a1, "single-pass workers = {workers}");
            assert_eq!(c.data(), c1.data(), "single-pass workers = {workers}");
            let (m, b) =
                minibatch_kmeans_with(&data, 2, 32, 20, &mut StdRng::seed_from_u64(6), &exec);
            assert_eq!(b, b1, "mini-batch workers = {workers}");
            assert_eq!(m.data(), m1.data(), "mini-batch workers = {workers}");
        }
    }

    #[test]
    fn handles_k_greater_than_sample() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = Matrix::from_vec(3, 1, vec![0.0, 5.0, 10.0]);
        let (c, assignment) = single_pass_kmeans(&data, 10, 10, &mut rng);
        assert!(c.rows() <= 3);
        assert_eq!(assignment.len(), 3);
    }
}
