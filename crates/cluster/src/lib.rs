//! # hignn-cluster
//!
//! Clustering substrate for the HiGNN reproduction:
//!
//! * [`mod@kmeans`] — k-means++ seeded Lloyd iterations, the deterministic
//!   clustering step `K_u`/`K_i` of Algorithm 1, plus the cluster-feature
//!   averaging rule (mean member embedding).
//! * [`streaming`] — the single-pass K-means the paper's complexity
//!   analysis assumes (`O(M·K_u + N·K_i)`), and a mini-batch variant.
//! * [`ch_index`] — Calinski-Harabasz index (Eq. 13) and CH-guided
//!   cluster-count selection for taxonomy construction.
//! * [`agglomerative`] — average-linkage HAC (NN-chain) used by the SHOAL
//!   baseline.
//!
//! ## Example
//!
//! ```
//! use hignn_cluster::kmeans::{kmeans, KMeansConfig};
//! use hignn_tensor::Matrix;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let data = Matrix::from_vec(4, 1, vec![0.0, 0.1, 9.9, 10.0]);
//! let res = kmeans(&data, &KMeansConfig::new(2), &mut rng);
//! assert_eq!(res.assignment[0], res.assignment[1]);
//! assert_ne!(res.assignment[0], res.assignment[2]);
//! ```

#![warn(missing_docs)]

pub mod agglomerative;
pub mod ch_index;
pub mod kmeans;
pub mod streaming;

pub use agglomerative::{average_linkage, Dendrogram, Merge};
pub use ch_index::{calinski_harabasz, select_k_by_ch};
pub use kmeans::{kmeans, mean_by_cluster, KMeansConfig, KMeansResult};
pub use streaming::{minibatch_kmeans, single_pass_kmeans, SequentialKMeans};
