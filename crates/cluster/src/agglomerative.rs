//! Average-linkage hierarchical agglomerative clustering (UPGMA).
//!
//! The SHOAL baseline (Li et al., VLDB 2019 — the paper's Section V
//! comparator) builds its taxonomy by *"performing parallel hierarchical
//! agglomerative clustering"* over fixed query/item embeddings. This
//! module implements HAC with the nearest-neighbour-chain algorithm, which
//! is O(n²) time for reducible linkages such as average linkage, plus
//! dendrogram cuts by cluster count or distance threshold.

use hignn_tensor::Matrix;

/// One merge step of a dendrogram. Cluster labels: leaves are `0..n`,
/// merge `i` creates cluster `n + i`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Merge {
    /// First merged cluster label.
    pub a: usize,
    /// Second merged cluster label.
    pub b: usize,
    /// Average-linkage distance at which the merge happened.
    pub distance: f64,
    /// Size of the merged cluster.
    pub size: usize,
}

/// The full merge history of an HAC run.
#[derive(Clone, Debug)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of leaves (input points).
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Merge steps in ascending distance order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the dendrogram into exactly `k` clusters (clamped to
    /// `1..=n_leaves`), returning a leaf assignment with contiguous ids.
    pub fn cut_k(&self, k: usize) -> Vec<u32> {
        let k = k.clamp(1, self.n_leaves.max(1));
        let merges_to_apply = self.n_leaves.saturating_sub(k);
        self.cut_after(merges_to_apply)
    }

    /// Cuts at a distance threshold: all merges with
    /// `distance <= threshold` are applied.
    pub fn cut_distance(&self, threshold: f64) -> Vec<u32> {
        let count = self.merges.iter().take_while(|m| m.distance <= threshold).count();
        self.cut_after(count)
    }

    fn cut_after(&self, merge_count: usize) -> Vec<u32> {
        let mut uf = UnionFind::new(self.n_leaves);
        for m in self.merges.iter().take(merge_count) {
            // Labels >= n_leaves refer to earlier merges; union-find over
            // leaves reproduces them because merges are applied in order.
            let ra = self.representative(m.a);
            let rb = self.representative(m.b);
            uf.union(ra, rb);
        }
        // Relabel roots to contiguous ids.
        let mut label = vec![u32::MAX; self.n_leaves];
        let mut next = 0u32;
        let mut out = Vec::with_capacity(self.n_leaves);
        for v in 0..self.n_leaves {
            let root = uf.find(v);
            if label[root] == u32::MAX {
                label[root] = next;
                next += 1;
            }
            out.push(label[root]);
        }
        out
    }

    /// Any leaf contained in cluster `label`.
    fn representative(&self, label: usize) -> usize {
        let mut l = label;
        while l >= self.n_leaves {
            l = self.merges[l - self.n_leaves].a;
        }
        l
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect() }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

/// Runs average-linkage HAC over the rows of `data` using the
/// nearest-neighbour-chain algorithm (O(n²) time, O(n²) memory).
///
/// # Panics
/// Panics on empty input.
pub fn average_linkage(data: &Matrix) -> Dendrogram {
    let n = data.rows();
    assert!(n > 0, "average_linkage: empty data");
    if n == 1 {
        return Dendrogram { n_leaves: 1, merges: Vec::new() };
    }

    // Slot-based distance matrix; merging reuses slot `a` and retires `b`.
    let mut dist = vec![0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = data.row_sq_dist(i, data.row(j)).sqrt();
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    let mut active = vec![true; n];
    let mut sizes = vec![1usize; n];
    // Dendrogram label currently stored in each slot.
    let mut labels: Vec<usize> = (0..n).collect();
    let mut merges: Vec<Merge> = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = n;

    while remaining > 1 {
        if chain.is_empty() {
            let start = active.iter().position(|&a| a).unwrap();
            chain.push(start);
        }
        loop {
            let current = *chain.last().unwrap();
            // Nearest active neighbour of `current` (ties: smallest slot).
            let mut best = usize::MAX;
            let mut best_d = f32::MAX;
            for cand in 0..n {
                if cand == current || !active[cand] {
                    continue;
                }
                let d = dist[current * n + cand];
                if d < best_d {
                    best_d = d;
                    best = cand;
                }
            }
            debug_assert!(best != usize::MAX);
            if chain.len() >= 2 && chain[chain.len() - 2] == best {
                // Reciprocal nearest neighbours: merge.
                let b = chain.pop().unwrap();
                let a = chain.pop().unwrap();
                let (sa, sb) = (sizes[a], sizes[b]);
                let new_size = sa + sb;
                merges.push(Merge {
                    a: labels[a],
                    b: labels[b],
                    distance: best_d as f64,
                    size: new_size,
                });
                // Lance-Williams update for average linkage into slot a.
                for k in 0..n {
                    if !active[k] || k == a || k == b {
                        continue;
                    }
                    let dak = dist[a * n + k];
                    let dbk = dist[b * n + k];
                    let d = (sa as f32 * dak + sb as f32 * dbk) / new_size as f32;
                    dist[a * n + k] = d;
                    dist[k * n + a] = d;
                }
                active[b] = false;
                sizes[a] = new_size;
                labels[a] = n + merges.len() - 1;
                remaining -= 1;
                break;
            }
            chain.push(best);
        }
    }
    // NN-chain does not emit merges in globally ascending distance order;
    // sort (stable) so dendrogram cuts behave monotonically. Labels refer
    // to merge order, so relabel after sorting.
    let mut order: Vec<usize> = (0..merges.len()).collect();
    order.sort_by(|&x, &y| merges[x].distance.partial_cmp(&merges[y].distance).unwrap());
    let mut relabel = vec![0usize; merges.len()];
    for (new_idx, &old_idx) in order.iter().enumerate() {
        relabel[old_idx] = new_idx;
    }
    let remap = |l: usize| if l < n { l } else { n + relabel[l - n] };
    let mut sorted: Vec<Merge> = order
        .iter()
        .map(|&old| {
            let m = merges[old];
            Merge { a: remap(m.a), b: remap(m.b), distance: m.distance, size: m.size }
        })
        .collect();
    // After sorting, a merge may reference a later merge only if distances
    // tie; fix any such inversions by swapping (stable for our cuts).
    for i in 0..sorted.len() {
        let max_ref = n + i;
        if sorted[i].a >= max_ref || sorted[i].b >= max_ref {
            // Find the referenced merge and ensure ordering by distance is
            // still respected — with exact ties we conservatively keep the
            // original (pre-sort) order, which cannot create inversions.
            // This branch is only reachable on exact distance ties.
            sorted = merges
                .iter()
                .map(|m| Merge { a: m.a, b: m.b, distance: m.distance, size: m.size })
                .collect();
            break;
        }
    }
    Dendrogram { n_leaves: n, merges: sorted }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(vals: &[f32]) -> Matrix {
        Matrix::from_vec(vals.len(), 1, vals.to_vec())
    }

    #[test]
    fn merges_closest_first() {
        let data = points(&[0.0, 1.0, 10.0]);
        let dend = average_linkage(&data);
        assert_eq!(dend.n_leaves(), 3);
        assert_eq!(dend.merges().len(), 2);
        // First merge: points 0 and 1 at distance 1.
        let first = dend.merges()[0];
        assert!((first.distance - 1.0).abs() < 1e-6);
        assert_eq!(first.size, 2);
    }

    #[test]
    fn cut_k_produces_requested_clusters() {
        let data = points(&[0.0, 0.5, 10.0, 10.5, 100.0]);
        let dend = average_linkage(&data);
        let c3 = dend.cut_k(3);
        assert_eq!(c3[0], c3[1]);
        assert_eq!(c3[2], c3[3]);
        assert_ne!(c3[0], c3[2]);
        assert_ne!(c3[0], c3[4]);
        assert_ne!(c3[2], c3[4]);
        let c1 = dend.cut_k(1);
        assert!(c1.iter().all(|&x| x == 0));
        let c5 = dend.cut_k(5);
        let mut distinct = c5.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn cut_distance_threshold() {
        let data = points(&[0.0, 1.0, 10.0]);
        let dend = average_linkage(&data);
        let near = dend.cut_distance(2.0);
        assert_eq!(near[0], near[1]);
        assert_ne!(near[0], near[2]);
        let all = dend.cut_distance(100.0);
        assert!(all.iter().all(|&x| x == all[0]));
    }

    #[test]
    fn average_linkage_distance_grows() {
        let data = points(&[0.0, 1.0, 2.0, 3.0, 10.0, 11.0]);
        let dend = average_linkage(&data);
        let distances: Vec<f64> = dend.merges().iter().map(|m| m.distance).collect();
        for w in distances.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "distances not sorted: {distances:?}");
        }
    }

    #[test]
    fn single_point() {
        let dend = average_linkage(&points(&[5.0]));
        assert_eq!(dend.n_leaves(), 1);
        assert_eq!(dend.cut_k(1), vec![0]);
    }

    #[test]
    fn two_dimensional_blobs() {
        // Two blobs of 4 in 2-D.
        let mut data = Matrix::zeros(8, 2);
        for i in 0..4 {
            data.set(i, 0, i as f32 * 0.1);
            data.set(4 + i, 0, 50.0 + i as f32 * 0.1);
            data.set(4 + i, 1, 50.0);
        }
        let dend = average_linkage(&data);
        let cut = dend.cut_k(2);
        assert!(cut[..4].iter().all(|&c| c == cut[0]));
        assert!(cut[4..].iter().all(|&c| c == cut[4]));
        assert_ne!(cut[0], cut[4]);
    }

    #[test]
    fn cut_k_clamps() {
        let data = points(&[0.0, 1.0]);
        let dend = average_linkage(&data);
        assert_eq!(dend.cut_k(0), vec![0, 0]); // clamped to 1
        let c = dend.cut_k(10); // clamped to 2
        assert_ne!(c[0], c[1]);
    }
}
