//! Measurement helpers for the serving engine: latency/QPS sweeps over
//! thread counts and recall-vs-beam-width sweeps against the exhaustive
//! oracle. Shared by the `serve` bench bin and the CLI's `serve-bench`
//! subcommand so both report identical numbers.

use crate::engine::{BeamWidth, TopKRequest};
use crate::model::ServeModel;
use hignn::error::HignnError;
use hignn_tensor::ParallelExecutor;
use std::time::Instant;

/// Latency/throughput of one thread count over a fixed request stream.
#[derive(Clone, Copy, Debug)]
pub struct LatencyPoint {
    /// Serving threads used.
    pub threads: usize,
    /// Requests answered.
    pub requests: usize,
    /// Median per-request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-request latency, microseconds (nearest-rank).
    pub p99_us: f64,
    /// Requests per second over the whole batch (wall clock).
    pub qps: f64,
}

/// Recall@k of one beam width against exhaustive scoring.
#[derive(Clone, Copy, Debug)]
pub struct RecallPoint {
    /// The beam width measured.
    pub beam: BeamWidth,
    /// Mean recall@k over all measured users, in `[0, 1]`.
    pub recall: f64,
}

/// Nearest-rank percentile (`p` in `[0, 100]`) of a sorted sample, or
/// `None` for an empty sample — a percentile of nothing is undefined,
/// and the old `assert!` here turned a zero-request sweep into a panic
/// backtrace instead of a structured exit-2 error.
fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Fraction of `exact`'s items that `approx` recovered.
pub fn recall_at_k(approx: &[u32], exact: &[u32]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let hits = exact.iter().filter(|id| approx.contains(id)).count();
    hits as f64 / exact.len() as f64
}

/// Times `requests` through [`ServeModel::serve_batch`] on `threads`
/// workers. Each request is timed individually inside its worker (for
/// the percentiles); QPS uses the whole batch's wall clock.
///
/// An empty request stream is a configuration error
/// ([`HignnError::Config`], exit 2): percentiles of zero samples are
/// undefined.
///
/// # Panics
/// Panics if any request in the stream is invalid — the sweep measures
/// the happy path, so a malformed stream is a harness bug.
pub fn latency_sweep(
    model: &ServeModel,
    requests: &[TopKRequest],
    threads: usize,
) -> Result<LatencyPoint, HignnError> {
    if requests.is_empty() {
        return Err(HignnError::Config(
            "latency_sweep: empty request stream (need at least 1 request for percentiles)".into(),
        ));
    }
    let exec = ParallelExecutor::new(threads);
    let t0 = Instant::now();
    let timed = exec.map(requests.len(), |i| {
        let r = &requests[i];
        let t = Instant::now();
        let out = model.top_k(r.user, r.k, r.beam);
        (t.elapsed().as_secs_f64() * 1e6, out)
    });
    let wall = t0.elapsed().as_secs_f64();
    let mut lat: Vec<f64> = Vec::with_capacity(timed.len());
    for (us, out) in timed {
        out.expect("latency_sweep: invalid request in the stream");
        lat.push(us);
    }
    lat.sort_by(f64::total_cmp);
    // The guard above makes the sample non-empty.
    let p50_us = percentile(&lat, 50.0).expect("non-empty sample");
    let p99_us = percentile(&lat, 99.0).expect("non-empty sample");
    Ok(LatencyPoint {
        threads,
        requests: requests.len(),
        p50_us,
        p99_us,
        qps: requests.len() as f64 / wall.max(1e-9),
    })
}

/// Mean recall@k at `beam` over `users`, against [`ServeModel::exhaustive_top_k`].
///
/// An empty user sample is a configuration error
/// ([`HignnError::Config`], exit 2).
///
/// # Panics
/// Panics on an invalid `(user, k)` — see [`latency_sweep`].
pub fn recall_sweep(
    model: &ServeModel,
    users: &[usize],
    k: usize,
    beam: BeamWidth,
) -> Result<RecallPoint, HignnError> {
    if users.is_empty() {
        return Err(HignnError::Config(
            "recall_sweep: no users to measure (need at least 1)".into(),
        ));
    }
    let mut total = 0.0;
    for &user in users {
        let approx: Vec<u32> = model
            .top_k(user, k, beam)
            .expect("recall_sweep: invalid request")
            .iter()
            .map(|s| s.item)
            .collect();
        let exact: Vec<u32> = model
            .exhaustive_top_k(user, k)
            .expect("recall_sweep: invalid request")
            .iter()
            .map(|s| s.item)
            .collect();
        total += recall_at_k(&approx, &exact);
    }
    Ok(RecallPoint { beam, recall: total / users.len() as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&s, 50.0), Some(50.0));
        assert_eq!(percentile(&s, 99.0), Some(99.0));
        assert_eq!(percentile(&s, 100.0), Some(100.0));
        assert_eq!(percentile(&[7.0], 50.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    fn percentile_of_empty_sample_is_none_not_panic() {
        // Regression: this was an `assert!` panic before.
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[], 99.0), None);
    }

    #[test]
    fn empty_sweeps_are_config_errors_not_panics() {
        use hignn::stack::{Hierarchy, Level};
        use hignn_graph::{Assignment, BipartiteGraph};
        use hignn_tensor::Matrix;
        let level1 = Level {
            user_embeddings: Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
            item_embeddings: Matrix::from_vec(2, 2, vec![1.0, 0.0, -1.0, 0.0]),
            user_assignment: Assignment::new(vec![0, 0], 1),
            item_assignment: Assignment::new(vec![0, 1], 2),
            coarsened: BipartiteGraph::from_edges(1, 2, vec![(0, 0, 1.0), (0, 1, 1.0)]),
            epoch_losses: vec![],
        };
        let h = Hierarchy::from_parts(vec![level1], 2, 2).unwrap();
        let model = ServeModel::from_hierarchy(h, 0);
        // Regression: both used to die on `assert!` backtraces; now a
        // structured Config error drives exit code 2.
        let err = latency_sweep(&model, &[], 1).unwrap_err();
        assert!(matches!(err, HignnError::Config(_)), "{err}");
        assert_eq!(err.exit_code(), 2);
        let err = recall_sweep(&model, &[], 5, BeamWidth::Finite(2)).unwrap_err();
        assert!(matches!(err, HignnError::Config(_)), "{err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn recall_counts_overlap() {
        assert_eq!(recall_at_k(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(recall_at_k(&[1, 2, 9], &[1, 2, 3]), 2.0 / 3.0);
        assert_eq!(recall_at_k(&[], &[1]), 0.0);
        assert_eq!(recall_at_k(&[], &[]), 1.0);
    }
}
