//! Coarse-to-fine beam search and exact exhaustive scoring.

use crate::model::ServeModel;
use hignn::error::HignnError;
use hignn_tensor::ParallelExecutor;
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// Default `k` for top-k requests.
pub const DEFAULT_TOP_K: usize = 10;

/// Default beam width (per tier). Wide enough that recall@10 stays high
/// on the synthetic benchmarks (see `BENCH_serve.json`), narrow enough
/// that descent visits a small fraction of the catalogue.
pub const DEFAULT_BEAM_WIDTH: BeamWidth = BeamWidth::Finite(16);

/// How many branches survive at each tier of the descent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BeamWidth {
    /// Keep the best `n` nodes per tier (`n >= 1`).
    Finite(usize),
    /// Prune nothing. Guaranteed bitwise identical to
    /// [`ServeModel::exhaustive_top_k`].
    Infinite,
}

impl BeamWidth {
    /// Applies the width to a ranked frontier.
    fn truncate<T>(self, ranked: &mut Vec<T>) {
        if let BeamWidth::Finite(n) = self {
            ranked.truncate(n);
        }
    }
}

impl FromStr for BeamWidth {
    type Err = String;

    fn from_str(s: &str) -> Result<BeamWidth, String> {
        match s {
            "inf" | "infinite" => Ok(BeamWidth::Infinite),
            _ => match s.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(BeamWidth::Finite(n)),
                _ => Err(format!(
                    "beam width must be a positive integer or `inf`, got `{s}`"
                )),
            },
        }
    }
}

impl fmt::Display for BeamWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeamWidth::Finite(n) => write!(f, "{n}"),
            BeamWidth::Infinite => write!(f, "inf"),
        }
    }
}

/// One top-k request (used by [`ServeModel::serve_batch`]).
#[derive(Clone, Copy, Debug)]
pub struct TopKRequest {
    /// Original user id.
    pub user: usize,
    /// How many items to return.
    pub k: usize,
    /// Per-tier beam width.
    pub beam: BeamWidth,
}

/// One ranked recommendation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredItem {
    /// Original item id.
    pub item: u32,
    /// The Eq. 7 logit.
    pub score: f32,
}

/// The total ranking order: finite scores before NaN (a NaN score can
/// never outrank a real one — `total_cmp` alone would put positive NaN
/// *above* +inf), then score descending by `total_cmp` (deterministic
/// on every bit pattern), then item/node id ascending as the tie-break.
fn rank_cmp(a: &ScoredItem, b: &ScoredItem) -> Ordering {
    match (a.score.is_nan(), b.score.is_nan()) {
        (false, true) => Ordering::Less,
        (true, false) => Ordering::Greater,
        _ => b.score.total_cmp(&a.score).then(a.item.cmp(&b.item)),
    }
}

/// Scores `ids` against `feats` rows and returns them fully ranked.
fn rank(model: &ServeModel, user_row: &[f32], feats: &hignn_tensor::Matrix, ids: &[u32]) -> Vec<ScoredItem> {
    let scores = model.scorer().score_against(user_row, feats, ids);
    let mut ranked: Vec<ScoredItem> = ids
        .iter()
        .zip(&scores)
        .map(|(&item, &score)| ScoredItem { item, score })
        .collect();
    ranked.sort_unstable_by(rank_cmp);
    ranked
}

impl ServeModel {
    fn validate(&self, user: usize, k: usize) -> Result<(), HignnError> {
        if k == 0 {
            return Err(HignnError::Config("top-k request: k must be at least 1, got 0".into()));
        }
        if k > self.num_items() {
            return Err(HignnError::Config(format!(
                "top-k request: k = {k} exceeds the {} items in the model",
                self.num_items()
            )));
        }
        if user >= self.num_users() {
            return Err(HignnError::Config(format!(
                "top-k request: unknown user {user} (model covers users 0..{})",
                self.num_users()
            )));
        }
        Ok(())
    }

    /// Answers one top-k request by coarse-to-fine beam search.
    ///
    /// Tier `L` cluster representatives are scored first; the best
    /// `beam` nodes survive and their children are scored next, down to
    /// tier 1; the surviving leaves are re-ranked *exactly* on their
    /// true `z_i^H` features. `BeamWidth::Infinite` prunes nothing and
    /// is bitwise identical to [`ServeModel::exhaustive_top_k`].
    ///
    /// Errors with [`HignnError::Config`] (exit 2) on `k == 0`,
    /// `k > num_items`, or an unknown user — a malformed request never
    /// panics the serving loop.
    pub fn top_k(
        &self,
        user: usize,
        k: usize,
        beam: BeamWidth,
    ) -> Result<Vec<ScoredItem>, HignnError> {
        self.validate(user, k)?;
        let user_row = self.user_features().row(user);
        // Descend tier L -> 1, pruning to the beam at every tier.
        let mut frontier: Vec<u32> = (0..self.node_reps(self.num_levels()).rows() as u32).collect();
        for tier in (1..=self.num_levels()).rev() {
            let mut ranked = rank(self, user_row, self.node_reps(tier), &frontier);
            beam.truncate(&mut ranked);
            let kids = self.children(tier);
            frontier = ranked
                .iter()
                .flat_map(|node| kids[node.item as usize].iter().copied())
                .collect();
        }
        // Exact Eq. 7 re-rank of the surviving leaves.
        let mut leaves = rank(self, user_row, self.item_features(), &frontier);
        leaves.truncate(k);
        Ok(leaves)
    }

    /// Scores **every** item exactly and returns the top k — the oracle
    /// the beam search is tested against, and the `recall@k` reference.
    pub fn exhaustive_top_k(&self, user: usize, k: usize) -> Result<Vec<ScoredItem>, HignnError> {
        self.validate(user, k)?;
        let user_row = self.user_features().row(user);
        let all: Vec<u32> = (0..self.num_items() as u32).collect();
        let mut ranked = rank(self, user_row, self.item_features(), &all);
        ranked.truncate(k);
        Ok(ranked)
    }

    /// Serves a batch of requests on `exec`'s worker threads.
    ///
    /// Results come back in request order, one per request; each is the
    /// same value `top_k` would return inline, so for a fixed request
    /// order N threads are bitwise identical to 1 (the executor's
    /// standing determinism contract).
    pub fn serve_batch(
        &self,
        requests: &[TopKRequest],
        exec: &ParallelExecutor,
    ) -> Vec<Result<Vec<ScoredItem>, HignnError>> {
        exec.map(requests.len(), |i| {
            let r = &requests[i];
            self.top_k(r.user, r.k, r.beam)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beam_width_parses_and_displays() {
        assert_eq!("8".parse::<BeamWidth>().unwrap(), BeamWidth::Finite(8));
        assert_eq!("inf".parse::<BeamWidth>().unwrap(), BeamWidth::Infinite);
        assert_eq!("infinite".parse::<BeamWidth>().unwrap(), BeamWidth::Infinite);
        for bad in ["0", "-3", "wide", "", "1.5"] {
            assert!(bad.parse::<BeamWidth>().is_err(), "`{bad}` must be rejected");
        }
        assert_eq!(BeamWidth::Finite(16).to_string(), "16");
        assert_eq!(BeamWidth::Infinite.to_string(), "inf");
    }

    #[test]
    fn ranking_order_is_nan_safe_and_deterministic() {
        let mut items = [
            ScoredItem { item: 5, score: f32::NAN },
            ScoredItem { item: 1, score: 1.0 },
            ScoredItem { item: 4, score: f32::NEG_INFINITY },
            ScoredItem { item: 3, score: 1.0 },
            ScoredItem { item: 0, score: f32::INFINITY },
            ScoredItem { item: 2, score: -2.0 },
        ];
        items.sort_unstable_by(rank_cmp);
        let order: Vec<u32> = items.iter().map(|s| s.item).collect();
        // +inf first, ties by id, -inf still ahead of NaN, NaN dead last.
        assert_eq!(order, vec![0, 1, 3, 2, 4, 5]);
    }
}
