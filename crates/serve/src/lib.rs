//! # hignn-serve
//!
//! Online top-k retrieval over a trained HiGNN hierarchy — the paper's
//! serving endgame (Sec. IV, Table 4 online A/B), built as
//! *hierarchy-as-index*: the cluster tree the training stack already
//! produces doubles as an approximate-nearest-neighbour index.
//!
//! ## How a request is answered
//!
//! [`ServeModel`] loads an HGHI model **read-only** through the
//! zero-copy section reader (`hignn::io::read_hierarchy_bytes`): the
//! file is read into memory once, every CRC-framed section is verified
//! and parsed in place, and each level is decoded exactly once at load
//! — no mutation, no re-decode per request. At load it precomputes
//!
//! * the hierarchical user/item embeddings `z_u^H` / `z_i^H`
//!   (concatenated per-level cluster-chain embeddings),
//! * per-tier *representative features* for every internal cluster
//!   node — recursive child-means of the tier below, so a tier-`l`
//!   node's feature shares its exact ancestor-chain components and
//!   summarises its descendants in the finer components, and
//! * per-tier children lists for descending the tree.
//!
//! [`ServeModel::top_k`] then runs **coarse-to-fine beam search**:
//! score the level-`L` cluster representatives with the Eq. 7 MLP
//! scorer, keep the best [`BeamWidth`] nodes, descend into their
//! children, repeat down to tier 1, and finally re-rank the surviving
//! leaf items *exactly* on their true `z_i^H` features.
//!
//! ## The oracle contract
//!
//! The engine's approximation knob is anchored to an exhaustive oracle:
//!
//! * **Beam width ∞ is bitwise identical to exhaustive scoring.** With
//!   nothing pruned the leaf candidate set is every item; per-row MLP
//!   inference is bitwise independent of batch composition (proven
//!   against the differential oracle in PR 3/4), and ranking uses one
//!   total order — so `top_k(∞)` returns exactly
//!   [`ServeModel::exhaustive_top_k`]'s items *and score bits*.
//! * **Recall@k is non-decreasing in beam width.** Survivors at width
//!   `w` are a prefix of survivors at width `w+1` at every tier, so
//!   candidate sets are nested and exact leaf re-ranking can only gain
//!   true top-k items.
//!
//! Both properties are enforced under proptest in
//! `tests/tests/serve_oracle.rs`.
//!
//! ## Determinism scope
//!
//! [`ServeModel::serve_batch`] threads requests through the workspace's
//! `ParallelExecutor`; results come back in request order, and for a
//! fixed request order N serving threads return bitwise the same
//! responses as 1. Ranking is NaN-safe: a non-finite score can never
//! outrank a real one or poison the sort (`f32::total_cmp` plus an
//! explicit NaN-last class, the PR 5 fix pattern).

#![warn(missing_docs)]

pub mod bench;
pub mod engine;
pub mod model;
pub mod scorer;

pub use bench::{latency_sweep, recall_sweep, LatencyPoint, RecallPoint};
pub use engine::{BeamWidth, ScoredItem, TopKRequest, DEFAULT_BEAM_WIDTH, DEFAULT_TOP_K};
pub use model::ServeModel;
pub use scorer::{Scorer, DEFAULT_SCORER_SEED};
