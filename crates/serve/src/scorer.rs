//! The Eq. 7 ranking head.
//!
//! The paper scores a (user, item) pair by feeding the concatenated
//! hierarchical embeddings through a fully connected net with leaky
//! ReLU hidden layers and a linear logit output (Eq. 7 / Fig. 2). The
//! serving scorer is exactly that shape over
//! `concat(z_u^H, z_i^H)`, with weights drawn deterministically from a
//! seed: the HGHI format carries no trained head, so the head is part
//! of the *serving configuration* — the same `(model, scorer seed)`
//! pair always ranks identically, on every thread count and platform
//! the workspace's bitwise kernel proofs cover.
//!
//! Internal tree nodes are scored by the **same** MLP on their
//! representative features (see [`crate::model::ServeModel`]), which is
//! what makes coarse scores predictive of the leaf scores beneath them
//! — the TDM-style trick that lets the beam prune branches instead of
//! items.

use hignn_tensor::nn::{Activation, Mlp};
use hignn_tensor::param::ParamStore;
use hignn_tensor::{MathMode, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default seed for the scorer head. Fixed so that a model file alone
/// determines the ranking; override with `--scorer-seed`.
pub const DEFAULT_SCORER_SEED: u64 = 2020;

/// Hidden widths of the serving head (input and the 1-logit output are
/// implied). Smaller than the paper's offline 256/128/64 predictor —
/// the serving head trades capacity for per-request latency.
const HIDDEN: [usize; 2] = [64, 32];

/// The deterministic Eq. 7 MLP ranking head.
#[derive(Clone)]
pub struct Scorer {
    store: ParamStore,
    mlp: Mlp,
    user_dim: usize,
    item_dim: usize,
    math: MathMode,
}

impl std::fmt::Debug for Scorer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scorer")
            .field("user_dim", &self.user_dim)
            .field("item_dim", &self.item_dim)
            .field("hidden", &HIDDEN)
            .finish_non_exhaustive()
    }
}

impl Scorer {
    /// Builds the head for the given feature dimensions, initialising
    /// weights from `seed` (He-uniform hidden layers, Xavier output,
    /// zero biases — the workspace's standard `Mlp` initialisation).
    pub fn new(user_dim: usize, item_dim: usize, seed: u64) -> Scorer {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = [user_dim + item_dim, HIDDEN[0], HIDDEN[1], 1];
        let mlp = Mlp::new(&mut store, "serve.scorer", &dims, Activation::LeakyRelu, &mut rng);
        Scorer { store, mlp, user_dim, item_dim, math: MathMode::Bitwise }
    }

    /// Selects the math tier for inference. Bitwise (the default) keeps
    /// the oracle-proven scalar kernels; FastMath vectorises them. Both
    /// tiers keep scores per-row bitwise independent — only the
    /// within-row accumulation order differs between tiers.
    pub fn with_math(mut self, math: MathMode) -> Scorer {
        self.math = math;
        self
    }

    /// The math tier this scorer runs in.
    pub fn math(&self) -> MathMode {
        self.math
    }

    /// Input dimensionality (`user_dim + item_dim`).
    pub fn in_dim(&self) -> usize {
        self.user_dim + self.item_dim
    }

    /// Scores `user_row` against the feature rows `feats[id]` for each
    /// id in `ids`, returning one logit per id in order.
    ///
    /// Scores are **per-row bitwise independent**: the MLP inference
    /// kernels accumulate each output row in isolation (proven bitwise
    /// against the naive differential oracle), so an item's score never
    /// depends on which other candidates share its batch. That row
    /// independence is what makes beam-∞ scoring bitwise identical to
    /// exhaustive scoring.
    pub fn score_against(&self, user_row: &[f32], feats: &Matrix, ids: &[u32]) -> Vec<f32> {
        assert_eq!(user_row.len(), self.user_dim, "scorer: user feature dim mismatch");
        assert_eq!(feats.cols(), self.item_dim, "scorer: candidate feature dim mismatch");
        let mut x = Matrix::zeros(ids.len(), self.in_dim());
        let mut row = vec![0.0f32; self.in_dim()];
        row[..self.user_dim].copy_from_slice(user_row);
        for (r, &id) in ids.iter().enumerate() {
            row[self.user_dim..].copy_from_slice(feats.row(id as usize));
            x.set_row(r, &row);
        }
        let logits = self.mlp.infer_mode(&self.store, &x, self.math);
        (0..ids.len()).map(|r| logits.get(r, 0)).collect()
    }

    /// Exports the head's weights as plain `(weight rows, bias)` pairs,
    /// one per layer — the representation the differential-oracle test
    /// feeds to `hignn_oracle::mlp::forward` to cross-check exhaustive
    /// scores bitwise without sharing any inference code.
    pub fn export_layers(&self) -> Vec<(Vec<Vec<f32>>, Vec<f32>)> {
        self.mlp
            .layers()
            .iter()
            .map(|layer| {
                let w = self.store.get(layer.weight());
                let rows = (0..w.rows()).map(|r| w.row(r).to_vec()).collect();
                let b = self.store.get(layer.bias()).row(0).to_vec();
                (rows, b)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_scores_different_seed_different_scores() {
        let a = Scorer::new(4, 4, 7);
        let b = Scorer::new(4, 4, 7);
        let c = Scorer::new(4, 4, 8);
        let feats = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f32 * 0.25 - 1.0);
        let user = [0.5, -0.25, 1.0, 0.125];
        let ids = [0u32, 1, 2];
        let sa = a.score_against(&user, &feats, &ids);
        let sb = b.score_against(&user, &feats, &ids);
        let sc = c.score_against(&user, &feats, &ids);
        assert_eq!(
            sa.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            sb.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_ne!(sa, sc, "different seeds must give a different head");
    }

    #[test]
    fn scores_are_batch_independent() {
        let s = Scorer::new(3, 3, 1);
        let feats = Matrix::from_fn(5, 3, |i, j| ((i + 1) as f32).powi(j as i32 + 1) * 0.1);
        let user = [0.25, -0.5, 0.75];
        let all = s.score_against(&user, &feats, &[0, 1, 2, 3, 4]);
        // Each candidate scored alone, and in a shuffled subset, gets
        // exactly the same bits.
        for id in 0..5u32 {
            let solo = s.score_against(&user, &feats, &[id]);
            assert_eq!(solo[0].to_bits(), all[id as usize].to_bits(), "item {id}");
        }
        let subset = s.score_against(&user, &feats, &[4, 1, 3]);
        assert_eq!(subset[0].to_bits(), all[4].to_bits());
        assert_eq!(subset[1].to_bits(), all[1].to_bits());
        assert_eq!(subset[2].to_bits(), all[3].to_bits());
    }

    #[test]
    fn fastmath_scores_stay_close_and_batch_independent() {
        let bit = Scorer::new(4, 4, 7);
        let fast = Scorer::new(4, 4, 7).with_math(MathMode::FastMath);
        let feats = Matrix::from_fn(9, 4, |i, j| ((i * 4 + j) as f32).sin() * 0.5);
        let user = [0.5, -0.25, 1.0, 0.125];
        let ids: Vec<u32> = (0..9).collect();
        let sb = bit.score_against(&user, &feats, &ids);
        let sf = fast.score_against(&user, &feats, &ids);
        for (i, (b, f)) in sb.iter().zip(&sf).enumerate() {
            assert!((b - f).abs() < 1e-4, "item {i}: bitwise {b} vs fast {f}");
        }
        // FastMath keeps per-row independence: only the within-row
        // accumulation order differs from Bitwise, so a candidate's
        // score cannot depend on which other candidates share a batch.
        for id in [0u32, 4, 8] {
            let solo = fast.score_against(&user, &feats, &[id]);
            assert_eq!(solo[0].to_bits(), sf[id as usize].to_bits(), "item {id}");
        }
        // And it is self-deterministic bit-for-bit.
        let again = fast.score_against(&user, &feats, &ids);
        assert_eq!(
            sf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            again.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn exported_layers_have_the_head_shape() {
        let s = Scorer::new(6, 6, 0);
        let layers = s.export_layers();
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0].0.len(), 12); // in_dim rows
        assert_eq!(layers[0].0[0].len(), 64);
        assert_eq!(layers[1].0.len(), 64);
        assert_eq!(layers[1].0[0].len(), 32);
        assert_eq!(layers[2].0.len(), 32);
        assert_eq!(layers[2].0[0].len(), 1);
        assert_eq!(layers[2].1.len(), 1);
    }
}
