//! The read-only serving view of a trained hierarchy.

use crate::scorer::Scorer;
use hignn::error::HignnError;
use hignn::ingest::HierarchyDelta;
use hignn::io::read_hierarchy_bytes;
use hignn::stack::Hierarchy;
use hignn_tensor::{MathMode, Matrix};
use std::path::Path;

/// A trained HGHI model prepared for serving.
///
/// Loading decodes the file once (zero-copy CRC-verified sections, see
/// `hignn::io::read_hierarchy_bytes`) and precomputes everything a
/// request needs, so [`crate::engine`]'s per-request path only ever
/// reads borrowed rows:
///
/// * `user_features` / `item_features` — the paper's `z_u^H` / `z_i^H`
///   hierarchical embeddings for every original user and item;
/// * `node_reps[l-1]` — representative features for every tier-`l`
///   cluster node, recursively the mean of its children's features
///   (tier 0 = the exact leaf `z_i^H`). A node therefore carries its
///   *own* ancestor-chain components exactly (children share them) and
///   descendant summaries in the finer components;
/// * `children[l-1]` — the tier-`l-1` children of every tier-`l` node.
///
/// The struct is immutable after construction and `Sync`, so one model
/// serves any number of threads.
#[derive(Clone)]
pub struct ServeModel {
    hierarchy: Hierarchy,
    user_features: Matrix,
    item_features: Matrix,
    node_reps: Vec<Matrix>,
    children: Vec<Vec<Vec<u32>>>,
    scorer: Scorer,
}

impl std::fmt::Debug for ServeModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeModel")
            .field("num_users", &self.num_users())
            .field("num_items", &self.num_items())
            .field("num_levels", &self.num_levels())
            .field("scorer", &self.scorer)
            .finish_non_exhaustive()
    }
}

impl ServeModel {
    /// Loads a model file read-only and prepares it for serving with
    /// the given scorer seed.
    ///
    /// A truncated or CRC-corrupt file surfaces as
    /// [`HignnError::Corrupt`] (exit code 4); a missing or unreadable
    /// file as [`HignnError::Io`] (exit code 3). Never panics on bad
    /// bytes.
    pub fn load(path: impl AsRef<Path>, scorer_seed: u64) -> Result<ServeModel, HignnError> {
        Self::load_with_math(path, scorer_seed, MathMode::Bitwise)
    }

    /// [`ServeModel::load`] with an explicit math tier for the scorer.
    pub fn load_with_math(
        path: impl AsRef<Path>,
        scorer_seed: u64,
        math: MathMode,
    ) -> Result<ServeModel, HignnError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| HignnError::io_path(path, e))?;
        let hierarchy = read_hierarchy_bytes(&bytes).map_err(|e| HignnError::io_path(path, e))?;
        Ok(Self::from_hierarchy_with_math(hierarchy, scorer_seed, math))
    }

    /// Prepares an in-memory hierarchy for serving (the load path after
    /// decoding; also the entry point for tests and benches that train
    /// in process).
    pub fn from_hierarchy(hierarchy: Hierarchy, scorer_seed: u64) -> ServeModel {
        Self::from_hierarchy_with_math(hierarchy, scorer_seed, MathMode::Bitwise)
    }

    /// [`ServeModel::from_hierarchy`] with an explicit math tier for
    /// the scorer.
    pub fn from_hierarchy_with_math(
        hierarchy: Hierarchy,
        scorer_seed: u64,
        math: MathMode,
    ) -> ServeModel {
        let user_features = hierarchy.hierarchical_users();
        let item_features = hierarchy.hierarchical_items();
        let num_levels = hierarchy.num_levels();
        let item_dim = hierarchy.item_dim();

        let mut children = Vec::with_capacity(num_levels);
        let mut node_reps: Vec<Matrix> = Vec::with_capacity(num_levels);
        for l in 0..num_levels {
            let assignment = &hierarchy.levels()[l].item_assignment;
            let members = assignment.members();
            // Representative feature of a tier-(l+1) node: the mean of
            // its children's representatives, accumulated in child-id
            // order (deterministic). Empty clusters keep a zero row.
            let finer: &Matrix = if l == 0 { &item_features } else { &node_reps[l - 1] };
            let mut reps = Matrix::zeros(members.len(), item_dim);
            for (node, kids) in members.iter().enumerate() {
                if kids.is_empty() {
                    continue;
                }
                let row = reps.row_mut(node);
                for &kid in kids {
                    for (acc, &v) in row.iter_mut().zip(finer.row(kid as usize)) {
                        *acc += v;
                    }
                }
                let inv = 1.0 / kids.len() as f32;
                for acc in row.iter_mut() {
                    *acc *= inv;
                }
            }
            node_reps.push(reps);
            children.push(members);
        }

        let scorer = Scorer::new(hierarchy.user_dim(), item_dim, scorer_seed).with_math(math);
        ServeModel { hierarchy, user_features, item_features, node_reps, children, scorer }
    }

    /// Number of users the model covers.
    pub fn num_users(&self) -> usize {
        self.hierarchy.num_users()
    }

    /// Number of items the model covers.
    pub fn num_items(&self) -> usize {
        self.hierarchy.num_items()
    }

    /// Number of hierarchy levels (= prunable tiers above the leaves).
    pub fn num_levels(&self) -> usize {
        self.hierarchy.num_levels()
    }

    /// The decoded hierarchy (read-only).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Precomputed `z_u^H` rows (`num_users x user_dim`).
    pub fn user_features(&self) -> &Matrix {
        &self.user_features
    }

    /// Precomputed `z_i^H` rows (`num_items x item_dim`).
    pub fn item_features(&self) -> &Matrix {
        &self.item_features
    }

    /// Representative features of tier-`l` nodes (1-based tier).
    pub fn node_reps(&self, l: usize) -> &Matrix {
        &self.node_reps[l - 1]
    }

    /// Children (at tier `l-1`) of every tier-`l` node (1-based tier;
    /// tier-0 children are original item ids).
    pub fn children(&self, l: usize) -> &[Vec<u32>] {
        &self.children[l - 1]
    }

    /// The ranking head.
    pub fn scorer(&self) -> &Scorer {
        &self.scorer
    }

    /// Catches this replica up to an ingesting writer by applying a
    /// [`HierarchyDelta`] **in place** — no file reload, no full
    /// feature recomputation.
    ///
    /// The hierarchy patch itself is delegated to
    /// [`hignn::ingest::apply_delta`] (which validates everything,
    /// including base/patched fingerprints, before mutating). The
    /// precomputed serving state is then maintained incrementally:
    ///
    /// * `z^H` rows are appended for new vertices and recomputed only
    ///   for moved ones (an unmoved vertex's ancestor chain is
    ///   untouched, so its row is already exact);
    /// * tier-1 children lists are re-derived from the patched level-1
    ///   assignment; upper tiers are structurally frozen;
    /// * representative features are recomputed only for *dirty* tier-1
    ///   nodes (clusters that gained or lost a member), and dirtiness
    ///   propagates up the item tree.
    ///
    /// The result is bitwise identical to rebuilding the model from the
    /// patched hierarchy (asserted by the integration suite). On any
    /// error the model is untouched.
    pub fn apply_delta(&mut self, delta: &HierarchyDelta) -> Result<(), HignnError> {
        let old_users = self.hierarchy.num_users();
        let old_items = self.hierarchy.num_items();
        // Old cluster of every moved item, captured before the patch
        // (a moved *new* item's pre-move cluster is its arrival record).
        let l0_items = &self.hierarchy.levels()[0].item_assignment;
        let old_move_clusters: Vec<u32> = delta
            .item_moves
            .iter()
            .map(|&(v, _)| {
                if (v as usize) < old_items {
                    l0_items.cluster_of(v as usize)
                } else {
                    delta.new_items[v as usize - old_items].cluster
                }
            })
            .collect();

        hignn::ingest::apply_delta(&mut self.hierarchy, delta)?;

        // --- z^H rows: append new vertices, recompute moved ones. ---
        let append_and_patch = |features: &mut Matrix,
                                old_n: usize,
                                new_n: usize,
                                moves: &[(u32, u32)],
                                row_of: &dyn Fn(usize) -> Vec<f32>| {
            let (rows, cols) = features.shape();
            debug_assert_eq!(rows, old_n);
            let mut data = std::mem::replace(features, Matrix::zeros(0, 0)).into_data();
            for v in old_n..new_n {
                data.extend_from_slice(&row_of(v));
            }
            let mut m = Matrix::from_vec(new_n, cols, data);
            for &(v, _) in moves {
                m.set_row(v as usize, &row_of(v as usize));
            }
            *features = m;
        };
        let h = &self.hierarchy;
        append_and_patch(
            &mut self.user_features,
            old_users,
            h.num_users(),
            &delta.user_moves,
            &|u| h.hierarchical_user(u),
        );
        append_and_patch(
            &mut self.item_features,
            old_items,
            h.num_items(),
            &delta.item_moves,
            &|i| h.hierarchical_item(i),
        );

        // --- Item tree: tier-1 membership changed; upper tiers are
        // structurally frozen. ---
        self.children[0] = self.hierarchy.levels()[0].item_assignment.members();

        // Tier-1 nodes are dirty if they gained a new item or were on
        // either end of a move.
        let k1 = self.children[0].len();
        let mut dirty = vec![false; k1];
        let final_items = self.hierarchy.levels()[0].item_assignment.as_slice();
        for i in old_items..self.hierarchy.num_items() {
            dirty[final_items[i] as usize] = true;
        }
        for (&(_, to), &from) in delta.item_moves.iter().zip(&old_move_clusters) {
            dirty[to as usize] = true;
            dirty[from as usize] = true;
        }
        // Recompute dirty representatives tier by tier, propagating
        // dirtiness through the (frozen) upper assignments. The
        // accumulation is the exact from-scratch loop, so clean and
        // dirty rows alike match a full rebuild bitwise.
        for l in 0..self.node_reps.len() {
            let (lower, upper) = self.node_reps.split_at_mut(l);
            let finer: &Matrix = if l == 0 { &self.item_features } else { &lower[l - 1] };
            let reps = &mut upper[0];
            for (node, is_dirty) in dirty.iter().enumerate() {
                if !is_dirty {
                    continue;
                }
                let kids = &self.children[l][node];
                let row = reps.row_mut(node);
                row.fill(0.0);
                if kids.is_empty() {
                    continue;
                }
                for &kid in kids {
                    for (acc, &v) in row.iter_mut().zip(finer.row(kid as usize)) {
                        *acc += v;
                    }
                }
                let inv = 1.0 / kids.len() as f32;
                for acc in row.iter_mut() {
                    *acc *= inv;
                }
            }
            if l + 1 < self.node_reps.len() {
                let parent_of = &self.hierarchy.levels()[l + 1].item_assignment;
                let mut up = vec![false; self.children[l + 1].len()];
                for (node, &is_dirty) in dirty.iter().enumerate() {
                    if is_dirty {
                        up[parent_of.cluster_of(node) as usize] = true;
                    }
                }
                dirty = up;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hignn::stack::Level;
    use hignn_graph::{Assignment, BipartiteGraph};

    /// A tiny hand-built 2-level hierarchy: 2 users, 4 items, item tree
    /// 4 leaves -> 2 tier-1 clusters -> 1 tier-2 root. All values
    /// dyadic so means are exact.
    fn tiny() -> Hierarchy {
        let level1 = Level {
            user_embeddings: Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
            item_embeddings: Matrix::from_vec(
                4,
                2,
                vec![1.0, 0.0, 0.5, 0.5, -1.0, 0.0, -0.5, -0.5],
            ),
            user_assignment: Assignment::new(vec![0, 0], 1),
            item_assignment: Assignment::new(vec![0, 0, 1, 1], 2),
            coarsened: BipartiteGraph::from_edges(1, 2, vec![(0, 0, 1.0), (0, 1, 1.0)]),
            epoch_losses: vec![],
        };
        let level2 = Level {
            user_embeddings: Matrix::from_vec(1, 2, vec![0.25, 0.25]),
            item_embeddings: Matrix::from_vec(2, 2, vec![0.75, 0.25, -0.75, -0.25]),
            user_assignment: Assignment::new(vec![0], 1),
            item_assignment: Assignment::new(vec![0, 0], 1),
            coarsened: BipartiteGraph::from_edges(1, 1, vec![(0, 0, 2.0)]),
            epoch_losses: vec![],
        };
        Hierarchy::from_parts(vec![level1, level2], 2, 4).unwrap()
    }

    #[test]
    fn representatives_are_descendant_means_with_exact_ancestor_chain() {
        let m = ServeModel::from_hierarchy(tiny(), 0);
        assert_eq!(m.num_levels(), 2);
        // Leaf features: z_i^H = [level-1 emb | tier-1 ancestor's level-2 emb].
        assert_eq!(m.item_features().row(0), &[1.0, 0.0, 0.75, 0.25]);
        assert_eq!(m.item_features().row(2), &[-1.0, 0.0, -0.75, -0.25]);
        // Tier-1 node 0 = mean of leaves 0,1; its level-2 component is
        // its own embedding (children share it).
        assert_eq!(m.node_reps(1).row(0), &[0.75, 0.25, 0.75, 0.25]);
        assert_eq!(m.node_reps(1).row(1), &[-0.75, -0.25, -0.75, -0.25]);
        // Tier-2 root = mean of the two tier-1 reps.
        assert_eq!(m.node_reps(2).row(0), &[0.0, 0.0, 0.0, 0.0]);
        // Children lists descend the tree.
        assert_eq!(m.children(1), &[vec![0, 1], vec![2, 3]]);
        assert_eq!(m.children(2), &[vec![0, 1]]);
    }

    #[test]
    fn load_roundtrip_and_corruption() {
        let h = tiny();
        let dir = std::env::temp_dir().join(format!("hignn_serve_model_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.hgh");
        hignn::io::save_hierarchy(&path, &h).unwrap();
        let m = ServeModel::load(&path, 3).unwrap();
        assert_eq!(m.num_users(), 2);
        assert_eq!(m.num_items(), 4);

        // Corrupt one payload byte: structured Corrupt error, exit 4.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = ServeModel::load(&path, 3).unwrap_err();
        assert!(matches!(err, HignnError::Corrupt { .. }), "{err}");
        assert_eq!(err.exit_code(), 4);

        // Missing file: I/O error, exit 3.
        let err = ServeModel::load(dir.join("absent.hgh"), 3).unwrap_err();
        assert_eq!(err.exit_code(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
