//! SHOAL — the paper's deployed taxonomy baseline (Li et al., VLDB 2019).
//!
//! *"SHOAL ... also considers a hierarchical graph-based strategy but only
//! uses a well-defined metric to calculate the query-item embeddings.
//! SHOAL doesn't apply a trainable graph neural network to learn the
//! non-linear interactions"* (Section V.D). We implement it as
//! average-linkage hierarchical agglomerative clustering over *fixed*
//! embeddings (mean word2vec vectors), cut at the same per-level cluster
//! counts HiGNN uses (the paper's fair-comparison setting).

use hignn_cluster::agglomerative::average_linkage;
use hignn_tensor::Matrix;

/// A SHOAL taxonomy: item topic assignments per level (finest first).
#[derive(Clone, Debug)]
pub struct ShoalTaxonomy {
    /// `item_levels[l-1][i]` is item `i`'s topic at level `l`.
    pub item_levels: Vec<Vec<u32>>,
    /// The per-level cluster counts actually produced.
    pub level_counts: Vec<usize>,
}

impl ShoalTaxonomy {
    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.item_levels.len()
    }

    /// Item assignment at `level` (1-based).
    pub fn item_assignment(&self, level: usize) -> &[u32] {
        &self.item_levels[level - 1]
    }
}

/// Builds the SHOAL taxonomy by cutting one agglomerative dendrogram over
/// `item_feats` at each cluster count in `cluster_counts` (finest first,
/// strictly decreasing is expected but not required).
pub fn build_shoal(item_feats: &Matrix, cluster_counts: &[usize]) -> ShoalTaxonomy {
    assert!(!cluster_counts.is_empty(), "build_shoal: no levels requested");
    let dendrogram = average_linkage(item_feats);
    let mut item_levels = Vec::with_capacity(cluster_counts.len());
    let mut level_counts = Vec::with_capacity(cluster_counts.len());
    for &k in cluster_counts {
        let cut = dendrogram.cut_k(k);
        let actual = cut.iter().copied().max().map_or(0, |m| m as usize + 1);
        item_levels.push(cut);
        level_counts.push(actual);
    }
    ShoalTaxonomy { item_levels, level_counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_feats() -> Matrix {
        // Three 1-D blobs of 6 points each.
        let mut data = Vec::new();
        for c in 0..3 {
            for i in 0..6 {
                data.push(c as f32 * 50.0 + i as f32 * 0.1);
            }
        }
        Matrix::from_vec(18, 1, data)
    }

    #[test]
    fn cuts_match_requested_counts() {
        let tax = build_shoal(&blob_feats(), &[6, 3, 2]);
        assert_eq!(tax.num_levels(), 3);
        assert_eq!(tax.level_counts, vec![6, 3, 2]);
        assert_eq!(tax.item_assignment(1).len(), 18);
    }

    #[test]
    fn level_3_recovers_blobs_nested_in_level_2() {
        let tax = build_shoal(&blob_feats(), &[3, 2]);
        let fine = tax.item_assignment(1);
        // Finest cut at 3 recovers the 3 blobs exactly.
        for b in 0..3 {
            let first = fine[b * 6];
            assert!(fine[b * 6..(b + 1) * 6].iter().all(|&x| x == first));
        }
        // Coarser level merges blobs (2 clusters), and is a coarsening of
        // the finer one: same fine cluster -> same coarse cluster.
        let coarse = tax.item_assignment(2);
        for i in 0..18 {
            for j in 0..18 {
                if fine[i] == fine[j] {
                    assert_eq!(coarse[i], coarse[j]);
                }
            }
        }
    }

    #[test]
    fn single_level() {
        let tax = build_shoal(&blob_feats(), &[4]);
        assert_eq!(tax.num_levels(), 1);
        assert!(tax.level_counts[0] <= 4);
    }
}
