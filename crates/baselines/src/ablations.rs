//! Ablation comparators built from a HiGNN hierarchy (paper
//! Section IV.B.2):
//!
//! * **GE** — single-level graph embedding: use only level 1 of the
//!   hierarchy.
//! * **CGNN** — community GNN (Li et al., IJCAI 2019): hierarchical user
//!   embeddings fixed to 2 levels, no item hierarchy.
//! * **HUP-only** — hierarchical user preference, no item hierarchy.
//! * **HIA-only** — hierarchical item attractiveness, no user hierarchy.
//!
//! Each variant is expressed as a truncation of the full hierarchy's
//! embeddings and consumed by the same predictor, mirroring the paper's
//! framing of every baseline as a special case of HiGNN.

use hignn::stack::Hierarchy;
use hignn_tensor::Matrix;

/// Concatenated user embeddings of the first `levels` hierarchy levels.
pub fn truncated_user_embeddings(h: &Hierarchy, levels: usize) -> Matrix {
    let levels = levels.clamp(1, h.num_levels());
    let dim: usize = h.levels()[..levels]
        .iter()
        .map(|l| l.user_embeddings.cols())
        .sum();
    let mut out = Matrix::zeros(h.num_users(), dim);
    for u in 0..h.num_users() {
        let chain = h.user_chain(u);
        let mut off = 0;
        for (level, &v) in h.levels()[..levels].iter().zip(&chain) {
            let src = level.user_embeddings.row(v);
            out.row_mut(u)[off..off + src.len()].copy_from_slice(src);
            off += src.len();
        }
    }
    out
}

/// Concatenated item embeddings of the first `levels` hierarchy levels.
pub fn truncated_item_embeddings(h: &Hierarchy, levels: usize) -> Matrix {
    let levels = levels.clamp(1, h.num_levels());
    let dim: usize = h.levels()[..levels]
        .iter()
        .map(|l| l.item_embeddings.cols())
        .sum();
    let mut out = Matrix::zeros(h.num_items(), dim);
    for i in 0..h.num_items() {
        let chain = h.item_chain(i);
        let mut off = 0;
        for (level, &v) in h.levels()[..levels].iter().zip(&chain) {
            let src = level.item_embeddings.row(v);
            out.row_mut(i)[off..off + src.len()].copy_from_slice(src);
            off += src.len();
        }
    }
    out
}

/// The embedding blocks each comparator feeds the predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Full HiGNN: all levels on both sides.
    HiGnn,
    /// GE: level 1 only, both sides.
    Ge,
    /// CGNN: user levels 1-2 only, no item embeddings (the paper: "Both
    /// HUP-only and CGNN consider user hierarchical embedding without
    /// item hierarchical embedding. Because CGNN fixes the level to 2, it
    /// is relatively worse than HUP-only").
    Cgnn,
    /// HUP-only: all user levels, no item embeddings.
    HupOnly,
    /// HIA-only: all item levels, no user embeddings.
    HiaOnly,
    /// DIN-equivalent input: no graph embeddings at all (level 0).
    Din,
}

impl Variant {
    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Variant::HiGnn => "HiGNN",
            Variant::Ge => "GE",
            Variant::Cgnn => "CGNN",
            Variant::HupOnly => "HUP-only",
            Variant::HiaOnly => "HIA-only",
            Variant::Din => "DIN",
        }
    }

    /// Builds `(user_embeddings, item_embeddings)` for this variant from a
    /// trained hierarchy (`None` = the block is omitted).
    pub fn embeddings(self, h: &Hierarchy) -> (Option<Matrix>, Option<Matrix>) {
        match self {
            Variant::HiGnn => (
                Some(truncated_user_embeddings(h, h.num_levels())),
                Some(truncated_item_embeddings(h, h.num_levels())),
            ),
            Variant::Ge => {
                (Some(truncated_user_embeddings(h, 1)), Some(truncated_item_embeddings(h, 1)))
            }
            Variant::Cgnn => (Some(truncated_user_embeddings(h, 2)), None),
            Variant::HupOnly => (Some(truncated_user_embeddings(h, h.num_levels())), None),
            Variant::HiaOnly => (None, Some(truncated_item_embeddings(h, h.num_levels()))),
            Variant::Din => (None, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hignn::prelude::*;
    use hignn_graph::{BipartiteGraph, SamplingMode};
    use hignn_tensor::init;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn hierarchy() -> Hierarchy {
        let mut rng = StdRng::seed_from_u64(2);
        let mut edges = Vec::new();
        for u in 0..20u32 {
            for _ in 0..4 {
                edges.push((u, rng.gen_range(0..20u32), 1.0));
            }
        }
        let g = BipartiteGraph::from_edges(20, 20, edges);
        let uf = init::xavier_uniform(20, 6, &mut rng);
        let if_ = init::xavier_uniform(20, 6, &mut rng);
        let cfg = HignnConfig {
            levels: 3,
            sage: BipartiteSageConfig {
                input_dim: 6,
                dim: 6,
                fanouts: vec![3, 2],
                sampling: SamplingMode::Uniform,
                ..Default::default()
            },
            train: SageTrainConfig { epochs: 1, batch_edges: 32, neg_pool: 8, ..Default::default() },
            cluster_counts: ClusterCounts::Fixed(vec![(8, 8), (4, 4), (2, 2)]),
            kmeans: KMeansAlgo::Lloyd,
            normalize: true,
            seed: 3,
        };
        build_hierarchy(&g, &uf, &if_, &cfg)
    }

    #[test]
    fn truncation_dims() {
        let h = hierarchy();
        assert_eq!(truncated_user_embeddings(&h, 1).cols(), 6);
        assert_eq!(truncated_user_embeddings(&h, 2).cols(), 12);
        assert_eq!(truncated_user_embeddings(&h, 3).cols(), 18);
        // Clamped above the available levels.
        assert_eq!(truncated_user_embeddings(&h, 99).cols(), 6 * h.num_levels());
    }

    #[test]
    fn truncation_prefix_of_full() {
        let h = hierarchy();
        let full = h.hierarchical_users();
        let two = truncated_user_embeddings(&h, 2);
        for u in 0..h.num_users() {
            assert_eq!(&full.row(u)[..12], two.row(u));
        }
        let full_i = h.hierarchical_items();
        let one = truncated_item_embeddings(&h, 1);
        for i in 0..h.num_items() {
            assert_eq!(&full_i.row(i)[..6], one.row(i));
        }
    }

    #[test]
    fn variants_produce_expected_blocks() {
        let h = hierarchy();
        let l = h.num_levels();
        let (u, i) = Variant::HiGnn.embeddings(&h);
        assert_eq!(u.unwrap().cols(), 6 * l);
        assert_eq!(i.unwrap().cols(), 6 * l);
        let (u, i) = Variant::Ge.embeddings(&h);
        assert_eq!(u.unwrap().cols(), 6);
        assert_eq!(i.unwrap().cols(), 6);
        let (u, i) = Variant::Cgnn.embeddings(&h);
        assert_eq!(u.unwrap().cols(), 12);
        assert!(i.is_none());
        let (u, i) = Variant::HupOnly.embeddings(&h);
        assert!(u.is_some() && i.is_none());
        let (u, i) = Variant::HiaOnly.embeddings(&h);
        assert!(u.is_none() && i.is_some());
        let (u, i) = Variant::Din.embeddings(&h);
        assert!(u.is_none() && i.is_none());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Variant::HiGnn.name(), "HiGNN");
        assert_eq!(Variant::HupOnly.name(), "HUP-only");
    }
}
