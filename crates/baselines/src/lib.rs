//! # hignn-baselines
//!
//! Every comparator the paper evaluates against (Tables III and VII):
//!
//! * [`din`] — Deep Interest Network, the graph-free deep-learning
//!   baseline ("HiGNN at level 0").
//! * [`shoal`] — Alibaba's deployed taxonomy solution: hierarchical
//!   agglomerative clustering over fixed embeddings, no trainable GNN.
//! * [`ablations`] — GE / CGNN / HUP-only / HIA-only, each expressed as a
//!   truncation of a trained HiGNN hierarchy, matching the paper's
//!   "special case of our proposed method" framing.

#![warn(missing_docs)]

pub mod ablations;
pub mod din;
pub mod shoal;

pub use ablations::{truncated_item_embeddings, truncated_user_embeddings, Variant};
pub use din::{DinConfig, DinModel};
pub use shoal::{build_shoal, ShoalTaxonomy};
