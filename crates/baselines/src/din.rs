//! DIN — Deep Interest Network (Zhou et al., KDD 2018), the paper's
//! graph-free comparator.
//!
//! *"A popular deep neural network method without graph structure
//! information and hierarchical information ... can be regarded as a
//! special case of our proposed method at level 0 (L = 0)."* (Sec. IV.B.2)
//!
//! This implementation follows DIN's core idea: a trainable item-id
//! embedding table, a local-activation unit scoring each history item
//! against the candidate (sigmoid gate, *unnormalised* weighted sum
//! pooling as in the original paper), and an MLP over
//! `concat(interest, candidate, user profile, item stats)`.

use hignn::predictor::Sample;
use hignn_tensor::nn::{Activation, Mlp};
use hignn_tensor::optim::{Adam, Optimizer};
use hignn_tensor::{init, stable_sigmoid, Matrix, ParamId, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the DIN baseline.
#[derive(Clone, Debug)]
pub struct DinConfig {
    /// Item-id embedding dimensionality.
    pub embed_dim: usize,
    /// History items attended per sample (shorter histories are padded
    /// with a zero-embedding null item).
    pub history_len: usize,
    /// Hidden widths of the activation unit.
    pub attention_hidden: usize,
    /// Hidden widths of the prediction MLP.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f32,
    /// Minibatch size.
    pub batch: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DinConfig {
    fn default() -> Self {
        DinConfig {
            embed_dim: 16,
            history_len: 10,
            attention_hidden: 32,
            hidden: vec![128, 64],
            lr: 1e-3,
            batch: 512,
            epochs: 3,
            weight_decay: 1e-5,
            seed: 0,
        }
    }
}

/// A trained DIN model.
pub struct DinModel {
    cfg: DinConfig,
    store: ParamStore,
    embeddings: ParamId,
    attention: Mlp,
    head: Mlp,
    num_items: usize,
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
}

impl DinModel {
    /// Trains DIN on `train` samples.
    ///
    /// `histories[u]` lists user `u`'s clicked items; `user_profiles` and
    /// `item_stats` are the same side features the HiGNN predictor uses.
    pub fn train(
        num_items: usize,
        histories: &[Vec<u32>],
        user_profiles: &Matrix,
        item_stats: &Matrix,
        train: &[Sample],
        cfg: &DinConfig,
    ) -> Self {
        assert!(!train.is_empty(), "DinModel: empty training set");
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD19);
        let mut store = ParamStore::new();
        // Item embedding table with one extra zero row for padding.
        let embeddings = store.add(
            "din.items",
            init::normal(num_items + 1, cfg.embed_dim, 0.05, &mut rng),
        );
        // Activation unit: concat(e_hist, e_cand, e_hist ⊙ e_cand) -> score.
        let attention = Mlp::new(
            &mut store,
            "din.att",
            &[3 * cfg.embed_dim, cfg.attention_hidden, 1],
            Activation::LeakyRelu,
            &mut rng,
        );
        let head_in = 2 * cfg.embed_dim + user_profiles.cols() + item_stats.cols();
        let mut dims = vec![head_in];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(1);
        let head = Mlp::new(&mut store, "din.head", &dims, Activation::LeakyRelu, &mut rng);

        let mut model = DinModel {
            cfg: cfg.clone(),
            store,
            embeddings,
            attention,
            head,
            num_items,
            epoch_losses: Vec::new(),
        };
        let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
        let mut order: Vec<usize> = (0..train.len()).collect();
        for _ in 0..cfg.epochs {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut total = 0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch) {
                let batch: Vec<Sample> = chunk.iter().map(|&k| train[k]).collect();
                let targets: Vec<f32> =
                    batch.iter().map(|s| if s.label { 1.0 } else { 0.0 }).collect();
                let mut tape = Tape::new(&model.store);
                let logits =
                    model.forward(&mut tape, histories, user_profiles, item_stats, &batch);
                let loss = tape.bce_with_logits(logits, &targets);
                total += tape.scalar(loss) as f64;
                batches += 1;
                let grads = tape.backward(loss);
                opt.step(&mut model.store, &grads);
            }
            model.epoch_losses.push((total / batches.max(1) as f64) as f32);
        }
        model
    }

    /// Builds the DIN forward graph for a batch, returning logits.
    fn forward(
        &self,
        tape: &mut Tape,
        histories: &[Vec<u32>],
        user_profiles: &Matrix,
        item_stats: &Matrix,
        batch: &[Sample],
    ) -> hignn_tensor::Var {
        let t = self.cfg.history_len;
        let pad = self.num_items; // zero-embedding row
        let emb = tape.param(self.embeddings);
        // History indices (B*T) and candidate indices repeated (B*T).
        let mut hist_idx = Vec::with_capacity(batch.len() * t);
        let mut cand_rep_idx = Vec::with_capacity(batch.len() * t);
        let mut cand_idx = Vec::with_capacity(batch.len());
        for s in batch {
            let h = &histories[s.user as usize];
            for k in 0..t {
                hist_idx.push(h.get(k).map_or(pad, |&i| i as usize));
                cand_rep_idx.push(s.item as usize);
            }
            cand_idx.push(s.item as usize);
        }
        let e_hist = tape.gather_rows(emb, &hist_idx);
        let e_cand_rep = tape.gather_rows(emb, &cand_rep_idx);
        let e_cand = tape.gather_rows(emb, &cand_idx);
        // Local activation unit.
        let prod = tape.mul(e_hist, e_cand_rep);
        let att_in = tape.concat_cols(&[e_hist, e_cand_rep, prod]);
        let att_logit = self.attention.forward(tape, att_in);
        let att = tape.sigmoid(att_logit);
        // Unnormalised weighted sum pooling (padding rows are zero
        // embeddings, so they contribute nothing).
        let weighted = tape.mul_col_broadcast(e_hist, att);
        let pooled_mean = tape.mean_pool_rows(weighted, t);
        let interest = tape.scale(pooled_mean, t as f32);
        // Prediction head.
        let profiles = tape.input(user_profiles.gather_rows(
            &batch.iter().map(|s| s.user as usize).collect::<Vec<_>>(),
        ));
        let stats = tape.input(item_stats.gather_rows(
            &batch.iter().map(|s| s.item as usize).collect::<Vec<_>>(),
        ));
        let head_in = tape.concat_cols(&[interest, e_cand, profiles, stats]);
        self.head.forward(tape, head_in)
    }

    /// Predicted conversion probabilities for `samples`.
    pub fn predict(
        &self,
        histories: &[Vec<u32>],
        user_profiles: &Matrix,
        item_stats: &Matrix,
        samples: &[Sample],
    ) -> Vec<f32> {
        let mut out = Vec::with_capacity(samples.len());
        for chunk in samples.chunks(2048) {
            let mut tape = Tape::new(&self.store);
            let logits = self.forward(&mut tape, histories, user_profiles, item_stats, chunk);
            let lm = tape.value(logits);
            out.extend((0..chunk.len()).map(|k| stable_sigmoid(lm.get(k, 0))));
        }
        out
    }

    /// Number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hignn_metrics::auc;

    /// Synthetic task: each item has a latent type 0/1; users only buy
    /// items whose type matches the majority type of their history.
    #[allow(clippy::type_complexity)]
    fn synthetic() -> (usize, Vec<Vec<u32>>, Matrix, Matrix, Vec<Sample>, Vec<Sample>) {
        let mut rng = StdRng::seed_from_u64(5);
        let num_items = 40;
        let num_users = 50;
        let item_type: Vec<u32> = (0..num_items).map(|i| (i % 2) as u32).collect();
        let histories: Vec<Vec<u32>> = (0..num_users)
            .map(|u| {
                let ty = (u % 2) as u32;
                (0..6)
                    .map(|_| {
                        let mut i = rng.gen_range(0..num_items as u32);
                        while item_type[i as usize] != ty {
                            i = rng.gen_range(0..num_items as u32);
                        }
                        i
                    })
                    .collect()
            })
            .collect();
        let up = Matrix::zeros(num_users, 1);
        let is = Matrix::zeros(num_items, 1);
        let mut samples = Vec::new();
        for u in 0..num_users as u32 {
            for _ in 0..20 {
                let i = rng.gen_range(0..num_items as u32);
                let label = item_type[i as usize] == (u % 2);
                samples.push(Sample { user: u, item: i, label });
            }
        }
        let test = samples.split_off(samples.len() * 4 / 5);
        (num_items, histories, up, is, samples, test)
    }

    #[test]
    fn din_learns_history_signal() {
        let (num_items, histories, up, is, train, test) = synthetic();
        let cfg = DinConfig {
            embed_dim: 8,
            history_len: 6,
            attention_hidden: 16,
            hidden: vec![32],
            epochs: 15,
            batch: 128,
            lr: 5e-3,
            ..Default::default()
        };
        let model = DinModel::train(num_items, &histories, &up, &is, &train, &cfg);
        let probs = model.predict(&histories, &up, &is, &test);
        let labels: Vec<bool> = test.iter().map(|s| s.label).collect();
        let a = auc(&probs, &labels);
        assert!(a > 0.85, "DIN AUC {a}");
        assert!(model.epoch_losses.last().unwrap() < &model.epoch_losses[0]);
    }

    #[test]
    fn handles_empty_histories() {
        let (num_items, _, up, is, train, test) = synthetic();
        let empty: Vec<Vec<u32>> = vec![Vec::new(); 50];
        let cfg = DinConfig { embed_dim: 4, history_len: 4, hidden: vec![8], epochs: 1, batch: 64, ..Default::default() };
        let model = DinModel::train(num_items, &empty, &up, &is, &train, &cfg);
        let probs = model.predict(&empty, &up, &is, &test);
        assert_eq!(probs.len(), test.len());
        assert!(probs.iter().all(|p| p.is_finite() && (0.0..=1.0).contains(p)));
    }
}
