//! Textbook MLP forward pass and binary cross-entropy (paper Eq. 7).
//!
//! Mirrors `hignn_tensor::nn::Mlp::infer` — hidden layers use leaky
//! ReLU, the final layer is linear and produces logits — with plain
//! per-entry loops. Each output entry is a scalar `f32` accumulation
//! over the contraction index in increasing order followed by one bias
//! add, the same per-entry order the optimized kernel uses, so the
//! forward pass must agree **bitwise**.
//!
//! [`bce_with_logits`] replicates the numerically stable form the tape
//! evaluates (`max(x, 0) - x·t + ln(1 + e^{-|x|})`, per-sample in
//! `f32`, summed in `f64`, divided by `n`, cast back to `f32`), so the
//! scalar loss is bitwise-comparable too.

use crate::linalg::shape;
use crate::Rows32;

/// One fully connected layer: weight matrix (`in_dim x out_dim`, row
/// major) and a bias vector of length `out_dim`.
#[derive(Clone, Debug)]
pub struct DenseLayer {
    pub w: Rows32,
    pub b: Vec<f32>,
}

/// `y = x W + b` with the classic loops: accumulate over the input
/// dimension, then add the bias once.
pub fn dense(x: &Rows32, layer: &DenseLayer) -> Rows32 {
    let (m, k) = shape(x);
    let (k2, n) = shape(&layer.w);
    assert_eq!(k, k2, "dense: input dim {k} vs weight rows {k2}");
    assert_eq!(layer.b.len(), n, "dense: bias length mismatch");
    let mut y = vec![vec![0.0f32; n]; m];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for t in 0..k {
                acc += x[i][t] * layer.w[t][j];
            }
            y[i][j] = acc + layer.b[j];
        }
    }
    y
}

/// Elementwise leaky ReLU, `v if v > 0 else slope * v`.
pub fn leaky_relu(x: &Rows32, slope: f32) -> Rows32 {
    x.iter()
        .map(|row| row.iter().map(|&v| if v > 0.0 { v } else { slope * v }).collect())
        .collect()
}

/// Full MLP forward: leaky ReLU (given slope) after every layer except
/// the last, which stays linear (logits). This is the paper's Eq. 7
/// predictor head shape.
pub fn forward(x: &Rows32, layers: &[DenseLayer], slope: f32) -> Rows32 {
    assert!(!layers.is_empty(), "forward: need at least one layer");
    let mut h = x.clone();
    let last = layers.len() - 1;
    for (l, layer) in layers.iter().enumerate() {
        h = dense(&h, layer);
        if l != last {
            h = leaky_relu(&h, slope);
        }
    }
    h
}

/// Mean binary cross-entropy over logits (an `n x 1` column), in the
/// same numerically stable form and accumulation order as
/// `Tape::bce_with_logits`.
pub fn bce_with_logits(logits: &Rows32, targets: &[f32]) -> f32 {
    let (rows, cols) = shape(logits);
    assert_eq!(cols, 1, "bce_with_logits: logits must be n x 1");
    assert_eq!(rows, targets.len(), "bce_with_logits: target length mismatch");
    let n = targets.len().max(1) as f32;
    let mut total = 0.0f64;
    for (row, &t) in logits.iter().zip(targets) {
        let x = row[0];
        let loss = x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
        total += loss as f64;
    }
    (total / n as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_matches_hand_computation() {
        let layer = DenseLayer {
            w: vec![vec![1.0, -1.0], vec![2.0, 0.5]],
            b: vec![0.25, -0.25],
        };
        let y = dense(&vec![vec![3.0, 4.0]], &layer);
        assert_eq!(y, vec![vec![3.0 + 8.0 + 0.25, -3.0 + 2.0 - 0.25]]);
    }

    #[test]
    fn hidden_layers_are_leaky_but_output_is_linear() {
        // One hidden layer that produces a negative value, identity-ish
        // output layer: the hidden negative is scaled by the slope, the
        // output negative is not.
        let hidden = DenseLayer { w: vec![vec![1.0]], b: vec![0.0] };
        let out = DenseLayer { w: vec![vec![1.0]], b: vec![0.0] };
        let y = forward(&vec![vec![-2.0]], &[hidden, out], 0.01);
        assert_eq!(y, vec![vec![-0.02]]);
        let y_single = forward(&vec![vec![-2.0]], &[DenseLayer {
            w: vec![vec![1.0]],
            b: vec![0.0],
        }], 0.01);
        assert_eq!(y_single, vec![vec![-2.0]]);
    }

    #[test]
    fn bce_at_zero_logit_is_ln_two() {
        let loss = bce_with_logits(&vec![vec![0.0], vec![0.0]], &[0.0, 1.0]);
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-7);
    }

    #[test]
    fn bce_rewards_confident_correct_logits() {
        let good = bce_with_logits(&vec![vec![8.0]], &[1.0]);
        let bad = bce_with_logits(&vec![vec![-8.0]], &[1.0]);
        assert!(good < 0.01);
        assert!(bad > 5.0);
    }
}
