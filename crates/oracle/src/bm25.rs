//! Textbook Okapi BM25, straight from the formula.
//!
//! Unlike `hignn_text::Bm25Index`, nothing is precomputed: every score
//! call recounts term frequencies and document frequencies from the raw
//! token lists. Same non-negative IDF variant
//! (`ln(1 + (N - df + 0.5) / (df + 0.5))`) and same parameters
//! (`k1 = 1.2`, `b = 0.75` by default). All arithmetic is `f64`; the
//! optimized index groups the terms differently (e.g. hash-map term
//! counts, cached average length), so the differential suite compares
//! within a tolerance, not bitwise.

/// Number of occurrences of `term` in `doc`.
fn term_frequency(term: u32, doc: &[u32]) -> usize {
    doc.iter().filter(|&&t| t == term).count()
}

/// Number of documents containing `term`.
fn doc_frequency(term: u32, docs: &[Vec<u32>]) -> usize {
    docs.iter().filter(|d| d.contains(&term)).count()
}

/// Mean document length in tokens (0 for an empty collection).
fn average_length(docs: &[Vec<u32>]) -> f64 {
    if docs.is_empty() {
        0.0
    } else {
        docs.iter().map(|d| d.len()).sum::<usize>() as f64 / docs.len() as f64
    }
}

/// BM25 score of `query` against `docs[doc_id]` with explicit `k1`/`b`.
pub fn score_with_params(
    query: &[u32],
    docs: &[Vec<u32>],
    doc_id: usize,
    k1: f64,
    b: f64,
) -> f64 {
    let n = docs.len() as f64;
    let doc = &docs[doc_id];
    let dl = doc.len() as f64;
    let avg = average_length(docs);
    let mut total = 0.0f64;
    for &term in query {
        let tf = term_frequency(term, doc) as f64;
        if tf == 0.0 {
            continue;
        }
        let df = doc_frequency(term, docs) as f64;
        let idf = (1.0 + (n - df + 0.5) / (df + 0.5)).ln();
        let norm = k1 * (1.0 - b + b * dl / avg.max(1e-12));
        total += idf * tf * (k1 + 1.0) / (tf + norm);
    }
    total
}

/// BM25 score with the standard parameters `k1 = 1.2`, `b = 0.75`.
pub fn score(query: &[u32], docs: &[Vec<u32>], doc_id: usize) -> f64 {
    score_with_params(query, docs, doc_id, 1.2, 0.75)
}

/// Scores `query` against every document.
pub fn score_all(query: &[u32], docs: &[Vec<u32>]) -> Vec<f64> {
    (0..docs.len()).map(|d| score(query, docs, d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<u32>> {
        vec![vec![0, 0, 1, 2], vec![3, 3, 3, 4], vec![0, 3, 5, 5, 5, 5]]
    }

    #[test]
    fn relevant_doc_scores_highest() {
        let scores = score_all(&[3], &docs());
        assert!(scores[1] > scores[0]);
        assert!(scores[1] > scores[2]);
    }

    #[test]
    fn absent_terms_contribute_nothing() {
        assert_eq!(score(&[99], &docs(), 0), 0.0);
        assert_eq!(score(&[], &docs(), 1), 0.0);
    }

    #[test]
    fn repeated_query_terms_count_each_occurrence() {
        // The outer loop walks the raw query, so a duplicated query term
        // scores twice — matching the optimized index's behaviour.
        let once = score(&[5], &docs(), 2);
        let twice = score(&[5, 5], &docs(), 2);
        assert!((twice - 2.0 * once).abs() < 1e-12);
    }
}
