//! The grouped InfoNCE loss in `f64`, with finite-difference gradients —
//! the independent check of the tape's `info_nce` op.
//!
//! For `n` anchors, each with one positive logit `p_k` and `group`
//! negative logits `m_{k,1..group}`, the loss is the mean softmax
//! cross-entropy of picking the positive out of its candidate set:
//!
//! ```text
//! L = (1/n) Σ_k [ logsumexp([p_k, m_k,*] / τ) − p_k / τ ]
//! ```
//!
//! Everything is evaluated naively in `f64` with an explicit max-shift
//! for the logsumexp, straight from the definition. Nothing here knows
//! about tapes or adjoints, which is exactly what makes the
//! finite-difference gradients a trustworthy oracle for the analytic
//! backward pass.

/// A complete, self-contained grouped-InfoNCE problem instance.
#[derive(Clone, Debug)]
pub struct InfoNceSetup {
    /// Positive logit per anchor (`n` entries).
    pub pos: Vec<f64>,
    /// Negative logits, `group` consecutive entries per anchor
    /// (`n * group` entries, anchor-major).
    pub neg: Vec<f64>,
    /// Negatives per anchor.
    pub group: usize,
    /// Softmax temperature `τ` (logits are divided by it).
    pub temperature: f64,
}

impl InfoNceSetup {
    /// Evaluates the loss exactly as written above.
    pub fn loss(&self) -> f64 {
        let n = self.pos.len();
        assert_eq!(self.neg.len(), n * self.group, "anchor-major negative layout");
        let inv_t = 1.0 / self.temperature;
        let mut total = 0.0f64;
        for k in 0..n {
            let p = self.pos[k] * inv_t;
            let negs = &self.neg[k * self.group..(k + 1) * self.group];
            let mut m = p;
            for &v in negs {
                m = m.max(v * inv_t);
            }
            let mut sum = (p - m).exp();
            for &v in negs {
                sum += (v * inv_t - m).exp();
            }
            total += m + sum.ln() - p;
        }
        total / n.max(1) as f64
    }

    /// Central finite difference of the loss w.r.t. `pos[k]`.
    pub fn central_diff_pos(&mut self, k: usize, eps: f64) -> f64 {
        let original = self.pos[k];
        self.pos[k] = original + eps;
        let plus = self.loss();
        self.pos[k] = original - eps;
        let minus = self.loss();
        self.pos[k] = original;
        (plus - minus) / (2.0 * eps)
    }

    /// Central finite difference of the loss w.r.t. `neg[j]`
    /// (anchor-major flat index).
    pub fn central_diff_neg(&mut self, j: usize, eps: f64) -> f64 {
        let original = self.neg[j];
        self.neg[j] = original + eps;
        let plus = self.loss();
        self.neg[j] = original - eps;
        let minus = self.loss();
        self.neg[j] = original;
        (plus - minus) / (2.0 * eps)
    }

    /// Finite-difference gradient of the whole positive-logit vector.
    pub fn fd_grad_pos(&mut self, eps: f64) -> Vec<f64> {
        (0..self.pos.len()).map(|k| self.central_diff_pos(k, eps)).collect()
    }

    /// Finite-difference gradient of the whole negative-logit vector.
    pub fn fd_grad_neg(&mut self, eps: f64) -> Vec<f64> {
        (0..self.neg.len()).map(|j| self.central_diff_neg(j, eps)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> InfoNceSetup {
        InfoNceSetup {
            pos: vec![0.8, -0.3, 1.5],
            neg: vec![0.2, -0.6, 0.9, 0.1, -1.2, 0.4],
            group: 2,
            temperature: 0.5,
        }
    }

    #[test]
    fn loss_is_finite_and_positive() {
        let l = tiny().loss();
        assert!(l.is_finite() && l > 0.0, "loss = {l}");
    }

    #[test]
    fn uniform_logits_give_log_candidate_count() {
        // All candidates equal: picking the positive is a uniform
        // (group + 1)-way choice, so the loss is ln(group + 1).
        let s = InfoNceSetup {
            pos: vec![0.7; 4],
            neg: vec![0.7; 12],
            group: 3,
            temperature: 0.25,
        };
        assert!((s.loss() - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn central_diff_restores_the_setup() {
        let mut s = tiny();
        let before = s.loss();
        let _ = s.central_diff_pos(1, 1e-5);
        let _ = s.central_diff_neg(4, 1e-5);
        assert_eq!(s.loss(), before);
    }

    #[test]
    fn per_anchor_gradients_sum_to_zero() {
        // Softmax cross-entropy: for each anchor, the positive's gradient
        // and its negatives' gradients sum to zero (the softmax sums to
        // one against a one-hot target).
        let mut s = tiny();
        let gp = s.fd_grad_pos(1e-6);
        let gn = s.fd_grad_neg(1e-6);
        for k in 0..s.pos.len() {
            let sum: f64 = gp[k] + gn[k * s.group..(k + 1) * s.group].iter().sum::<f64>();
            assert!(sum.abs() < 1e-6, "anchor {k}: gradient sum {sum}");
        }
        // The positive's gradient is always negative (raising the
        // positive logit lowers the loss), negatives' always positive.
        for (k, &g) in gp.iter().enumerate() {
            assert!(g < 0.0, "pos grad {k} = {g}");
        }
        for (j, &g) in gn.iter().enumerate() {
            assert!(g > 0.0, "neg grad {j} = {g}");
        }
    }

    #[test]
    fn extreme_logits_stay_finite() {
        let s = InfoNceSetup {
            pos: vec![400.0, -400.0],
            neg: vec![-400.0, 400.0],
            group: 1,
            temperature: 1.0,
        };
        assert!(s.loss().is_finite());
    }
}
