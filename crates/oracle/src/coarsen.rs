//! Textbook Eq. 6 graph coarsening.
//!
//! `S(C_u, C_i) = Σ S(e)` over all member edges `e = (u, i)` with
//! `u ∈ C_u, i ∈ C_i`; a coarse edge exists iff that sum is positive
//! (which, with positive input weights, means iff any member edge
//! exists). The reference accumulates into a dense `k_l x k_r` table in
//! the order the edge list is given. Fed the optimized graph's sorted
//! `edges()` slice, every cluster-pair bucket then sums the same `f32`
//! values in the same order as `hignn_graph::coarsen`, so the surviving
//! weights must agree **bitwise**.
//!
//! The other half of Eq. 6 — the coarse vertex feature as the mean
//! embedding of the cluster's members — is
//! [`mean_member_embeddings`].

use crate::Rows32;

/// The cluster feature of Eq. 6: each coarse vertex is the mean
/// embedding of its members (re-exported from the K-means oracle, where
/// the identical computation is the centroid update without reseeding).
pub use crate::kmeans::mean_by_cluster as mean_member_embeddings;

/// Sums member edge weights into a dense `k_l x k_r` weight table.
///
/// `edges` holds `(left, right, weight)` triples; `left_clusters` /
/// `right_clusters` map vertices to cluster ids below `k_l` / `k_r`.
/// Entry `[cl][cr]` is the coarse edge weight, `0.0` meaning "no edge".
pub fn coarsen_weights(
    edges: &[(u32, u32, f32)],
    left_clusters: &[u32],
    right_clusters: &[u32],
    k_left: usize,
    k_right: usize,
) -> Rows32 {
    let mut table = vec![vec![0.0f32; k_right]; k_left];
    for &(l, r, w) in edges {
        let cl = left_clusters[l as usize] as usize;
        let cr = right_clusters[r as usize] as usize;
        assert!(cl < k_left, "left cluster {cl} out of range");
        assert!(cr < k_right, "right cluster {cr} out of range");
        table[cl][cr] += w;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_member_edge_weights() {
        let edges = [(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (2, 2, 4.0)];
        let table = coarsen_weights(&edges, &[0, 0, 1], &[0, 0, 1], 2, 2);
        assert_eq!(table, vec![vec![6.0, 0.0], vec![0.0, 4.0]]);
    }

    #[test]
    fn total_weight_is_preserved() {
        let edges = [(0, 0, 1.5), (1, 1, 2.5), (2, 0, 3.0)];
        let table = coarsen_weights(&edges, &[1, 0, 1], &[0, 1], 2, 2);
        let total: f32 = table.iter().flatten().sum();
        assert_eq!(total, 7.0);
    }

    #[test]
    fn mean_member_embeddings_is_the_eq6_feature() {
        let emb: Rows32 = vec![vec![1.0, 3.0], vec![3.0, 5.0], vec![8.0, 8.0]];
        let features = mean_member_embeddings(&emb, &[0, 0, 1], 2);
        assert_eq!(features[0], vec![2.0, 4.0]);
        assert_eq!(features[1], vec![8.0, 8.0]);
    }
}
