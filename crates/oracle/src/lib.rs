//! Naive, textbook reference implementations of the HiGNN numerical
//! core — the *differential oracle* the optimized crates are tested
//! against.
//!
//! Every optimized hot path in this workspace (the `ikj` matmul and the
//! tape in `hignn-tensor`, the data-parallel K-means in `hignn-cluster`,
//! the Eq. 6 coarsening in `hignn-graph`, BM25 in `hignn-text`, the
//! Eq. 5 training loss and exact inference in `hignn`) has a slow,
//! obviously-correct counterpart here, written straight from the paper's
//! equations with no attention paid to performance. The property-based
//! differential suite in `tests/tests/differential_oracle.rs` generates
//! randomized inputs and asserts the optimized implementations agree
//! with this crate — bitwise where the floating-point accumulation
//! order provably matches, within explicit tolerances otherwise.
//!
//! Design rules for this crate:
//!
//! * **Zero code sharing with the optimized crates.** Nothing here
//!   depends on `hignn-tensor`, `hignn-cluster`, `hignn-graph`,
//!   `hignn-text`, or `hignn`. Matrices are plain `Vec<Vec<f32>>` /
//!   `Vec<Vec<f64>>`, graphs are plain adjacency lists.
//! * **Readability over speed.** Triple loops, per-query term
//!   recounting, full `O(n·k·d)` Lloyd scans. If a reviewer cannot
//!   verify a function against the paper in one read, it does not
//!   belong here.
//! * **Two precisions, on purpose.** Functions promising *bitwise*
//!   agreement ([`linalg`], [`kmeans`], [`coarsen`], [`mlp`]) accumulate
//!   in `f32` in index order — the same order the optimized loops use —
//!   so equality is exact, not approximate. The Eq. 5 loss and its
//!   finite-difference gradients ([`eq5`]) use `f64` throughout: the
//!   oracle there approximates the *mathematical* gradient, which is
//!   exactly what an independent check of the autograd engine wants.

// Index loops *are* the specification here: they make the accumulation
// order visible, which is what the bitwise comparisons depend on.
#![allow(clippy::needless_range_loop)]

pub mod bm25;
pub mod coarsen;
pub mod eq5;
pub mod infonce;
pub mod kmeans;
pub mod linalg;
pub mod mlp;
pub mod sage;

/// A dense row-major `f32` matrix as a plain vector of rows — the only
/// "tensor type" the bitwise oracles use.
pub type Rows32 = Vec<Vec<f32>>;

/// A dense row-major `f64` matrix as a plain vector of rows — used by
/// the `f64` oracles ([`sage`], [`eq5`]).
pub type Rows64 = Vec<Vec<f64>>;
