//! Textbook dense linear algebra in `f32`.
//!
//! These mirror `hignn_tensor::Matrix::{matmul, matmul_nt, matmul_tn}`
//! in the *naive* `ijk` loop nesting: for each output entry, one scalar
//! accumulator summed over the contraction index in increasing order.
//! The optimized kernels reorder the loops for cache behaviour (`ikj`,
//! fused transposes, zero-skipping) but never change the per-entry
//! accumulation order, so for finite inputs the results are required to
//! agree **bitwise** — the differential suite asserts exactly that.

use crate::Rows32;

/// `C = A * B` with the classic triple loop.
///
/// # Panics
/// Panics on inner-dimension mismatch or ragged rows.
pub fn matmul(a: &Rows32, b: &Rows32) -> Rows32 {
    let (m, k) = shape(a);
    let (k2, n) = shape(b);
    assert_eq!(k, k2, "matmul: inner dimensions {k} vs {k2}");
    let mut c = vec![vec![0.0f32; n]; m];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for t in 0..k {
                acc += a[i][t] * b[t][j];
            }
            c[i][j] = acc;
        }
    }
    c
}

/// `C = A * B^T` without materialising the transpose.
pub fn matmul_nt(a: &Rows32, b: &Rows32) -> Rows32 {
    let (m, k) = shape(a);
    let (n, k2) = shape(b);
    assert_eq!(k, k2, "matmul_nt: inner dimensions {k} vs {k2}");
    let mut c = vec![vec![0.0f32; n]; m];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for t in 0..k {
                acc += a[i][t] * b[j][t];
            }
            c[i][j] = acc;
        }
    }
    c
}

/// `C = A^T * B` without materialising the transpose.
pub fn matmul_tn(a: &Rows32, b: &Rows32) -> Rows32 {
    let (k, m) = shape(a);
    let (k2, n) = shape(b);
    assert_eq!(k, k2, "matmul_tn: inner dimensions {k} vs {k2}");
    let mut c = vec![vec![0.0f32; n]; m];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for t in 0..k {
                acc += a[t][i] * b[t][j];
            }
            c[i][j] = acc;
        }
    }
    c
}

/// `(rows, cols)` of a row-major matrix, checking that it is not ragged.
pub fn shape(m: &Rows32) -> (usize, usize) {
    let cols = m.first().map_or(0, |r| r.len());
    for r in m {
        assert_eq!(r.len(), cols, "ragged matrix");
    }
    (m.len(), cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matmul() {
        let a = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let b = vec![vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]];
        assert_eq!(matmul(&a, &b), vec![vec![58.0, 64.0], vec![139.0, 154.0]]);
    }

    #[test]
    fn transposed_products_agree_with_explicit_transpose() {
        let a = vec![vec![1.0, -2.0], vec![3.0, 0.5], vec![5.0, -6.0]];
        let b = vec![vec![1.0, 0.0], vec![-1.0, 3.0], vec![2.0, 2.0]];
        let at: Rows32 = (0..2).map(|j| (0..3).map(|i| a[i][j]).collect()).collect();
        let bt: Rows32 = (0..2).map(|j| (0..3).map(|i| b[i][j]).collect()).collect();
        assert_eq!(matmul_nt(&a, &b), matmul(&a, &bt));
        assert_eq!(matmul_tn(&a, &b), matmul(&at, &b));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn rejects_mismatched_shapes() {
        matmul(&vec![vec![1.0, 2.0]], &vec![vec![1.0]]);
    }
}
