//! Textbook bipartite GraphSAGE inference (paper Eqs. 1–4) in `f64`.
//!
//! Computes the same exact full-neighbourhood propagation as
//! `hignn::BipartiteSage::embed_all` — at every step both sides
//! simultaneously aggregate the opposite side's *previous* embeddings
//! (unweighted mean, isolated vertices get zeros), transform them by
//! the cross-side matrix `M`, concatenate with their own previous
//! embedding, and project through `W` and a bias with leaky ReLU — but
//! in double precision with plain adjacency-list loops. Because the
//! optimized path accumulates in `f32`, the differential suite compares
//! within a tolerance; the oracle's `f64` value is the better estimate
//! of the mathematical result.

use crate::Rows64;

/// One step's parameters for one side: cross-side transform `M`
/// (`d_in x d_in`), projection `W` (`2 d_in x d_out`), bias (`d_out`).
#[derive(Clone, Debug)]
pub struct SageStep {
    pub m: Rows64,
    pub w: Rows64,
    pub b: Vec<f64>,
}

/// Unweighted neighbourhood mean of the opposite side's embeddings.
/// `adjacency[v]` lists the opposite-side neighbours of vertex `v`;
/// vertices with no neighbours aggregate to a zero vector.
pub fn neighborhood_mean(adjacency: &[Vec<usize>], opposite: &Rows64, dim: usize) -> Rows64 {
    let mut out = vec![vec![0.0f64; dim]; adjacency.len()];
    for (v, nbrs) in adjacency.iter().enumerate() {
        if nbrs.is_empty() {
            continue;
        }
        for &nb in nbrs {
            for t in 0..dim {
                out[v][t] += opposite[nb][t];
            }
        }
        let inv = 1.0 / nbrs.len() as f64;
        for t in 0..dim {
            out[v][t] *= inv;
        }
    }
    out
}

/// One side's dense update `h <- leakyrelu([h | agg M] W + b)` (Eqs. 3/4).
fn dense_step(h: &Rows64, agg: &Rows64, step: &SageStep, slope: f64) -> Rows64 {
    let d_in = step.m.len();
    let d_out = step.b.len();
    let mut out = vec![vec![0.0f64; d_out]; h.len()];
    for v in 0..h.len() {
        // transformed = agg[v] * M
        let mut transformed = vec![0.0f64; d_in];
        for j in 0..d_in {
            for t in 0..d_in {
                transformed[j] += agg[v][t] * step.m[t][j];
            }
        }
        // cat = [h[v] | transformed], then cat * W + b, then leaky ReLU.
        for j in 0..d_out {
            let mut acc = 0.0f64;
            for t in 0..d_in {
                acc += h[v][t] * step.w[t][j];
            }
            for t in 0..d_in {
                acc += transformed[t] * step.w[d_in + t][j];
            }
            acc += step.b[j];
            out[v][j] = if acc > 0.0 { acc } else { slope * acc };
        }
    }
    out
}

/// Full-neighbourhood inference for both sides. `user_adj[u]` lists the
/// item neighbours of user `u`, `item_adj[i]` the user neighbours of
/// item `i`; `user_steps` / `item_steps` are the per-step parameters
/// (step `p` uses index `p - 1`). Returns the step-`P` embeddings
/// `(users, items)`.
#[allow(clippy::too_many_arguments)]
pub fn embed_all(
    user_adj: &[Vec<usize>],
    item_adj: &[Vec<usize>],
    user_feats: &Rows64,
    item_feats: &Rows64,
    user_steps: &[SageStep],
    item_steps: &[SageStep],
    slope: f64,
) -> (Rows64, Rows64) {
    assert_eq!(user_steps.len(), item_steps.len(), "step count mismatch");
    let mut hu = user_feats.clone();
    let mut hi = item_feats.clone();
    for p in 0..user_steps.len() {
        let d = hi.first().map_or(0, |r| r.len());
        let agg_u = neighborhood_mean(user_adj, &hi, d);
        let agg_i = neighborhood_mean(item_adj, &hu, d);
        let new_hu = dense_step(&hu, &agg_u, &user_steps[p], slope);
        let new_hi = dense_step(&hi, &agg_i, &item_steps[p], slope);
        hu = new_hu;
        hi = new_hi;
    }
    (hu, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_step(d: usize) -> SageStep {
        // W = [I; 0] so the update returns the self embedding unchanged
        // (all inputs non-negative keeps leaky ReLU inert).
        let mut w = vec![vec![0.0; d]; 2 * d];
        for (j, row) in w.iter_mut().enumerate().take(d) {
            row[j] = 1.0;
        }
        let m = (0..d)
            .map(|i| (0..d).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
            .collect();
        SageStep { m, w, b: vec![0.0; d] }
    }

    #[test]
    fn mean_aggregation_with_isolated_vertex() {
        let adj = vec![vec![0, 1], vec![]];
        let opp = vec![vec![2.0, 4.0], vec![4.0, 8.0]];
        let agg = neighborhood_mean(&adj, &opp, 2);
        assert_eq!(agg[0], vec![3.0, 6.0]);
        assert_eq!(agg[1], vec![0.0, 0.0]);
    }

    #[test]
    fn identity_parameters_pass_features_through() {
        let user_adj = vec![vec![0], vec![0]];
        let item_adj = vec![vec![0, 1]];
        let uf = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let if_ = vec![vec![5.0, 6.0]];
        let steps = [identity_step(2)];
        let (zu, zi) = embed_all(&user_adj, &item_adj, &uf, &if_, &steps, &steps, 0.01);
        assert_eq!(zu, uf);
        assert_eq!(zi, if_);
    }

    #[test]
    fn negative_preactivations_are_leaky() {
        // W = [-I; 0] turns a positive feature negative; the slope applies.
        let mut step = identity_step(1);
        step.w[0][0] = -1.0;
        let (zu, _) = embed_all(&[vec![]], &[vec![]], &vec![vec![5.0]], &vec![vec![0.0]], &[step.clone()], &[step], 0.5);
        assert_eq!(zu, vec![vec![-2.5]]);
    }
}
