//! Textbook Lloyd's K-means, k-means++ seeding, and the Eq. 6 cluster
//! feature (mean member embedding).
//!
//! Mirrors the *mathematical specification* implemented by
//! `hignn_cluster::kmeans` with plain per-point loops:
//!
//! * squared distances accumulate in `f32` over coordinates in index
//!   order (the same order `Matrix::row_sq_dist` uses), so per-point
//!   assignments are required to agree **bitwise** at any input size;
//! * centroid sums accumulate over points in index order, which matches
//!   the optimized update exactly when the input fits in a single
//!   parallel row-chunk (`n <= ROW_CHUNK`, i.e. 256 rows) — the
//!   differential suite asserts bitwise equality in that regime and the
//!   chunked merge is itself covered by the determinism suite;
//! * the k-means++ reference consumes its RNG in exactly the documented
//!   order (one `gen_range(0..n)` for the first centre, then per centre
//!   one `gen_range` on the summed squared distances), which is part of
//!   the seeding's deterministic contract.

use crate::Rows32;
use rand::Rng;

/// Squared Euclidean distance, `f32` accumulation in coordinate order.
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sq_dist: dimension mismatch");
    let mut acc = 0.0f32;
    for t in 0..a.len() {
        let d = a[t] - b[t];
        acc += d * d;
    }
    acc
}

/// Index and squared distance of the nearest centroid; the first
/// minimum wins ties (strict `<` scan in centroid order).
pub fn nearest(centroids: &Rows32, point: &[f32]) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_d = f32::MAX;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = sq_dist(centroid, point);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// The assignment step: each point to its nearest centroid, plus the
/// total inertia (`f64` sum of per-point squared distances, in point
/// order).
pub fn assign(points: &Rows32, centroids: &Rows32) -> (Vec<u32>, f64) {
    let mut assignment = Vec::with_capacity(points.len());
    let mut inertia = 0f64;
    for p in points {
        let (c, d) = nearest(centroids, p);
        assignment.push(c as u32);
        inertia += d as f64;
    }
    (assignment, inertia)
}

/// The Eq. 6 cluster feature: the mean embedding of each cluster's
/// members ("the average user embedding of users who belong to the
/// cluster"). Empty clusters get a zero row.
pub fn mean_by_cluster(points: &Rows32, assignment: &[u32], k: usize) -> Rows32 {
    assert_eq!(points.len(), assignment.len(), "mean_by_cluster: size mismatch");
    let d = points.first().map_or(0, |p| p.len());
    let mut sums = vec![vec![0.0f32; d]; k];
    let mut counts = vec![0usize; k];
    for (p, &c) in points.iter().zip(assignment) {
        let c = c as usize;
        assert!(c < k, "cluster id {c} out of range");
        counts[c] += 1;
        for t in 0..d {
            sums[c][t] += p[t];
        }
    }
    for (c, count) in counts.iter().enumerate() {
        if *count > 0 {
            let inv = 1.0 / *count as f32;
            for s in &mut sums[c] {
                *s *= inv;
            }
        }
    }
    sums
}

/// The update step: mean member embedding per cluster, with an empty
/// cluster re-seeded at the point farthest from its assigned centroid.
///
/// Centroids are rewritten **in place, in cluster order** — so the
/// farthest-point search for an empty cluster `c` measures against the
/// already-updated rows `< c` and the old rows `>= c`, exactly like the
/// optimized loop. Distance ties pick the later point index (matching
/// `Iterator::max_by`, which keeps the last maximum).
pub fn update(
    points: &Rows32,
    assignment: &[u32],
    centroids: &Rows32,
) -> Rows32 {
    let k = centroids.len();
    let means = mean_by_cluster(points, assignment, k);
    let mut counts = vec![0usize; k];
    for &c in assignment {
        counts[c as usize] += 1;
    }
    let mut new_centroids = centroids.clone();
    for c in 0..k {
        if counts[c] == 0 {
            let mut far = 0usize;
            let mut far_d = f32::MIN;
            for (i, p) in points.iter().enumerate() {
                let d = sq_dist(&new_centroids[assignment[i] as usize], p);
                if d >= far_d {
                    far_d = d;
                    far = i;
                }
            }
            new_centroids[c] = points[far].clone();
        } else {
            new_centroids[c] = means[c].clone();
        }
    }
    new_centroids
}

/// Lloyd iterations from explicit initial centroids, replicating the
/// optimized loop's convergence rule: stop when the relative inertia
/// improvement over the previous iteration falls below `tol`, then
/// re-assign against the final centroids.
pub fn lloyd(
    points: &Rows32,
    initial_centroids: Rows32,
    max_iters: usize,
    tol: f64,
) -> (Rows32, Vec<u32>, f64, usize) {
    assert!(!points.is_empty(), "lloyd: no points");
    let mut centroids = initial_centroids;
    let mut inertia = f64::MAX;
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        let (assignment, new_inertia) = assign(points, &centroids);
        centroids = update(points, &assignment, &centroids);
        if inertia.is_finite() {
            let improvement = (inertia - new_inertia) / inertia.max(1e-12);
            if improvement.abs() < tol {
                break;
            }
        }
        inertia = new_inertia;
    }
    let (assignment, final_inertia) = assign(points, &centroids);
    (centroids, assignment, final_inertia, iterations)
}

/// k-means++ seeding: first centre uniform, each further centre drawn
/// with probability proportional to its squared distance from the
/// nearest already-chosen centre. Consumes the RNG in the exact order
/// documented by `hignn_cluster::kmeans::kmeans_pp_seed`.
pub fn kmeans_pp(points: &Rows32, k: usize, rng: &mut impl Rng) -> Rows32 {
    let n = points.len();
    let k = k.min(n);
    let mut centroids: Rows32 = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)].clone());
    let mut dist2: Vec<f32> = points.iter().map(|p| sq_dist(&centroids[0], p)).collect();
    for _ in 1..k {
        let total: f64 = dist2.iter().map(|&d| d as f64).sum();
        let chosen = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut x = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in dist2.iter().enumerate() {
                x -= d as f64;
                if x <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[chosen].clone());
        let c = centroids.len() - 1;
        for (i, d) in dist2.iter_mut().enumerate() {
            let nd = sq_dist(&centroids[c], &points[i]);
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

/// Full reference K-means: k-means++ seeding then [`lloyd`], clamping
/// `k` to the number of points like the optimized implementation.
pub fn kmeans_full(
    points: &Rows32,
    k: usize,
    max_iters: usize,
    tol: f64,
    rng: &mut impl Rng,
) -> (Rows32, Vec<u32>, f64, usize) {
    assert!(k > 0, "kmeans_full: k must be positive");
    let seeds = kmeans_pp(points, k, rng);
    lloyd(points, seeds, max_iters, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn two_blobs_separate() {
        let points: Rows32 =
            vec![vec![0.0], vec![0.1], vec![0.2], vec![9.9], vec![10.0], vec![10.1]];
        let (_, assignment, inertia, _) =
            kmeans_full(&points, 2, 50, 1e-4, &mut StdRng::seed_from_u64(0));
        assert_eq!(assignment[0], assignment[1]);
        assert_eq!(assignment[0], assignment[2]);
        assert_eq!(assignment[3], assignment[5]);
        assert_ne!(assignment[0], assignment[3]);
        assert!(inertia < 0.1);
    }

    #[test]
    fn mean_by_cluster_averages_and_zeros_empty() {
        let points: Rows32 = vec![vec![0.0, 0.0], vec![2.0, 2.0], vec![10.0, 0.0]];
        let m = mean_by_cluster(&points, &[0, 0, 1], 3);
        assert_eq!(m[0], vec![1.0, 1.0]);
        assert_eq!(m[1], vec![10.0, 0.0]);
        assert_eq!(m[2], vec![0.0, 0.0]);
    }

    #[test]
    fn empty_cluster_reseeds_at_farthest_point() {
        let points: Rows32 = vec![vec![0.0], vec![1.0], vec![100.0]];
        // All points assigned to cluster 0 of 2; cluster 1 is empty and
        // must be re-seeded at the farthest point (index 2).
        let centroids: Rows32 = vec![vec![0.0], vec![50.0]];
        let updated = update(&points, &[0, 0, 0], &centroids);
        assert_eq!(updated[1], vec![100.0]);
    }

    #[test]
    fn assignment_first_minimum_wins_ties() {
        let centroids: Rows32 = vec![vec![1.0], vec![1.0]];
        let (assignment, _) = assign(&vec![vec![1.0]], &centroids);
        assert_eq!(assignment, vec![0]);
    }
}
