//! The full Eq. 5 edge-reconstruction loss in `f64`, with
//! finite-difference gradients — the independent check of the autograd
//! engine.
//!
//! The paper's unsupervised bipartite-graph loss is
//!
//! ```text
//! J_BG = BCE₁(f[z_u, z_i, ln(1 + S(u,i))])
//!      + Q_u · BCE₀(f[z_{u_n}, z_i, γ])
//!      + Q_i · BCE₀(f[z_u, z_{i_n}, γ])
//! ```
//!
//! where `z` are the bipartite GraphSAGE embeddings (Eqs. 1–4,
//! *including* the cross-side matrices `M_u^i` / `M_i^u`), `f` is the
//! similarity MLP over `[z_u | z_i | weight]`, and each BCE term is the
//! mean over its pair list. [`Eq5Setup`] holds every parameter as plain
//! `f64` data; [`Eq5Setup::loss`] evaluates the whole composition
//! naively (full-neighbourhood embeddings — the deterministic variant
//! the differential test builds on the tape), and [`Eq5Setup::fd_grad`]
//! differentiates it by central finite differences, one parameter entry
//! at a time. Nothing here knows about tapes, `Var`s, or adjoints — the
//! gradients come straight from the loss definition, which is exactly
//! what makes them a trustworthy oracle for `Tape::backward`.

use crate::sage::{embed_all, SageStep};
use crate::Rows64;

/// One fully connected scorer layer in `f64`.
#[derive(Clone, Debug)]
pub struct Dense64 {
    pub w: Rows64,
    pub b: Vec<f64>,
}

/// Which parameter tensor a finite difference perturbs. Step and layer
/// indices are 0-based (`UserM(0)` is the paper's `M_i^u` at step 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Eq5Param {
    /// User-side cross-side matrix `M` of step `p`.
    UserM(usize),
    /// User-side projection `W` of step `p`.
    UserW(usize),
    /// User-side bias of step `p`.
    UserB(usize),
    /// Item-side cross-side matrix `M` of step `p`.
    ItemM(usize),
    /// Item-side projection `W` of step `p`.
    ItemW(usize),
    /// Item-side bias of step `p`.
    ItemB(usize),
    /// Scorer layer `l` weight.
    ScorerW(usize),
    /// Scorer layer `l` bias.
    ScorerB(usize),
}

/// A complete, self-contained Eq. 5 problem instance.
#[derive(Clone, Debug)]
pub struct Eq5Setup {
    /// `user_adj[u]` = item neighbours of user `u`.
    pub user_adj: Vec<Vec<usize>>,
    /// `item_adj[i]` = user neighbours of item `i`.
    pub item_adj: Vec<Vec<usize>>,
    pub user_feats: Rows64,
    pub item_feats: Rows64,
    pub user_steps: Vec<SageStep>,
    pub item_steps: Vec<SageStep>,
    /// Similarity MLP `f` over `[z_u | z_i | weight]` (leaky-ReLU
    /// hidden layers, linear output logit).
    pub scorer: Vec<Dense64>,
    /// Leaky-ReLU negative slope (0.01 in the paper).
    pub slope: f64,
    /// Positive edges `(u, i, raw_weight)`; the scorer sees
    /// `ln(1 + raw_weight)`.
    pub positives: Vec<(usize, usize, f64)>,
    /// Negative-user pairs `(u_n, i)` scored against target 0.
    pub neg_user_pairs: Vec<(usize, usize)>,
    /// Negative-item pairs `(u, i_n)` scored against target 0.
    pub neg_item_pairs: Vec<(usize, usize)>,
    /// Edge-weight stand-in `γ` fed to `f` for negative pairs.
    pub gamma: f64,
    /// Loss weight `Q_u` of the negative-user term.
    pub q_users: f64,
    /// Loss weight `Q_i` of the negative-item term.
    pub q_items: f64,
}

/// Numerically stable `-log σ(±x)` as BCE with logits:
/// `max(x, 0) - x·t + ln(1 + e^{-|x|})`.
fn bce(logit: f64, target: f64) -> f64 {
    logit.max(0.0) - logit * target + (1.0 + (-logit.abs()).exp()).ln()
}

/// Forward pass of the scorer MLP on one input row, returning the logit.
fn score(scorer: &[Dense64], slope: f64, input: &[f64]) -> f64 {
    let mut h = input.to_vec();
    let last = scorer.len() - 1;
    for (l, layer) in scorer.iter().enumerate() {
        let mut next = vec![0.0f64; layer.b.len()];
        for (j, out) in next.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            for (t, &v) in h.iter().enumerate() {
                acc += v * layer.w[t][j];
            }
            acc += layer.b[j];
            *out = if l != last && acc <= 0.0 { slope * acc } else { acc };
        }
        h = next;
    }
    assert_eq!(h.len(), 1, "scorer must end in a single logit");
    h[0]
}

impl Eq5Setup {
    /// Evaluates `J_BG` exactly as written above.
    pub fn loss(&self) -> f64 {
        let (zu, zi) = embed_all(
            &self.user_adj,
            &self.item_adj,
            &self.user_feats,
            &self.item_feats,
            &self.user_steps,
            &self.item_steps,
            self.slope,
        );
        let pair_input = |u: usize, i: usize, weight: f64| -> Vec<f64> {
            let mut row = zu[u].clone();
            row.extend_from_slice(&zi[i]);
            row.push(weight);
            row
        };
        let mean_bce = |pairs: &mut dyn Iterator<Item = (f64, f64)>| -> f64 {
            let mut total = 0.0f64;
            let mut n = 0usize;
            for (logit, target) in pairs {
                total += bce(logit, target);
                n += 1;
            }
            total / n.max(1) as f64
        };
        let pos = mean_bce(&mut self.positives.iter().map(|&(u, i, w)| {
            (score(&self.scorer, self.slope, &pair_input(u, i, (1.0 + w).ln())), 1.0)
        }));
        let negu = mean_bce(&mut self.neg_user_pairs.iter().map(|&(un, i)| {
            (score(&self.scorer, self.slope, &pair_input(un, i, self.gamma)), 0.0)
        }));
        let negi = mean_bce(&mut self.neg_item_pairs.iter().map(|&(u, in_)| {
            (score(&self.scorer, self.slope, &pair_input(u, in_, self.gamma)), 0.0)
        }));
        pos + self.q_users * negu + self.q_items * negi
    }

    /// `(rows, cols)` of a parameter tensor (biases are `1 x d`).
    pub fn param_shape(&self, p: Eq5Param) -> (usize, usize) {
        let (m, is_bias) = self.param_ref(p);
        if is_bias { (1, m[0].len()) } else { (m.len(), m[0].len()) }
    }

    fn param_ref(&self, p: Eq5Param) -> (Rows64, bool) {
        match p {
            Eq5Param::UserM(s) => (self.user_steps[s].m.clone(), false),
            Eq5Param::UserW(s) => (self.user_steps[s].w.clone(), false),
            Eq5Param::UserB(s) => (vec![self.user_steps[s].b.clone()], true),
            Eq5Param::ItemM(s) => (self.item_steps[s].m.clone(), false),
            Eq5Param::ItemW(s) => (self.item_steps[s].w.clone(), false),
            Eq5Param::ItemB(s) => (vec![self.item_steps[s].b.clone()], true),
            Eq5Param::ScorerW(l) => (self.scorer[l].w.clone(), false),
            Eq5Param::ScorerB(l) => (vec![self.scorer[l].b.clone()], true),
        }
    }

    fn entry_mut(&mut self, p: Eq5Param, r: usize, c: usize) -> &mut f64 {
        match p {
            Eq5Param::UserM(s) => &mut self.user_steps[s].m[r][c],
            Eq5Param::UserW(s) => &mut self.user_steps[s].w[r][c],
            Eq5Param::UserB(s) => {
                assert_eq!(r, 0);
                &mut self.user_steps[s].b[c]
            }
            Eq5Param::ItemM(s) => &mut self.item_steps[s].m[r][c],
            Eq5Param::ItemW(s) => &mut self.item_steps[s].w[r][c],
            Eq5Param::ItemB(s) => {
                assert_eq!(r, 0);
                &mut self.item_steps[s].b[c]
            }
            Eq5Param::ScorerW(l) => &mut self.scorer[l].w[r][c],
            Eq5Param::ScorerB(l) => {
                assert_eq!(r, 0);
                &mut self.scorer[l].b[c]
            }
        }
    }

    /// Central finite difference `∂J/∂θ[r][c] ≈ (J(θ+ε) - J(θ-ε)) / 2ε`
    /// for a single entry. The setup is restored afterwards.
    pub fn central_diff(&mut self, p: Eq5Param, r: usize, c: usize, eps: f64) -> f64 {
        let original = *self.entry_mut(p, r, c);
        *self.entry_mut(p, r, c) = original + eps;
        let plus = self.loss();
        *self.entry_mut(p, r, c) = original - eps;
        let minus = self.loss();
        *self.entry_mut(p, r, c) = original;
        (plus - minus) / (2.0 * eps)
    }

    /// Finite-difference gradient of the whole parameter tensor.
    pub fn fd_grad(&mut self, p: Eq5Param, eps: f64) -> Rows64 {
        let (rows, cols) = self.param_shape(p);
        let mut g = vec![vec![0.0f64; cols]; rows];
        for r in 0..rows {
            for c in 0..cols {
                g[r][c] = self.central_diff(p, r, c, eps);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic instance: 2 users, 2 items, one SAGE step
    /// with dimension 2, scorer 5 -> 2 -> 1.
    fn tiny() -> Eq5Setup {
        let step = |scale: f64| SageStep {
            m: vec![vec![0.3 * scale, -0.1], vec![0.2, 0.4 * scale]],
            w: vec![
                vec![0.5, -0.2],
                vec![0.1, 0.3],
                vec![-0.4, 0.2],
                vec![0.25, -0.15],
            ],
            b: vec![0.05, -0.05],
        };
        Eq5Setup {
            user_adj: vec![vec![0, 1], vec![1]],
            item_adj: vec![vec![0], vec![0, 1]],
            user_feats: vec![vec![0.8, -0.3], vec![-0.5, 0.6]],
            item_feats: vec![vec![0.2, 0.9], vec![-0.7, 0.1]],
            user_steps: vec![step(1.0)],
            item_steps: vec![step(-1.0)],
            scorer: vec![
                Dense64 {
                    w: vec![
                        vec![0.3, -0.2],
                        vec![-0.1, 0.4],
                        vec![0.2, 0.1],
                        vec![0.15, -0.3],
                        vec![0.5, 0.25],
                    ],
                    b: vec![0.02, -0.02],
                },
                Dense64 { w: vec![vec![0.6], vec![-0.35]], b: vec![0.01] },
            ],
            slope: 0.01,
            positives: vec![(0, 0, 2.0), (0, 1, 1.0), (1, 1, 3.0)],
            neg_user_pairs: vec![(1, 0), (0, 1)],
            neg_item_pairs: vec![(0, 1), (1, 0)],
            gamma: 0.7,
            q_users: 2.0,
            q_items: 3.0,
        }
    }

    #[test]
    fn loss_is_finite_and_positive() {
        let l = tiny().loss();
        assert!(l.is_finite() && l > 0.0, "loss = {l}");
    }

    #[test]
    fn central_diff_restores_the_setup() {
        let mut s = tiny();
        let before = s.loss();
        let _ = s.central_diff(Eq5Param::UserM(0), 1, 0, 1e-4);
        assert_eq!(s.loss(), before);
    }

    #[test]
    fn fd_grads_are_nonzero_for_every_parameter() {
        // Every parameter (both cross-side matrices included) must
        // influence the loss on this instance.
        let mut s = tiny();
        for p in [
            Eq5Param::UserM(0),
            Eq5Param::UserW(0),
            Eq5Param::UserB(0),
            Eq5Param::ItemM(0),
            Eq5Param::ItemW(0),
            Eq5Param::ItemB(0),
            Eq5Param::ScorerW(0),
            Eq5Param::ScorerB(0),
            Eq5Param::ScorerW(1),
            Eq5Param::ScorerB(1),
        ] {
            let g = s.fd_grad(p, 1e-5);
            let max = g.iter().flatten().fold(0.0f64, |a, &v| a.max(v.abs()));
            assert!(max > 1e-9, "{p:?} gradient is all zero");
        }
    }

    #[test]
    fn gamma_only_affects_negative_terms() {
        let mut s = tiny();
        s.neg_user_pairs.clear();
        s.neg_item_pairs.clear();
        let base = s.loss();
        s.gamma = 10.0;
        assert_eq!(s.loss(), base);
    }
}
