//! The metric registry: a thread-safe store of counters, gauges,
//! histograms, series, and span timers.
//!
//! All mutation goes through a single [`std::sync::Mutex`]; callers are
//! expected to record at coarse granularity (per minibatch, per level,
//! per I/O operation), where one uncontended lock acquisition is noise.
//! The hot-path guard lives one layer up: the free functions in the
//! crate root check the global enabled flag with a relaxed atomic load
//! and skip the lock (and the `Instant::now()` call for spans) entirely
//! when observability is off.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::snapshot::MetricsSnapshot;

/// Aggregate statistics over a stream of recorded values.
///
/// Buckets are base-2 logarithmic over the absolute value: a finite
/// non-zero sample `v` lands in the bucket keyed by
/// `v.abs().log2().floor()` clamped to `[-64, 64]`, so e.g. key `-3`
/// covers `[0.125, 0.25)`. Zero samples are counted in the bucket keyed
/// by [`Histogram::ZERO_BUCKET`]. Non-finite samples (NaN, ±inf) are
/// tallied in `non_finite` and excluded from `sum`/`min`/`max` — the
/// registry must never panic or poison aggregates because the observed
/// computation diverged.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    /// Number of finite samples recorded.
    pub count: u64,
    /// Number of NaN/±inf samples (recorded but not aggregated).
    pub non_finite: u64,
    /// Sum of finite samples.
    pub sum: f64,
    /// Smallest finite sample, if any.
    pub min: Option<f64>,
    /// Largest finite sample, if any.
    pub max: Option<f64>,
    /// Sparse log2 buckets (see type docs).
    pub buckets: BTreeMap<i32, u64>,
}

impl Histogram {
    /// Bucket key reserved for exactly-zero samples.
    pub const ZERO_BUCKET: i32 = i32::MIN;

    fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
        let key = if v == 0.0 {
            Self::ZERO_BUCKET
        } else {
            (v.abs().log2().floor() as i64).clamp(-64, 64) as i32
        };
        *self.buckets.entry(key).or_insert(0) += 1;
    }

    /// Mean of finite samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// Accumulated wall-clock time for a named span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans under this name.
    pub count: u64,
    /// Total wall-clock nanoseconds across all completions.
    pub total_nanos: u64,
    /// Longest single completion, in nanoseconds.
    pub max_nanos: u64,
}

impl SpanStat {
    /// Total accumulated seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_nanos as f64 / 1e9
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, Vec<f64>>,
    spans: BTreeMap<String, SpanStat>,
}

/// Thread-safe metric store. Most code uses the process-global instance
/// via the free functions in the crate root; a local `Registry` is
/// handy in tests.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the lock can only come from OOM inside a
        // BTreeMap insert; recovering the data beats poisoning forever.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `delta` to the monotone counter `name`.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut g = self.lock();
        let c = g.counters.entry(name.to_owned()).or_insert(0);
        *c = c.saturating_add(delta);
    }

    /// Read a counter (0 when never written).
    pub fn counter_get(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Set the last-value gauge `name`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_owned(), value);
    }

    /// Read a gauge, if ever set.
    pub fn gauge_get(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Record one sample into histogram `name`.
    pub fn histogram_record(&self, name: &str, value: f64) {
        self.lock()
            .histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Record a whole batch of metric mutations under a single lock
    /// acquisition: counter deltas, then histogram samples, then series
    /// appends. Hot loops that would otherwise take the registry lock
    /// many times per iteration (e.g. the per-minibatch block in the
    /// trainer) should collect their updates and flush them through
    /// this entry point.
    pub fn record_batch(
        &self,
        counters: &[(&str, u64)],
        histograms: &[(&str, f64)],
        series: &[(&str, f64)],
    ) {
        let mut g = self.lock();
        for &(name, delta) in counters {
            let c = g.counters.entry(name.to_owned()).or_insert(0);
            *c = c.saturating_add(delta);
        }
        for &(name, value) in histograms {
            g.histograms.entry(name.to_owned()).or_default().record(value);
        }
        for &(name, value) in series {
            g.series.entry(name.to_owned()).or_default().push(value);
        }
    }

    /// Read a snapshot of histogram `name`, if any samples were recorded.
    pub fn histogram_get(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// Append one value to the ordered series `name`.
    pub fn series_push(&self, name: &str, value: f64) {
        self.lock()
            .series
            .entry(name.to_owned())
            .or_default()
            .push(value);
    }

    /// Read a copy of series `name` (empty when never written).
    pub fn series_get(&self, name: &str) -> Vec<f64> {
        self.lock().series.get(name).cloned().unwrap_or_default()
    }

    /// Record one completed span of `nanos` wall-clock nanoseconds.
    pub fn span_record(&self, name: &str, nanos: u64) {
        let mut g = self.lock();
        let s = g.spans.entry(name.to_owned()).or_default();
        s.count += 1;
        s.total_nanos = s.total_nanos.saturating_add(nanos);
        s.max_nanos = s.max_nanos.max(nanos);
    }

    /// Read accumulated stats for span `name`, if ever completed.
    pub fn span_get(&self, name: &str) -> Option<SpanStat> {
        self.lock().spans.get(name).copied()
    }

    /// Clear every metric.
    pub fn reset(&self) {
        *self.lock() = Inner::default();
    }

    /// Capture the current counter values (the durable subset carried in
    /// checkpoint metadata — see DESIGN.md §10).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .lock()
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }

    /// Fold a snapshot back in by *adding* each counter, so a resumed
    /// run continues from the totals recorded at checkpoint time.
    pub fn restore(&self, snap: &MetricsSnapshot) {
        let mut g = self.lock();
        for (k, v) in &snap.counters {
            let c = g.counters.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(*v);
        }
    }

    /// Visit every metric under one lock, in sorted key order per kind.
    /// Used by the JSON renderer.
    pub(crate) fn with_sorted<R>(
        &self,
        f: impl FnOnce(
            &BTreeMap<String, u64>,
            &BTreeMap<String, f64>,
            &BTreeMap<String, Histogram>,
            &BTreeMap<String, Vec<f64>>,
            &BTreeMap<String, SpanStat>,
        ) -> R,
    ) -> R {
        let g = self.lock();
        f(&g.counters, &g.gauges, &g.histograms, &g.series, &g.spans)
    }
}

/// RAII timer: records elapsed wall-clock into the global registry's
/// span `name` on drop. Obtained from [`crate::span`]; inert (no clock
/// read, no lock) when observability is disabled.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    state: Option<(String, Instant)>,
}

impl SpanGuard {
    pub(crate) fn started(name: String) -> Self {
        Self {
            state: Some((name, Instant::now())),
        }
    }

    pub(crate) fn disabled() -> Self {
        Self { state: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.state.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            crate::global().span_record(&name, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        assert_eq!(r.counter_get("a"), 5);
        assert_eq!(r.counter_get("missing"), 0);
        r.counter_add("a", u64::MAX);
        assert_eq!(r.counter_get("a"), u64::MAX);
    }

    #[test]
    fn histogram_buckets_and_non_finite() {
        let r = Registry::new();
        for v in [0.0, 0.15, 0.2, 1.5, f64::NAN, f64::INFINITY] {
            r.histogram_record("h", v);
        }
        let h = r.histogram_get("h").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.non_finite, 2);
        assert_eq!(h.min, Some(0.0));
        assert_eq!(h.max, Some(1.5));
        assert_eq!(h.buckets[&Histogram::ZERO_BUCKET], 1);
        // 0.15 and 0.2 both live in [2^-3, 2^-2); 1.5 in [2^0, 2^1).
        assert_eq!(h.buckets[&-3], 2);
        assert_eq!(h.buckets[&0], 1);
        assert!((h.mean().unwrap() - (0.0 + 0.15 + 0.2 + 1.5) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn spans_series_gauges_roundtrip() {
        let r = Registry::new();
        r.span_record("s", 10);
        r.span_record("s", 30);
        let s = r.span_get("s").unwrap();
        assert_eq!((s.count, s.total_nanos, s.max_nanos), (2, 40, 30));
        r.series_push("x", 1.0);
        r.series_push("x", 2.0);
        assert_eq!(r.series_get("x"), vec![1.0, 2.0]);
        r.gauge_set("g", 7.5);
        assert_eq!(r.gauge_get("g"), Some(7.5));
        r.reset();
        assert!(r.span_get("s").is_none());
        assert!(r.series_get("x").is_empty());
    }

    #[test]
    fn record_batch_matches_individual_calls() {
        let batched = Registry::new();
        batched.record_batch(
            &[("c", 2), ("c", 3), ("d", 1)],
            &[("h", 0.5), ("h", 1.5)],
            &[("s", 1.0), ("s", 2.0)],
        );
        let single = Registry::new();
        single.counter_add("c", 2);
        single.counter_add("c", 3);
        single.counter_add("d", 1);
        single.histogram_record("h", 0.5);
        single.histogram_record("h", 1.5);
        single.series_push("s", 1.0);
        single.series_push("s", 2.0);
        assert_eq!(batched.counter_get("c"), single.counter_get("c"));
        assert_eq!(batched.counter_get("d"), single.counter_get("d"));
        assert_eq!(batched.histogram_get("h"), single.histogram_get("h"));
        assert_eq!(batched.series_get("s"), single.series_get("s"));
    }

    #[test]
    fn snapshot_restore_adds() {
        let r = Registry::new();
        r.counter_add("train.batches", 7);
        let snap = r.snapshot();
        let fresh = Registry::new();
        fresh.counter_add("train.batches", 1);
        fresh.restore(&snap);
        assert_eq!(fresh.counter_get("train.batches"), 8);
    }
}
