//! Schema-stable JSON run reports (`--metrics <path>`).
//!
//! The emitted document is `hignn-metrics/v1`, documented in DESIGN.md
//! §10. Keys within each section are sorted (the registry stores
//! `BTreeMap`s), so two runs with the same metric set produce the same
//! key order; the only hand-rolled JSON here is a minimal writer — the
//! workspace is zero-dependency by policy.

use crate::registry::{Histogram, Registry, SpanStat};

/// Identifier stamped into every report's top-level `schema` key.
pub const SCHEMA: &str = "hignn-metrics/v1";

/// Escape a string for inclusion inside a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON value. Non-finite values (which valid JSON
/// cannot carry) become `null`; finite values use Rust's shortest
/// round-trip formatting.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v:?}");
        // `{:?}` prints e.g. `1.0`; integers-valued floats keep the dot,
        // which keeps the type stable for consumers.
        s
    } else {
        "null".to_owned()
    }
}

fn render_histogram(h: &Histogram) -> String {
    let buckets = h
        .buckets
        .iter()
        .map(|(k, v)| {
            let label = if *k == Histogram::ZERO_BUCKET {
                "zero".to_owned()
            } else {
                k.to_string()
            };
            format!("\"{label}\":{v}")
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"count\":{},\"non_finite\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"log2_buckets\":{{{buckets}}}}}",
        h.count,
        h.non_finite,
        json_f64(h.sum),
        h.min.map_or("null".to_owned(), json_f64),
        h.max.map_or("null".to_owned(), json_f64),
        h.mean().map_or("null".to_owned(), json_f64),
    )
}

fn render_span(s: &SpanStat) -> String {
    let mean = if s.count > 0 {
        s.total_seconds() / s.count as f64
    } else {
        0.0
    };
    format!(
        "{{\"count\":{},\"total_seconds\":{},\"mean_seconds\":{},\"max_seconds\":{}}}",
        s.count,
        json_f64(s.total_seconds()),
        json_f64(mean),
        json_f64(s.max_nanos as f64 / 1e9),
    )
}

fn render_map<V>(entries: &std::collections::BTreeMap<String, V>, f: impl Fn(&V) -> String) -> String {
    let body = entries
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape(k), f(v)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{body}}}")
}

/// Render the full report for `registry`.
///
/// `extras` are caller-supplied top-level entries (e.g. `command`,
/// `seed`); each value must already be valid JSON (use
/// [`json_str`]/[`json_u64`]/[`json_num`] to build them). Extras are
/// emitted before the metric sections, in the order given.
pub fn render(registry: &Registry, extras: &[(&str, String)]) -> String {
    registry.with_sorted(|counters, gauges, histograms, series, spans| {
        let mut parts = vec![format!("\"schema\":\"{SCHEMA}\"")];
        for (k, v) in extras {
            parts.push(format!("\"{}\":{}", escape(k), v));
        }
        parts.push(format!("\"counters\":{}", render_map(counters, |v| v.to_string())));
        parts.push(format!("\"gauges\":{}", render_map(gauges, |v| json_f64(*v))));
        parts.push(format!(
            "\"histograms\":{}",
            render_map(histograms, render_histogram)
        ));
        parts.push(format!(
            "\"series\":{}",
            render_map(series, |vs| {
                let body = vs.iter().map(|v| json_f64(*v)).collect::<Vec<_>>().join(",");
                format!("[{body}]")
            })
        ));
        parts.push(format!("\"spans\":{}", render_map(spans, render_span)));
        format!("{{{}}}\n", parts.join(","))
    })
}

/// Build a JSON string literal for use as an extras value.
pub fn json_str(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Build a JSON integer for use as an extras value.
pub fn json_u64(v: u64) -> String {
    v.to_string()
}

/// Build a JSON number for use as an extras value (`null` if non-finite).
pub fn json_num(v: f64) -> String {
    json_f64(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_all_sections_sorted() {
        let r = Registry::new();
        r.counter_add("b", 2);
        r.counter_add("a", 1);
        r.gauge_set("g", 0.5);
        r.histogram_record("h", 0.25);
        r.series_push("s", 1.0);
        r.span_record("sp", 2_000_000_000);
        let json = render(&r, &[("command", json_str("train")), ("seed", json_u64(7))]);
        assert!(json.starts_with(&format!("{{\"schema\":\"{SCHEMA}\"")));
        assert!(json.contains("\"command\":\"train\""));
        assert!(json.contains("\"seed\":7"));
        // Sorted counter keys.
        let a = json.find("\"a\":1").unwrap();
        let b = json.find("\"b\":2").unwrap();
        assert!(a < b);
        assert!(json.contains("\"h\":{\"count\":1"));
        assert!(json.contains("\"log2_buckets\":{\"-2\":1}"));
        assert!(json.contains("\"s\":[1.0]"));
        assert!(json.contains("\"total_seconds\":2.0"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn escaping_and_non_finite() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2.0");
    }
}
