//! Zero-dependency observability for the HiGNN workspace: counters,
//! gauges, histograms, ordered series, and scoped span timers behind a
//! process-global registry, plus schema-stable JSON run reports and
//! structured progress logging.
//!
//! # Inertness contract
//!
//! Instrumentation must be *provably inert*: enabling metrics may not
//! change a single bit of any model, checkpoint, or embedding. The
//! design enforces this structurally —
//!
//! - recording only ever *reads* already-computed values (a loss, a
//!   gradient matrix, a buffer-pool counter) and the monotonic clock;
//!   it never draws from an RNG and never participates in any float
//!   accumulation the training path depends on;
//! - every recording entry point is gated on [`enabled`] (one relaxed
//!   atomic load), so a metrics-off run skips even the clock reads;
//! - derived quantities (e.g. the gradient L2 norm) are computed in
//!   separate f64 accumulators owned by the instrumentation, leaving
//!   the f32 training-side accumulation order untouched.
//!
//! The contract is asserted end-to-end: the determinism suite builds a
//! hierarchy with metrics on and off at 1 and N threads and compares
//! serialized bytes, and the kernels bench compares per-epoch loss bits
//! while measuring the overhead (reported in `BENCH_kernels.json`).
//!
//! # Global state
//!
//! Metric recording (`set_enabled`) and progress logging
//! (`log::set_log_format`) are independent toggles, both off by
//! default. Everything records into [`global`], a lazily-created
//! [`Registry`]; library code therefore needs no plumbing, and the CLI
//! decides per-invocation whether anything is observed at all.

#![warn(missing_docs)]

pub mod log;
pub mod registry;
pub mod report;
pub mod snapshot;

pub use log::{
    heartbeat, log_enabled, log_event, log_format, maybe_heartbeat, set_heartbeat_interval,
    set_log_format, LogFormat, LogValue,
};
pub use registry::{Histogram, Registry, SpanGuard, SpanStat};
pub use snapshot::MetricsSnapshot;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-global registry all free functions record into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Turn metric recording on or off process-wide. Off (the default)
/// makes every recording helper in this crate a no-op after a single
/// relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric recording is currently enabled.
///
/// Instrumentation sites with non-trivial derivation cost (e.g. a
/// gradient-norm reduction) should check this themselves so the
/// derivation is skipped too, not just the registry write.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Add `delta` to global counter `name` (no-op when disabled).
pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        global().counter_add(name, delta);
    }
}

/// Set global gauge `name` (no-op when disabled).
pub fn gauge_set(name: &str, value: f64) {
    if enabled() {
        global().gauge_set(name, value);
    }
}

/// Record a sample into global histogram `name` (no-op when disabled).
pub fn histogram_record(name: &str, value: f64) {
    if enabled() {
        global().histogram_record(name, value);
    }
}

/// Flush a batch of counter deltas, histogram samples, and series
/// appends into the global registry under one lock acquisition (no-op
/// when disabled). See [`Registry::record_batch`].
pub fn record_batch(counters: &[(&str, u64)], histograms: &[(&str, f64)], series: &[(&str, f64)]) {
    if enabled() {
        global().record_batch(counters, histograms, series);
    }
}

/// Append to global series `name` (no-op when disabled).
pub fn series_push(name: &str, value: f64) {
    if enabled() {
        global().series_push(name, value);
    }
}

/// Start a scoped wall-clock timer that records into global span
/// `name` when dropped. When metrics are disabled the guard is inert
/// (no clock read, nothing recorded on drop).
pub fn span(name: &str) -> SpanGuard {
    if enabled() {
        SpanGuard::started(name.to_owned())
    } else {
        SpanGuard::disabled()
    }
}

/// [`span`] for pre-built (e.g. per-level formatted) names, avoiding a
/// second allocation when the caller already owns the `String`.
pub fn span_owned(name: String) -> SpanGuard {
    if enabled() {
        SpanGuard::started(name)
    } else {
        SpanGuard::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The enabled flag and registry are process-global; serialize.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_helpers_record_nothing() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        global().reset();
        counter_add("c", 1);
        gauge_set("g", 1.0);
        histogram_record("h", 1.0);
        series_push("s", 1.0);
        drop(span("sp"));
        assert_eq!(global().counter_get("c"), 0);
        assert!(global().gauge_get("g").is_none());
        assert!(global().histogram_get("h").is_none());
        assert!(global().series_get("s").is_empty());
        assert!(global().span_get("sp").is_none());
    }

    #[test]
    fn enabled_helpers_record_into_global() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        global().reset();
        counter_add("c", 2);
        histogram_record("h", 0.5);
        {
            let _sp = span("sp");
        }
        set_enabled(false);
        assert_eq!(global().counter_get("c"), 2);
        assert_eq!(global().histogram_get("h").unwrap().count, 1);
        assert_eq!(global().span_get("sp").unwrap().count, 1);
        global().reset();
    }
}
