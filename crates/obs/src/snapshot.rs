//! Durable counter snapshots, carried inside checkpoint metadata so a
//! resumed run continues its counters (DESIGN.md §10).
//!
//! Wire format (all little-endian, matching the checkpoint encoding):
//!
//! ```text
//! u32 entry_count
//! repeat entry_count times:
//!   u32 name_len | name bytes (UTF-8) | u64 value
//! ```
//!
//! Entries are written in sorted name order (the registry iterates a
//! `BTreeMap`), so encoding is deterministic for a given counter state.

/// Counter values captured from a [`crate::Registry`] at a point in time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in sorted name order.
    pub counters: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    /// True when no counters were captured.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Serialize to the wire format above.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.counters.len() * 24);
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (name, value) in &self.counters {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&value.to_le_bytes());
        }
        out
    }

    /// Parse the wire format; the buffer must contain exactly one
    /// snapshot (trailing bytes are an error, so corruption in the
    /// surrounding record cannot be silently absorbed).
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Result<&'a [u8], String> {
            if bytes.len() < n {
                return Err(format!(
                    "metrics snapshot truncated: wanted {n} bytes, had {}",
                    bytes.len()
                ));
            }
            let (head, tail) = bytes.split_at(n);
            *bytes = tail;
            Ok(head)
        }
        let mut rest = bytes;
        let count = u32::from_le_bytes(take(&mut rest, 4)?.try_into().unwrap()) as usize;
        let mut counters = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let name_len = u32::from_le_bytes(take(&mut rest, 4)?.try_into().unwrap()) as usize;
            let name = std::str::from_utf8(take(&mut rest, name_len)?)
                .map_err(|e| format!("metrics snapshot name not UTF-8: {e}"))?
                .to_owned();
            let value = u64::from_le_bytes(take(&mut rest, 8)?.try_into().unwrap());
            counters.push((name, value));
        }
        if !rest.is_empty() {
            return Err(format!(
                "metrics snapshot has {} trailing bytes",
                rest.len()
            ));
        }
        Ok(Self { counters })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let snap = MetricsSnapshot {
            counters: vec![("a.b".into(), 7), ("train.batches".into(), u64::MAX)],
        };
        let bytes = snap.encode();
        assert_eq!(MetricsSnapshot::decode(&bytes).unwrap(), snap);
    }

    #[test]
    fn empty_roundtrip() {
        let snap = MetricsSnapshot::default();
        assert_eq!(snap.encode(), vec![0, 0, 0, 0]);
        assert!(MetricsSnapshot::decode(&snap.encode()).unwrap().is_empty());
    }

    #[test]
    fn rejects_truncation_and_trailing_bytes() {
        let snap = MetricsSnapshot {
            counters: vec![("x".into(), 1)],
        };
        let bytes = snap.encode();
        assert!(MetricsSnapshot::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut padded = bytes;
        padded.push(0);
        assert!(MetricsSnapshot::decode(&padded).is_err());
    }
}
