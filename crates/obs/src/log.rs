//! Structured progress logging: plain or JSON lines on stderr, plus a
//! rate-limited heartbeat.
//!
//! Logging is off by default and independent of metric recording; the
//! CLI's `--log-format {plain,json}` turns it on. Lines go to stderr so
//! machine-readable command output on stdout stays clean.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::report::{escape, json_f64};

/// Output encoding for progress lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogFormat {
    /// Human-oriented `[hignn] event key=value ...` lines.
    Plain,
    /// One JSON object per line: `{"event":"...","key":value,...}`.
    Json,
}

/// A single typed field of a log event.
#[derive(Clone, Debug)]
pub enum LogValue {
    /// Unsigned integer field.
    Uint(u64),
    /// Floating-point field (rendered as `null` in JSON if non-finite).
    Float(f64),
    /// String field.
    Str(String),
}

impl LogValue {
    fn render_json(&self) -> String {
        match self {
            LogValue::Uint(v) => v.to_string(),
            LogValue::Float(v) => json_f64(*v),
            LogValue::Str(s) => format!("\"{}\"", escape(s)),
        }
    }

    fn render_plain(&self) -> String {
        match self {
            LogValue::Uint(v) => v.to_string(),
            LogValue::Float(v) => format!("{v:.6}"),
            LogValue::Str(s) => s.clone(),
        }
    }
}

// 0 = off, 1 = plain, 2 = json.
static LOG_FORMAT: AtomicU8 = AtomicU8::new(0);
// Milliseconds since `epoch()` of the last heartbeat, +1 (0 = never).
static LAST_HEARTBEAT: AtomicU64 = AtomicU64::new(0);
// Minimum milliseconds between rate-limited heartbeats.
static HEARTBEAT_INTERVAL_MS: AtomicU64 = AtomicU64::new(5_000);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

type Sink = Mutex<Option<std::sync::Arc<Mutex<Vec<String>>>>>;
fn test_sink() -> &'static Sink {
    static SINK: OnceLock<Sink> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Redirect emitted lines into a buffer instead of stderr (testing only).
#[doc(hidden)]
pub fn set_test_sink(sink: Option<std::sync::Arc<Mutex<Vec<String>>>>) {
    *test_sink().lock().unwrap_or_else(|e| e.into_inner()) = sink;
}

/// Select the log format, or `None` to disable logging entirely.
pub fn set_log_format(format: Option<LogFormat>) {
    let v = match format {
        None => 0,
        Some(LogFormat::Plain) => 1,
        Some(LogFormat::Json) => 2,
    };
    LOG_FORMAT.store(v, Ordering::Relaxed);
}

/// The currently selected log format, if logging is enabled.
pub fn log_format() -> Option<LogFormat> {
    match LOG_FORMAT.load(Ordering::Relaxed) {
        1 => Some(LogFormat::Plain),
        2 => Some(LogFormat::Json),
        _ => None,
    }
}

/// True when progress lines should be emitted.
pub fn log_enabled() -> bool {
    LOG_FORMAT.load(Ordering::Relaxed) != 0
}

/// Set the minimum spacing between rate-limited heartbeats
/// (see [`maybe_heartbeat`]). Zero means every call fires.
pub fn set_heartbeat_interval(interval: Duration) {
    HEARTBEAT_INTERVAL_MS.store(interval.as_millis() as u64, Ordering::Relaxed);
}

fn emit_line(line: String) {
    let guard = test_sink().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(buf) = guard.as_ref() {
        buf.lock().unwrap_or_else(|e| e.into_inner()).push(line);
    } else {
        eprintln!("{line}");
    }
}

/// Emit one progress line for `event` if logging is enabled.
pub fn log_event(event: &str, fields: &[(&str, LogValue)]) {
    let Some(format) = log_format() else { return };
    let line = match format {
        LogFormat::Plain => {
            let body = fields
                .iter()
                .map(|(k, v)| format!("{k}={}", v.render_plain()))
                .collect::<Vec<_>>()
                .join(" ");
            if body.is_empty() {
                format!("[hignn] {event}")
            } else {
                format!("[hignn] {event} {body}")
            }
        }
        LogFormat::Json => {
            let mut parts = vec![format!("\"event\":\"{}\"", escape(event))];
            parts.extend(
                fields
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", escape(k), v.render_json())),
            );
            format!("{{{}}}", parts.join(","))
        }
    };
    emit_line(line);
}

/// Emit a `heartbeat` event unconditionally (used at natural progress
/// boundaries such as epoch ends). An `elapsed_s` field with time since
/// process start is appended automatically.
pub fn heartbeat(fields: &[(&str, LogValue)]) {
    if !log_enabled() {
        return;
    }
    let elapsed = epoch().elapsed().as_secs_f64();
    LAST_HEARTBEAT.store(
        epoch().elapsed().as_millis() as u64 + 1,
        Ordering::Relaxed,
    );
    let mut all = fields.to_vec();
    all.push(("elapsed_s", LogValue::Float(elapsed)));
    log_event("heartbeat", &all);
}

/// Rate-limited heartbeat for tight loops: fires only when at least the
/// configured interval has passed since the last heartbeat. The field
/// closure runs only when the line will actually be emitted. Returns
/// whether a line was emitted.
pub fn maybe_heartbeat(fields: impl FnOnce() -> Vec<(&'static str, LogValue)>) -> bool {
    if !log_enabled() {
        return false;
    }
    let now = epoch().elapsed().as_millis() as u64 + 1;
    let last = LAST_HEARTBEAT.load(Ordering::Relaxed);
    let interval = HEARTBEAT_INTERVAL_MS.load(Ordering::Relaxed);
    if last != 0 && now.saturating_sub(last) < interval {
        return false;
    }
    // Racing emitters may both pass the check; heartbeats are advisory,
    // so an occasional double line beats a CAS loop here.
    heartbeat(&fields());
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // Log state is process-global; serialize the tests that touch it.
    fn with_captured_lines(format: LogFormat, f: impl FnOnce()) -> Vec<String> {
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let buf = Arc::new(Mutex::new(Vec::new()));
        set_test_sink(Some(buf.clone()));
        set_log_format(Some(format));
        f();
        set_log_format(None);
        set_test_sink(None);
        let lines = buf.lock().unwrap().clone();
        lines
    }

    #[test]
    fn json_lines_are_valid_objects() {
        let lines = with_captured_lines(LogFormat::Json, || {
            log_event(
                "epoch",
                &[
                    ("epoch", LogValue::Uint(3)),
                    ("loss", LogValue::Float(0.5)),
                    ("note", LogValue::Str("a\"b".into())),
                ],
            );
        });
        assert_eq!(
            lines,
            vec![r#"{"event":"epoch","epoch":3,"loss":0.5,"note":"a\"b"}"#]
        );
    }

    #[test]
    fn plain_lines_and_heartbeat_rate_limit() {
        let lines = with_captured_lines(LogFormat::Plain, || {
            set_heartbeat_interval(Duration::from_secs(3600));
            heartbeat(&[("epoch", LogValue::Uint(1))]);
            // Immediately after an unconditional heartbeat, the
            // rate-limited variant must not fire.
            assert!(!maybe_heartbeat(Vec::new));
            set_heartbeat_interval(Duration::ZERO);
            assert!(maybe_heartbeat(|| vec![("batch", LogValue::Uint(2))]));
            set_heartbeat_interval(Duration::from_secs(5));
        });
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("[hignn] heartbeat epoch=1 elapsed_s="));
        assert!(lines[1].starts_with("[hignn] heartbeat batch=2 elapsed_s="));
    }

    #[test]
    fn disabled_logging_emits_nothing() {
        let buf = {
            static LOCK: Mutex<()> = Mutex::new(());
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            let buf = Arc::new(Mutex::new(Vec::new()));
            set_test_sink(Some(buf.clone()));
            set_log_format(None);
            log_event("x", &[]);
            assert!(!maybe_heartbeat(Vec::new));
            set_test_sink(None);
            buf
        };
        assert!(buf.lock().unwrap().is_empty());
    }
}
