//! Weight initialisation schemes.
//!
//! All initialisers are deterministic given the caller's RNG, which keeps
//! every experiment in the workspace reproducible from a single seed.

use crate::matrix::Matrix;
use rand::Rng;

/// Uniform initialisation in `[-limit, limit]`.
pub fn uniform(rows: usize, cols: usize, limit: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
}

/// Xavier/Glorot uniform initialisation: `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// Appropriate for the sigmoid/tanh-free linear layers and the final
/// sigmoid output layer used by HiGNN's predictors.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rows, cols, limit, rng)
}

/// He (Kaiming) uniform initialisation: `limit = sqrt(6 / fan_in)`.
///
/// Appropriate for leaky-ReLU hidden layers (the paper uses leaky ReLU
/// throughout its fully connected stacks).
pub fn he_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let limit = (6.0 / rows as f32).sqrt();
    uniform(rows, cols, limit, rng)
}

/// Approximately standard-normal initialisation scaled by `std`.
///
/// Uses the sum-of-uniforms (Irwin-Hall) approximation so we do not need a
/// dedicated normal distribution dependency; 12 uniform draws give a
/// distribution with mean 0 and variance 1 that is normal to well within
/// the tolerance any initialiser requires.
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        let s: f32 = (0..12).map(|_| rng.gen_range(0.0f32..1.0)).sum::<f32>() - 6.0;
        s * std
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(64, 32, &mut rng);
        let limit = (6.0f32 / 96.0).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= limit + 1e-6));
        // Not degenerate: plenty of distinct values.
        assert!(w.data().iter().any(|&v| v > limit * 0.5));
        assert!(w.data().iter().any(|&v| v < -limit * 0.5));
    }

    #[test]
    fn he_within_limit() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = he_uniform(100, 10, &mut rng);
        let limit = (6.0f32 / 100.0).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= limit + 1e-6));
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = normal(200, 50, 2.0, &mut rng);
        let mean = w.mean();
        let var = w.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>()
            / (w.len() as f32 - 1.0);
        assert!(mean.abs() < 0.05, "mean {}", mean);
        assert!((var - 4.0).abs() < 0.2, "var {}", var);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(xavier_uniform(8, 8, &mut a), xavier_uniform(8, 8, &mut b));
    }
}
