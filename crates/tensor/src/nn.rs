//! Neural-network building blocks on top of the tape.
//!
//! [`Linear`] and [`Mlp`] register their weights in a [`ParamStore`] once
//! and can then be applied on any number of tapes. The paper's supervised
//! predictor (Fig. 2: fully connected 256/128/64 with leaky ReLU) and the
//! edge scorer `f` of Eqs. 5/12 are both instances of [`Mlp`].

use crate::init::{he_uniform, xavier_uniform};
use crate::param::{ParamId, ParamStore};
use crate::simd::{self, MathMode};
use crate::tape::{Tape, Var};
use crate::Matrix;
use rand::Rng;

/// Activation functions available to [`Mlp`] hidden layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Leaky ReLU with slope 0.01 (the paper's choice).
    LeakyRelu,
    /// Standard ReLU.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No nonlinearity.
    Identity,
}

impl Activation {
    fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::LeakyRelu => tape.leaky_relu(x, 0.01),
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Identity => x,
        }
    }
}

/// A fully connected layer `y = x W + b`.
#[derive(Clone, Copy, Debug)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a layer's parameters under `name.w` / `name.b`.
    ///
    /// `activation` only selects the initialisation scheme (He for ReLU
    /// family, Xavier otherwise); the caller applies the activation itself.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        let w = match activation {
            Activation::LeakyRelu | Activation::Relu => he_uniform(in_dim, out_dim, rng),
            _ => xavier_uniform(in_dim, out_dim, rng),
        };
        let w = store.add(format!("{name}.w"), w);
        let b = store.add(format!("{name}.b"), Matrix::zeros(1, out_dim));
        Linear { w, b, in_dim, out_dim }
    }

    /// Applies the layer on a tape.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        assert_eq!(x.cols(), self.in_dim, "Linear: input dim mismatch");
        let w = tape.param(self.w);
        let b = tape.param(self.b);
        let h = tape.matmul(x, w);
        tape.add_bias(h, b)
    }

    /// Tape-free inference.
    pub fn infer(&self, store: &ParamStore, x: &Matrix) -> Matrix {
        self.infer_mode(store, x, MathMode::Bitwise)
    }

    /// Tape-free inference in the given math tier.
    pub fn infer_mode(&self, store: &ParamStore, x: &Matrix, mode: MathMode) -> Matrix {
        x.matmul_mode(store.get(self.w), mode)
            .add_row_broadcast(store.get(self.b))
    }

    /// Weight parameter id.
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// Bias parameter id.
    pub fn bias(&self) -> ParamId {
        self.b
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// A multi-layer perceptron with a shared hidden activation and a linear
/// output layer.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer widths.
    ///
    /// `dims` lists `[input, hidden..., output]`; e.g. the paper's
    /// predictor head is `&[in, 256, 128, 64, 1]`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dims: &[usize],
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp: need at least input and output dims");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for (l, pair) in dims.windows(2).enumerate() {
            let act = if l + 2 == dims.len() { Activation::Identity } else { activation };
            layers.push(Linear::new(
                store,
                &format!("{name}.l{l}"),
                pair[0],
                pair[1],
                act,
                rng,
            ));
        }
        Mlp { layers, activation }
    }

    /// Applies the MLP; hidden layers use the configured activation, the
    /// output layer is linear (producing logits).
    pub fn forward(&self, tape: &mut Tape, mut x: Var) -> Var {
        let last = self.layers.len() - 1;
        for (l, layer) in self.layers.iter().enumerate() {
            x = layer.forward(tape, x);
            if l != last {
                x = self.activation.apply(tape, x);
            }
        }
        x
    }

    /// Tape-free inference producing logits.
    pub fn infer(&self, store: &ParamStore, x: &Matrix) -> Matrix {
        self.infer_mode(store, x, MathMode::Bitwise)
    }

    /// Tape-free inference producing logits, in the given math tier.
    ///
    /// FastMath vectorises the matmuls and the leaky-ReLU activation;
    /// `tanh` stays scalar in both tiers (no vector `tanh` kernel).
    pub fn infer_mode(&self, store: &ParamStore, x: &Matrix, mode: MathMode) -> Matrix {
        let mut h = self.layers[0].infer_mode(store, x, mode);
        for layer in &self.layers[1..] {
            // The previous layer was a hidden one: activate in place.
            match (self.activation, mode) {
                (Activation::LeakyRelu, MathMode::FastMath) => {
                    simd::leaky_relu_fast(h.data_mut(), 0.01)
                }
                (Activation::LeakyRelu, MathMode::Bitwise) => {
                    h.map_assign(|v| if v > 0.0 { v } else { 0.01 * v })
                }
                (Activation::Relu, _) => h.map_assign(|v| v.max(0.0)),
                (Activation::Tanh, _) => h.map_assign(f32::tanh),
                (Activation::Identity, _) => {}
            }
            h = layer.infer_mode(store, &h, mode);
        }
        h
    }

    /// The underlying layers.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim()
    }

    /// All parameter ids of the MLP (for targeted regularisation).
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.layers
            .iter()
            .flat_map(|l| [l.weight(), l.bias()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fc", 4, 3, Activation::Identity, &mut rng);
        let mut t = Tape::new(&store);
        let x = t.input(Matrix::zeros(5, 4));
        let y = layer.forward(&mut t, x);
        assert_eq!((y.rows(), y.cols()), (5, 3));
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[3, 8, 2], Activation::LeakyRelu, &mut rng);
        let x = crate::init::xavier_uniform(6, 3, &mut rng);
        let mut t = Tape::new(&store);
        let xv = t.input(x.clone());
        let y = mlp.forward(&mut t, xv);
        let y_infer = mlp.infer(&store, &x);
        assert!(t.value(y).max_abs_diff(&y_infer) < 1e-6);
    }

    #[test]
    fn fastmath_infer_stays_close_to_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[5, 33, 17, 2], Activation::LeakyRelu, &mut rng);
        let x = crate::init::xavier_uniform(9, 5, &mut rng);
        let slow = mlp.infer(&store, &x);
        let fast = mlp.infer_mode(&store, &x, MathMode::FastMath);
        assert!(slow.max_abs_diff(&fast) < 1e-4);
    }

    #[test]
    fn mlp_learns_xor() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "xor", &[2, 8, 1], Activation::Tanh, &mut rng);
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let targets = [0.0, 1.0, 1.0, 0.0];
        let mut opt = Adam::new(0.05);
        let mut final_loss = f32::MAX;
        for _ in 0..500 {
            let mut t = Tape::new(&store);
            let xv = t.input(x.clone());
            let logits = mlp.forward(&mut t, xv);
            let loss = t.bce_with_logits(logits, &targets);
            final_loss = t.scalar(loss);
            let grads = t.backward(loss);
            opt.step(&mut store, &grads);
        }
        assert!(final_loss < 0.1, "XOR did not converge: loss {final_loss}");
        let preds = mlp.infer(&store, &x);
        for (i, &t) in targets.iter().enumerate() {
            let p = crate::tape::stable_sigmoid(preds.get(i, 0));
            assert!((p - t).abs() < 0.3, "sample {i}: pred {p} target {t}");
        }
    }

    #[test]
    fn param_ids_cover_all_layers() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[3, 5, 4, 1], Activation::Relu, &mut rng);
        assert_eq!(mlp.layers().len(), 3);
        assert_eq!(mlp.param_ids().len(), 6);
        assert_eq!(mlp.in_dim(), 3);
        assert_eq!(mlp.out_dim(), 1);
    }
}
