//! Size-bucketed `f32` buffer pool for the training hot path.
//!
//! Every op on a [`crate::tape::Tape`] produces a fresh activation or
//! gradient matrix; without pooling that is one heap allocation per op
//! per minibatch, and the large deep-layer buffers (hundreds of KiB)
//! cross malloc's mmap threshold, costing page faults every batch. A
//! [`Workspace`] keeps recycled buffers in power-of-two capacity
//! buckets so a tape built with [`crate::tape::Tape::with_workspace`]
//! reaches a steady state where **no** per-minibatch allocation happens
//! in the forward/backward step after warmup.
//!
//! ## Determinism
//!
//! Pooling changes where bytes live, never what they are: leased
//! buffers are either zero-filled ([`Workspace::lease_zeroed`]) or
//! completely overwritten by the op that fills them, so a pooled tape
//! step is bitwise identical to a fresh-allocation tape step (asserted
//! by the differential-oracle suite).
//!
//! ## Lifecycle
//!
//! * [`Workspace::lease_zeroed`] / [`Workspace::lease_empty`] hand out a
//!   buffer (reusing a recycled one when the bucket has stock);
//! * [`Workspace::recycle`] returns a pool-shaped buffer — it panics on
//!   buffers that cannot have come from a pool (wrong capacity class),
//!   catching lease/recycle mismatches early;
//! * [`Workspace::reclaim`] is the lenient variant used on tape drop,
//!   where caller-provided input matrices of arbitrary capacity mix
//!   with pooled ones: pool-shaped buffers are retained, others drop.
//!
//! Buckets retain at most [`MAX_PER_BUCKET`] buffers; everything beyond
//! that is freed, so the pool's footprint is bounded no matter how many
//! minibatches run through it. A workspace is single-threaded by design
//! (`RefCell`, `Send` but not `Sync`); data-parallel training gives
//! each gradient shard its own workspace.

use std::cell::{Cell, RefCell};

/// Smallest bucket capacity handed out (tiny leases round up to this).
pub const MIN_BUCKET: usize = 8;

/// Maximum buffers retained per capacity bucket.
pub const MAX_PER_BUCKET: usize = 32;

/// Maximum [`AlignedBuf`]s retained by [`Workspace::recycle_aligned`].
const MAX_ALIGNED: usize = 8;

/// `f32` lanes per aligned storage chunk (one cache line).
const CHUNK_LANES: usize = 16;

/// One 64-byte-aligned cache line of `f32` lanes. Size equals
/// alignment, so a `Vec<AlignedChunk>` is a contiguous, padding-free
/// `f32` carpet starting on a 64-byte boundary.
#[repr(C, align(64))]
#[derive(Clone, Copy, Debug)]
struct AlignedChunk([f32; CHUNK_LANES]);

/// A growable `f32` buffer whose storage is 64-byte aligned — the
/// alignment the FastMath SIMD kernels want for their packed panels
/// (`Vec<f32>` only guarantees 4 bytes). Backed by whole cache-line
/// chunks so the usual `Vec` grow/free machinery applies unchanged.
#[derive(Clone, Debug, Default)]
pub struct AlignedBuf {
    chunks: Vec<AlignedChunk>,
    len: usize,
}

impl AlignedBuf {
    /// Creates an empty buffer (no allocation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current logical length in `f32` elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated capacity in `f32` elements.
    pub fn capacity(&self) -> usize {
        self.chunks.len() * CHUNK_LANES
    }

    /// Sets the logical length to `len`, growing storage as needed.
    /// Grown storage is zeroed once; **reused storage keeps stale
    /// contents** — this is for pack buffers that overwrite every
    /// element before reading any.
    pub fn resize_for_overwrite(&mut self, len: usize) {
        let chunks = len.div_ceil(CHUNK_LANES);
        if chunks > self.chunks.len() {
            self.chunks.resize(chunks, AlignedChunk([0.0; CHUNK_LANES]));
        }
        self.len = len;
    }

    /// The buffer as a 64-byte-aligned `f32` slice.
    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: `chunks` is a contiguous array of `[f32; CHUNK_LANES]`
        // with size == alignment (no padding), and `len <= capacity`.
        unsafe { std::slice::from_raw_parts(self.chunks.as_ptr() as *const f32, self.len) }
    }

    /// The buffer as a mutable 64-byte-aligned `f32` slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        // SAFETY: as in `as_slice`, with unique access through `&mut`.
        unsafe { std::slice::from_raw_parts_mut(self.chunks.as_mut_ptr() as *mut f32, self.len) }
    }
}

/// One slot per power-of-two capacity class from [`MIN_BUCKET`] up to
/// the largest allocation representable in a `usize`.
const BUCKET_SLOTS: usize = (usize::BITS - MIN_BUCKET.trailing_zeros()) as usize;

/// A size-bucketed pool of reusable `Vec<f32>` buffers.
///
/// Buckets are a flat array indexed by the capacity class's log2 — the
/// lease/recycle hot path runs a couple of bit ops per call, never a
/// hash (a `HashMap<usize, _>` here put SipHash on every tape op).
#[derive(Debug)]
pub struct Workspace {
    buckets: RefCell<[Vec<Vec<f32>>; BUCKET_SLOTS]>,
    aligned: RefCell<Vec<AlignedBuf>>,
    leases: Cell<u64>,
    fresh: Cell<u64>,
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace {
            buckets: RefCell::new(std::array::from_fn(|_| Vec::new())),
            aligned: RefCell::new(Vec::new()),
            leases: Cell::new(0),
            fresh: Cell::new(0),
        }
    }
}

/// The capacity class a lease of `len` elements is served from.
#[inline]
fn bucket_capacity(len: usize) -> usize {
    len.next_power_of_two().max(MIN_BUCKET)
}

/// The bucket slot serving pool-shaped `capacity` (a power of two
/// >= [`MIN_BUCKET`]).
#[inline]
fn bucket_index(capacity: usize) -> usize {
    debug_assert!(is_pool_shaped(capacity));
    (capacity.trailing_zeros() - MIN_BUCKET.trailing_zeros()) as usize
}

/// True when `capacity` is a capacity class this pool hands out.
#[inline]
fn is_pool_shaped(capacity: usize) -> bool {
    capacity >= MIN_BUCKET && capacity.is_power_of_two()
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    fn pop_bucket(&self, cap: usize) -> Option<Vec<f32>> {
        self.buckets.borrow_mut()[bucket_index(cap)].pop()
    }

    fn lease_raw(&self, len: usize) -> Vec<f32> {
        self.leases.set(self.leases.get() + 1);
        let cap = bucket_capacity(len);
        match self.pop_bucket(cap) {
            Some(v) => {
                debug_assert!(v.is_empty() && v.capacity() == cap);
                v
            }
            None => {
                self.fresh.set(self.fresh.get() + 1);
                Vec::with_capacity(cap)
            }
        }
    }

    /// Leases a buffer of exactly `len` zeros.
    pub fn lease_zeroed(&self, len: usize) -> Vec<f32> {
        let mut v = self.lease_raw(len);
        v.resize(len, 0.0);
        v
    }

    /// Leases an empty buffer with capacity for at least `min_capacity`
    /// elements (for `extend_from_slice`-style fills that overwrite
    /// everything anyway — skips the zero fill).
    pub fn lease_empty(&self, min_capacity: usize) -> Vec<f32> {
        self.lease_raw(min_capacity)
    }

    /// Returns a leased buffer to the pool.
    ///
    /// # Panics
    /// Panics when the buffer's capacity is not a pool capacity class —
    /// a buffer that was never leased from a workspace (or whose
    /// allocation was clobbered) cannot be recycled; use
    /// [`Workspace::reclaim`] where foreign buffers are expected.
    pub fn recycle(&self, v: Vec<f32>) {
        assert!(
            is_pool_shaped(v.capacity()),
            "workspace: recycled buffer capacity {} is not a pool bucket \
             (power of two >= {MIN_BUCKET}); was this buffer leased from a workspace?",
            v.capacity(),
        );
        self.reclaim(v);
    }

    /// Lenient recycle: pool-shaped buffers are retained (up to
    /// [`MAX_PER_BUCKET`] per bucket), anything else is simply dropped.
    pub fn reclaim(&self, mut v: Vec<f32>) {
        let cap = v.capacity();
        if !is_pool_shaped(cap) {
            return;
        }
        let mut buckets = self.buckets.borrow_mut();
        let bucket = &mut buckets[bucket_index(cap)];
        if bucket.len() < MAX_PER_BUCKET {
            v.clear();
            bucket.push(v);
        }
    }

    /// Leases a 64-byte-aligned buffer of logical length `len` whose
    /// contents are **unspecified** (the caller must overwrite every
    /// element before reading — this backs the matmul pack panels,
    /// which always do). Best-fit reuse from the aligned pool keeps the
    /// steady state allocation-free even when several panel sizes
    /// interleave.
    pub fn lease_aligned(&self, len: usize) -> AlignedBuf {
        self.leases.set(self.leases.get() + 1);
        let mut pool = self.aligned.borrow_mut();
        let pick = pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        let mut buf = match pick {
            Some(i) => pool.swap_remove(i),
            None => {
                self.fresh.set(self.fresh.get() + 1);
                AlignedBuf::new()
            }
        };
        drop(pool);
        buf.resize_for_overwrite(len);
        buf
    }

    /// Returns an aligned buffer to the pool (retaining at most
    /// [`MAX_ALIGNED`]; overflow is simply dropped).
    pub fn recycle_aligned(&self, buf: AlignedBuf) {
        let mut pool = self.aligned.borrow_mut();
        if pool.len() < MAX_ALIGNED {
            pool.push(buf);
        }
    }

    /// Total leases served so far.
    pub fn leases(&self) -> u64 {
        self.leases.get()
    }

    /// Leases that had to allocate fresh memory (pool misses). Flat
    /// across minibatches once warmed up = zero steady-state allocation.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh.get()
    }

    /// Number of buffers currently retained, across all buckets and the
    /// aligned pool.
    pub fn retained_buffers(&self) -> usize {
        self.buckets.borrow().iter().map(Vec::len).sum::<usize>() + self.aligned.borrow().len()
    }

    /// Total capacity (in `f32` elements) currently retained.
    pub fn retained_elems(&self) -> usize {
        self.buckets.borrow().iter().flatten().map(Vec::capacity).sum::<usize>()
            + self.aligned.borrow().iter().map(AlignedBuf::capacity).sum::<usize>()
    }

    /// Point-in-time snapshot of the pool's usage counters, for
    /// observability surfacing (one struct instead of four getter
    /// calls, so callers can aggregate across per-shard pools).
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            leases: self.leases(),
            fresh_allocs: self.fresh_allocs(),
            retained_buffers: self.retained_buffers(),
            retained_elems: self.retained_elems(),
        }
    }
}

/// Usage counters captured from a [`Workspace`] by [`Workspace::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Total leases served.
    pub leases: u64,
    /// Leases that allocated fresh memory (pool misses).
    pub fresh_allocs: u64,
    /// Buffers currently retained across all buckets.
    pub retained_buffers: usize,
    /// Total retained capacity in `f32` elements.
    pub retained_elems: usize,
}

impl WorkspaceStats {
    /// Element-wise sum, for aggregating per-shard pools.
    pub fn merge(&self, other: &WorkspaceStats) -> WorkspaceStats {
        WorkspaceStats {
            leases: self.leases + other.leases,
            fresh_allocs: self.fresh_allocs + other.fresh_allocs,
            retained_buffers: self.retained_buffers + other.retained_buffers,
            retained_elems: self.retained_elems + other.retained_elems,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_recycle_reuses_the_same_allocation() {
        let ws = Workspace::new();
        let v = ws.lease_zeroed(100);
        let ptr = v.as_ptr();
        ws.recycle(v);
        let v2 = ws.lease_zeroed(100);
        assert_eq!(v2.as_ptr(), ptr, "recycled buffer was not reused");
        assert_eq!(v2.len(), 100);
        assert!(v2.iter().all(|&x| x == 0.0));
        assert_eq!(ws.leases(), 2);
        assert_eq!(ws.fresh_allocs(), 1, "second lease must be a pool hit");
    }

    #[test]
    fn stats_snapshot_matches_getters_and_merges() {
        let ws = Workspace::new();
        let v = ws.lease_zeroed(100);
        ws.recycle(v);
        let s = ws.stats();
        assert_eq!(s.leases, ws.leases());
        assert_eq!(s.fresh_allocs, ws.fresh_allocs());
        assert_eq!(s.retained_buffers, ws.retained_buffers());
        assert_eq!(s.retained_elems, ws.retained_elems());
        let doubled = s.merge(&s);
        assert_eq!(doubled.leases, 2 * s.leases);
        assert_eq!(doubled.retained_elems, 2 * s.retained_elems);
    }

    #[test]
    fn different_sizes_share_a_bucket_by_capacity_class() {
        let ws = Workspace::new();
        let v = ws.lease_zeroed(100); // bucket 128
        ws.recycle(v);
        let v2 = ws.lease_zeroed(120); // same bucket
        assert_eq!(ws.fresh_allocs(), 1);
        assert_eq!(v2.len(), 120);
    }

    #[test]
    fn pool_is_bounded_over_many_minibatches() {
        let ws = Workspace::new();
        for _ in 0..1000 {
            let a = ws.lease_zeroed(256);
            let b = ws.lease_empty(64);
            ws.recycle(a);
            ws.recycle(b);
        }
        assert!(ws.retained_buffers() <= 2, "pool grew: {}", ws.retained_buffers());
        assert_eq!(ws.fresh_allocs(), 2, "steady state must not allocate");
    }

    #[test]
    fn bucket_retention_is_capped() {
        let ws = Workspace::new();
        let many: Vec<_> = (0..2 * MAX_PER_BUCKET).map(|_| ws.lease_zeroed(64)).collect();
        for v in many {
            ws.recycle(v);
        }
        assert_eq!(ws.retained_buffers(), MAX_PER_BUCKET);
    }

    #[test]
    #[should_panic(expected = "not a pool bucket")]
    fn recycling_a_foreign_buffer_panics() {
        let ws = Workspace::new();
        // 100-element exact allocation: not a power-of-two capacity class.
        ws.recycle(vec![0.0f32; 100]);
    }

    #[test]
    fn reclaim_tolerates_foreign_buffers() {
        let ws = Workspace::new();
        ws.reclaim(vec![0.0f32; 100]); // silently dropped
        assert_eq!(ws.retained_buffers(), 0);
        ws.reclaim(Vec::with_capacity(64)); // pool-shaped: retained
        assert_eq!(ws.retained_buffers(), 1);
    }

    #[test]
    fn zero_length_lease_is_served() {
        let ws = Workspace::new();
        let v = ws.lease_zeroed(0);
        assert!(v.is_empty());
        ws.recycle(v);
    }

    #[test]
    fn aligned_buf_is_64_byte_aligned_and_grows() {
        let mut b = AlignedBuf::new();
        assert!(b.is_empty());
        b.resize_for_overwrite(37);
        assert_eq!(b.len(), 37);
        assert!(b.capacity() >= 37);
        assert_eq!(b.as_slice().as_ptr() as usize % 64, 0, "storage must be 64-byte aligned");
        b.as_mut_slice().iter_mut().enumerate().for_each(|(i, v)| *v = i as f32);
        // Growing preserves the prefix and stays aligned.
        b.resize_for_overwrite(200);
        assert_eq!(b.as_slice()[36], 36.0);
        assert_eq!(b.as_slice().as_ptr() as usize % 64, 0);
    }

    #[test]
    fn aligned_leases_reach_a_zero_alloc_steady_state() {
        let ws = Workspace::new();
        // Two interleaved panel sizes, as a backward pass produces.
        for _ in 0..100 {
            let a = ws.lease_aligned(512);
            let b = ws.lease_aligned(96);
            ws.recycle_aligned(a);
            ws.recycle_aligned(b);
        }
        assert_eq!(ws.fresh_allocs(), 2, "aligned steady state must not allocate");
        let s = ws.stats();
        assert_eq!(s.retained_buffers, 2);
        assert!(s.retained_elems >= 512 + 96);
    }

    #[test]
    fn aligned_pool_retention_is_capped() {
        let ws = Workspace::new();
        let many: Vec<_> = (0..2 * MAX_ALIGNED).map(|_| ws.lease_aligned(64)).collect();
        for b in many {
            ws.recycle_aligned(b);
        }
        assert_eq!(ws.retained_buffers(), MAX_ALIGNED);
    }
}
