//! Size-bucketed `f32` buffer pool for the training hot path.
//!
//! Every op on a [`crate::tape::Tape`] produces a fresh activation or
//! gradient matrix; without pooling that is one heap allocation per op
//! per minibatch, and the large deep-layer buffers (hundreds of KiB)
//! cross malloc's mmap threshold, costing page faults every batch. A
//! [`Workspace`] keeps recycled buffers in power-of-two capacity
//! buckets so a tape built with [`crate::tape::Tape::with_workspace`]
//! reaches a steady state where **no** per-minibatch allocation happens
//! in the forward/backward step after warmup.
//!
//! ## Determinism
//!
//! Pooling changes where bytes live, never what they are: leased
//! buffers are either zero-filled ([`Workspace::lease_zeroed`]) or
//! completely overwritten by the op that fills them, so a pooled tape
//! step is bitwise identical to a fresh-allocation tape step (asserted
//! by the differential-oracle suite).
//!
//! ## Lifecycle
//!
//! * [`Workspace::lease_zeroed`] / [`Workspace::lease_empty`] hand out a
//!   buffer (reusing a recycled one when the bucket has stock);
//! * [`Workspace::recycle`] returns a pool-shaped buffer — it panics on
//!   buffers that cannot have come from a pool (wrong capacity class),
//!   catching lease/recycle mismatches early;
//! * [`Workspace::reclaim`] is the lenient variant used on tape drop,
//!   where caller-provided input matrices of arbitrary capacity mix
//!   with pooled ones: pool-shaped buffers are retained, others drop.
//!
//! Buckets retain at most [`MAX_PER_BUCKET`] buffers; everything beyond
//! that is freed, so the pool's footprint is bounded no matter how many
//! minibatches run through it. A workspace is single-threaded by design
//! (`RefCell`, `Send` but not `Sync`); data-parallel training gives
//! each gradient shard its own workspace.

use std::cell::{Cell, RefCell};

/// Smallest bucket capacity handed out (tiny leases round up to this).
pub const MIN_BUCKET: usize = 8;

/// Maximum buffers retained per capacity bucket.
pub const MAX_PER_BUCKET: usize = 32;

/// One slot per power-of-two capacity class from [`MIN_BUCKET`] up to
/// the largest allocation representable in a `usize`.
const BUCKET_SLOTS: usize = (usize::BITS - MIN_BUCKET.trailing_zeros()) as usize;

/// A size-bucketed pool of reusable `Vec<f32>` buffers.
///
/// Buckets are a flat array indexed by the capacity class's log2 — the
/// lease/recycle hot path runs a couple of bit ops per call, never a
/// hash (a `HashMap<usize, _>` here put SipHash on every tape op).
#[derive(Debug)]
pub struct Workspace {
    buckets: RefCell<[Vec<Vec<f32>>; BUCKET_SLOTS]>,
    leases: Cell<u64>,
    fresh: Cell<u64>,
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace {
            buckets: RefCell::new(std::array::from_fn(|_| Vec::new())),
            leases: Cell::new(0),
            fresh: Cell::new(0),
        }
    }
}

/// The capacity class a lease of `len` elements is served from.
#[inline]
fn bucket_capacity(len: usize) -> usize {
    len.next_power_of_two().max(MIN_BUCKET)
}

/// The bucket slot serving pool-shaped `capacity` (a power of two
/// >= [`MIN_BUCKET`]).
#[inline]
fn bucket_index(capacity: usize) -> usize {
    debug_assert!(is_pool_shaped(capacity));
    (capacity.trailing_zeros() - MIN_BUCKET.trailing_zeros()) as usize
}

/// True when `capacity` is a capacity class this pool hands out.
#[inline]
fn is_pool_shaped(capacity: usize) -> bool {
    capacity >= MIN_BUCKET && capacity.is_power_of_two()
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    fn pop_bucket(&self, cap: usize) -> Option<Vec<f32>> {
        self.buckets.borrow_mut()[bucket_index(cap)].pop()
    }

    fn lease_raw(&self, len: usize) -> Vec<f32> {
        self.leases.set(self.leases.get() + 1);
        let cap = bucket_capacity(len);
        match self.pop_bucket(cap) {
            Some(v) => {
                debug_assert!(v.is_empty() && v.capacity() == cap);
                v
            }
            None => {
                self.fresh.set(self.fresh.get() + 1);
                Vec::with_capacity(cap)
            }
        }
    }

    /// Leases a buffer of exactly `len` zeros.
    pub fn lease_zeroed(&self, len: usize) -> Vec<f32> {
        let mut v = self.lease_raw(len);
        v.resize(len, 0.0);
        v
    }

    /// Leases an empty buffer with capacity for at least `min_capacity`
    /// elements (for `extend_from_slice`-style fills that overwrite
    /// everything anyway — skips the zero fill).
    pub fn lease_empty(&self, min_capacity: usize) -> Vec<f32> {
        self.lease_raw(min_capacity)
    }

    /// Returns a leased buffer to the pool.
    ///
    /// # Panics
    /// Panics when the buffer's capacity is not a pool capacity class —
    /// a buffer that was never leased from a workspace (or whose
    /// allocation was clobbered) cannot be recycled; use
    /// [`Workspace::reclaim`] where foreign buffers are expected.
    pub fn recycle(&self, v: Vec<f32>) {
        assert!(
            is_pool_shaped(v.capacity()),
            "workspace: recycled buffer capacity {} is not a pool bucket \
             (power of two >= {MIN_BUCKET}); was this buffer leased from a workspace?",
            v.capacity(),
        );
        self.reclaim(v);
    }

    /// Lenient recycle: pool-shaped buffers are retained (up to
    /// [`MAX_PER_BUCKET`] per bucket), anything else is simply dropped.
    pub fn reclaim(&self, mut v: Vec<f32>) {
        let cap = v.capacity();
        if !is_pool_shaped(cap) {
            return;
        }
        let mut buckets = self.buckets.borrow_mut();
        let bucket = &mut buckets[bucket_index(cap)];
        if bucket.len() < MAX_PER_BUCKET {
            v.clear();
            bucket.push(v);
        }
    }

    /// Total leases served so far.
    pub fn leases(&self) -> u64 {
        self.leases.get()
    }

    /// Leases that had to allocate fresh memory (pool misses). Flat
    /// across minibatches once warmed up = zero steady-state allocation.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh.get()
    }

    /// Number of buffers currently retained, across all buckets.
    pub fn retained_buffers(&self) -> usize {
        self.buckets.borrow().iter().map(Vec::len).sum()
    }

    /// Total capacity (in `f32` elements) currently retained.
    pub fn retained_elems(&self) -> usize {
        self.buckets.borrow().iter().flatten().map(Vec::capacity).sum()
    }

    /// Point-in-time snapshot of the pool's usage counters, for
    /// observability surfacing (one struct instead of four getter
    /// calls, so callers can aggregate across per-shard pools).
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            leases: self.leases(),
            fresh_allocs: self.fresh_allocs(),
            retained_buffers: self.retained_buffers(),
            retained_elems: self.retained_elems(),
        }
    }
}

/// Usage counters captured from a [`Workspace`] by [`Workspace::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Total leases served.
    pub leases: u64,
    /// Leases that allocated fresh memory (pool misses).
    pub fresh_allocs: u64,
    /// Buffers currently retained across all buckets.
    pub retained_buffers: usize,
    /// Total retained capacity in `f32` elements.
    pub retained_elems: usize,
}

impl WorkspaceStats {
    /// Element-wise sum, for aggregating per-shard pools.
    pub fn merge(&self, other: &WorkspaceStats) -> WorkspaceStats {
        WorkspaceStats {
            leases: self.leases + other.leases,
            fresh_allocs: self.fresh_allocs + other.fresh_allocs,
            retained_buffers: self.retained_buffers + other.retained_buffers,
            retained_elems: self.retained_elems + other.retained_elems,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_recycle_reuses_the_same_allocation() {
        let ws = Workspace::new();
        let v = ws.lease_zeroed(100);
        let ptr = v.as_ptr();
        ws.recycle(v);
        let v2 = ws.lease_zeroed(100);
        assert_eq!(v2.as_ptr(), ptr, "recycled buffer was not reused");
        assert_eq!(v2.len(), 100);
        assert!(v2.iter().all(|&x| x == 0.0));
        assert_eq!(ws.leases(), 2);
        assert_eq!(ws.fresh_allocs(), 1, "second lease must be a pool hit");
    }

    #[test]
    fn stats_snapshot_matches_getters_and_merges() {
        let ws = Workspace::new();
        let v = ws.lease_zeroed(100);
        ws.recycle(v);
        let s = ws.stats();
        assert_eq!(s.leases, ws.leases());
        assert_eq!(s.fresh_allocs, ws.fresh_allocs());
        assert_eq!(s.retained_buffers, ws.retained_buffers());
        assert_eq!(s.retained_elems, ws.retained_elems());
        let doubled = s.merge(&s);
        assert_eq!(doubled.leases, 2 * s.leases);
        assert_eq!(doubled.retained_elems, 2 * s.retained_elems);
    }

    #[test]
    fn different_sizes_share_a_bucket_by_capacity_class() {
        let ws = Workspace::new();
        let v = ws.lease_zeroed(100); // bucket 128
        ws.recycle(v);
        let v2 = ws.lease_zeroed(120); // same bucket
        assert_eq!(ws.fresh_allocs(), 1);
        assert_eq!(v2.len(), 120);
    }

    #[test]
    fn pool_is_bounded_over_many_minibatches() {
        let ws = Workspace::new();
        for _ in 0..1000 {
            let a = ws.lease_zeroed(256);
            let b = ws.lease_empty(64);
            ws.recycle(a);
            ws.recycle(b);
        }
        assert!(ws.retained_buffers() <= 2, "pool grew: {}", ws.retained_buffers());
        assert_eq!(ws.fresh_allocs(), 2, "steady state must not allocate");
    }

    #[test]
    fn bucket_retention_is_capped() {
        let ws = Workspace::new();
        let many: Vec<_> = (0..2 * MAX_PER_BUCKET).map(|_| ws.lease_zeroed(64)).collect();
        for v in many {
            ws.recycle(v);
        }
        assert_eq!(ws.retained_buffers(), MAX_PER_BUCKET);
    }

    #[test]
    #[should_panic(expected = "not a pool bucket")]
    fn recycling_a_foreign_buffer_panics() {
        let ws = Workspace::new();
        // 100-element exact allocation: not a power-of-two capacity class.
        ws.recycle(vec![0.0f32; 100]);
    }

    #[test]
    fn reclaim_tolerates_foreign_buffers() {
        let ws = Workspace::new();
        ws.reclaim(vec![0.0f32; 100]); // silently dropped
        assert_eq!(ws.retained_buffers(), 0);
        ws.reclaim(Vec::with_capacity(64)); // pool-shaped: retained
        assert_eq!(ws.retained_buffers(), 1);
    }

    #[test]
    fn zero_length_lease_is_served() {
        let ws = Workspace::new();
        let v = ws.lease_zeroed(0);
        assert!(v.is_empty());
        ws.recycle(v);
    }
}
