//! Scoped-thread data-parallel execution with deterministic reduction.
//!
//! [`ParallelExecutor`] is the workspace's single threading primitive:
//! a configurable worker count over `std::thread::scope` (no thread
//! pool, no extra dependencies — scoped threads borrow the caller's
//! data directly, so a `&ParamStore` is shared immutably with zero
//! copies).
//!
//! ## The determinism contract
//!
//! Every parallel operation in this workspace is built so that its
//! result is a function of the *logical decomposition* of the work
//! (shard/chunk boundaries), never of the *physical schedule* (how many
//! workers ran, or which worker picked up which unit). Concretely:
//!
//! * [`ParallelExecutor::map`] returns results **in index order**,
//!   whatever order workers finished in;
//! * [`ParallelExecutor::map_chunks`] takes an explicit chunk length
//!   chosen by the caller — chunk boundaries must never be derived from
//!   the worker count;
//! * [`reduce_gradients`] combines per-shard [`Gradients`] by a fixed
//!   pairwise tree over shard indices, so the floating-point summation
//!   order depends only on the shard count.
//!
//! Under that contract, an N-worker run is **bit-identical** to a
//! 1-worker run of the same decomposition: f32 addition is not
//! associative, but the addition order here never changes. This is what
//! lets a training checkpoint written at one thread count resume
//! byte-identically at any other.
//!
//! ## Panic isolation
//!
//! A panic inside one task must not lose the whole run (a multi-hour
//! hierarchy build at production scale *will* see the occasional
//! poisoned worker). [`ParallelExecutor::map`] therefore wraps every
//! task in `catch_unwind`: a panicking index is recorded, the surviving
//! workers keep draining the queue, and after the scope joins, each
//! failed index is **re-executed once** on the calling thread. Because
//! results are keyed by logical index — never by schedule — a retried
//! task is bitwise identical to one that never failed, so recovery
//! composes with the determinism contract above. A task that panics
//! again on re-execution is deterministic in its failure; its payload
//! is re-raised so the bug surfaces instead of looping.
//!
//! Result slots recover from mutex poisoning (`PoisonError::into_inner`)
//! rather than propagating it: the slot value is a plain `Option<T>`
//! written in one assignment, so a poisoned lock only means *some* task
//! panicked — the data inside is either `None` (re-execute) or a fully
//! written `Some` (use it).
//!
//! Callers must confine a task's side effects to state that a
//! re-execution fully rewrites (buffer pools that zero or overwrite
//! every leased buffer qualify; append-only logs do not).

use crate::param::Gradients;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Worker panics recovered by re-execution since process start, across
/// all executors. Observability surfaces this as `parallel.recovered_panics`;
/// tests use it to assert an injected panic actually fired.
static RECOVERED_PANICS: AtomicU64 = AtomicU64::new(0);

/// Total worker panics recovered by deterministic re-execution since
/// process start.
pub fn recovered_panics() -> u64 {
    RECOVERED_PANICS.load(Ordering::Relaxed)
}

/// Re-executes a task whose first run panicked. One retry: a second
/// panic is deterministic (same index, same inputs) and is re-raised.
fn reexecute<T, F>(f: &F, i: usize) -> T
where
    F: Fn(usize) -> T + Sync,
{
    RECOVERED_PANICS.fetch_add(1, Ordering::Relaxed);
    match catch_unwind(AssertUnwindSafe(|| f(i))) {
        Ok(value) => value,
        Err(payload) => resume_unwind(payload),
    }
}

/// A scoped-thread worker pool of fixed width.
///
/// Cheap to construct (spawns nothing until work is submitted) and
/// `Copy`-light to pass around by reference. Worker threads live only
/// for the duration of one `map` call, which keeps the borrow story
/// trivial and adds ~10µs of spawn overhead per call — negligible
/// against the multi-millisecond batches it is used for.
#[derive(Clone, Debug)]
pub struct ParallelExecutor {
    workers: usize,
}

impl Default for ParallelExecutor {
    fn default() -> Self {
        ParallelExecutor::single()
    }
}

impl ParallelExecutor {
    /// An executor with exactly `workers` threads. Zero is clamped to
    /// one (callers that must *reject* zero, like the CLI, validate
    /// before constructing).
    pub fn new(workers: usize) -> Self {
        ParallelExecutor { workers: workers.max(1) }
    }

    /// A single-worker executor: runs everything on the calling thread.
    pub fn single() -> Self {
        ParallelExecutor { workers: 1 }
    }

    /// An executor sized to the machine
    /// (`std::thread::available_parallelism`, falling back to 1).
    pub fn available() -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ParallelExecutor { workers: n }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Returns this executor, or a single-worker one when `work` (an
    /// element count, e.g. rows × dim) is below [`MIN_PARALLEL_WORK`].
    ///
    /// Spawn + scheduling overhead is a few tens of microseconds per
    /// `map` call; below the threshold the serial path is strictly
    /// faster (BENCH_parallel.json measured 0.64–0.91× *slowdowns* for
    /// threaded K-means on small inputs). Determinism is unaffected:
    /// chunk decomposition is identical at any worker count, so the
    /// serial fallback is bit-identical by the existing 1-vs-N contract.
    pub fn throttle(&self, work: usize) -> ParallelExecutor {
        if work < MIN_PARALLEL_WORK {
            ParallelExecutor::single()
        } else {
            self.clone()
        }
    }

    /// Runs `f(0), f(1), ..., f(n-1)` across the worker pool and
    /// returns the results **in index order**.
    ///
    /// Work is distributed dynamically (an atomic cursor), so uneven
    /// task costs balance automatically; determinism is unaffected
    /// because results are keyed by index, not completion order. With
    /// one worker (or one task) everything runs inline on the calling
    /// thread.
    ///
    /// # Panics
    /// A panic inside `f` is isolated and the index re-executed once on
    /// the calling thread (see the module docs); only a task that
    /// panics *again* on re-execution propagates, with its original
    /// payload.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers == 1 || n <= 1 {
            // Inline path: same isolation contract as the threaded one,
            // so a 1-worker run recovers from exactly the faults an
            // N-worker run does (the 1-vs-N bit-identity includes
            // recovery behaviour).
            return (0..n)
                .map(|i| match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(value) => value,
                    Err(_) => reexecute(&f, i),
                })
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Isolate the task: on panic the slot stays `None`
                    // and this worker keeps draining the queue; the
                    // index is re-executed after the scope joins.
                    if let Ok(value) = catch_unwind(AssertUnwindSafe(|| f(i))) {
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
                    }
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                // Poison recovery, not propagation: the slot holds a
                // plain Option written in a single assignment, so a
                // poisoned lock cannot hold a torn value.
                match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                    Some(value) => value,
                    None => reexecute(&f, i),
                }
            })
            .collect()
    }

    /// Splits `0..len` into consecutive chunks of `chunk_len` (the last
    /// may be shorter), runs `f(chunk_index, start..end)` for each, and
    /// returns the per-chunk results in chunk order.
    ///
    /// **Determinism:** pass a `chunk_len` that does not depend on the
    /// worker count. The same chunking then produces the same per-chunk
    /// results (and the same merge order) at any thread count.
    pub fn map_chunks<T, F>(&self, len: usize, chunk_len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
    {
        assert!(chunk_len > 0, "map_chunks: chunk_len must be positive");
        let chunks = len.div_ceil(chunk_len);
        self.map(chunks, |c| {
            let start = c * chunk_len;
            let end = (start + chunk_len).min(len);
            f(c, start..end)
        })
    }
}

/// Chunk length used by the deterministic row-parallel kernels in this
/// workspace (matrix products, K-means assignment, exact inference).
///
/// Fixed forever: chunk boundaries are part of the numeric contract —
/// deriving them from the worker count would make results depend on
/// the machine. 256 rows is coarse enough that scheduling overhead is
/// noise and fine enough to load-balance the row counts HiGNN sees.
pub const ROW_CHUNK: usize = 256;

/// Minimum per-call work (in elements, e.g. rows × feature dim) below
/// which [`ParallelExecutor::throttle`] falls back to the serial path.
///
/// Chosen so the ~10–50µs of scoped-thread spawn/teardown per `map`
/// call stays well under 10% of the kernel time it parallelises: at
/// ~1ns per fused multiply-add, 256k elements ≈ 0.5–1ms of work.
pub const MIN_PARALLEL_WORK: usize = 1 << 18;

/// Reduces per-shard gradients by a fixed pairwise tree over shard
/// indices: round one merges shard 1 into 0, 3 into 2, …; rounds repeat
/// until one set remains. Returns an empty [`Gradients`] for no shards.
///
/// The tree shape — and therefore the f32 summation order — depends
/// only on `shards.len()`, never on thread count or completion order,
/// which is what makes N-thread training bit-identical to 1-thread
/// training. (A left fold over shard indices would be equally
/// deterministic; the tree keeps the reduction depth logarithmic so
/// rounding error does not accumulate linearly in the shard count.)
pub fn reduce_gradients(mut shards: Vec<Gradients>) -> Gradients {
    if shards.is_empty() {
        return Gradients::default();
    }
    let mut active = shards.len();
    while active > 1 {
        let half = active.div_ceil(2);
        for i in 0..active / 2 {
            // merge shard 2i+1 into 2i, compacting into slot i.
            let hi = std::mem::take(&mut shards[2 * i + 1]);
            shards[2 * i].merge_owned(hi);
            shards.swap(i, 2 * i);
        }
        if active % 2 == 1 {
            shards.swap(half - 1, active - 1);
        }
        active = half;
        shards.truncate(active);
    }
    shards.pop().expect("at least one shard remains")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::param::ParamStore;

    #[test]
    fn map_returns_index_order_at_any_width() {
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        for workers in [1, 2, 4, 8] {
            let exec = ParallelExecutor::new(workers);
            let got = exec.map(37, |i| i * i);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn map_chunks_covers_range_exactly_once() {
        let exec = ParallelExecutor::new(3);
        let chunks = exec.map_chunks(10, 4, |c, r| (c, r.start, r.end));
        assert_eq!(chunks, vec![(0, 0, 4), (1, 4, 8), (2, 8, 10)]);
        // Empty input -> no chunks.
        assert!(exec.map_chunks(0, 4, |c, _| c).is_empty());
    }

    #[test]
    fn throttle_serializes_small_work_only() {
        let exec = ParallelExecutor::new(8);
        assert_eq!(exec.throttle(MIN_PARALLEL_WORK - 1).workers(), 1);
        assert_eq!(exec.throttle(MIN_PARALLEL_WORK).workers(), 8);
        assert_eq!(exec.throttle(0).workers(), 1);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(ParallelExecutor::new(0).workers(), 1);
        assert!(ParallelExecutor::available().workers() >= 1);
    }

    /// Runs `body` with the default panic hook silenced, so injected
    /// panics do not spam the test output.
    fn quiet_panics<R>(body: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = body();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn panicking_task_is_reexecuted_bitwise_identically() {
        use std::sync::atomic::AtomicBool;
        let expected: Vec<usize> = (0..37).map(|i| i * 3).collect();
        quiet_panics(|| {
            for workers in [1usize, 2, 4] {
                for victim in [0usize, 17, 36] {
                    let armed = AtomicBool::new(true);
                    let before = recovered_panics();
                    let got = ParallelExecutor::new(workers).map(37, |i| {
                        if i == victim && armed.swap(false, Ordering::Relaxed) {
                            panic!("injected worker panic at index {i}");
                        }
                        i * 3
                    });
                    assert_eq!(got, expected, "workers={workers} victim={victim}");
                    assert_eq!(
                        recovered_panics() - before,
                        1,
                        "exactly one recovery expected (workers={workers} victim={victim})"
                    );
                }
            }
        });
    }

    #[test]
    fn surviving_workers_finish_the_queue_after_a_panic() {
        use std::sync::atomic::AtomicBool;
        // One early injected panic at 4 workers must not lose any of the
        // remaining indices (the poisoned worker's queue share migrates).
        quiet_panics(|| {
            let armed = AtomicBool::new(true);
            let got = ParallelExecutor::new(4).map(64, |i| {
                if i == 1 && armed.swap(false, Ordering::Relaxed) {
                    panic!("early injected panic");
                }
                i
            });
            assert_eq!(got, (0..64).collect::<Vec<_>>());
        });
    }

    #[test]
    fn deterministic_panic_propagates_after_one_reexecution() {
        let attempts = AtomicUsize::new(0);
        let result = quiet_panics(|| {
            std::panic::catch_unwind(AssertUnwindSafe(|| {
                ParallelExecutor::new(2).map(8, |i| {
                    if i == 3 {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        panic!("always fails");
                    }
                    i
                })
            }))
        });
        assert!(result.is_err(), "a deterministic panic must still surface");
        assert_eq!(attempts.load(Ordering::Relaxed), 2, "initial attempt + one re-execution");
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // Make early indices slow so later indices finish first.
        let exec = ParallelExecutor::new(4);
        let got = exec.map(16, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            i
        });
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    fn shard_gradients(n: usize) -> (ParamStore, Vec<Gradients>) {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::zeros(1, 3));
        let b = store.add("b", Matrix::zeros(2, 2));
        let shards: Vec<Gradients> = (0..n)
            .map(|s| {
                let mut g = Gradients::new(&store);
                let v = (s + 1) as f32;
                g.accumulate(a, &Matrix::row_vector(&[v, 0.1 * v, -v]));
                if s % 2 == 0 {
                    g.accumulate(b, &Matrix::from_vec(2, 2, vec![v; 4]));
                }
                g
            })
            .collect();
        (store, shards)
    }

    #[test]
    fn tree_reduction_sums_all_shards() {
        let (store, shards) = shard_gradients(5);
        let total = reduce_gradients(shards);
        let a = store.id("a").unwrap();
        let b = store.id("b").unwrap();
        // 1+2+3+4+5 = 15 on parameter a; shards 0, 2, 4 on b: 1+3+5 = 9.
        let ga = total.get(a).unwrap();
        assert!((ga.get(0, 0) - 15.0).abs() < 1e-6);
        assert!((ga.get(0, 2) + 15.0).abs() < 1e-6);
        let gb = total.get(b).unwrap();
        assert!((gb.get(1, 1) - 9.0).abs() < 1e-6);
    }

    #[test]
    fn tree_reduction_is_deterministic_for_fixed_shard_count() {
        for n in [1usize, 2, 3, 7, 8] {
            let (_, s1) = shard_gradients(n);
            let (_, s2) = shard_gradients(n);
            let a = reduce_gradients(s1);
            let b = reduce_gradients(s2);
            for ((_, ga), (_, gb)) in a.iter().zip(b.iter()) {
                assert_eq!(ga.data(), gb.data(), "n = {n}");
            }
        }
    }

    #[test]
    fn empty_reduction_is_empty() {
        let total = reduce_gradients(Vec::new());
        assert_eq!(total.iter().count(), 0);
    }

    #[test]
    fn parallel_sum_matches_sequential_chunks() {
        // The pattern every deterministic kernel uses: fixed chunking,
        // per-chunk partials, merge in chunk order. Verify the partials
        // are the same computed at width 1 and width 4.
        let data: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
        let partials = |workers: usize| -> Vec<f32> {
            ParallelExecutor::new(workers)
                .map_chunks(data.len(), ROW_CHUNK, |_, r| data[r].iter().sum::<f32>())
        };
        assert_eq!(partials(1), partials(4));
    }
}
