//! Dense, row-major `f32` matrices.
//!
//! [`Matrix`] is the single storage type used throughout the workspace:
//! node-feature tables, weight matrices, minibatch activations and
//! gradients are all 2-D. The matrix products are **register-tiled**:
//! the output is processed in fixed-width blocks of rows and columns
//! whose accumulators live in registers, so LLVM autovectorizes the
//! inner loop and the output is written once instead of once per `k`.
//!
//! ## The accumulation-order contract
//!
//! Tiling reorders only the *independent* output dimensions (`i`, `j`).
//! For every output element the contraction index `k` runs strictly
//! ascending from a `+0.0` accumulator — exactly the naive triple loop
//! of `hignn-oracle` — so the tiled kernels are **bitwise identical**
//! to the reference implementation (f32 addition is not associative;
//! per-element `k` order is the spec, see DESIGN.md "Performance &
//! determinism contract"). The fused variants
//! ([`Matrix::gather_mean_pool_rows`], [`Matrix::concat2_matmul`])
//! preserve the same per-element order as the ops they fuse.
//!
//! The `nt` layout (`a * b^T`) is computed by **packing** a transposed
//! copy of `b` into a 64-byte-aligned scratch panel and running the
//! `nn` kernel over it: a copy is `O(k·n)` against the product's
//! `O(m·k·n)`, and it turns the contraction-major `b` walk into the
//! contiguous row loads the tiled kernel wants. Packing permutes only
//! *where* elements live — per output element the contraction still
//! ascends once from `+0.0` — so packed `nt` stays bitwise
//! oracle-identical while matching the `nn` kernel's throughput.
//!
//! Every product and the fused gather→mean-pool also exist as `_mode`
//! variants taking a [`MathMode`]: `Bitwise` dispatches to the kernels
//! in this file, `FastMath` to the toleranced SIMD kernels in
//! [`crate::simd`] (see DESIGN.md §14 for the two-tier contract).

use crate::simd::{self, MathMode};
use crate::workspace::AlignedBuf;
use std::cell::RefCell;
use std::fmt;

/// Output-row block height of the register-tiled matmul micro-kernels.
const MR: usize = 4;
/// Output-column block width of the register-tiled matmul micro-kernels.
const NR: usize = 8;

thread_local! {
    /// Per-thread pack scratch for the `nt` layout's transposed B
    /// panel. Retained across calls so steady-state `matmul_nt` (and
    /// the tape ops built on it) allocates nothing; callers that hold a
    /// [`crate::Workspace`] lease their panel from it instead via
    /// [`Matrix::matmul_nt_into_scratch`].
    static NT_PACK: RefCell<AlignedBuf> = RefCell::new(AlignedBuf::new());
}

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix whose entry `(i, j)` is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a 1 x n row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Creates a 1 x n row matrix taking ownership of `values` (no copy).
    pub fn row_from_vec(values: Vec<f32>) -> Self {
        Matrix { rows: 1, cols: values.len(), data: values }
    }

    /// Creates an n x 1 column matrix from a slice.
    pub fn column_vector(values: &[f32]) -> Self {
        Matrix { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Creates an n x 1 column matrix taking ownership of `values` (no copy).
    pub fn column_from_vec(values: Vec<f32>) -> Self {
        Matrix { rows: values.len(), cols: 1, data: values }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows, "row {} out of bounds ({} rows)", i, self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies `src` into row `i`.
    pub fn set_row(&mut self, i: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols);
        self.row_mut(i).copy_from_slice(src);
    }

    /// Matrix product `self * rhs` (register-tiled, bitwise identical to
    /// the naive `ijk` triple loop: per output element, `k` ascends from
    /// a `+0.0` accumulator).
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul`] writing into a caller-provided output matrix
    /// (overwrites every entry; `out` need not be zeroed).
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_into_mode(rhs, out, MathMode::Bitwise);
    }

    /// [`Matrix::matmul_into`] under an explicit [`MathMode`].
    pub fn matmul_into_mode(&self, rhs: &Matrix, out: &mut Matrix, mode: MathMode) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(out.shape(), (self.rows, rhs.cols), "matmul_into: bad output shape");
        match mode {
            MathMode::Bitwise => {
                mm_nn(&self.data, self.rows, self.cols, &rhs.data, rhs.cols, &mut out.data)
            }
            MathMode::FastMath => {
                simd::mm_nn_fast(&self.data, self.rows, self.cols, &rhs.data, rhs.cols, &mut out.data)
            }
        }
    }

    /// [`Matrix::matmul`] under an explicit [`MathMode`].
    pub fn matmul_mode(&self, rhs: &Matrix, mode: MathMode) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into_mode(rhs, &mut out, mode);
        out
    }

    /// Product of a contiguous row range of `self` with `rhs`
    /// (`self[range] * rhs`), bitwise identical to gathering the rows
    /// first.
    pub fn matmul_rows_range(&self, range: std::ops::Range<usize>, rhs: &Matrix) -> Matrix {
        assert!(range.end <= self.rows, "matmul_rows_range: range out of bounds");
        assert_eq!(self.cols, rhs.rows, "matmul_rows_range: inner dimension mismatch");
        let m = range.len();
        let mut out = Matrix::zeros(m, rhs.cols);
        let a = &self.data[range.start * self.cols..range.end * self.cols];
        mm_nn(a, m, self.cols, &rhs.data, rhs.cols, &mut out.data);
        out
    }

    /// Matrix product `self * rhs^T` without materialising the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] writing into a caller-provided output matrix
    /// (overwrites every entry; `out` need not be zeroed).
    pub fn matmul_nt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_nt_into_mode(rhs, out, MathMode::Bitwise);
    }

    /// [`Matrix::matmul_nt_into`] under an explicit [`MathMode`], using
    /// the per-thread pack scratch.
    pub fn matmul_nt_into_mode(&self, rhs: &Matrix, out: &mut Matrix, mode: MathMode) {
        NT_PACK.with(|cell| {
            self.matmul_nt_into_scratch(rhs, out, mode, &mut cell.borrow_mut());
        });
    }

    /// [`Matrix::matmul_nt_into_mode`] packing the transposed B panel
    /// into a caller-provided aligned scratch buffer (lease it from a
    /// [`crate::Workspace`] on the training hot path; contents are
    /// overwritten).
    pub fn matmul_nt_into_scratch(
        &self,
        rhs: &Matrix,
        out: &mut Matrix,
        mode: MathMode,
        scratch: &mut AlignedBuf,
    ) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(out.shape(), (self.rows, rhs.rows), "matmul_nt_into: bad output shape");
        let (kk, n) = (self.cols, rhs.rows);
        scratch.resize_for_overwrite(kk * n);
        let bt = scratch.as_mut_slice();
        pack_transposed(&rhs.data, n, kk, bt);
        match mode {
            MathMode::Bitwise => mm_nn(&self.data, self.rows, kk, bt, n, &mut out.data),
            MathMode::FastMath => simd::mm_nn_fast(&self.data, self.rows, kk, bt, n, &mut out.data),
        }
    }

    /// Matrix product `self^T * rhs` without materialising the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_tn_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul_tn`] writing into a caller-provided output matrix
    /// (overwrites every entry; `out` need not be zeroed).
    pub fn matmul_tn_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.matmul_tn_into_mode(rhs, out, MathMode::Bitwise);
    }

    /// [`Matrix::matmul_tn_into`] under an explicit [`MathMode`].
    pub fn matmul_tn_into_mode(&self, rhs: &Matrix, out: &mut Matrix, mode: MathMode) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(out.shape(), (self.cols, rhs.cols), "matmul_tn_into: bad output shape");
        match mode {
            MathMode::Bitwise => {
                mm_tn(&self.data, self.rows, self.cols, &rhs.data, rhs.cols, &mut out.data)
            }
            MathMode::FastMath => {
                simd::mm_tn_fast(&self.data, self.rows, self.cols, &rhs.data, rhs.cols, &mut out.data)
            }
        }
    }

    /// Fused `[a | b] * w` without materialising the concatenation.
    ///
    /// Bitwise identical to `Matrix::concat_cols(&[&a, &b]).matmul(&w)`:
    /// for every output element the contraction runs over `a`'s columns
    /// then `b`'s columns in ascending order — the same per-element
    /// order the concatenated product uses.
    pub fn concat2_matmul(a: &Matrix, b: &Matrix, w: &Matrix) -> Matrix {
        Self::concat2_matmul_rows_range(a, 0..a.rows, b, w)
    }

    /// [`Matrix::concat2_matmul`] under an explicit [`MathMode`].
    pub fn concat2_matmul_mode(a: &Matrix, b: &Matrix, w: &Matrix, mode: MathMode) -> Matrix {
        Self::concat2_matmul_rows_range_mode(a, 0..a.rows, b, w, mode)
    }

    /// [`Matrix::concat2_matmul`] over a contiguous row range of `a`
    /// (`[a[range] | b] * w`); `b` must already have `range.len()` rows.
    pub fn concat2_matmul_rows_range(
        a: &Matrix,
        range: std::ops::Range<usize>,
        b: &Matrix,
        w: &Matrix,
    ) -> Matrix {
        Self::concat2_matmul_rows_range_mode(a, range, b, w, MathMode::Bitwise)
    }

    /// [`Matrix::concat2_matmul_rows_range`] under an explicit
    /// [`MathMode`].
    pub fn concat2_matmul_rows_range_mode(
        a: &Matrix,
        range: std::ops::Range<usize>,
        b: &Matrix,
        w: &Matrix,
        mode: MathMode,
    ) -> Matrix {
        assert!(range.end <= a.rows, "concat2_matmul: range out of bounds");
        let m = range.len();
        assert_eq!(b.rows, m, "concat2_matmul: row mismatch");
        assert_eq!(a.cols + b.cols, w.rows, "concat2_matmul: inner dimension mismatch");
        let mut out = Matrix::zeros(m, w.cols);
        let a1 = &a.data[range.start * a.cols..range.end * a.cols];
        match mode {
            MathMode::Bitwise => {
                mm_cat2(a1, a.cols, &b.data, b.cols, m, &w.data, w.cols, &mut out.data)
            }
            MathMode::FastMath => {
                simd::mm_cat2_fast(a1, a.cols, &b.data, b.cols, m, &w.data, w.cols, &mut out.data)
            }
        }
        out
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Elementwise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * rhs` (axpy).
    pub fn scaled_add_assign(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "scaled_add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Returns `alpha * self`.
    pub fn scale(&self, alpha: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * alpha).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place scale.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Adds a `1 x cols` row vector to every row.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_row_broadcast_assign(bias);
        out
    }

    /// In-place variant of [`Matrix::add_row_broadcast`].
    pub fn add_row_broadcast_assign(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "add_row_broadcast: bias must have one row");
        assert_eq!(bias.cols, self.cols, "add_row_broadcast: column mismatch");
        for i in 0..self.rows {
            let start = i * self.cols;
            for (o, &b) in self.data[start..start + self.cols].iter_mut().zip(bias.data.iter()) {
                *o += b;
            }
        }
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Applies `f` to every entry in place (same values as [`Matrix::map`]
    /// without the allocation).
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Concatenates matrices horizontally (same row count).
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols: no parts");
        let rows = parts[0].rows;
        for p in parts {
            assert_eq!(p.rows, rows, "concat_cols: row mismatch");
        }
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let out_row = out.row_mut(i);
            let mut offset = 0;
            for p in parts {
                out_row[offset..offset + p.cols].copy_from_slice(p.row(i));
                offset += p.cols;
            }
        }
        out
    }

    /// Stacks matrices vertically (same column count).
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows: no parts");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "concat_rows: column mismatch");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Gathers the given rows into a new matrix (`out.row(k) = self.row(idx[k])`).
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (k, &i) in idx.iter().enumerate() {
            out.set_row(k, self.row(i));
        }
        out
    }

    /// Mean of each group of `group` consecutive rows.
    ///
    /// The row count must be a multiple of `group`; the result has
    /// `rows / group` rows.
    pub fn mean_pool_rows(&self, group: usize) -> Matrix {
        assert!(group > 0, "mean_pool_rows: group must be positive");
        assert_eq!(self.rows % group, 0, "mean_pool_rows: {} rows not divisible by {}", self.rows, group);
        let mut out = Matrix::zeros(self.rows / group, self.cols);
        self.mean_pool_rows_into(group, &mut out);
        out
    }

    /// [`Matrix::mean_pool_rows`] writing into a caller-provided output
    /// matrix (overwrites every entry; `out` need not be zeroed).
    pub fn mean_pool_rows_into(&self, group: usize, out: &mut Matrix) {
        assert!(group > 0 && self.rows.is_multiple_of(group), "mean_pool_rows_into: bad grouping");
        assert_eq!(
            out.shape(),
            (self.rows / group, self.cols),
            "mean_pool_rows_into: bad output shape"
        );
        let inv = 1.0 / group as f32;
        for g in 0..self.rows / group {
            let out_row = &mut out.data[g * self.cols..(g + 1) * self.cols];
            out_row.fill(0.0);
            for r in 0..group {
                let src = &self.data[(g * group + r) * self.cols..(g * group + r + 1) * self.cols];
                for (o, &s) in out_row.iter_mut().zip(src) {
                    *o += s;
                }
            }
            for o in out_row.iter_mut() {
                *o *= inv;
            }
        }
    }

    /// Fused `self.gather_rows(idx).mean_pool_rows(group)` that never
    /// materialises the gathered intermediate.
    ///
    /// Bitwise identical to the two-op composition: output row `g`
    /// accumulates source rows `idx[g*group..(g+1)*group]` in ascending
    /// position order, then multiplies by `1/group` — exactly what
    /// [`Matrix::mean_pool_rows`] does to the gathered copy.
    pub fn gather_mean_pool_rows(&self, idx: &[usize], group: usize) -> Matrix {
        assert!(group > 0, "gather_mean_pool_rows: group must be positive");
        assert_eq!(
            idx.len() % group,
            0,
            "gather_mean_pool_rows: {} indices not divisible by {}",
            idx.len(),
            group
        );
        let mut out = Matrix::zeros(idx.len() / group, self.cols);
        self.gather_mean_pool_rows_into(idx, group, &mut out);
        out
    }

    /// [`Matrix::gather_mean_pool_rows_into`] under an explicit
    /// [`MathMode`]. The column lanes of a mean-pool never interact, so
    /// FastMath here is value-identical — it differs only in using the
    /// vector units.
    pub fn gather_mean_pool_rows_into_mode(
        &self,
        idx: &[usize],
        group: usize,
        out: &mut Matrix,
        mode: MathMode,
    ) {
        match mode {
            MathMode::Bitwise => self.gather_mean_pool_rows_into(idx, group, out),
            MathMode::FastMath => {
                assert!(
                    group > 0 && idx.len().is_multiple_of(group),
                    "gather_mean_pool_rows_into: bad grouping"
                );
                assert_eq!(
                    out.shape(),
                    (idx.len() / group, self.cols),
                    "gather_mean_pool_rows_into: bad output shape"
                );
                if let Some(&bad) = idx.iter().find(|&&i| i >= self.rows) {
                    panic!("gather_mean_pool_rows_into: index {bad} out of bounds ({} rows)", self.rows);
                }
                simd::gather_mean_pool_fast(&self.data, self.cols, idx, group, &mut out.data);
            }
        }
    }

    /// [`Matrix::gather_mean_pool_rows`] writing into a caller-provided
    /// output matrix (overwrites every entry; `out` need not be zeroed).
    pub fn gather_mean_pool_rows_into(&self, idx: &[usize], group: usize, out: &mut Matrix) {
        assert!(
            group > 0 && idx.len().is_multiple_of(group),
            "gather_mean_pool_rows_into: bad grouping"
        );
        assert_eq!(
            out.shape(),
            (idx.len() / group, self.cols),
            "gather_mean_pool_rows_into: bad output shape"
        );
        let inv = 1.0 / group as f32;
        for (g, group_idx) in idx.chunks_exact(group).enumerate() {
            let out_row = out.row_mut(g);
            out_row.fill(0.0);
            for &i in group_idx {
                let src = self.row(i);
                for (o, &s) in out_row.iter_mut().zip(src) {
                    *o += s;
                }
            }
            for o in out_row.iter_mut() {
                *o *= inv;
            }
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Sum of squared entries.
    pub fn sum_squares(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.sum_squares().sqrt()
    }

    /// Index of the maximum entry in row `i`.
    pub fn row_argmax(&self, i: usize) -> usize {
        let row = self.row(i);
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        best
    }

    /// Squared Euclidean distance between row `i` of `self` and `other_row`.
    pub fn row_sq_dist(&self, i: usize, other_row: &[f32]) -> f32 {
        debug_assert_eq!(other_row.len(), self.cols);
        self.row(i)
            .iter()
            .zip(other_row)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// L2-normalises every row in place (rows with near-zero norm are left
    /// untouched).
    pub fn l2_normalize_rows(&mut self) {
        for i in 0..self.rows {
            let norm: f32 = self.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for v in self.row_mut(i) {
                    *v /= norm;
                }
            }
        }
    }

    /// True when all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute difference to another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }
}

// ---- register-tiled matmul micro-kernels ------------------------------
//
// All three layouts share the same structure: the output is covered by
// MR x NR register blocks; inside a block the contraction index `t`
// ascends once while MR*NR accumulators stay in registers. Remainder
// edges fall back to a scalar per-element loop with the identical
// ascending-`t` accumulation, so every output element — tiled or not —
// is bitwise the oracle's naive triple loop.

/// `out = a * b` where `a` is `m x kk` and `b` is `kk x n` (row-major).
fn mm_nn(a: &[f32], m: usize, kk: usize, b: &[f32], n: usize, out: &mut [f32]) {
    let mut i = 0;
    while i < m {
        let ib = MR.min(m - i);
        let mut j = 0;
        while j < n {
            let jb = NR.min(n - j);
            if ib == MR && jb == NR {
                let ar: [&[f32]; MR] =
                    std::array::from_fn(|ii| &a[(i + ii) * kk..(i + ii + 1) * kk]);
                let mut acc = [[0.0f32; NR]; MR];
                for t in 0..kk {
                    let bv: &[f32; NR] =
                        b[t * n + j..t * n + j + NR].try_into().expect("NR window");
                    for ii in 0..MR {
                        let av = ar[ii][t];
                        for jj in 0..NR {
                            acc[ii][jj] += av * bv[jj];
                        }
                    }
                }
                for ii in 0..MR {
                    out[(i + ii) * n + j..(i + ii) * n + j + NR].copy_from_slice(&acc[ii]);
                }
            } else {
                for ii in 0..ib {
                    let arow = &a[(i + ii) * kk..(i + ii + 1) * kk];
                    for jj in 0..jb {
                        let mut acc = 0.0f32;
                        for (t, &av) in arow.iter().enumerate() {
                            acc += av * b[t * n + j + jj];
                        }
                        out[(i + ii) * n + j + jj] = acc;
                    }
                }
            }
            j += jb;
        }
        i += ib;
    }
}

/// Packs row-major `b` (`n x kk`) as its transpose (`kk x n`) into
/// `bt`, in cache-blocked tiles. Packing only permutes element
/// *positions* — the `nn` kernel run over the packed panel still
/// accumulates each output element over ascending `t` from `+0.0`, so
/// packed `nt` is bitwise the oracle's naive loop.
fn pack_transposed(b: &[f32], n: usize, kk: usize, bt: &mut [f32]) {
    const TB: usize = 32;
    debug_assert!(b.len() >= n * kk && bt.len() >= kk * n);
    let mut j0 = 0;
    while j0 < n {
        let jb = TB.min(n - j0);
        let mut t0 = 0;
        while t0 < kk {
            let tb = TB.min(kk - t0);
            for j in j0..j0 + jb {
                let brow = &b[j * kk + t0..j * kk + t0 + tb];
                for (t, &v) in brow.iter().enumerate() {
                    bt[(t0 + t) * n + j] = v;
                }
            }
            t0 += tb;
        }
        j0 += jb;
    }
}

/// `out = a^T * b` where `a` is `kk x m` and `b` is `kk x n` (row-major).
fn mm_tn(a: &[f32], kk: usize, m: usize, b: &[f32], n: usize, out: &mut [f32]) {
    let mut i = 0;
    while i < m {
        let ib = MR.min(m - i);
        let mut j = 0;
        while j < n {
            let jb = NR.min(n - j);
            if ib == MR && jb == NR {
                let mut acc = [[0.0f32; NR]; MR];
                for t in 0..kk {
                    let arow = &a[t * m + i..t * m + i + MR];
                    let bv: &[f32; NR] =
                        b[t * n + j..t * n + j + NR].try_into().expect("NR window");
                    for ii in 0..MR {
                        let av = arow[ii];
                        for jj in 0..NR {
                            acc[ii][jj] += av * bv[jj];
                        }
                    }
                }
                for ii in 0..MR {
                    out[(i + ii) * n + j..(i + ii) * n + j + NR].copy_from_slice(&acc[ii]);
                }
            } else {
                for ii in 0..ib {
                    for jj in 0..jb {
                        let mut acc = 0.0f32;
                        for t in 0..kk {
                            acc += a[t * m + i + ii] * b[t * n + j + jj];
                        }
                        out[(i + ii) * n + j + jj] = acc;
                    }
                }
            }
            j += jb;
        }
        i += ib;
    }
}

/// `out = [a1 | a2] * w` where `a1` is `m x c1`, `a2` is `m x c2` and `w`
/// is `(c1 + c2) x n` — the concatenation is never materialised. Each
/// output element accumulates `a1`'s columns then `a2`'s columns in
/// ascending order, matching the concatenated product bit for bit.
#[allow(clippy::too_many_arguments)]
fn mm_cat2(
    a1: &[f32],
    c1: usize,
    a2: &[f32],
    c2: usize,
    m: usize,
    w: &[f32],
    n: usize,
    out: &mut [f32],
) {
    let mut i = 0;
    while i < m {
        let ib = MR.min(m - i);
        let mut j = 0;
        while j < n {
            let jb = NR.min(n - j);
            if ib == MR && jb == NR {
                let mut acc = [[0.0f32; NR]; MR];
                let a1r: [&[f32]; MR] =
                    std::array::from_fn(|ii| &a1[(i + ii) * c1..(i + ii + 1) * c1]);
                for t in 0..c1 {
                    let bv: &[f32; NR] =
                        w[t * n + j..t * n + j + NR].try_into().expect("NR window");
                    for ii in 0..MR {
                        let av = a1r[ii][t];
                        for jj in 0..NR {
                            acc[ii][jj] += av * bv[jj];
                        }
                    }
                }
                let a2r: [&[f32]; MR] =
                    std::array::from_fn(|ii| &a2[(i + ii) * c2..(i + ii + 1) * c2]);
                // `t` also computes the W row offset, so a plain range
                // loop stays clearer than zipping four slices.
                #[allow(clippy::needless_range_loop)]
                for t in 0..c2 {
                    let wrow = (c1 + t) * n + j;
                    let bv: &[f32; NR] = w[wrow..wrow + NR].try_into().expect("NR window");
                    for ii in 0..MR {
                        let av = a2r[ii][t];
                        for jj in 0..NR {
                            acc[ii][jj] += av * bv[jj];
                        }
                    }
                }
                for ii in 0..MR {
                    out[(i + ii) * n + j..(i + ii) * n + j + NR].copy_from_slice(&acc[ii]);
                }
            } else {
                for ii in 0..ib {
                    for jj in 0..jb {
                        let mut acc = 0.0f32;
                        for t in 0..c1 {
                            acc += a1[(i + ii) * c1 + t] * w[t * n + j + jj];
                        }
                        for t in 0..c2 {
                            acc += a2[(i + ii) * c2 + t] * w[(c1 + t) * n + j + jj];
                        }
                        out[(i + ii) * n + j + jj] = acc;
                    }
                }
            }
            j += jb;
        }
        i += ib;
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            write!(f, "  [")?;
            let cols = self.cols.min(8);
            for j in 0..cols {
                write!(f, "{:9.4}", self.get(i, j))?;
                if j + 1 < cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn construction_and_access() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.shape(), (2, 3));
        assert_eq!(a.get(0, 2), 3.0);
        assert_eq!(a.get(1, 0), 4.0);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_fn_matches_layout() {
        let a = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f32);
        assert_eq!(a.get(2, 1), 21.0);
        assert_eq!(a.data(), &[0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_checks_length() {
        Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = m(4, 3, &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 0.0, 1.0, 2.0, 2.0, 2.0]);
        let expected = a.matmul(&b.transpose());
        assert!(a.matmul_nt(&b).max_abs_diff(&expected) < 1e-6);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = m(3, 2, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = m(3, 4, &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 0.0, 1.0, 2.0, 2.0, 2.0]);
        let expected = a.transpose().matmul(&b);
        assert!(a.matmul_tn(&b).max_abs_diff(&expected) < 1e-6);
    }

    #[test]
    fn elementwise_ops() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.add(&b).data(), &[6.0, 8.0, 10.0, 12.0]);
        assert_eq!(b.sub(&a).data(), &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(a.hadamard(&b).data(), &[5.0, 12.0, 21.0, 32.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn axpy() {
        let mut a = m(1, 3, &[1.0, 1.0, 1.0]);
        let b = m(1, 3, &[1.0, 2.0, 3.0]);
        a.scaled_add_assign(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn broadcast_bias() {
        let a = m(2, 3, &[0.0; 6]);
        let bias = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let out = a.add_row_broadcast(&bias);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn concat_cols_layout() {
        let a = m(2, 1, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let c = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_rows_layout() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let c = Matrix::concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn gather_rows_copies() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0]);
        assert_eq!(g.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn mean_pool_groups() {
        let a = m(4, 2, &[1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0]);
        let p = a.mean_pool_rows(2);
        assert_eq!(p.shape(), (2, 2));
        assert_eq!(p.row(0), &[2.0, 3.0]);
        assert_eq!(p.row(1), &[20.0, 30.0]);
    }

    #[test]
    fn reductions() {
        let a = m(2, 2, &[1.0, -2.0, 3.0, -4.0]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.sum_squares(), 30.0);
    }

    #[test]
    fn normalize_rows() {
        let mut a = m(2, 2, &[3.0, 4.0, 0.0, 0.0]);
        a.l2_normalize_rows();
        assert!((a.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((a.get(0, 1) - 0.8).abs() < 1e-6);
        assert_eq!(a.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn argmax_per_row() {
        let a = m(2, 3, &[1.0, 9.0, 3.0, 7.0, 2.0, 5.0]);
        assert_eq!(a.row_argmax(0), 1);
        assert_eq!(a.row_argmax(1), 0);
    }

    #[test]
    fn sq_dist() {
        let a = m(1, 2, &[0.0, 0.0]);
        assert_eq!(a.row_sq_dist(0, &[3.0, 4.0]), 25.0);
    }

    /// Naive `ijk` reference: one `+0.0` accumulator per output element,
    /// contraction index ascending — the bitwise spec for every kernel.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f32;
                for t in 0..a.cols() {
                    acc += a.get(i, t) * b.get(t, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn pseudo(rows: usize, cols: usize, seed: u32) -> Matrix {
        // Deterministic, sign-mixed, irregular values (LCG).
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(12345);
        Matrix::from_fn(rows, cols, |_, _| {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            ((s >> 8) as f32 / (1 << 23) as f32) - 1.0
        })
    }

    fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
        }
    }

    #[test]
    fn tiled_matmul_bitwise_matches_naive_across_tile_edges() {
        // Cover interior tiles, row/col remainders and tiny shapes.
        for &(m_, k_, n_) in
            &[(1, 1, 1), (3, 5, 7), (4, 8, 8), (5, 9, 11), (8, 16, 8), (13, 6, 17), (16, 32, 9)]
        {
            let a = pseudo(m_, k_, (m_ * 100 + k_) as u32);
            let b = pseudo(k_, n_, (k_ * 100 + n_) as u32);
            assert_bits_eq(&a.matmul(&b), &naive_matmul(&a, &b), "nn");
            let bt = pseudo(n_, k_, (n_ * 37 + k_) as u32);
            assert_bits_eq(&a.matmul_nt(&bt), &naive_matmul(&a, &bt.transpose()), "nt");
            let at = pseudo(k_, m_, (k_ * 53 + m_) as u32);
            let b2 = pseudo(k_, n_, (k_ * 71 + n_) as u32);
            assert_bits_eq(&at.matmul_tn(&b2), &naive_matmul(&at.transpose(), &b2), "tn");
        }
    }

    #[test]
    fn packed_nt_is_bitwise_across_pack_tile_edges() {
        // Shapes crossing the 32-wide pack tile in both k and n, plus
        // exact-tile and one-off boundaries.
        for &(m_, k_, n_) in &[(40, 65, 50), (4, 32, 32), (7, 33, 31), (2, 100, 3), (33, 1, 64)] {
            let a = pseudo(m_, k_, (m_ * 19 + k_) as u32);
            let b = pseudo(n_, k_, (n_ * 23 + k_) as u32);
            assert_bits_eq(&a.matmul_nt(&b), &naive_matmul(&a, &b.transpose()), "nt packed");
        }
    }

    #[test]
    fn bitwise_mode_variants_match_the_modeless_entry_points() {
        let a = pseudo(9, 14, 3);
        let b = pseudo(14, 11, 4);
        let bt = pseudo(11, 14, 5);
        let at = pseudo(14, 9, 6);
        assert_bits_eq(&a.matmul_mode(&b, MathMode::Bitwise), &a.matmul(&b), "nn mode");
        let mut out = Matrix::zeros(9, 11);
        a.matmul_nt_into_mode(&bt, &mut out, MathMode::Bitwise);
        assert_bits_eq(&out, &a.matmul_nt(&bt), "nt mode");
        let mut out_tn = Matrix::zeros(9, 11);
        at.matmul_tn_into_mode(&b, &mut out_tn, MathMode::Bitwise);
        assert_bits_eq(&out_tn, &at.matmul_tn(&b), "tn mode");
        let b2 = pseudo(9, 5, 7);
        let w = pseudo(19, 8, 8);
        assert_bits_eq(
            &Matrix::concat2_matmul_mode(&a, &b2, &w, MathMode::Bitwise),
            &Matrix::concat2_matmul(&a, &b2, &w),
            "cat2 mode",
        );
    }

    #[test]
    fn fastmath_variants_stay_close_to_naive() {
        let close = |x: &Matrix, y: &Matrix, what: &str| {
            assert_eq!(x.shape(), y.shape(), "{what}: shape");
            assert!(x.max_abs_diff(y) < 1e-4, "{what}: diff {}", x.max_abs_diff(y));
        };
        let a = pseudo(13, 37, 9);
        let b = pseudo(37, 21, 10);
        close(&a.matmul_mode(&b, MathMode::FastMath), &naive_matmul(&a, &b), "nn fast");
        let bt = pseudo(21, 37, 11);
        let mut out = Matrix::zeros(13, 21);
        // Exercise the caller-scratch variant, as the tape does.
        let mut scratch = AlignedBuf::new();
        a.matmul_nt_into_scratch(&bt, &mut out, MathMode::FastMath, &mut scratch);
        close(&out, &naive_matmul(&a, &bt.transpose()), "nt fast");
        let at = a.transpose(); // 37x13, so at^T * b == a * b
        let mut out_tn = Matrix::zeros(13, 21);
        at.matmul_tn_into_mode(&b, &mut out_tn, MathMode::FastMath);
        close(&out_tn, &naive_matmul(&a, &b), "tn fast");
        // Fused gather->pool under FastMath is value-identical.
        let src = pseudo(9, 17, 12);
        let idx = vec![0usize, 8, 3, 3, 1, 7, 2, 6, 5, 0, 4, 8];
        let mut pooled = Matrix::zeros(6, 17);
        src.gather_mean_pool_rows_into_mode(&idx, 2, &mut pooled, MathMode::FastMath);
        assert_bits_eq(&pooled, &src.gather_mean_pool_rows(&idx, 2), "gather pool fast");
    }

    #[test]
    fn matmul_rows_range_matches_gather() {
        let a = pseudo(20, 6, 1);
        let b = pseudo(6, 10, 2);
        let idx: Vec<usize> = (5..17).collect();
        assert_bits_eq(
            &a.matmul_rows_range(5..17, &b),
            &a.gather_rows(&idx).matmul(&b),
            "rows_range",
        );
    }

    #[test]
    fn concat2_matmul_matches_concat_then_matmul() {
        for &(m_, c1, c2, n_) in &[(1, 1, 1, 1), (4, 8, 8, 8), (7, 5, 3, 11), (12, 32, 32, 9)] {
            let a = pseudo(m_, c1, 11);
            let b = pseudo(m_, c2, 22);
            let w = pseudo(c1 + c2, n_, 33);
            assert_bits_eq(
                &Matrix::concat2_matmul(&a, &b, &w),
                &Matrix::concat_cols(&[&a, &b]).matmul(&w),
                "cat2",
            );
        }
    }

    #[test]
    fn gather_mean_pool_matches_composition() {
        let src = pseudo(9, 5, 44);
        let idx = vec![0usize, 8, 3, 3, 1, 7, 2, 6, 5, 0, 4, 8];
        for group in [1usize, 2, 3, 4, 6, 12] {
            assert_bits_eq(
                &src.gather_mean_pool_rows(&idx, group),
                &src.gather_rows(&idx).mean_pool_rows(group),
                "gather_mean_pool",
            );
        }
    }

    #[test]
    fn owned_constructors_match_slice_constructors() {
        let v = vec![1.0f32, -2.0, 3.5];
        assert_eq!(Matrix::row_from_vec(v.clone()), Matrix::row_vector(&v));
        assert_eq!(Matrix::column_from_vec(v.clone()), Matrix::column_vector(&v));
    }

    #[test]
    fn in_place_variants_match_allocating_ones() {
        let a = pseudo(5, 4, 55);
        let bias = pseudo(1, 4, 66);
        let mut b = a.clone();
        b.add_row_broadcast_assign(&bias);
        assert_bits_eq(&b, &a.add_row_broadcast(&bias), "bias");
        let mut c = a.clone();
        c.map_assign(|v| if v > 0.0 { v } else { 0.01 * v });
        assert_bits_eq(&c, &a.map(|v| if v > 0.0 { v } else { 0.01 * v }), "map");
    }
}
