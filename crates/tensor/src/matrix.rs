//! Dense, row-major `f32` matrices.
//!
//! [`Matrix`] is the single storage type used throughout the workspace:
//! node-feature tables, weight matrices, minibatch activations and
//! gradients are all 2-D. The implementation favours simple, cache-friendly
//! loops (`ikj` matmul ordering, fused transpose products) over exotic
//! optimisations; at the embedding sizes used by HiGNN (d = 32..256) these
//! are within a small factor of BLAS and keep the crate dependency-free.

use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix whose entry `(i, j)` is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a 1 x n row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Creates an n x 1 column matrix from a slice.
    pub fn column_vector(values: &[f32]) -> Self {
        Matrix { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows, "row {} out of bounds ({} rows)", i, self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies `src` into row `i`.
    pub fn set_row(&mut self, i: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols);
        self.row_mut(i).copy_from_slice(src);
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses the `ikj` loop ordering so the inner loop streams over
    /// contiguous rows of both the accumulator and `rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self * rhs^T` without materialising the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = rhs.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Matrix product `self^T * rhs` without materialising the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for t in 0..self.rows {
            let a_row = self.row(t);
            let b_row = rhs.row(t);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Elementwise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * rhs` (axpy).
    pub fn scaled_add_assign(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "scaled_add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Returns `alpha * self`.
    pub fn scale(&self, alpha: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * alpha).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place scale.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Adds a `1 x cols` row vector to every row.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "add_row_broadcast: bias must have one row");
        assert_eq!(bias.cols, self.cols, "add_row_broadcast: column mismatch");
        let mut out = self.clone();
        for i in 0..out.rows {
            for (o, &b) in out.row_mut(i).iter_mut().zip(bias.data.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Concatenates matrices horizontally (same row count).
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols: no parts");
        let rows = parts[0].rows;
        for p in parts {
            assert_eq!(p.rows, rows, "concat_cols: row mismatch");
        }
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let out_row = out.row_mut(i);
            let mut offset = 0;
            for p in parts {
                out_row[offset..offset + p.cols].copy_from_slice(p.row(i));
                offset += p.cols;
            }
        }
        out
    }

    /// Stacks matrices vertically (same column count).
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows: no parts");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "concat_rows: column mismatch");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Gathers the given rows into a new matrix (`out.row(k) = self.row(idx[k])`).
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (k, &i) in idx.iter().enumerate() {
            out.set_row(k, self.row(i));
        }
        out
    }

    /// Mean of each group of `group` consecutive rows.
    ///
    /// The row count must be a multiple of `group`; the result has
    /// `rows / group` rows.
    pub fn mean_pool_rows(&self, group: usize) -> Matrix {
        assert!(group > 0, "mean_pool_rows: group must be positive");
        assert_eq!(self.rows % group, 0, "mean_pool_rows: {} rows not divisible by {}", self.rows, group);
        let out_rows = self.rows / group;
        let mut out = Matrix::zeros(out_rows, self.cols);
        let inv = 1.0 / group as f32;
        for g in 0..out_rows {
            let out_row = out.row_mut(g);
            for r in 0..group {
                let src = &self.data[(g * group + r) * self.cols..(g * group + r + 1) * self.cols];
                for (o, &s) in out_row.iter_mut().zip(src) {
                    *o += s;
                }
            }
            for o in out_row.iter_mut() {
                *o *= inv;
            }
        }
        out
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Sum of squared entries.
    pub fn sum_squares(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.sum_squares().sqrt()
    }

    /// Index of the maximum entry in row `i`.
    pub fn row_argmax(&self, i: usize) -> usize {
        let row = self.row(i);
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        best
    }

    /// Squared Euclidean distance between row `i` of `self` and `other_row`.
    pub fn row_sq_dist(&self, i: usize, other_row: &[f32]) -> f32 {
        debug_assert_eq!(other_row.len(), self.cols);
        self.row(i)
            .iter()
            .zip(other_row)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// L2-normalises every row in place (rows with near-zero norm are left
    /// untouched).
    pub fn l2_normalize_rows(&mut self) {
        for i in 0..self.rows {
            let norm: f32 = self.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for v in self.row_mut(i) {
                    *v /= norm;
                }
            }
        }
    }

    /// True when all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute difference to another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            write!(f, "  [")?;
            let cols = self.cols.min(8);
            for j in 0..cols {
                write!(f, "{:9.4}", self.get(i, j))?;
                if j + 1 < cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn construction_and_access() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.shape(), (2, 3));
        assert_eq!(a.get(0, 2), 3.0);
        assert_eq!(a.get(1, 0), 4.0);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_fn_matches_layout() {
        let a = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f32);
        assert_eq!(a.get(2, 1), 21.0);
        assert_eq!(a.data(), &[0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_checks_length() {
        Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = m(4, 3, &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 0.0, 1.0, 2.0, 2.0, 2.0]);
        let expected = a.matmul(&b.transpose());
        assert!(a.matmul_nt(&b).max_abs_diff(&expected) < 1e-6);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = m(3, 2, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = m(3, 4, &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 0.0, 1.0, 2.0, 2.0, 2.0]);
        let expected = a.transpose().matmul(&b);
        assert!(a.matmul_tn(&b).max_abs_diff(&expected) < 1e-6);
    }

    #[test]
    fn elementwise_ops() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.add(&b).data(), &[6.0, 8.0, 10.0, 12.0]);
        assert_eq!(b.sub(&a).data(), &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(a.hadamard(&b).data(), &[5.0, 12.0, 21.0, 32.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn axpy() {
        let mut a = m(1, 3, &[1.0, 1.0, 1.0]);
        let b = m(1, 3, &[1.0, 2.0, 3.0]);
        a.scaled_add_assign(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn broadcast_bias() {
        let a = m(2, 3, &[0.0; 6]);
        let bias = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let out = a.add_row_broadcast(&bias);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn concat_cols_layout() {
        let a = m(2, 1, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let c = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_rows_layout() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let c = Matrix::concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn gather_rows_copies() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0]);
        assert_eq!(g.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn mean_pool_groups() {
        let a = m(4, 2, &[1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0]);
        let p = a.mean_pool_rows(2);
        assert_eq!(p.shape(), (2, 2));
        assert_eq!(p.row(0), &[2.0, 3.0]);
        assert_eq!(p.row(1), &[20.0, 30.0]);
    }

    #[test]
    fn reductions() {
        let a = m(2, 2, &[1.0, -2.0, 3.0, -4.0]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.sum_squares(), 30.0);
    }

    #[test]
    fn normalize_rows() {
        let mut a = m(2, 2, &[3.0, 4.0, 0.0, 0.0]);
        a.l2_normalize_rows();
        assert!((a.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((a.get(0, 1) - 0.8).abs() < 1e-6);
        assert_eq!(a.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn argmax_per_row() {
        let a = m(2, 3, &[1.0, 9.0, 3.0, 7.0, 2.0, 5.0]);
        assert_eq!(a.row_argmax(0), 1);
        assert_eq!(a.row_argmax(1), 0);
    }

    #[test]
    fn sq_dist() {
        let a = m(1, 2, &[0.0, 0.0]);
        assert_eq!(a.row_sq_dist(0, &[3.0, 4.0]), 25.0);
    }
}
