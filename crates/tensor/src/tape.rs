//! Reverse-mode automatic differentiation on a flat tape.
//!
//! A [`Tape`] records every operation of one forward pass as a node with an
//! explicit op descriptor. [`Tape::backward`] walks the tape in reverse
//! and dispatches on the descriptor, accumulating gradients into parents
//! and finally into a [`Gradients`] set keyed by [`ParamId`]. The explicit
//! enum (instead of boxed closures) keeps the borrow story simple, makes
//! each backward rule independently testable, and costs nothing at the
//! matrix sizes HiGNN uses.
//!
//! The op set is exactly what the paper's architectures need: linear
//! algebra, concatenation, row gathering (embedding lookup), a fused
//! gather + mean-pool (embedding lookup and fixed-fanout aggregation in
//! one pass, never materializing the gathered intermediate),
//! fixed-fanout and variable-segment mean aggregation (GraphSAGE), the
//! activations the paper names (leaky ReLU, sigmoid), and a numerically
//! stable binary-cross-entropy-with-logits reduction (Eqs. 5, 7, 12).
//!
//! ## Memory
//!
//! Parameter leaves are recorded **by reference** ([`ParamId`]) — reading
//! a parameter never copies it. Intermediate buffers are heap-allocated
//! per op by default ([`Tape::new`]); a tape built with
//! [`Tape::with_workspace`] instead leases every forward and backward
//! buffer from a [`Workspace`] pool and returns them on drop, so a
//! steady-state training loop performs no per-minibatch allocation in
//! the tape step. Pooling is bitwise-invisible: leased buffers are
//! zero-filled or fully overwritten before use, so both modes produce
//! identical bits (see DESIGN.md, "Performance & determinism contract").

use crate::matrix::Matrix;
use crate::param::{Gradients, ParamId, ParamStore};
use crate::simd::{self, MathMode};
use crate::workspace::Workspace;

/// Handle to a value on the tape. Cheap to copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var {
    id: usize,
    rows: usize,
    cols: usize,
}

impl Var {
    /// Number of rows of the value this handle refers to.
    pub fn rows(self) -> usize {
        self.rows
    }

    /// Number of columns of the value this handle refers to.
    pub fn cols(self) -> usize {
        self.cols
    }
}

/// Operation descriptor for one tape node.
#[derive(Debug)]
enum Op {
    /// Constant input; no gradient flows out.
    Input,
    /// Leaf referring to a trainable parameter.
    Param(ParamId),
    /// `C = A * B`.
    MatMul(usize, usize),
    /// Elementwise `A + B` (same shape).
    Add(usize, usize),
    /// `X + bias` where `bias` is `1 x cols`, broadcast over rows.
    AddBias(usize, usize),
    /// Elementwise `A - B`.
    Sub(usize, usize),
    /// Elementwise `A * B`.
    Mul(usize, usize),
    /// Row-wise scaling: `out[i][j] = x[i][j] * col[i][0]`.
    MulColBroadcast(usize, usize),
    /// `alpha * A`.
    Scale(usize, f32),
    /// Horizontal concatenation.
    ConcatCols(Vec<usize>),
    /// Row gather: `out.row(k) = src.row(idx[k])`.
    GatherRows { src: usize, idx: Vec<usize> },
    /// Fused row gather + mean over consecutive groups of `group`
    /// gathered rows: `out.row(g) = mean_r src.row(idx[g*group + r])`.
    GatherMeanPoolRows { src: usize, idx: Vec<usize>, group: usize },
    /// Mean over consecutive groups of `group` rows.
    MeanPoolRows { src: usize, group: usize },
    /// Mean over variable-length row segments given by `offsets`
    /// (`offsets.len() == num_segments + 1`); empty segments yield zeros.
    SegmentMean { src: usize, offsets: Vec<usize> },
    /// Max over consecutive groups of `group` rows; `argmax` records the
    /// winning source row per output entry for the backward pass.
    MaxPoolRows { src: usize, argmax: Vec<u32> },
    /// Leaky ReLU with negative slope `alpha`.
    LeakyRelu { src: usize, alpha: f32 },
    /// Logistic sigmoid.
    Sigmoid(usize),
    /// Hyperbolic tangent.
    Tanh(usize),
    /// Mean of all entries, producing a `1 x 1` scalar.
    MeanAll(usize),
    /// Sum of all entries, producing a `1 x 1` scalar.
    SumAll(usize),
    /// Sum of squared entries, producing a `1 x 1` scalar (L2 penalty).
    SumSquares(usize),
    /// Per-row dot product of two `n x d` matrices, producing `n x 1`.
    DotRows(usize, usize),
    /// Mean binary cross entropy with logits against fixed targets;
    /// produces a `1 x 1` scalar. `weights` optionally reweights samples.
    BceWithLogits { logits: usize, targets: Vec<f32>, weights: Option<Vec<f32>> },
    /// Grouped InfoNCE: softmax cross-entropy of one positive logit
    /// against `group` negative logits per anchor (logits pre-scaled by
    /// `inv_temp`), averaged over anchors into a `1 x 1` scalar.
    InfoNce { pos: usize, neg: usize, group: usize, inv_temp: f32 },
}

/// Where a node's forward value lives: owned by the tape, or borrowed
/// from the [`ParamStore`] (parameter leaves are never copied).
enum Stored {
    Owned(Matrix),
    Param(ParamId),
}

struct Node {
    value: Stored,
    op: Op,
}

/// One forward pass under construction.
pub struct Tape<'s> {
    store: &'s ParamStore,
    nodes: Vec<Node>,
    ws: Option<&'s Workspace>,
    math: MathMode,
}

impl<'s> Tape<'s> {
    /// Creates an empty tape bound to a parameter store. Intermediate
    /// buffers are heap-allocated per op.
    pub fn new(store: &'s ParamStore) -> Self {
        Tape { store, nodes: Vec::new(), ws: None, math: MathMode::Bitwise }
    }

    /// Creates an empty tape whose forward and backward buffers are
    /// leased from `ws`. Produces bitwise-identical values and gradients
    /// to [`Tape::new`]. Call [`Tape::recycle`] once the pass is done to
    /// return the buffers for the next minibatch (a tape that simply
    /// drops frees them instead — correct, but the pool goes cold).
    pub fn with_workspace(store: &'s ParamStore, ws: &'s Workspace) -> Self {
        Tape { store, nodes: Vec::new(), ws: Some(ws), math: MathMode::Bitwise }
    }

    /// Sets the [`MathMode`] every subsequent matmul / fused-aggregate /
    /// activation op on this tape dispatches under (builder-style; the
    /// default is [`MathMode::Bitwise`]). Record **and** backward must
    /// run under one mode — the mode is a property of the tape, not of
    /// individual ops.
    pub fn with_math(mut self, math: MathMode) -> Self {
        self.math = math;
        self
    }

    /// The math mode this tape dispatches under.
    pub fn math(&self) -> MathMode {
        self.math
    }

    /// Consumes the tape, returning every pooled node buffer to the
    /// attached workspace. No-op (plain drop) without a workspace.
    pub fn recycle(mut self) {
        if let Some(ws) = self.ws {
            for node in self.nodes.drain(..) {
                if let Stored::Owned(m) = node.value {
                    ws.reclaim(m.into_data());
                }
            }
        }
    }

    fn push(&mut self, value: Stored, op: Op) -> Var {
        let (rows, cols) = match &value {
            Stored::Owned(m) => m.shape(),
            Stored::Param(p) => self.store.get(*p).shape(),
        };
        let id = self.nodes.len();
        self.nodes.push(Node { value, op });
        Var { id, rows, cols }
    }

    fn nval(&self, id: usize) -> &Matrix {
        match &self.nodes[id].value {
            Stored::Owned(m) => m,
            Stored::Param(p) => self.store.get(*p),
        }
    }

    /// Borrows the computed value of a variable.
    pub fn value(&self, v: Var) -> &Matrix {
        self.nval(v.id)
    }

    /// The scalar value of a `1 x 1` variable.
    pub fn scalar(&self, v: Var) -> f32 {
        assert_eq!((v.rows, v.cols), (1, 1), "scalar() on non-scalar var");
        self.nval(v.id).get(0, 0)
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- buffer management --------------------------------------------

    /// An all-zeros matrix, pool-leased when a workspace is attached.
    fn mat_zeroed(&self, rows: usize, cols: usize) -> Matrix {
        match self.ws {
            Some(ws) => Matrix::from_vec(rows, cols, ws.lease_zeroed(rows * cols)),
            None => Matrix::zeros(rows, cols),
        }
    }

    /// A constant-filled matrix.
    fn mat_full(&self, rows: usize, cols: usize, v: f32) -> Matrix {
        match self.ws {
            Some(ws) => {
                let mut buf = ws.lease_empty(rows * cols);
                buf.resize(rows * cols, v);
                Matrix::from_vec(rows, cols, buf)
            }
            None => Matrix::full(rows, cols, v),
        }
    }

    /// A copy of `src` (pool-backed clone).
    fn mat_copy(&self, src: &Matrix) -> Matrix {
        match self.ws {
            Some(ws) => {
                let mut buf = ws.lease_empty(src.len());
                buf.extend_from_slice(src.data());
                let (rows, cols) = src.shape();
                Matrix::from_vec(rows, cols, buf)
            }
            None => src.clone(),
        }
    }

    /// Elementwise map of `src` into a fresh (possibly pooled) matrix.
    fn mat_map(&self, src: &Matrix, f: impl Fn(f32) -> f32) -> Matrix {
        match self.ws {
            Some(ws) => {
                let mut buf = ws.lease_empty(src.len());
                buf.extend(src.data().iter().map(|&a| f(a)));
                let (rows, cols) = src.shape();
                Matrix::from_vec(rows, cols, buf)
            }
            None => src.map(f),
        }
    }

    /// Elementwise zip of two same-shape matrices.
    fn mat_zip(&self, a: &Matrix, b: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(a.shape(), b.shape(), "elementwise op: shape mismatch");
        let mut out = match self.ws {
            Some(ws) => ws.lease_empty(a.len()),
            None => Vec::with_capacity(a.len()),
        };
        out.extend(a.data().iter().zip(b.data()).map(|(&x, &y)| f(x, y)));
        let (rows, cols) = a.shape();
        Matrix::from_vec(rows, cols, out)
    }

    /// Returns a dead intermediate's buffer to the pool (no-op without a
    /// workspace — the matrix just drops).
    fn reclaim_mat(&self, m: Matrix) {
        if let Some(ws) = self.ws {
            ws.reclaim(m.into_data());
        }
    }

    // ---- leaves -------------------------------------------------------

    /// Records a constant input (no gradient).
    pub fn input(&mut self, value: Matrix) -> Var {
        self.push(Stored::Owned(value), Op::Input)
    }

    /// Records a trainable parameter leaf. The value is read from the
    /// store by reference — no copy is made.
    pub fn param(&mut self, id: ParamId) -> Var {
        self.push(Stored::Param(id), Op::Param(id))
    }

    // ---- ops ----------------------------------------------------------

    /// `a * b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let mut out = self.mat_zeroed(a.rows, b.cols);
        self.value(a).matmul_into_mode(self.value(b), &mut out, self.math);
        self.push(Stored::Owned(out), Op::MatMul(a.id, b.id))
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.mat_zip(self.value(a), self.value(b), |x, y| x + y);
        self.push(Stored::Owned(value), Op::Add(a.id, b.id))
    }

    /// `x + bias`, broadcasting the `1 x cols` bias over rows.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let mut value = self.mat_copy(self.value(x));
        value.add_row_broadcast_assign(self.value(bias));
        self.push(Stored::Owned(value), Op::AddBias(x.id, bias.id))
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.mat_zip(self.value(a), self.value(b), |x, y| x - y);
        self.push(Stored::Owned(value), Op::Sub(a.id, b.id))
    }

    /// Elementwise `a * b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.mat_zip(self.value(a), self.value(b), |x, y| x * y);
        self.push(Stored::Owned(value), Op::Mul(a.id, b.id))
    }

    /// Scales each row of `x` by the matching entry of the `n x 1`
    /// column `col` (e.g. attention-weighted pooling).
    pub fn mul_col_broadcast(&mut self, x: Var, col: Var) -> Var {
        let (xm, cm) = (self.value(x), self.value(col));
        assert_eq!(cm.cols(), 1, "mul_col_broadcast: col must be n x 1");
        assert_eq!(xm.rows(), cm.rows(), "mul_col_broadcast: row mismatch");
        let mut out = self.mat_copy(xm);
        let cm = self.value(col);
        for i in 0..out.rows() {
            let c = cm.get(i, 0);
            for v in out.row_mut(i) {
                *v *= c;
            }
        }
        self.push(Stored::Owned(out), Op::MulColBroadcast(x.id, col.id))
    }

    /// `alpha * a`.
    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        let value = self.mat_map(self.value(a), |v| v * alpha);
        self.push(Stored::Owned(value), Op::Scale(a.id, alpha))
    }

    /// Horizontal concatenation of `parts`.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols: no parts");
        let rows = parts[0].rows;
        let total: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = self.mat_zeroed(rows, total);
        let mut offset = 0;
        for p in parts {
            let pm = self.nval(p.id);
            assert_eq!(pm.rows(), rows, "concat_cols: row count mismatch");
            for i in 0..rows {
                out.row_mut(i)[offset..offset + p.cols].copy_from_slice(pm.row(i));
            }
            offset += p.cols;
        }
        self.push(Stored::Owned(out), Op::ConcatCols(parts.iter().map(|p| p.id).collect()))
    }

    /// Row gather (embedding lookup): `out.row(k) = src.row(idx[k])`.
    pub fn gather_rows(&mut self, src: Var, idx: &[usize]) -> Var {
        let mut out = self.mat_zeroed(idx.len(), src.cols);
        let src_m = self.value(src);
        for (k, &i) in idx.iter().enumerate() {
            out.set_row(k, src_m.row(i));
        }
        self.push(Stored::Owned(out), Op::GatherRows { src: src.id, idx: idx.to_vec() })
    }

    /// Fused row gather + fixed-fanout mean aggregation:
    /// `out.row(g) = mean_r src.row(idx[g*group + r])`, computed in one
    /// pass without materializing the gathered `idx.len() x d`
    /// intermediate. Bitwise identical to `gather_rows` followed by
    /// `mean_pool_rows` (same `r`-ascending accumulation order).
    pub fn gather_mean_pool_rows(&mut self, src: Var, idx: &[usize], group: usize) -> Var {
        assert!(group > 0, "gather_mean_pool_rows: group must be positive");
        assert_eq!(
            idx.len() % group,
            0,
            "gather_mean_pool_rows: {} indices not divisible by {}",
            idx.len(),
            group
        );
        let mut out = self.mat_zeroed(idx.len() / group, src.cols);
        self.value(src).gather_mean_pool_rows_into_mode(idx, group, &mut out, self.math);
        self.push(
            Stored::Owned(out),
            Op::GatherMeanPoolRows { src: src.id, idx: idx.to_vec(), group },
        )
    }

    /// Mean over consecutive groups of `group` rows (fixed-fanout
    /// neighbour aggregation).
    pub fn mean_pool_rows(&mut self, src: Var, group: usize) -> Var {
        assert!(group > 0, "mean_pool_rows: group must be positive");
        assert_eq!(
            src.rows % group,
            0,
            "mean_pool_rows: {} rows not divisible by {}",
            src.rows,
            group
        );
        let mut out = self.mat_zeroed(src.rows / group, src.cols);
        self.value(src).mean_pool_rows_into(group, &mut out);
        self.push(Stored::Owned(out), Op::MeanPoolRows { src: src.id, group })
    }

    /// Max over consecutive groups of `group` rows (max-pooling
    /// aggregation). Gradient flows only to each column's winning row.
    pub fn max_pool_rows(&mut self, src: Var, group: usize) -> Var {
        assert!(group > 0, "max_pool_rows: group must be positive");
        assert_eq!(
            src.rows % group,
            0,
            "max_pool_rows: {} rows not divisible by {}",
            src.rows,
            group
        );
        let out_rows = src.rows / group;
        let cols = src.cols;
        let mut out = self.mat_zeroed(out_rows, cols);
        let mut argmax = vec![0u32; out_rows * cols];
        let src_m = self.value(src);
        for g in 0..out_rows {
            for c in 0..cols {
                let mut best = f32::MIN;
                let mut best_row = g * group;
                for r in 0..group {
                    let v = src_m.get(g * group + r, c);
                    if v > best {
                        best = v;
                        best_row = g * group + r;
                    }
                }
                out.set(g, c, best);
                argmax[g * cols + c] = best_row as u32;
            }
        }
        self.push(Stored::Owned(out), Op::MaxPoolRows { src: src.id, argmax })
    }

    /// Mean over variable-length row segments (full-neighbourhood
    /// aggregation). `offsets` must be non-decreasing with
    /// `offsets[0] == 0` and `offsets.last() == src.rows()`.
    pub fn segment_mean(&mut self, src: Var, offsets: &[usize]) -> Var {
        assert!(offsets.len() >= 2, "segment_mean: need at least one segment");
        assert_eq!(offsets[0], 0, "segment_mean: offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            src.rows,
            "segment_mean: offsets must end at src row count"
        );
        let segs = offsets.len() - 1;
        let mut out = self.mat_zeroed(segs, src.cols);
        let src_m = self.value(src);
        for s in 0..segs {
            let (lo, hi) = (offsets[s], offsets[s + 1]);
            assert!(lo <= hi, "segment_mean: offsets must be non-decreasing");
            if lo == hi {
                continue;
            }
            let inv = 1.0 / (hi - lo) as f32;
            for r in lo..hi {
                let src_row = src_m.row(r);
                let out_row = out.row_mut(s);
                for (o, &v) in out_row.iter_mut().zip(src_row) {
                    *o += v * inv;
                }
            }
        }
        self.push(Stored::Owned(out), Op::SegmentMean { src: src.id, offsets: offsets.to_vec() })
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, x: Var, alpha: f32) -> Var {
        let value = match self.math {
            MathMode::Bitwise => {
                self.mat_map(self.value(x), |v| if v > 0.0 { v } else { alpha * v })
            }
            MathMode::FastMath => {
                // Value-identical to the scalar map (lanes never
                // interact) — the blend just runs 8 lanes at a time.
                let mut value = self.mat_copy(self.value(x));
                simd::leaky_relu_fast(value.data_mut(), alpha);
                value
            }
        };
        self.push(Stored::Owned(value), Op::LeakyRelu { src: x.id, alpha })
    }

    /// Standard ReLU (leaky ReLU with zero slope).
    pub fn relu(&mut self, x: Var) -> Var {
        self.leaky_relu(x, 0.0)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let value = self.mat_map(self.value(x), stable_sigmoid);
        self.push(Stored::Owned(value), Op::Sigmoid(x.id))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        let value = self.mat_map(self.value(x), f32::tanh);
        self.push(Stored::Owned(value), Op::Tanh(x.id))
    }

    /// Mean of all entries (scalar).
    pub fn mean_all(&mut self, x: Var) -> Var {
        let value = self.mat_full(1, 1, self.value(x).mean());
        self.push(Stored::Owned(value), Op::MeanAll(x.id))
    }

    /// Sum of all entries (scalar).
    pub fn sum_all(&mut self, x: Var) -> Var {
        let value = self.mat_full(1, 1, self.value(x).sum());
        self.push(Stored::Owned(value), Op::SumAll(x.id))
    }

    /// Sum of squared entries (scalar, L2 penalty).
    pub fn sum_squares(&mut self, x: Var) -> Var {
        let value = self.mat_full(1, 1, self.value(x).sum_squares());
        self.push(Stored::Owned(value), Op::SumSquares(x.id))
    }

    /// Per-row dot product of two `n x d` matrices → `n x 1`.
    pub fn dot_rows(&mut self, a: Var, b: Var) -> Var {
        let mut out = self.mat_zeroed(a.rows, 1);
        let (am, bm) = (self.value(a), self.value(b));
        assert_eq!(am.shape(), bm.shape(), "dot_rows: shape mismatch");
        for i in 0..am.rows() {
            let d: f32 = am.row(i).iter().zip(bm.row(i)).map(|(x, y)| x * y).sum();
            out.set(i, 0, d);
        }
        self.push(Stored::Owned(out), Op::DotRows(a.id, b.id))
    }

    /// Mean binary cross entropy with logits (scalar).
    ///
    /// `logits` must be `n x 1` and `targets.len() == n`. Uses the
    /// numerically stable form `max(x,0) - x*t + ln(1 + e^{-|x|})`.
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32]) -> Var {
        self.bce_with_logits_weighted(logits, targets, None)
    }

    /// Weighted variant of [`Tape::bce_with_logits`]: each sample's loss is
    /// multiplied by its weight before averaging (weights are normalised by
    /// `n`, not by their sum, matching a per-sample importance weighting).
    pub fn bce_with_logits_weighted(
        &mut self,
        logits: Var,
        targets: &[f32],
        weights: Option<&[f32]>,
    ) -> Var {
        let lm = self.value(logits);
        assert_eq!(lm.cols(), 1, "bce_with_logits: logits must be n x 1");
        assert_eq!(lm.rows(), targets.len(), "bce_with_logits: target length mismatch");
        if let Some(w) = weights {
            assert_eq!(w.len(), targets.len(), "bce_with_logits: weight length mismatch");
        }
        let n = targets.len().max(1) as f32;
        let mut total = 0.0f64;
        for (i, &t) in targets.iter().enumerate() {
            let x = lm.get(i, 0);
            let loss = x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
            let w = weights.map_or(1.0, |w| w[i]);
            total += (loss * w) as f64;
        }
        let value = self.mat_full(1, 1, (total / n as f64) as f32);
        self.push(
            Stored::Owned(value),
            Op::BceWithLogits {
                logits: logits.id,
                targets: targets.to_vec(),
                weights: weights.map(|w| w.to_vec()),
            },
        )
    }

    /// Grouped InfoNCE loss (scalar).
    ///
    /// `pos` is `n x 1` (one positive similarity per anchor) and `neg` is
    /// `(n * group) x 1`, anchor `i`'s negatives occupying rows
    /// `i*group .. (i+1)*group`. Each anchor contributes the softmax
    /// cross-entropy of its positive against its negatives with logits
    /// divided by `temperature`:
    ///
    /// ```text
    /// loss_i = logsumexp([p_i, n_i1, .., n_ik] / τ) - p_i / τ
    /// ```
    ///
    /// and the result is the mean over anchors. Uses the max-shifted
    /// log-sum-exp, so arbitrarily large similarities stay finite.
    pub fn info_nce(&mut self, pos: Var, neg: Var, group: usize, temperature: f32) -> Var {
        assert_eq!(pos.cols, 1, "info_nce: pos must be n x 1");
        assert_eq!(neg.cols, 1, "info_nce: neg must be (n*group) x 1");
        assert!(group >= 1, "info_nce: group must be at least 1");
        assert!(
            temperature.is_finite() && temperature > 0.0,
            "info_nce: temperature must be positive and finite"
        );
        assert_eq!(neg.rows, pos.rows * group, "info_nce: neg rows must be pos rows * group");
        let inv_temp = 1.0 / temperature;
        let (pm, nm) = (self.value(pos), self.value(neg));
        let mut total = 0.0f64;
        for i in 0..pos.rows {
            let p = pm.get(i, 0) * inv_temp;
            let mut m = p;
            for r in 0..group {
                m = m.max(nm.get(i * group + r, 0) * inv_temp);
            }
            let mut s = (p - m).exp();
            for r in 0..group {
                s += (nm.get(i * group + r, 0) * inv_temp - m).exp();
            }
            total += (m + s.ln() - p) as f64;
        }
        let value = self.mat_full(1, 1, (total / pos.rows.max(1) as f64) as f32);
        self.push(
            Stored::Owned(value),
            Op::InfoNce { pos: pos.id, neg: neg.id, group, inv_temp },
        )
    }

    // ---- backward -----------------------------------------------------

    /// Runs reverse-mode differentiation from the scalar `loss`, returning
    /// gradients for every parameter leaf the loss depends on.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!((loss.rows, loss.cols), (1, 1), "backward: loss must be scalar");
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.id] = Some(self.mat_full(1, 1, 1.0));
        let mut out = Gradients::new(self.store);

        for id in (0..=loss.id).rev() {
            let Some(g) = grads[id].take() else { continue };
            match &self.nodes[id].op {
                Op::Input => self.reclaim_mat(g),
                Op::Param(pid) => {
                    if let Some(merged) = out.accumulate_owned(*pid, g) {
                        self.reclaim_mat(merged);
                    }
                }
                Op::MatMul(a, b) => {
                    let (av, bv) = (self.nval(*a), self.nval(*b));
                    let mut ga = self.mat_zeroed(g.rows(), bv.rows());
                    match self.ws {
                        // Lease the nt pack panel from the workspace so
                        // the backward step stays allocation-free.
                        Some(ws) => {
                            let mut scratch = ws.lease_aligned(g.cols() * bv.rows());
                            g.matmul_nt_into_scratch(bv, &mut ga, self.math, &mut scratch);
                            ws.recycle_aligned(scratch);
                        }
                        None => g.matmul_nt_into_mode(bv, &mut ga, self.math),
                    }
                    let mut gb = self.mat_zeroed(av.cols(), g.cols());
                    av.matmul_tn_into_mode(&g, &mut gb, self.math);
                    accum(&mut grads, *a, ga, self.ws);
                    accum(&mut grads, *b, gb, self.ws);
                    self.reclaim_mat(g);
                }
                Op::Add(a, b) => {
                    let ga = self.mat_copy(&g);
                    accum(&mut grads, *a, ga, self.ws);
                    accum(&mut grads, *b, g, self.ws);
                }
                Op::AddBias(x, bias) => {
                    // Bias gradient is the column-wise sum of g.
                    let mut gb = self.mat_zeroed(1, g.cols());
                    for i in 0..g.rows() {
                        let row = g.row(i);
                        for (o, &v) in gb.row_mut(0).iter_mut().zip(row) {
                            *o += v;
                        }
                    }
                    accum(&mut grads, *x, g, self.ws);
                    accum(&mut grads, *bias, gb, self.ws);
                }
                Op::Sub(a, b) => {
                    let ga = self.mat_copy(&g);
                    accum(&mut grads, *a, ga, self.ws);
                    let mut gb = g;
                    gb.scale_assign(-1.0);
                    accum(&mut grads, *b, gb, self.ws);
                }
                Op::Mul(a, b) => {
                    let (av, bv) = (self.nval(*a), self.nval(*b));
                    let ga = self.mat_zip(&g, bv, |x, y| x * y);
                    let gb = self.mat_zip(&g, av, |x, y| x * y);
                    accum(&mut grads, *a, ga, self.ws);
                    accum(&mut grads, *b, gb, self.ws);
                    self.reclaim_mat(g);
                }
                Op::MulColBroadcast(x, col) => {
                    let (xm, cm) = (self.nval(*x), self.nval(*col));
                    let mut gx = self.mat_copy(&g);
                    let mut gc = self.mat_zeroed(cm.rows(), 1);
                    for i in 0..xm.rows() {
                        let c = cm.get(i, 0);
                        let mut dot = 0f32;
                        for (gv, &xv) in gx.row_mut(i).iter_mut().zip(xm.row(i)) {
                            dot += *gv * xv;
                            *gv *= c;
                        }
                        gc.set(i, 0, dot);
                    }
                    accum(&mut grads, *x, gx, self.ws);
                    accum(&mut grads, *col, gc, self.ws);
                    self.reclaim_mat(g);
                }
                Op::Scale(a, alpha) => {
                    let mut ga = g;
                    ga.scale_assign(*alpha);
                    accum(&mut grads, *a, ga, self.ws);
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for &p in parts {
                        let pc = self.nval(p).cols();
                        let mut gp = self.mat_zeroed(g.rows(), pc);
                        for i in 0..g.rows() {
                            gp.row_mut(i).copy_from_slice(&g.row(i)[offset..offset + pc]);
                        }
                        offset += pc;
                        accum(&mut grads, p, gp, self.ws);
                    }
                    self.reclaim_mat(g);
                }
                Op::GatherRows { src, idx } => {
                    let src_m = self.nval(*src);
                    let mut gs = self.mat_zeroed(src_m.rows(), src_m.cols());
                    for (k, &i) in idx.iter().enumerate() {
                        let grow = g.row(k);
                        for (o, &v) in gs.row_mut(i).iter_mut().zip(grow) {
                            *o += v;
                        }
                    }
                    accum(&mut grads, *src, gs, self.ws);
                    self.reclaim_mat(g);
                }
                Op::GatherMeanPoolRows { src, idx, group } => {
                    // Same accumulation order as MeanPoolRows backward
                    // (`v * inv` per entry) followed by the GatherRows
                    // scatter-add in ascending `k`: bitwise identical to
                    // the unfused pair.
                    let src_m = self.nval(*src);
                    let inv = 1.0 / *group as f32;
                    let mut gs = self.mat_zeroed(src_m.rows(), src_m.cols());
                    for (k, &i) in idx.iter().enumerate() {
                        let grow = g.row(k / group);
                        for (o, &v) in gs.row_mut(i).iter_mut().zip(grow) {
                            *o += v * inv;
                        }
                    }
                    accum(&mut grads, *src, gs, self.ws);
                    self.reclaim_mat(g);
                }
                Op::MeanPoolRows { src, group } => {
                    let src_m = self.nval(*src);
                    let inv = 1.0 / *group as f32;
                    let mut gs = self.mat_zeroed(src_m.rows(), src_m.cols());
                    for r in 0..src_m.rows() {
                        let grow = g.row(r / group);
                        for (o, &v) in gs.row_mut(r).iter_mut().zip(grow) {
                            *o = v * inv;
                        }
                    }
                    accum(&mut grads, *src, gs, self.ws);
                    self.reclaim_mat(g);
                }
                Op::SegmentMean { src, offsets } => {
                    let src_m = self.nval(*src);
                    let mut gs = self.mat_zeroed(src_m.rows(), src_m.cols());
                    for s in 0..offsets.len() - 1 {
                        let (lo, hi) = (offsets[s], offsets[s + 1]);
                        if lo == hi {
                            continue;
                        }
                        let inv = 1.0 / (hi - lo) as f32;
                        let grow = g.row(s);
                        for r in lo..hi {
                            for (o, &v) in gs.row_mut(r).iter_mut().zip(grow) {
                                *o += v * inv;
                            }
                        }
                    }
                    accum(&mut grads, *src, gs, self.ws);
                    self.reclaim_mat(g);
                }
                Op::MaxPoolRows { src, argmax } => {
                    let src_m = self.nval(*src);
                    let cols = src_m.cols();
                    let mut gs = self.mat_zeroed(src_m.rows(), cols);
                    for gr in 0..g.rows() {
                        for c in 0..cols {
                            let winner = argmax[gr * cols + c] as usize;
                            let cur = gs.get(winner, c);
                            gs.set(winner, c, cur + g.get(gr, c));
                        }
                    }
                    accum(&mut grads, *src, gs, self.ws);
                    self.reclaim_mat(g);
                }
                Op::LeakyRelu { src, alpha } => {
                    let x = self.nval(*src);
                    let mut gx = g;
                    match self.math {
                        MathMode::Bitwise => {
                            for (gv, &xv) in gx.data_mut().iter_mut().zip(x.data()) {
                                if xv <= 0.0 {
                                    *gv *= alpha;
                                }
                            }
                        }
                        MathMode::FastMath => {
                            simd::leaky_relu_bwd_fast(gx.data_mut(), x.data(), *alpha)
                        }
                    }
                    accum(&mut grads, *src, gx, self.ws);
                }
                Op::Sigmoid(src) => {
                    let y = self.nval(id);
                    let mut gx = g;
                    for (gv, &yv) in gx.data_mut().iter_mut().zip(y.data()) {
                        *gv *= yv * (1.0 - yv);
                    }
                    accum(&mut grads, *src, gx, self.ws);
                }
                Op::Tanh(src) => {
                    let y = self.nval(id);
                    let mut gx = g;
                    for (gv, &yv) in gx.data_mut().iter_mut().zip(y.data()) {
                        *gv *= 1.0 - yv * yv;
                    }
                    accum(&mut grads, *src, gx, self.ws);
                }
                Op::MeanAll(src) => {
                    let src_m = self.nval(*src);
                    let gv = g.get(0, 0) / src_m.len().max(1) as f32;
                    let gs = self.mat_full(src_m.rows(), src_m.cols(), gv);
                    accum(&mut grads, *src, gs, self.ws);
                    self.reclaim_mat(g);
                }
                Op::SumAll(src) => {
                    let src_m = self.nval(*src);
                    let gs = self.mat_full(src_m.rows(), src_m.cols(), g.get(0, 0));
                    accum(&mut grads, *src, gs, self.ws);
                    self.reclaim_mat(g);
                }
                Op::SumSquares(src) => {
                    let src_m = self.nval(*src);
                    let gv = 2.0 * g.get(0, 0);
                    let gs = self.mat_map(src_m, |v| v * gv);
                    accum(&mut grads, *src, gs, self.ws);
                    self.reclaim_mat(g);
                }
                Op::DotRows(a, b) => {
                    let (am, bm) = (self.nval(*a), self.nval(*b));
                    let mut ga = self.mat_zeroed(am.rows(), am.cols());
                    let mut gb = self.mat_zeroed(bm.rows(), bm.cols());
                    for i in 0..am.rows() {
                        let gi = g.get(i, 0);
                        for (o, &bv) in ga.row_mut(i).iter_mut().zip(bm.row(i)) {
                            *o = gi * bv;
                        }
                        for (o, &av) in gb.row_mut(i).iter_mut().zip(am.row(i)) {
                            *o = gi * av;
                        }
                    }
                    accum(&mut grads, *a, ga, self.ws);
                    accum(&mut grads, *b, gb, self.ws);
                    self.reclaim_mat(g);
                }
                Op::BceWithLogits { logits, targets, weights } => {
                    let lm = self.nval(*logits);
                    let n = targets.len().max(1) as f32;
                    let scale = g.get(0, 0) / n;
                    let mut gl = self.mat_zeroed(lm.rows(), 1);
                    for (i, &t) in targets.iter().enumerate() {
                        let y = stable_sigmoid(lm.get(i, 0));
                        let w = weights.as_ref().map_or(1.0, |w| w[i]);
                        gl.set(i, 0, scale * w * (y - t));
                    }
                    accum(&mut grads, *logits, gl, self.ws);
                    self.reclaim_mat(g);
                }
                Op::InfoNce { pos, neg, group, inv_temp } => {
                    let (pm, nm) = (self.nval(*pos), self.nval(*neg));
                    let scale = g.get(0, 0) * inv_temp / pm.rows().max(1) as f32;
                    let mut gp = self.mat_zeroed(pm.rows(), 1);
                    let mut gn = self.mat_zeroed(nm.rows(), 1);
                    for i in 0..pm.rows() {
                        let p = pm.get(i, 0) * inv_temp;
                        let mut m = p;
                        for r in 0..*group {
                            m = m.max(nm.get(i * group + r, 0) * inv_temp);
                        }
                        let ep = (p - m).exp();
                        let mut s = ep;
                        for r in 0..*group {
                            s += (nm.get(i * group + r, 0) * inv_temp - m).exp();
                        }
                        // d/d logit = softmax - onehot(positive).
                        gp.set(i, 0, scale * (ep / s - 1.0));
                        for r in 0..*group {
                            let e = (nm.get(i * group + r, 0) * inv_temp - m).exp();
                            gn.set(i * group + r, 0, scale * (e / s));
                        }
                    }
                    accum(&mut grads, *pos, gp, self.ws);
                    accum(&mut grads, *neg, gn, self.ws);
                    self.reclaim_mat(g);
                }
            }
        }
        out
    }
}

fn accum(grads: &mut [Option<Matrix>], id: usize, g: Matrix, ws: Option<&Workspace>) {
    match &mut grads[id] {
        Some(existing) => {
            existing.add_assign(&g);
            if let Some(ws) = ws {
                ws.reclaim(g.into_data());
            }
        }
        slot @ None => *slot = Some(g),
    }
}

/// Numerically stable sigmoid.
#[inline]
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_param_grads;
    use crate::init::xavier_uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_values() {
        let store = ParamStore::new();
        let mut t = Tape::new(&store);
        let a = t.input(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = t.input(Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let c = t.matmul(a, b);
        assert_eq!(t.value(c).data(), &[1.0, 2.0, 3.0, 4.0]);
        let s = t.sum_all(c);
        assert_eq!(t.scalar(s), 10.0);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(stable_sigmoid(100.0) <= 1.0);
        assert!(stable_sigmoid(-100.0) >= 0.0);
        assert!((stable_sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(stable_sigmoid(-100.0).is_finite());
    }

    #[test]
    fn matmul_gradients_check() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut store = ParamStore::new();
        let w = store.add("w", xavier_uniform(3, 4, &mut rng));
        let x = xavier_uniform(5, 3, &mut rng);
        check_param_grads(&store, &[w], 1e-2, 2e-2, |t| {
            let wx = t.param(w);
            let xv = t.input(x.clone());
            let y = t.matmul(xv, wx);
            t.mean_all(y)
        });
    }

    #[test]
    fn mlp_style_graph_gradients_check() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let w1 = store.add("w1", xavier_uniform(4, 6, &mut rng));
        let b1 = store.add("b1", Matrix::zeros(1, 6));
        let w2 = store.add("w2", xavier_uniform(6, 1, &mut rng));
        let x = xavier_uniform(7, 4, &mut rng);
        let targets = vec![1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0];
        check_param_grads(&store, &[w1, b1, w2], 1e-2, 2e-2, move |t| {
            let xv = t.input(x.clone());
            let w1v = t.param(w1);
            let b1v = t.param(b1);
            let w2v = t.param(w2);
            let h = t.matmul(xv, w1v);
            let h = t.add_bias(h, b1v);
            let h = t.leaky_relu(h, 0.1);
            let logits = t.matmul(h, w2v);
            t.bce_with_logits(logits, &targets)
        });
    }

    #[test]
    fn gather_and_pool_gradients_check() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let emb = store.add("emb", xavier_uniform(5, 3, &mut rng));
        let idx = vec![0usize, 2, 2, 4, 1, 3];
        check_param_grads(&store, &[emb], 1e-2, 2e-2, move |t| {
            let e = t.param(emb);
            let g = t.gather_rows(e, &idx);
            let pooled = t.mean_pool_rows(g, 2); // 3 groups of 2
            let sq = t.sum_squares(pooled);
            t.scale(sq, 0.5)
        });
    }

    #[test]
    fn fused_gather_mean_pool_gradients_check() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut store = ParamStore::new();
        let emb = store.add("emb", xavier_uniform(5, 3, &mut rng));
        let idx = vec![0usize, 2, 2, 4, 1, 3];
        check_param_grads(&store, &[emb], 1e-2, 2e-2, move |t| {
            let e = t.param(emb);
            let pooled = t.gather_mean_pool_rows(e, &idx, 2);
            let sq = t.sum_squares(pooled);
            t.scale(sq, 0.5)
        });
    }

    #[test]
    fn fused_gather_mean_pool_is_bitwise_identical_to_composition() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut store = ParamStore::new();
        let emb = store.add("emb", xavier_uniform(7, 4, &mut rng));
        let idx = vec![0usize, 6, 2, 4, 1, 3, 5, 5, 2, 0, 6, 1];
        for group in [1usize, 2, 3, 4, 6] {
            let (fused_v, fused_g) = {
                let mut t = Tape::new(&store);
                let e = t.param(emb);
                let p = t.gather_mean_pool_rows(e, &idx, group);
                let loss = t.sum_squares(p);
                let grads = t.backward(loss);
                (t.value(p).clone(), grads.get(emb).unwrap().clone())
            };
            let (plain_v, plain_g) = {
                let mut t = Tape::new(&store);
                let e = t.param(emb);
                let gth = t.gather_rows(e, &idx);
                let p = t.mean_pool_rows(gth, group);
                let loss = t.sum_squares(p);
                let grads = t.backward(loss);
                (t.value(p).clone(), grads.get(emb).unwrap().clone())
            };
            for (a, b) in fused_v.data().iter().zip(plain_v.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "forward bits differ (group {group})");
            }
            for (a, b) in fused_g.data().iter().zip(plain_g.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "gradient bits differ (group {group})");
            }
        }
    }

    #[test]
    fn pooled_tape_is_bitwise_identical_to_fresh() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut store = ParamStore::new();
        let w1 = store.add("w1", xavier_uniform(4, 6, &mut rng));
        let b1 = store.add("b1", xavier_uniform(1, 6, &mut rng));
        let w2 = store.add("w2", xavier_uniform(6, 1, &mut rng));
        let x = xavier_uniform(7, 4, &mut rng);
        let targets = vec![1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0];
        let run = |ws: Option<&Workspace>| {
            let mut t = match ws {
                Some(ws) => Tape::with_workspace(&store, ws),
                None => Tape::new(&store),
            };
            let xv = t.input(x.clone());
            let w1v = t.param(w1);
            let b1v = t.param(b1);
            let w2v = t.param(w2);
            let h = t.matmul(xv, w1v);
            let h = t.add_bias(h, b1v);
            let h = t.leaky_relu(h, 0.1);
            let logits = t.matmul(h, w2v);
            let loss = t.bce_with_logits(logits, &targets);
            let grads = t.backward(loss);
            let loss_v = t.scalar(loss);
            let grad_v = [w1, b1, w2].map(|p| grads.get(p).unwrap().clone());
            t.recycle();
            (loss_v, grad_v)
        };
        let (loss_fresh, grads_fresh) = run(None);
        let ws = Workspace::new();
        // Two pooled runs: the second reuses warm buffers.
        let (loss_p1, grads_p1) = run(Some(&ws));
        let (loss_p2, grads_p2) = run(Some(&ws));
        assert_eq!(loss_fresh.to_bits(), loss_p1.to_bits());
        assert_eq!(loss_fresh.to_bits(), loss_p2.to_bits());
        for pooled in [&grads_p1, &grads_p2] {
            for (f, p) in grads_fresh.iter().zip(pooled.iter()) {
                assert_eq!(f.shape(), p.shape());
                for (a, b) in f.data().iter().zip(p.data()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "pooled gradient bits differ");
                }
            }
        }
    }

    #[test]
    fn pooled_tape_step_allocates_nothing_after_warmup() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut store = ParamStore::new();
        let w1 = store.add("w1", xavier_uniform(4, 6, &mut rng));
        let b1 = store.add("b1", Matrix::zeros(1, 6));
        let w2 = store.add("w2", xavier_uniform(6, 1, &mut rng));
        let x = xavier_uniform(7, 4, &mut rng);
        let targets = vec![1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0];
        let ws = Workspace::new();
        let step = |ws: &Workspace| {
            let mut t = Tape::with_workspace(&store, ws);
            let xv = t.input(x.clone());
            let w1v = t.param(w1);
            let b1v = t.param(b1);
            let w2v = t.param(w2);
            let h = t.matmul(xv, w1v);
            let h = t.add_bias(h, b1v);
            let h = t.leaky_relu(h, 0.1);
            let logits = t.matmul(h, w2v);
            let loss = t.bce_with_logits(logits, &targets);
            let grads = t.backward(loss);
            t.recycle();
            grads.recycle_into(ws);
        };
        // Warmup.
        step(&ws);
        step(&ws);
        let warm = ws.fresh_allocs();
        for _ in 0..1000 {
            step(&ws);
        }
        assert_eq!(
            ws.fresh_allocs(),
            warm,
            "tape step allocated after warmup ({} fresh allocs over 1000 minibatches)",
            ws.fresh_allocs() - warm
        );
        assert!(ws.retained_buffers() <= crate::workspace::MAX_PER_BUCKET * 8);
    }

    #[test]
    fn param_leaves_are_read_by_reference() {
        let mut store = ParamStore::new();
        let p = store.add("p", Matrix::full(2, 2, 1.5));
        let mut t = Tape::new(&store);
        let v = t.param(p);
        assert!(
            std::ptr::eq(t.value(v), store.get(p)),
            "param leaf copied the stored matrix"
        );
    }

    #[test]
    fn segment_mean_gradients_check() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut store = ParamStore::new();
        let emb = store.add("emb", xavier_uniform(6, 2, &mut rng));
        // Segments: [0..2), [2..2) empty, [2..6)
        let offsets = vec![0usize, 2, 2, 6];
        check_param_grads(&store, &[emb], 1e-2, 2e-2, move |t| {
            let e = t.param(emb);
            let m = t.segment_mean(e, &offsets);
            t.sum_squares(m)
        });
    }

    #[test]
    fn concat_sub_mul_gradients_check() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut store = ParamStore::new();
        let a = store.add("a", xavier_uniform(3, 2, &mut rng));
        let b = store.add("b", xavier_uniform(3, 3, &mut rng));
        check_param_grads(&store, &[a, b], 1e-2, 2e-2, move |t| {
            let av = t.param(a);
            let bv = t.param(b);
            let c = t.concat_cols(&[av, bv]);
            let d = t.tanh(c);
            let e = t.mul(d, c);
            let f = t.sub(e, c);
            t.mean_all(f)
        });
    }

    #[test]
    fn dot_rows_and_sigmoid_gradients_check() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut store = ParamStore::new();
        let a = store.add("a", xavier_uniform(4, 3, &mut rng));
        let b = store.add("b", xavier_uniform(4, 3, &mut rng));
        check_param_grads(&store, &[a, b], 1e-2, 2e-2, move |t| {
            let av = t.param(a);
            let bv = t.param(b);
            let d = t.dot_rows(av, bv);
            let s = t.sigmoid(d);
            t.mean_all(s)
        });
    }

    #[test]
    fn max_pool_forward_and_gradients() {
        let store = ParamStore::new();
        let mut t = Tape::new(&store);
        let x = t.input(Matrix::from_vec(4, 2, vec![1.0, 9.0, 3.0, 2.0, -1.0, 0.0, 5.0, -4.0]));
        let p = t.max_pool_rows(x, 2);
        assert_eq!(t.value(p).data(), &[3.0, 9.0, 5.0, 0.0]);

        // Gradient check (use distinct values so argmax is stable under
        // the finite-difference perturbation).
        let mut rng = StdRng::seed_from_u64(20);
        let mut store = ParamStore::new();
        let src = store.add("src", xavier_uniform(6, 3, &mut rng));
        check_param_grads(&store, &[src], 1e-3, 2e-2, move |t| {
            let v = t.param(src);
            let pooled = t.max_pool_rows(v, 3);
            t.sum_squares(pooled)
        });
    }

    #[test]
    fn mul_col_broadcast_gradients_check() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut store = ParamStore::new();
        let x = store.add("x", xavier_uniform(4, 3, &mut rng));
        let c = store.add("c", xavier_uniform(4, 1, &mut rng));
        check_param_grads(&store, &[x, c], 1e-2, 2e-2, move |t| {
            let xv = t.param(x);
            let cv = t.param(c);
            let scaled = t.mul_col_broadcast(xv, cv);
            t.sum_squares(scaled)
        });
    }

    #[test]
    fn mul_col_broadcast_forward() {
        let store = ParamStore::new();
        let mut t = Tape::new(&store);
        let x = t.input(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let c = t.input(Matrix::column_vector(&[10.0, -1.0]));
        let y = t.mul_col_broadcast(x, c);
        assert_eq!(t.value(y).data(), &[10.0, 20.0, -3.0, -4.0]);
    }

    #[test]
    fn weighted_bce_gradients_check() {
        let mut rng = StdRng::seed_from_u64(16);
        let mut store = ParamStore::new();
        let w = store.add("w", xavier_uniform(3, 1, &mut rng));
        let x = xavier_uniform(5, 3, &mut rng);
        let targets = vec![1.0, 0.0, 0.0, 1.0, 1.0];
        let weights = vec![1.0, 2.0, 0.5, 1.5, 3.0];
        check_param_grads(&store, &[w], 1e-2, 2e-2, move |t| {
            let wv = t.param(w);
            let xv = t.input(x.clone());
            let logits = t.matmul(xv, wv);
            t.bce_with_logits_weighted(logits, &targets, Some(&weights))
        });
    }

    #[test]
    fn backward_only_touches_dependencies() {
        let mut store = ParamStore::new();
        let used = store.add("used", Matrix::full(1, 1, 2.0));
        let unused = store.add("unused", Matrix::full(1, 1, 3.0));
        let mut t = Tape::new(&store);
        let u = t.param(used);
        let loss = t.sum_squares(u);
        let grads = t.backward(loss);
        assert!(grads.get(used).is_some());
        assert!(grads.get(unused).is_none());
        // d/du u^2 = 2u = 4.
        assert!((grads.get(used).unwrap().get(0, 0) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn fanout_accumulates_gradients() {
        let mut store = ParamStore::new();
        let p = store.add("p", Matrix::full(1, 1, 3.0));
        let mut t = Tape::new(&store);
        let v = t.param(p);
        let doubled = t.add(v, v); // uses v twice
        let loss = t.sum_all(doubled);
        let grads = t.backward(loss);
        assert!((grads.get(p).unwrap().get(0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn bce_matches_manual_computation() {
        let store = ParamStore::new();
        let mut t = Tape::new(&store);
        let logits = t.input(Matrix::column_vector(&[0.0, 2.0]));
        let loss = t.bce_with_logits(logits, &[1.0, 0.0]);
        let expected = (-0.5f32.ln() + (1.0 + 2.0f32.exp()).ln() - 0.0) / 2.0;
        // -log(sigmoid(0)) = ln 2; -log(1 - sigmoid(2)) = ln(1 + e^2).
        let manual = ((2.0f32).ln() + (1.0 + (2.0f32).exp()).ln()) / 2.0;
        assert!((t.scalar(loss) - manual).abs() < 1e-5, "{} vs {}", t.scalar(loss), expected);
    }

    #[test]
    fn info_nce_matches_manual_computation() {
        // One anchor, two negatives, τ = 0.5: loss = lse([p,n1,n2]/τ) - p/τ.
        let store = ParamStore::new();
        let mut t = Tape::new(&store);
        let pos = t.input(Matrix::column_vector(&[1.0]));
        let neg = t.input(Matrix::column_vector(&[0.5, -0.25]));
        let loss = t.info_nce(pos, neg, 2, 0.5);
        let (p, n1, n2) = (2.0f64, 1.0f64, -0.5f64);
        let manual = (p.exp() + n1.exp() + n2.exp()).ln() - p;
        assert!(
            (t.scalar(loss) as f64 - manual).abs() < 1e-6,
            "{} vs {manual}",
            t.scalar(loss)
        );
    }

    #[test]
    fn info_nce_is_stable_at_extreme_logits() {
        let store = ParamStore::new();
        let mut t = Tape::new(&store);
        let pos = t.input(Matrix::column_vector(&[400.0, -400.0]));
        let neg = t.input(Matrix::column_vector(&[-400.0, 400.0]));
        let loss = t.info_nce(pos, neg, 1, 1.0);
        assert!(t.scalar(loss).is_finite());
        // Anchor 0 is trivially right (≈0 loss), anchor 1 trivially
        // wrong (≈800 nats): the mean sits near 400.
        assert!((t.scalar(loss) - 400.0).abs() < 1.0, "{}", t.scalar(loss));
        let grads = t.backward(loss);
        drop(grads);
    }

    #[test]
    fn info_nce_gradients_check() {
        // Similarities produced by dot_rows over two parameter tables, the
        // exact graph shape the contrastive objective builds.
        let mut rng = StdRng::seed_from_u64(21);
        let mut store = ParamStore::new();
        let a = store.add("a", xavier_uniform(3, 4, &mut rng));
        let b = store.add("b", xavier_uniform(3, 4, &mut rng));
        let npool = store.add("npool", xavier_uniform(6, 4, &mut rng));
        check_param_grads(&store, &[a, b, npool], 1e-2, 2e-2, move |t| {
            let av = t.param(a);
            let bv = t.param(b);
            let nv = t.param(npool);
            let pos = t.dot_rows(av, bv);
            let a_rep = t.gather_rows(av, &[0, 0, 1, 1, 2, 2]);
            let neg = t.dot_rows(a_rep, nv);
            t.info_nce(pos, neg, 2, 0.4)
        });
    }
}
