//! Finite-difference gradient checking.
//!
//! Every autograd op in this crate is validated against central
//! finite differences. The checker re-runs the caller's forward closure on
//! perturbed copies of the parameter store, so it works for any graph the
//! tape can express.

use crate::matrix::Matrix;
use crate::param::{ParamId, ParamStore};
use crate::tape::{Tape, Var};

/// Computes the numerical gradient of `f` (a scalar-valued forward pass)
/// with respect to parameter `id`, via central differences with step `eps`.
pub fn numerical_grad(
    store: &ParamStore,
    id: ParamId,
    eps: f32,
    f: &mut dyn FnMut(&mut Tape) -> Var,
) -> Matrix {
    let shape = store.get(id).shape();
    let mut grad = Matrix::zeros(shape.0, shape.1);
    for i in 0..shape.0 {
        for j in 0..shape.1 {
            let eval = |delta: f32, f: &mut dyn FnMut(&mut Tape) -> Var| -> f32 {
                let mut perturbed = store.clone();
                let v = perturbed.get(id).get(i, j);
                perturbed.get_mut(id).set(i, j, v + delta);
                let mut tape = Tape::new(&perturbed);
                let out = f(&mut tape);
                tape.scalar(out)
            };
            let plus = eval(eps, f);
            let minus = eval(-eps, f);
            grad.set(i, j, (plus - minus) / (2.0 * eps));
        }
    }
    grad
}

/// Asserts that analytic gradients from [`Tape::backward`] match numerical
/// gradients for every parameter in `ids`.
///
/// `tol` is an absolute-plus-relative tolerance: the check fails when
/// `|analytic - numeric| > tol * (1 + |numeric|)` for any entry.
///
/// # Panics
/// Panics with a diagnostic message on mismatch — intended for use inside
/// tests.
pub fn check_param_grads(
    store: &ParamStore,
    ids: &[ParamId],
    eps: f32,
    tol: f32,
    mut f: impl FnMut(&mut Tape) -> Var,
) {
    // Analytic gradients.
    let mut tape = Tape::new(store);
    let loss = f(&mut tape);
    let analytic = tape.backward(loss);

    for &id in ids {
        let numeric = numerical_grad(store, id, eps, &mut f);
        let analytic_g = analytic
            .get(id)
            .unwrap_or_else(|| panic!("no analytic gradient for param `{}`", store.name(id)));
        assert_eq!(analytic_g.shape(), numeric.shape());
        for i in 0..numeric.rows() {
            for j in 0..numeric.cols() {
                let a = analytic_g.get(i, j);
                let n = numeric.get(i, j);
                let err = (a - n).abs();
                assert!(
                    err <= tol * (1.0 + n.abs()),
                    "grad mismatch for `{}`[{},{}]: analytic {} vs numeric {} (err {})",
                    store.name(id),
                    i,
                    j,
                    a,
                    n,
                    err
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numerical_grad_of_square() {
        let mut store = ParamStore::new();
        let p = store.add("p", Matrix::from_vec(1, 2, vec![3.0, -2.0]));
        let g = numerical_grad(&store, p, 1e-2, &mut |t| {
            let v = t.param(p);
            t.sum_squares(v)
        });
        assert!((g.get(0, 0) - 6.0).abs() < 1e-2);
        assert!((g.get(0, 1) + 4.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "grad mismatch")]
    fn check_detects_wrong_gradient() {
        let mut store = ParamStore::new();
        let p = store.add("p", Matrix::from_vec(1, 1, vec![2.0]));
        // Force a mismatch by pairing an absurdly sloppy eps (which ruins
        // the numeric estimate for a quadratic away from small steps) with
        // an absurdly tight tolerance.
        check_param_grads(&store, &[p], 10.0, 1e-9, |t| {
            let v = t.param(p);
            let sq = t.sum_squares(v);
            let cube_ish = t.mul(sq, v); // p^3: non-quadratic so large eps biases the estimate
            t.sum_all(cube_ish)
        });
    }
}
