//! Binary serialisation for matrices and parameter stores.
//!
//! Training a HiGNN hierarchy is the expensive step; serving wants to
//! load embeddings and weights without retraining. This module provides
//! a small, dependency-free little-endian binary format:
//!
//! ```text
//! matrix  := "HGMX" u32(version=1) u64(rows) u64(cols) f32[rows*cols]
//! params  := "HGPS" u32(version=1) u64(count) { u32(name_len) name matrix }*
//! ```
//!
//! All readers validate magic numbers and version, returning
//! `io::ErrorKind::InvalidData` on mismatch.

use crate::matrix::Matrix;
use crate::param::ParamStore;
use std::io::{self, Read, Write};

const MATRIX_MAGIC: &[u8; 4] = b"HGMX";
const PARAMS_MAGIC: &[u8; 4] = b"HGPS";
const VERSION: u32 = 1;

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn check_header<R: Read>(r: &mut R, magic: &[u8; 4], what: &str) -> io::Result<()> {
    let mut m = [0u8; 4];
    r.read_exact(&mut m)?;
    if &m != magic {
        return Err(bad_data(&format!("{what}: bad magic")));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(bad_data(&format!("{what}: unsupported version {version}")));
    }
    Ok(())
}

/// Writes a matrix in the `HGMX` format.
pub fn write_matrix<W: Write>(w: &mut W, m: &Matrix) -> io::Result<()> {
    w.write_all(MATRIX_MAGIC)?;
    write_u32(w, VERSION)?;
    write_u64(w, m.rows() as u64)?;
    write_u64(w, m.cols() as u64)?;
    for &v in m.data() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a matrix in the `HGMX` format.
pub fn read_matrix<R: Read>(r: &mut R) -> io::Result<Matrix> {
    check_header(r, MATRIX_MAGIC, "matrix")?;
    let rows = read_u64(r).map_err(|_| bad_data("matrix: truncated in `rows` field"))? as usize;
    let cols = read_u64(r).map_err(|_| bad_data("matrix: truncated in `cols` field"))? as usize;
    let count = rows
        .checked_mul(cols)
        .ok_or_else(|| bad_data("matrix: dimension overflow (rows * cols)"))?;
    // Sanity cap: refuse absurd sizes from corrupted headers.
    if count > 1 << 32 {
        return Err(bad_data("matrix: implausible size"));
    }
    // Grow incrementally instead of pre-allocating the declared size:
    // a corrupt header then fails at EOF without a giant allocation.
    let mut data = Vec::new();
    let mut buf = [0u8; 4];
    for k in 0..count {
        r.read_exact(&mut buf).map_err(|_| {
            bad_data(&format!("matrix: truncated in `data` (element {k} of {count})"))
        })?;
        data.push(f32::from_le_bytes(buf));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

/// Writes a parameter store (names + values) in the `HGPS` format.
pub fn write_param_store<W: Write>(w: &mut W, store: &ParamStore) -> io::Result<()> {
    w.write_all(PARAMS_MAGIC)?;
    write_u32(w, VERSION)?;
    write_u64(w, store.len() as u64)?;
    for (_, name, value) in store.iter() {
        let bytes = name.as_bytes();
        write_u32(w, bytes.len() as u32)?;
        w.write_all(bytes)?;
        write_matrix(w, value)?;
    }
    Ok(())
}

/// Reads a parameter store in the `HGPS` format. Parameter ids are
/// assigned in file order, which matches the order they were registered
/// when the store was written — so models reconstructed with the same
/// code see the same ids.
pub fn read_param_store<R: Read>(r: &mut R) -> io::Result<ParamStore> {
    check_header(r, PARAMS_MAGIC, "param store")?;
    let count =
        read_u64(r).map_err(|_| bad_data("param store: truncated in `count` field"))? as usize;
    if count > 1 << 24 {
        return Err(bad_data("param store: implausible count"));
    }
    let mut store = ParamStore::new();
    for k in 0..count {
        let name_len = read_u32(r)
            .map_err(|_| bad_data(&format!("param store: truncated in `name_len` (entry {k})")))?
            as usize;
        if name_len > 4096 {
            return Err(bad_data(&format!(
                "param store: implausible name length {name_len} (entry {k})"
            )));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)
            .map_err(|_| bad_data(&format!("param store: truncated in `name` (entry {k})")))?;
        let name = String::from_utf8(name)
            .map_err(|_| bad_data(&format!("param store: non-UTF8 name (entry {k})")))?;
        let value = read_matrix(r)
            .map_err(|e| bad_data(&format!("param store: entry {k} (`{name}`): {e}")))?;
        store.add(name, value);
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matrix_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = init::xavier_uniform(7, 5, &mut rng);
        let mut buf = Vec::new();
        write_matrix(&mut buf, &m).unwrap();
        let back = read_matrix(&mut buf.as_slice()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let m = Matrix::zeros(0, 3);
        let mut buf = Vec::new();
        write_matrix(&mut buf, &m).unwrap();
        let back = read_matrix(&mut buf.as_slice()).unwrap();
        assert_eq!(back.shape(), (0, 3));
    }

    #[test]
    fn param_store_roundtrip_preserves_names_and_order() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let a = store.add("layer.w", init::xavier_uniform(3, 4, &mut rng));
        let b = store.add("layer.b", Matrix::zeros(1, 4));
        let mut buf = Vec::new();
        write_param_store(&mut buf, &store).unwrap();
        let back = read_param_store(&mut buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.id("layer.w"), Some(a));
        assert_eq!(back.id("layer.b"), Some(b));
        assert_eq!(back.get(a), store.get(a));
        assert_eq!(back.get(b), store.get(b));
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_matrix(&mut &b"NOPE\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_data() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut buf = Vec::new();
        write_matrix(&mut buf, &m).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_matrix(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let m = Matrix::zeros(1, 1);
        let mut buf = Vec::new();
        write_matrix(&mut buf, &m).unwrap();
        buf[4] = 99; // corrupt version
        assert!(read_matrix(&mut buf.as_slice()).is_err());
    }
}
