//! Explicit SIMD kernels and the two-tier math-mode contract.
//!
//! ## Why `core::arch` intrinsics and not `std::simd`
//!
//! The workspace builds on **stable** Rust; `std::simd` is still
//! nightly-only. `core::arch::x86_64` intrinsics are stable, and the
//! AVX2+FMA subset used here covers every x86-64 server this system
//! targets. Dispatch is decided **once per process** at runtime
//! ([`backend`]): if AVX2 and FMA are both present the vector kernels
//! run, otherwise a portable scalar fallback with the *same* numeric
//! contract takes over — so a FastMath build is never silently wrong on
//! old hardware, just slower. Setting `HIGNN_FORCE_PORTABLE_SIMD=1`
//! pins the portable fallback, which is how CI proves the fallback
//! path on machines that *do* have AVX2.
//!
//! ## The two tiers (DESIGN.md §14)
//!
//! * [`MathMode::Bitwise`] — the proven default. Every kernel is
//!   bit-identical to the naive oracle: per output element the
//!   contraction index ascends from a `+0.0` accumulator. The kernels
//!   in [`crate::matrix`] implement this tier; nothing in this module
//!   runs under it.
//! * [`MathMode::FastMath`] — the kernels below. They may *reorder*
//!   accumulation across vector lanes and contract multiply-add pairs
//!   into single-rounding FMAs, so results differ from the oracle in
//!   the low bits. They are verified **differentially**: each kernel
//!   within a stated tolerance of an `f64` oracle (see the
//!   differential-oracle suite and the kernels bench, which exits 5 on
//!   divergence), plus end-metric equivalence of a full training run.
//!   Within the tier, results are still deterministic: the lane
//!   structure is fixed, so the same inputs give the same bits on the
//!   same backend, and N worker threads remain bit-identical to 1.
//!
//! Elementwise kernels (leaky ReLU forward/backward, axpy) are
//! value-identical to their scalar forms — vector lanes never interact
//! — but ship in this module because they only run under FastMath; the
//! Adam update uses FMA contraction and is toleranced like the matmuls.

use std::sync::OnceLock;

/// Which numeric contract a computation runs under. See the module
/// docs; threaded from `HignnBuilder`/`TrainSpec` through the tape,
/// trainer, k-means assignment, and the serve scorer, and recorded in
/// checkpoint metadata (resume refuses a mismatch).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MathMode {
    /// Bit-identical to the naive oracle (the proven default).
    #[default]
    Bitwise,
    /// SIMD kernels; accumulation may be reordered for vector lanes.
    /// Verified within tolerances against the `f64` oracle.
    FastMath,
}

impl MathMode {
    /// Parses a CLI token (`bitwise` | `fast`).
    pub fn parse(token: &str) -> Result<MathMode, String> {
        match token {
            "bitwise" => Ok(MathMode::Bitwise),
            "fast" => Ok(MathMode::FastMath),
            other => Err(format!(
                "unknown math mode `{other}`: expected `bitwise` (bit-identical to the \
                 oracle) or `fast` (SIMD kernels, toleranced)"
            )),
        }
    }

    /// The CLI/checkpoint-meta name (`bitwise` | `fast`).
    pub fn name(self) -> &'static str {
        match self {
            MathMode::Bitwise => "bitwise",
            MathMode::FastMath => "fast",
        }
    }

    /// Stable id recorded in checkpoint metadata (v5+).
    pub fn id(self) -> u64 {
        match self {
            MathMode::Bitwise => 0,
            MathMode::FastMath => 1,
        }
    }

    /// Inverse of [`MathMode::id`].
    pub fn from_id(id: u64) -> Option<MathMode> {
        match id {
            0 => Some(MathMode::Bitwise),
            1 => Some(MathMode::FastMath),
            _ => None,
        }
    }
}

/// Environment variable that pins the portable fallback even when the
/// CPU supports the vector kernels (any value but `0`). Read once, at
/// first kernel dispatch.
pub const FORCE_PORTABLE_ENV: &str = "HIGNN_FORCE_PORTABLE_SIMD";

/// Which implementation backs the FastMath kernels in this process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdBackend {
    /// AVX2 + FMA `core::arch` intrinsics.
    Avx2Fma,
    /// Portable scalar fallback (same contract, no vector units).
    Portable,
}

impl SimdBackend {
    /// Stable name for benchmark output and CI assertions.
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Avx2Fma => "avx2+fma",
            SimdBackend::Portable => "portable",
        }
    }
}

/// The FastMath backend for this process: decided once from CPU feature
/// detection and [`FORCE_PORTABLE_ENV`], then cached.
pub fn backend() -> SimdBackend {
    static BACKEND: OnceLock<SimdBackend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        if std::env::var_os(FORCE_PORTABLE_ENV).is_some_and(|v| v != "0") {
            return SimdBackend::Portable;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                return SimdBackend::Avx2Fma;
            }
        }
        SimdBackend::Portable
    })
}

// ---- FastMath matmul kernels -------------------------------------------
//
// All four products share one microkernel shape: 4 output rows x 16
// output columns (two 8-lane vectors per row) accumulate in registers
// while the contraction index `t` ascends once; the A element is
// broadcast, the B row is loaded contiguously, and `acc = fma(a, b,
// acc)` contracts each multiply-add into one rounding. Per-element `t`
// order is *preserved* — only the FMA rounding differs from Bitwise —
// except in packed-`nt`, which shares this kernel after an explicit
// transpose. Remainder rows/columns run the portable scalar loop.

/// `out = a * b`, `a` is `m x kk`, `b` is `kk x n` (FastMath tier).
pub fn mm_nn_fast(a: &[f32], m: usize, kk: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert!(a.len() >= m * kk && b.len() >= kk * n && out.len() >= m * n);
    #[cfg(target_arch = "x86_64")]
    if backend() == SimdBackend::Avx2Fma {
        // SAFETY: backend() proved avx2+fma; slice bounds checked above.
        unsafe { avx2::mm_nn(a, m, kk, b, n, out) };
        return;
    }
    portable_mm_nn(a, m, kk, b, n, out);
}

/// `out = a^T * b`, `a` is `kk x m`, `b` is `kk x n` (FastMath tier).
pub fn mm_tn_fast(a: &[f32], kk: usize, m: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert!(a.len() >= kk * m && b.len() >= kk * n && out.len() >= m * n);
    #[cfg(target_arch = "x86_64")]
    if backend() == SimdBackend::Avx2Fma {
        // SAFETY: backend() proved avx2+fma; slice bounds checked above.
        unsafe { avx2::mm_tn(a, kk, m, b, n, out) };
        return;
    }
    portable_mm_tn(a, kk, m, b, n, out);
}

/// `out = [a1 | a2] * w` without materialising the concatenation
/// (FastMath tier). `a1` is `m x c1`, `a2` is `m x c2`, `w` is
/// `(c1 + c2) x n`.
#[allow(clippy::too_many_arguments)]
pub fn mm_cat2_fast(
    a1: &[f32],
    c1: usize,
    a2: &[f32],
    c2: usize,
    m: usize,
    w: &[f32],
    n: usize,
    out: &mut [f32],
) {
    debug_assert!(a1.len() >= m * c1 && a2.len() >= m * c2);
    debug_assert!(w.len() >= (c1 + c2) * n && out.len() >= m * n);
    #[cfg(target_arch = "x86_64")]
    if backend() == SimdBackend::Avx2Fma {
        // SAFETY: backend() proved avx2+fma; slice bounds checked above.
        unsafe { avx2::mm_cat2(a1, c1, a2, c2, m, w, n, out) };
        return;
    }
    portable_mm_cat2(a1, c1, a2, c2, m, w, n, out);
}

/// Fused gather -> mean-pool over rows (FastMath tier): output row `g`
/// averages `src` rows `idx[g*group..(g+1)*group]`. Columns are
/// independent lanes, so values match the Bitwise kernel exactly; it
/// lives in this tier because it uses the vector units.
pub fn gather_mean_pool_fast(
    src: &[f32],
    cols: usize,
    idx: &[usize],
    group: usize,
    out: &mut [f32],
) {
    debug_assert!(group > 0 && idx.len().is_multiple_of(group));
    debug_assert!(out.len() >= (idx.len() / group) * cols);
    #[cfg(target_arch = "x86_64")]
    if backend() == SimdBackend::Avx2Fma {
        // SAFETY: backend() proved avx2+fma; bounds checked above plus
        // the same per-index row bound the Bitwise kernel asserts.
        unsafe { avx2::gather_mean_pool(src, cols, idx, group, out) };
        return;
    }
    portable_gather_mean_pool(src, cols, idx, group, out);
}

// ---- FastMath elementwise kernels --------------------------------------

/// In-place leaky ReLU: `x = if x > 0 { x } else { alpha * x }`.
/// Value-identical to the scalar form (lanes never interact).
pub fn leaky_relu_fast(x: &mut [f32], alpha: f32) {
    #[cfg(target_arch = "x86_64")]
    if backend() == SimdBackend::Avx2Fma {
        // SAFETY: backend() proved avx2+fma.
        unsafe { avx2::leaky_relu(x, alpha) };
        return;
    }
    for v in x {
        if *v <= 0.0 {
            *v *= alpha;
        }
    }
}

/// In-place leaky-ReLU backward: `g *= alpha` wherever `x <= 0`.
pub fn leaky_relu_bwd_fast(g: &mut [f32], x: &[f32], alpha: f32) {
    debug_assert_eq!(g.len(), x.len());
    #[cfg(target_arch = "x86_64")]
    if backend() == SimdBackend::Avx2Fma {
        // SAFETY: backend() proved avx2+fma; equal lengths checked.
        unsafe { avx2::leaky_relu_bwd(g, x, alpha) };
        return;
    }
    for (gv, &xv) in g.iter_mut().zip(x) {
        if xv <= 0.0 {
            *gv *= alpha;
        }
    }
}

/// In-place `y += alpha * x` (FMA-contracted under AVX2).
pub fn axpy_fast(y: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    #[cfg(target_arch = "x86_64")]
    if backend() == SimdBackend::Avx2Fma {
        // SAFETY: backend() proved avx2+fma; equal lengths checked.
        unsafe { avx2::axpy(y, alpha, x) };
        return;
    }
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// Squared Euclidean distance between two equal-length vectors.
///
/// AVX2 keeps eight lane accumulators (FMA over `d*d`) reduced at the
/// end, so the accumulation order differs from the scalar left-to-right
/// sum — FastMath tier only.
pub fn sq_dist_fast(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if backend() == SimdBackend::Avx2Fma {
        // SAFETY: backend() proved avx2+fma; equal lengths checked.
        return unsafe { avx2::sq_dist(a, b) };
    }
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// One fused Adam update over a parameter/gradient pair:
///
/// ```text
/// m = beta1 * m + (1 - beta1) * g
/// v = beta2 * v + (1 - beta2) * g^2
/// p -= lr * (m / bc1) / (sqrt(v / bc2) + eps)
/// ```
///
/// Same math as the scalar optimizer loop; FMA contraction makes the
/// low bits differ, which is why it belongs to the FastMath tier.
#[allow(clippy::too_many_arguments)]
pub fn adam_step_fast(
    p: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
) {
    debug_assert!(p.len() == m.len() && m.len() == v.len() && v.len() == g.len());
    #[cfg(target_arch = "x86_64")]
    if backend() == SimdBackend::Avx2Fma {
        // SAFETY: backend() proved avx2+fma; equal lengths checked.
        unsafe { avx2::adam_step(p, m, v, g, lr, beta1, beta2, eps, bc1, bc2) };
        return;
    }
    for i in 0..p.len() {
        let gi = g[i];
        m[i] = beta1 * m[i] + (1.0 - beta1) * gi;
        v[i] = beta2 * v[i] + (1.0 - beta2) * gi * gi;
        let m_hat = m[i] / bc1;
        let v_hat = v[i] / bc2;
        p[i] -= lr * m_hat / (v_hat.sqrt() + eps);
    }
}

// ---- portable fallback --------------------------------------------------
//
// Scalar loops with the Bitwise kernels' per-element accumulation
// order. A portable FastMath run is therefore numerically *identical*
// to Bitwise — trivially inside every tolerance — which is exactly
// what the CI fallback assertion relies on.

fn portable_mm_nn(a: &[f32], m: usize, kk: usize, b: &[f32], n: usize, out: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * kk..(i + 1) * kk];
        for j in 0..n {
            let mut acc = 0.0f32;
            for (t, &av) in arow.iter().enumerate() {
                acc += av * b[t * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

fn portable_mm_tn(a: &[f32], kk: usize, m: usize, b: &[f32], n: usize, out: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for t in 0..kk {
                acc += a[t * m + i] * b[t * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn portable_mm_cat2(
    a1: &[f32],
    c1: usize,
    a2: &[f32],
    c2: usize,
    m: usize,
    w: &[f32],
    n: usize,
    out: &mut [f32],
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for t in 0..c1 {
                acc += a1[i * c1 + t] * w[t * n + j];
            }
            for t in 0..c2 {
                acc += a2[i * c2 + t] * w[(c1 + t) * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

fn portable_gather_mean_pool(
    src: &[f32],
    cols: usize,
    idx: &[usize],
    group: usize,
    out: &mut [f32],
) {
    let inv = 1.0 / group as f32;
    for (g, group_idx) in idx.chunks_exact(group).enumerate() {
        let out_row = &mut out[g * cols..(g + 1) * cols];
        out_row.fill(0.0);
        for &i in group_idx {
            let srow = &src[i * cols..(i + 1) * cols];
            for (o, &s) in out_row.iter_mut().zip(srow) {
                *o += s;
            }
        }
        for o in out_row.iter_mut() {
            *o *= inv;
        }
    }
}

// ---- AVX2 + FMA backend -------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::*;

    /// Lanes per vector register.
    const L: usize = 8;
    /// Output-row block of the broadcast-FMA microkernel.
    const MRF: usize = 4;
    /// Output-column block (two vectors wide).
    const NRF: usize = 2 * L;

    /// The shared 4x16 broadcast-FMA microkernel over `t in 0..kk`:
    /// `a_at(ii, t)` supplies the broadcast element for output row
    /// `i + ii`, and `brow(t)` the index of B's contiguous row.
    ///
    /// # Safety
    /// Caller proves avx2+fma and that every index reached is in
    /// bounds: `a_at` for `ii < ib`, `b[brow(t) + j..+jb]`,
    /// `out[(i+ii)*n + j..+jb]`.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn panel<F: Fn(usize, usize) -> f32>(
        kk: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
        i: usize,
        ib: usize,
        j: usize,
        jb: usize,
        a_at: F,
        brow: impl Fn(usize) -> usize,
    ) {
        if ib == MRF && jb == NRF {
            let mut acc = [[_mm256_setzero_ps(); 2]; MRF];
            for t in 0..kk {
                let base = brow(t) + j;
                let b0 = _mm256_loadu_ps(b.as_ptr().add(base));
                let b1 = _mm256_loadu_ps(b.as_ptr().add(base + L));
                for (ii, row) in acc.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(a_at(ii, t));
                    row[0] = _mm256_fmadd_ps(av, b0, row[0]);
                    row[1] = _mm256_fmadd_ps(av, b1, row[1]);
                }
            }
            for (ii, row) in acc.iter().enumerate() {
                let o = (i + ii) * n + j;
                _mm256_storeu_ps(out.as_mut_ptr().add(o), row[0]);
                _mm256_storeu_ps(out.as_mut_ptr().add(o + L), row[1]);
            }
        } else {
            // Edge panel (short rows and/or columns): one vector at a
            // time per row, scalar for the sub-vector tail.
            for ii in 0..ib {
                let mut jj = 0;
                while jj + L <= jb {
                    let mut acc = _mm256_setzero_ps();
                    for t in 0..kk {
                        let bv = _mm256_loadu_ps(b.as_ptr().add(brow(t) + j + jj));
                        acc = _mm256_fmadd_ps(_mm256_set1_ps(a_at(ii, t)), bv, acc);
                    }
                    _mm256_storeu_ps(out.as_mut_ptr().add((i + ii) * n + j + jj), acc);
                    jj += L;
                }
                for jj in jj..jb {
                    let mut s = 0.0f32;
                    for t in 0..kk {
                        s += a_at(ii, t) * b[brow(t) + j + jj];
                    }
                    out[(i + ii) * n + j + jj] = s;
                }
            }
        }
    }

    /// Covers the `m x n` output with microkernel panels.
    ///
    /// # Safety
    /// Same contract as [`panel`], over the full output.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn cover<F: Fn(usize, usize, usize) -> f32>(
        m: usize,
        kk: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
        a_at: F,
        brow: impl Fn(usize) -> usize + Copy,
    ) {
        let mut i = 0;
        while i < m {
            let ib = MRF.min(m - i);
            let mut j = 0;
            while j < n {
                let jb = NRF.min(n - j);
                panel(kk, b, n, out, i, ib, j, jb, |ii, t| a_at(i, ii, t), brow);
                j += jb;
            }
            i += ib;
        }
    }

    /// # Safety
    /// avx2+fma present; `a` is `m x kk`, `b` is `kk x n`, `out` holds
    /// `m * n` entries.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn mm_nn(a: &[f32], m: usize, kk: usize, b: &[f32], n: usize, out: &mut [f32]) {
        cover(m, kk, b, n, out, |i, ii, t| *a.get_unchecked((i + ii) * kk + t), |t| t * n);
    }

    /// # Safety
    /// avx2+fma present; `a` is `kk x m`, `b` is `kk x n`, `out` holds
    /// `m * n` entries.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn mm_tn(a: &[f32], kk: usize, m: usize, b: &[f32], n: usize, out: &mut [f32]) {
        cover(m, kk, b, n, out, |i, ii, t| *a.get_unchecked(t * m + i + ii), |t| t * n);
    }

    /// # Safety
    /// avx2+fma present; `a1` is `m x c1`, `a2` is `m x c2`, `w` is
    /// `(c1 + c2) x n`, `out` holds `m * n` entries.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn mm_cat2(
        a1: &[f32],
        c1: usize,
        a2: &[f32],
        c2: usize,
        m: usize,
        w: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        cover(m, c1 + c2, w, n, out, |i, ii, t| {
            if t < c1 {
                *a1.get_unchecked((i + ii) * c1 + t)
            } else {
                *a2.get_unchecked((i + ii) * c2 + (t - c1))
            }
        }, |t| t * n);
    }

    /// # Safety
    /// avx2+fma present; every `idx` entry addresses a full `cols` row
    /// of `src`; `out` holds `(idx.len() / group) * cols` entries.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gather_mean_pool(
        src: &[f32],
        cols: usize,
        idx: &[usize],
        group: usize,
        out: &mut [f32],
    ) {
        let inv = _mm256_set1_ps(1.0 / group as f32);
        let main = cols - cols % L;
        for (g, group_idx) in idx.chunks_exact(group).enumerate() {
            let out_base = g * cols;
            let mut j = 0;
            while j < main {
                let mut acc = _mm256_setzero_ps();
                for &i in group_idx {
                    acc = _mm256_add_ps(acc, _mm256_loadu_ps(src.as_ptr().add(i * cols + j)));
                }
                _mm256_storeu_ps(out.as_mut_ptr().add(out_base + j), _mm256_mul_ps(acc, inv));
                j += L;
            }
            let inv_s = 1.0 / group as f32;
            for jj in main..cols {
                let mut s = 0.0f32;
                for &i in group_idx {
                    s += src[i * cols + jj];
                }
                out[out_base + jj] = s * inv_s;
            }
        }
    }

    /// # Safety
    /// avx2+fma present.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn leaky_relu(x: &mut [f32], alpha: f32) {
        let av = _mm256_set1_ps(alpha);
        let zero = _mm256_setzero_ps();
        let main = x.len() - x.len() % L;
        let mut j = 0;
        while j < main {
            let v = _mm256_loadu_ps(x.as_ptr().add(j));
            let neg = _mm256_mul_ps(v, av);
            // v > 0 ? v : alpha * v  (NaN compares false -> scaled, same
            // as the scalar `if v > 0` branch).
            let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(v, zero);
            _mm256_storeu_ps(x.as_mut_ptr().add(j), _mm256_blendv_ps(neg, v, mask));
            j += L;
        }
        for v in &mut x[main..] {
            if *v <= 0.0 {
                *v *= alpha;
            }
        }
    }

    /// # Safety
    /// avx2+fma present; `g.len() == x.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn leaky_relu_bwd(g: &mut [f32], x: &[f32], alpha: f32) {
        let av = _mm256_set1_ps(alpha);
        let zero = _mm256_setzero_ps();
        let main = g.len() - g.len() % L;
        let mut j = 0;
        while j < main {
            let gv = _mm256_loadu_ps(g.as_ptr().add(j));
            let xv = _mm256_loadu_ps(x.as_ptr().add(j));
            let scaled = _mm256_mul_ps(gv, av);
            let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(xv, zero);
            _mm256_storeu_ps(g.as_mut_ptr().add(j), _mm256_blendv_ps(scaled, gv, mask));
            j += L;
        }
        for (gv, &xv) in g[main..].iter_mut().zip(&x[main..]) {
            if xv <= 0.0 {
                *gv *= alpha;
            }
        }
    }

    /// # Safety
    /// avx2+fma present; `y.len() == x.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
        let av = _mm256_set1_ps(alpha);
        let main = y.len() - y.len() % L;
        let mut j = 0;
        while j < main {
            let yv = _mm256_loadu_ps(y.as_ptr().add(j));
            let xv = _mm256_loadu_ps(x.as_ptr().add(j));
            _mm256_storeu_ps(y.as_mut_ptr().add(j), _mm256_fmadd_ps(av, xv, yv));
            j += L;
        }
        for (yv, &xv) in y[main..].iter_mut().zip(&x[main..]) {
            *yv += alpha * xv;
        }
    }

    /// # Safety
    /// avx2+fma present; `a.len() == b.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
        let main = a.len() - a.len() % L;
        let mut acc = _mm256_setzero_ps();
        let mut j = 0;
        while j < main {
            let d = _mm256_sub_ps(
                _mm256_loadu_ps(a.as_ptr().add(j)),
                _mm256_loadu_ps(b.as_ptr().add(j)),
            );
            acc = _mm256_fmadd_ps(d, d, acc);
            j += L;
        }
        let mut lanes = [0f32; L];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut total = lanes.iter().sum::<f32>();
        for (x, y) in a[main..].iter().zip(&b[main..]) {
            let d = x - y;
            total += d * d;
        }
        total
    }

    /// # Safety
    /// avx2+fma present; `p`, `m`, `v`, `g` all the same length.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn adam_step(
        p: &mut [f32],
        m: &mut [f32],
        v: &mut [f32],
        g: &[f32],
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        bc1: f32,
        bc2: f32,
    ) {
        let b1 = _mm256_set1_ps(beta1);
        let b2 = _mm256_set1_ps(beta2);
        let c1 = _mm256_set1_ps(1.0 - beta1);
        let c2 = _mm256_set1_ps(1.0 - beta2);
        let inv_bc1 = _mm256_set1_ps(1.0 / bc1);
        let inv_bc2 = _mm256_set1_ps(1.0 / bc2);
        let lrv = _mm256_set1_ps(lr);
        let epsv = _mm256_set1_ps(eps);
        let main = p.len() - p.len() % L;
        let mut j = 0;
        while j < main {
            let gv = _mm256_loadu_ps(g.as_ptr().add(j));
            let mv = _mm256_fmadd_ps(b1, _mm256_loadu_ps(m.as_ptr().add(j)), _mm256_mul_ps(c1, gv));
            let vv = _mm256_fmadd_ps(
                b2,
                _mm256_loadu_ps(v.as_ptr().add(j)),
                _mm256_mul_ps(c2, _mm256_mul_ps(gv, gv)),
            );
            _mm256_storeu_ps(m.as_mut_ptr().add(j), mv);
            _mm256_storeu_ps(v.as_mut_ptr().add(j), vv);
            let m_hat = _mm256_mul_ps(mv, inv_bc1);
            let v_hat = _mm256_mul_ps(vv, inv_bc2);
            let denom = _mm256_add_ps(_mm256_sqrt_ps(v_hat), epsv);
            let step = _mm256_div_ps(_mm256_mul_ps(lrv, m_hat), denom);
            let pv = _mm256_sub_ps(_mm256_loadu_ps(p.as_ptr().add(j)), step);
            _mm256_storeu_ps(p.as_mut_ptr().add(j), pv);
            j += L;
        }
        for i in main..p.len() {
            let gi = g[i];
            m[i] = beta1 * m[i] + (1.0 - beta1) * gi;
            v[i] = beta2 * v[i] + (1.0 - beta2) * gi * gi;
            let m_hat = m[i] * (1.0 / bc1);
            let v_hat = v[i] * (1.0 / bc2);
            p[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, seed: u32) -> Vec<f32> {
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(12345);
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                ((s >> 8) as f32 / (1 << 23) as f32) - 1.0
            })
            .collect()
    }

    /// f64 reference for tolerance checks.
    fn mm_nn_f64(a: &[f32], m: usize, kk: usize, b: &[f32], n: usize) -> Vec<f64> {
        let mut out = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for t in 0..kk {
                    acc += a[i * kk + t] as f64 * b[t * n + j] as f64;
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn assert_close(actual: &[f32], oracle: &[f64], tol: f64, what: &str) {
        for (k, (&a, &o)) in actual.iter().zip(oracle).enumerate() {
            let err = (a as f64 - o).abs();
            assert!(err <= tol * (1.0 + o.abs()), "{what}[{k}]: {a} vs {o} (err {err})");
        }
    }

    #[test]
    fn mode_ids_roundtrip_and_parse() {
        for mode in [MathMode::Bitwise, MathMode::FastMath] {
            assert_eq!(MathMode::from_id(mode.id()), Some(mode));
            assert_eq!(MathMode::parse(mode.name()), Ok(mode));
        }
        assert_eq!(MathMode::from_id(7), None);
        let err = MathMode::parse("quantum").unwrap_err();
        assert!(err.contains("bitwise") && err.contains("fast"), "{err}");
    }

    #[test]
    fn backend_is_cached_and_named() {
        let b = backend();
        assert_eq!(b, backend(), "backend must be stable across calls");
        assert!(matches!(b.name(), "avx2+fma" | "portable"));
    }

    #[test]
    fn fast_matmuls_match_f64_oracle_within_tolerance() {
        // Tile-interior, remainder-edge and tiny shapes.
        for &(m, k, n) in
            &[(1, 1, 1), (4, 8, 16), (5, 17, 33), (8, 3, 40), (13, 7, 19), (16, 64, 40), (33, 31, 47)]
        {
            let a = pseudo(m * k, (m * 7 + k) as u32);
            let b = pseudo(k * n, (k * 13 + n) as u32);
            let oracle = mm_nn_f64(&a, m, k, &b, n);
            let mut out = vec![0.0f32; m * n];
            mm_nn_fast(&a, m, k, &b, n, &mut out);
            assert_close(&out, &oracle, 1e-5, "mm_nn_fast");

            // tn: build a^T (k x m) whose transpose is `a`.
            let mut at = vec![0.0f32; k * m];
            for i in 0..m {
                for t in 0..k {
                    at[t * m + i] = a[i * k + t];
                }
            }
            let mut out_tn = vec![0.0f32; m * n];
            mm_tn_fast(&at, k, m, &b, n, &mut out_tn);
            assert_close(&out_tn, &oracle, 1e-5, "mm_tn_fast");
        }
    }

    #[test]
    fn fast_cat2_matches_f64_oracle_within_tolerance() {
        for &(m, c1, c2, n) in &[(1, 1, 1, 1), (4, 8, 8, 16), (7, 5, 3, 21), (12, 32, 33, 40)] {
            let a1 = pseudo(m * c1, 3);
            let a2 = pseudo(m * c2, 5);
            let w = pseudo((c1 + c2) * n, 7);
            // f64 oracle over the materialised concatenation.
            let mut cat = vec![0.0f32; m * (c1 + c2)];
            for i in 0..m {
                cat[i * (c1 + c2)..i * (c1 + c2) + c1].copy_from_slice(&a1[i * c1..(i + 1) * c1]);
                cat[i * (c1 + c2) + c1..(i + 1) * (c1 + c2)]
                    .copy_from_slice(&a2[i * c2..(i + 1) * c2]);
            }
            let oracle = mm_nn_f64(&cat, m, c1 + c2, &w, n);
            let mut out = vec![0.0f32; m * n];
            mm_cat2_fast(&a1, c1, &a2, c2, m, &w, n, &mut out);
            assert_close(&out, &oracle, 1e-5, "mm_cat2_fast");
        }
    }

    #[test]
    fn fast_gather_mean_pool_matches_scalar_exactly() {
        let src = pseudo(9 * 13, 44);
        let idx = vec![0usize, 8, 3, 3, 1, 7, 2, 6, 5, 0, 4, 8];
        for group in [1usize, 2, 3, 4, 6, 12] {
            let mut fast = vec![0.0f32; (idx.len() / group) * 13];
            let mut scalar = fast.clone();
            gather_mean_pool_fast(&src, 13, &idx, group, &mut fast);
            portable_gather_mean_pool(&src, 13, &idx, group, &mut scalar);
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "columns are independent lanes: values must match exactly (group {group})"
            );
        }
    }

    #[test]
    fn fast_sq_dist_matches_f64_oracle_within_tolerance() {
        for len in [1usize, 7, 8, 16, 33, 100] {
            let a = pseudo(len, 31);
            let b = pseudo(len, 77);
            let fast = sq_dist_fast(&a, &b);
            let oracle: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| {
                    let d = x as f64 - y as f64;
                    d * d
                })
                .sum();
            assert_close(&[fast], &[oracle], 1e-5, &format!("sq_dist len {len}"));
        }
    }

    #[test]
    fn fast_elementwise_kernels_match_scalar() {
        let x = pseudo(37, 9);
        let mut fast = x.clone();
        leaky_relu_fast(&mut fast, 0.01);
        let scalar: Vec<f32> =
            x.iter().map(|&v| if v > 0.0 { v } else { 0.01 * v }).collect();
        assert_eq!(fast, scalar, "leaky relu is value-identical");

        let mut g_fast = pseudo(37, 10);
        let mut g_scalar = g_fast.clone();
        leaky_relu_bwd_fast(&mut g_fast, &x, 0.01);
        for (gv, &xv) in g_scalar.iter_mut().zip(&x) {
            if xv <= 0.0 {
                *gv *= 0.01;
            }
        }
        assert_eq!(g_fast, g_scalar, "leaky relu backward is value-identical");

        let mut y = pseudo(37, 11);
        let y0 = y.clone();
        axpy_fast(&mut y, 0.25, &x);
        for (k, ((&yv, &y0v), &xv)) in y.iter().zip(&y0).zip(&x).enumerate() {
            let err = (yv as f64 - (y0v as f64 + 0.25 * xv as f64)).abs();
            assert!(err < 1e-6, "axpy[{k}]: {yv} vs {y0v} + 0.25*{xv}");
        }
    }

    #[test]
    fn fast_adam_step_matches_f64_reference() {
        let n = 41;
        let (mut p, mut m, g) = (pseudo(n, 1), pseudo(n, 2), pseudo(n, 4));
        let mut v: Vec<f32> = pseudo(n, 3).iter().map(|x| x.abs()).collect();
        let (p0, m0, v0) = (p.clone(), m.clone(), v.clone());
        let (lr, b1, b2, eps, bc1, bc2) = (1e-2f32, 0.9f32, 0.999f32, 1e-8f32, 0.1f32, 0.001f32);
        adam_step_fast(&mut p, &mut m, &mut v, &g, lr, b1, b2, eps, bc1, bc2);
        for i in 0..n {
            let gi = g[i] as f64;
            let mi = b1 as f64 * m0[i] as f64 + (1.0 - b1 as f64) * gi;
            let vi = b2 as f64 * v0[i] as f64 + (1.0 - b2 as f64) * gi * gi;
            let want = p0[i] as f64 - lr as f64 * (mi / bc1 as f64) / ((vi / bc2 as f64).sqrt() + eps as f64);
            let err = (p[i] as f64 - want).abs();
            assert!(err <= 1e-4 * (1.0 + want.abs()), "adam[{i}]: {} vs {want}", p[i]);
        }
    }
}
