//! First-order optimizers.
//!
//! The paper trains every component with stochastic gradient descent
//! (Section III.B) and its supervised predictor with standard
//! deep-learning settings (lr 1e-3, batch 1024, L2 regularisation); we
//! provide plain [`Sgd`] (with optional momentum) and [`Adam`]. Weight
//! decay is applied decoupled from the gradient (AdamW-style) so the L2
//! strength is independent of the loss scale.

use crate::param::{Gradients, ParamStore};
use crate::simd::{self, MathMode};
use crate::Matrix;

/// Common interface for optimizers.
pub trait Optimizer {
    /// Applies one update step given accumulated gradients.
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and decoupled
/// weight decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    math: MathMode,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            math: MathMode::Bitwise,
            velocity: Vec::new(),
        }
    }

    /// Selects the math tier for the update loops (see [`MathMode`]).
    pub fn with_math(mut self, math: MathMode) -> Self {
        self.math = math;
        self
    }

    /// Adds classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }

    /// Adds decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        if self.velocity.len() < store.len() {
            self.velocity.resize(store.len(), None);
        }
        for (id, g) in grads.iter() {
            if self.weight_decay > 0.0 {
                let decay = 1.0 - self.lr * self.weight_decay;
                store.get_mut(id).scale_assign(decay);
            }
            if self.momentum > 0.0 {
                let v = self.velocity[id.index()]
                    .get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
                v.scale_assign(self.momentum);
                v.add_assign(g);
                match self.math {
                    MathMode::Bitwise => store.get_mut(id).scaled_add_assign(-self.lr, v),
                    MathMode::FastMath => {
                        simd::axpy_fast(store.get_mut(id).data_mut(), -self.lr, v.data())
                    }
                }
            } else {
                match self.math {
                    MathMode::Bitwise => store.get_mut(id).scaled_add_assign(-self.lr, g),
                    MathMode::FastMath => {
                        simd::axpy_fast(store.get_mut(id).data_mut(), -self.lr, g.data())
                    }
                }
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction and decoupled weight decay.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    math: MathMode,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Adam with the standard betas (0.9, 0.999) and eps 1e-8.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            math: MathMode::Bitwise,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Selects the math tier for the update loops (see [`MathMode`]).
    pub fn with_math(mut self, math: MathMode) -> Self {
        self.math = math;
        self
    }

    /// Overrides the exponential decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Adds decoupled weight decay (AdamW).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        self.t += 1;
        if self.m.len() < store.len() {
            self.m.resize(store.len(), None);
            self.v.resize(store.len(), None);
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, g) in grads.iter() {
            let m = self.m[id.index()].get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            let v = self.v[id.index()].get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            match self.math {
                MathMode::Bitwise => {
                    for ((mi, vi), &gi) in m.data_mut().iter_mut().zip(v.data_mut()).zip(g.data())
                    {
                        *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                        *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                    }
                    if self.weight_decay > 0.0 {
                        let decay = 1.0 - self.lr * self.weight_decay;
                        store.get_mut(id).scale_assign(decay);
                    }
                    let p = store.get_mut(id);
                    for ((pi, &mi), &vi) in p.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                        let m_hat = mi / bc1;
                        let v_hat = vi / bc2;
                        *pi -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
                    }
                }
                MathMode::FastMath => {
                    // Decay only touches `p` and the moment updates only read
                    // `g`, so applying decay before the fused kernel matches
                    // the scalar ordering algebraically.
                    if self.weight_decay > 0.0 {
                        let decay = 1.0 - self.lr * self.weight_decay;
                        store.get_mut(id).scale_assign(decay);
                    }
                    simd::adam_step_fast(
                        store.get_mut(id).data_mut(),
                        m.data_mut(),
                        v.data_mut(),
                        g.data(),
                        self.lr,
                        self.beta1,
                        self.beta2,
                        self.eps,
                        bc1,
                        bc2,
                    );
                }
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamStore;
    use crate::tape::Tape;

    /// Minimise f(p) = (p - 3)^2 and check convergence.
    fn converges_to_three(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut store = ParamStore::new();
        let p = store.add("p", Matrix::from_vec(1, 1, vec![0.0]));
        for _ in 0..steps {
            let mut t = Tape::new(&store);
            let v = t.param(p);
            let target = t.input(Matrix::from_vec(1, 1, vec![3.0]));
            let diff = t.sub(v, target);
            let loss = t.sum_squares(diff);
            let grads = t.backward(loss);
            opt.step(&mut store, &grads);
        }
        store.get(p).get(0, 0)
    }

    #[test]
    fn sgd_converges() {
        let mut opt = Sgd::new(0.1);
        let p = converges_to_three(&mut opt, 100);
        assert!((p - 3.0).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        let p = converges_to_three(&mut opt, 200);
        assert!((p - 3.0).abs() < 1e-2, "p = {p}");
    }

    #[test]
    fn adam_converges() {
        let mut opt = Adam::new(0.1);
        let p = converges_to_three(&mut opt, 300);
        assert!((p - 3.0).abs() < 1e-2, "p = {p}");
    }

    #[test]
    fn weight_decay_shrinks_unused_direction() {
        // With pure decay (zero gradient signal beyond decay), weights shrink.
        let mut store = ParamStore::new();
        let p = store.add("p", Matrix::from_vec(1, 1, vec![10.0]));
        let mut opt = Sgd::new(0.1).with_weight_decay(1.0);
        let mut grads = Gradients::new(&store);
        grads.accumulate(p, &Matrix::zeros(1, 1));
        for _ in 0..10 {
            opt.step(&mut store, &grads);
        }
        let v = store.get(p).get(0, 0);
        assert!(v < 10.0 && v > 0.0, "v = {v}");
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    fn fastmath_optimizers_converge() {
        let mut adam = Adam::new(0.1).with_math(MathMode::FastMath);
        let p = converges_to_three(&mut adam, 300);
        assert!((p - 3.0).abs() < 1e-2, "adam p = {p}");

        let mut sgd = Sgd::new(0.05).with_momentum(0.9).with_math(MathMode::FastMath);
        let p = converges_to_three(&mut sgd, 200);
        assert!((p - 3.0).abs() < 1e-2, "sgd p = {p}");

        let mut plain = Sgd::new(0.1).with_math(MathMode::FastMath);
        let p = converges_to_three(&mut plain, 100);
        assert!((p - 3.0).abs() < 1e-3, "plain sgd p = {p}");
    }

    #[test]
    fn adam_handles_sparse_gradients() {
        // Parameters that only sometimes receive gradients must keep
        // consistent state (embedding tables in DIN hit this path).
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::from_vec(1, 1, vec![1.0]));
        let b = store.add("b", Matrix::from_vec(1, 1, vec![1.0]));
        let mut opt = Adam::new(0.1);
        for step in 0..50 {
            let mut grads = Gradients::new(&store);
            grads.accumulate(a, &Matrix::from_vec(1, 1, vec![1.0]));
            if step % 2 == 0 {
                grads.accumulate(b, &Matrix::from_vec(1, 1, vec![1.0]));
            }
            opt.step(&mut store, &grads);
        }
        assert!(store.get(a).get(0, 0) < store.get(b).get(0, 0));
        assert!(store.all_finite());
    }
}
