//! # hignn-tensor
//!
//! Dense-tensor and automatic-differentiation substrate for the HiGNN
//! reproduction (Li et al., *Hierarchical Bipartite Graph Neural Networks*,
//! ICDE 2020).
//!
//! The Rust ecosystem has no mature sparse-GNN training stack, so this
//! crate provides the full training substrate from scratch:
//!
//! * [`Matrix`] — dense row-major `f32` matrices with the fused products
//!   (`A·Bᵀ`, `Aᵀ·B`) backward passes need.
//! * [`tape::Tape`] — reverse-mode autodiff over an explicit op enum,
//!   covering linear algebra, concatenation, row gather (embedding
//!   lookup), fixed-fanout and segment mean aggregation (GraphSAGE), the
//!   paper's activations, and stable BCE-with-logits.
//! * [`param::ParamStore`] / [`param::Gradients`] — shared trainable state:
//!   workers borrow the store immutably, build private tapes, and their
//!   per-shard gradients are reduced before one optimizer step.
//! * [`parallel::ParallelExecutor`] — scoped-thread data parallelism
//!   (`std::thread::scope`, no extra dependencies) with a determinism
//!   contract: work is decomposed into thread-count-independent shards
//!   and reduced in a fixed tree order, so an N-worker run is
//!   bit-identical to a 1-worker run.
//! * [`optim`] — SGD (+momentum) and Adam with decoupled weight decay.
//! * [`nn`] — [`nn::Linear`] / [`nn::Mlp`] building blocks.
//! * [`gradcheck`] — finite-difference gradient verification used by the
//!   test suite for every op.
//!
//! ## Example
//!
//! ```
//! use hignn_tensor::{Matrix, ParamStore, Tape};
//! use hignn_tensor::nn::{Activation, Mlp};
//! use hignn_tensor::optim::{Adam, Optimizer};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let mlp = Mlp::new(&mut store, "head", &[4, 16, 1], Activation::LeakyRelu, &mut rng);
//! let mut opt = Adam::new(1e-2);
//!
//! let x = hignn_tensor::init::xavier_uniform(8, 4, &mut rng);
//! let y = vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
//! for _ in 0..10 {
//!     let mut tape = Tape::new(&store);
//!     let xv = tape.input(x.clone());
//!     let logits = mlp.forward(&mut tape, xv);
//!     let loss = tape.bce_with_logits(logits, &y);
//!     let grads = tape.backward(loss);
//!     opt.step(&mut store, &grads);
//! }
//! assert!(store.all_finite());
//! ```

#![warn(missing_docs)]

pub mod gradcheck;
pub mod init;
pub mod matrix;
pub mod nn;
pub mod optim;
pub mod parallel;
pub mod param;
pub mod serialize;
pub mod simd;
pub mod tape;
pub mod workspace;

pub use matrix::Matrix;
pub use parallel::ParallelExecutor;
pub use param::{Gradients, ParamId, ParamStore};
pub use simd::{MathMode, SimdBackend};
pub use tape::{stable_sigmoid, Tape, Var};
pub use workspace::{AlignedBuf, Workspace, WorkspaceStats};
