//! Trainable parameter storage shared across forward passes.
//!
//! A [`ParamStore`] owns every trainable matrix of a model. Each training
//! step builds a fresh [`crate::tape::Tape`] against the store, runs
//! backward to obtain [`Gradients`], and hands both to an optimizer.
//! Keeping parameters outside the tape is what makes data-parallel
//! training work: worker threads launched by
//! [`crate::parallel::ParallelExecutor`] share `&ParamStore` immutably,
//! build private tapes over thread-count-independent shards of the
//! batch, and their per-shard [`Gradients`] are combined by
//! [`crate::parallel::reduce_gradients`] in a fixed tree order before a
//! single optimizer step — so results do not depend on the worker count.

use crate::matrix::Matrix;
use std::collections::HashMap;

/// Opaque handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index of the parameter within its store.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A named collection of trainable matrices.
#[derive(Clone, Default)]
pub struct ParamStore {
    values: Vec<Matrix>,
    names: Vec<String>,
    by_name: HashMap<String, usize>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter under a unique name.
    ///
    /// # Panics
    /// Panics if `name` is already registered.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "parameter `{name}` registered twice"
        );
        let id = self.values.len();
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        self.values.push(value);
        ParamId(id)
    }

    /// Looks a parameter up by name.
    pub fn id(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied().map(ParamId)
    }

    /// The parameter's registered name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Borrows a parameter value.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutably borrows a parameter value (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Iterates over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ParamId(i), self.names[i].as_str(), v))
    }

    /// True when every parameter entry is finite (NaN/Inf detector).
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(Matrix::all_finite)
    }
}

/// Per-parameter gradients produced by a backward pass.
#[derive(Clone, Default)]
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Creates an empty gradient set sized for `store`.
    pub fn new(store: &ParamStore) -> Self {
        Gradients { grads: vec![None; store.len()] }
    }

    /// Adds `g` into the slot for `id`.
    pub fn accumulate(&mut self, id: ParamId, g: &Matrix) {
        if id.0 >= self.grads.len() {
            self.grads.resize(id.0 + 1, None);
        }
        match &mut self.grads[id.0] {
            Some(existing) => existing.add_assign(g),
            slot @ None => *slot = Some(g.clone()),
        }
    }

    /// Adds an owned gradient buffer into the slot for `id` without
    /// copying: the first contribution is moved into the slot; later
    /// contributions are summed and the (now dead) buffer is handed back
    /// so the caller can recycle it.
    pub fn accumulate_owned(&mut self, id: ParamId, g: Matrix) -> Option<Matrix> {
        if id.0 >= self.grads.len() {
            self.grads.resize(id.0 + 1, None);
        }
        match &mut self.grads[id.0] {
            Some(existing) => {
                existing.add_assign(&g);
                Some(g)
            }
            slot @ None => {
                *slot = Some(g);
                None
            }
        }
    }

    /// Borrows the gradient for `id`, if any was produced.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.grads.get(id.0).and_then(Option::as_ref)
    }

    /// Merges another gradient set into this one (summing overlaps).
    pub fn merge(&mut self, other: &Gradients) {
        if other.grads.len() > self.grads.len() {
            self.grads.resize(other.grads.len(), None);
        }
        for (i, g) in other.grads.iter().enumerate() {
            if let Some(g) = g {
                match &mut self.grads[i] {
                    Some(existing) => existing.add_assign(g),
                    slot @ None => *slot = Some(g.clone()),
                }
            }
        }
    }

    /// Move-based [`Gradients::merge`]: consumes `other`, summing
    /// overlapping entries (same order as `merge`, so results are
    /// bitwise identical) and **moving** entries that only exist in
    /// `other` instead of cloning them.
    pub fn merge_owned(&mut self, other: Gradients) {
        if other.grads.len() > self.grads.len() {
            self.grads.resize(other.grads.len(), None);
        }
        for (i, g) in other.grads.into_iter().enumerate() {
            if let Some(g) = g {
                match &mut self.grads[i] {
                    Some(existing) => existing.add_assign(&g),
                    slot @ None => *slot = Some(g),
                }
            }
        }
    }

    /// Consumes the gradient set, returning every buffer to `ws` for
    /// reuse by the next minibatch's tape.
    pub fn recycle_into(self, ws: &crate::workspace::Workspace) {
        for g in self.grads.into_iter().flatten() {
            ws.reclaim(g.into_data());
        }
    }

    /// Scales every gradient by `alpha` (e.g. averaging shard gradients).
    pub fn scale(&mut self, alpha: f32) {
        for g in self.grads.iter_mut().flatten() {
            g.scale_assign(alpha);
        }
    }

    /// Global L2 norm across all gradients.
    pub fn global_norm(&self) -> f32 {
        self.grads
            .iter()
            .flatten()
            .map(Matrix::sum_squares)
            .sum::<f32>()
            .sqrt()
    }

    /// Clips gradients so the global norm does not exceed `max_norm`.
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
    }

    /// Iterates over `(id, grad)` pairs that were produced.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.grads
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|g| (ParamId(i), g)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = ParamStore::new();
        let a = s.add("w1", Matrix::zeros(2, 3));
        let b = s.add("w2", Matrix::zeros(3, 1));
        assert_eq!(s.id("w1"), Some(a));
        assert_eq!(s.id("w2"), Some(b));
        assert_eq!(s.id("nope"), None);
        assert_eq!(s.name(a), "w1");
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_scalars(), 9);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let mut s = ParamStore::new();
        s.add("w", Matrix::zeros(1, 1));
        s.add("w", Matrix::zeros(1, 1));
    }

    #[test]
    fn gradients_accumulate_and_merge() {
        let mut s = ParamStore::new();
        let a = s.add("a", Matrix::zeros(1, 2));
        let b = s.add("b", Matrix::zeros(1, 2));
        let mut g1 = Gradients::new(&s);
        g1.accumulate(a, &Matrix::row_vector(&[1.0, 2.0]));
        g1.accumulate(a, &Matrix::row_vector(&[1.0, 2.0]));
        let mut g2 = Gradients::new(&s);
        g2.accumulate(a, &Matrix::row_vector(&[1.0, 0.0]));
        g2.accumulate(b, &Matrix::row_vector(&[0.5, 0.5]));
        g1.merge(&g2);
        assert_eq!(g1.get(a).unwrap().data(), &[3.0, 4.0]);
        assert_eq!(g1.get(b).unwrap().data(), &[0.5, 0.5]);
    }

    #[test]
    fn clip_global_norm_shrinks() {
        let mut s = ParamStore::new();
        let a = s.add("a", Matrix::zeros(1, 2));
        let mut g = Gradients::new(&s);
        g.accumulate(a, &Matrix::row_vector(&[3.0, 4.0]));
        g.clip_global_norm(1.0);
        assert!((g.global_norm() - 1.0).abs() < 1e-6);
        g.clip_global_norm(10.0); // no-op when already below
        assert!((g.global_norm() - 1.0).abs() < 1e-6);
    }
}
