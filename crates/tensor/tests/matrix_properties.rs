//! Property-based tests for the matrix algebra and autograd engine.

use hignn_tensor::{Matrix, ParamStore, Tape};
use proptest::prelude::*;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-4.0f32..4.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transpose_is_involution(m in matrix_strategy(3, 5)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(4, 2),
    ) {
        // A(B + C) == AB + AC (within f32 tolerance).
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-3);
    }

    #[test]
    fn fused_transpose_products_agree(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(5, 4),
        c in matrix_strategy(3, 5),
    ) {
        prop_assert!(a.matmul_nt(&b).max_abs_diff(&a.matmul(&b.transpose())) < 1e-4);
        prop_assert!(a.matmul_tn(&c).max_abs_diff(&a.transpose().matmul(&c)) < 1e-4);
    }

    #[test]
    fn scale_then_sum_is_linear(m in matrix_strategy(4, 4), alpha in -3.0f32..3.0) {
        let scaled_sum = m.scale(alpha).sum();
        prop_assert!((scaled_sum - alpha * m.sum()).abs() < 1e-2 * (1.0 + m.sum().abs()));
    }

    #[test]
    fn concat_then_gather_roundtrips(a in matrix_strategy(4, 2), b in matrix_strategy(4, 3)) {
        let cat = Matrix::concat_cols(&[&a, &b]);
        prop_assert_eq!(cat.shape(), (4, 5));
        for i in 0..4 {
            prop_assert_eq!(&cat.row(i)[..2], a.row(i));
            prop_assert_eq!(&cat.row(i)[2..], b.row(i));
        }
        let stacked = Matrix::concat_rows(&[&a, &a]);
        let back = stacked.gather_rows(&[0, 1, 2, 3]);
        prop_assert_eq!(back, a);
    }

    #[test]
    fn l2_normalized_rows_have_unit_norm(m in matrix_strategy(5, 4)) {
        let mut n = m.clone();
        n.l2_normalize_rows();
        for i in 0..5 {
            let orig: f32 = m.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            let norm: f32 = n.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            if orig > 1e-6 {
                prop_assert!((norm - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn autograd_gradient_of_sum_is_ones(m in matrix_strategy(3, 3)) {
        let mut store = ParamStore::new();
        let p = store.add("p", m);
        let mut tape = Tape::new(&store);
        let v = tape.param(p);
        let loss = tape.sum_all(v);
        let grads = tape.backward(loss);
        let g = grads.get(p).unwrap();
        prop_assert!(g.data().iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }

    #[test]
    fn autograd_is_linear_in_upstream_scale(
        m in matrix_strategy(3, 3),
        alpha in 0.5f32..4.0,
    ) {
        // d(alpha * f)/dp == alpha * df/dp for f = sum of squares.
        let mut store = ParamStore::new();
        let p = store.add("p", m);

        let grad_of = |scale: f32, store: &ParamStore| -> Matrix {
            let mut tape = Tape::new(store);
            let v = tape.param(p);
            let sq = tape.sum_squares(v);
            let loss = tape.scale(sq, scale);
            tape.backward(loss).get(p).unwrap().clone()
        };
        let g1 = grad_of(1.0, &store);
        let ga = grad_of(alpha, &store);
        prop_assert!(ga.max_abs_diff(&g1.scale(alpha)) < 1e-3 * (1.0 + alpha));
    }

    #[test]
    fn serialize_roundtrip_any_matrix(m in matrix_strategy(2, 7)) {
        use hignn_tensor::serialize::{read_matrix, write_matrix};
        let mut buf = Vec::new();
        write_matrix(&mut buf, &m).unwrap();
        let back = read_matrix(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(m, back);
    }
}
