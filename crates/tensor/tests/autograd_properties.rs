//! Property-based gradient verification: random compositions of tape ops
//! must match finite differences. This is the strongest guard the crate
//! has — any backward-rule regression in any op combination surfaces
//! here.

use hignn_tensor::gradcheck::check_param_grads;
use hignn_tensor::{Matrix, ParamStore, Tape, Var};
use proptest::prelude::*;

/// The unary ops we can chain while keeping shapes `4 x 3`.
#[derive(Clone, Copy, Debug)]
enum UnaryOp {
    LeakyRelu,
    Tanh,
    Sigmoid,
    Scale,
    MulSelf,
    AddSelf,
}

fn apply(op: UnaryOp, tape: &mut Tape, x: Var) -> Var {
    match op {
        UnaryOp::LeakyRelu => tape.leaky_relu(x, 0.1),
        UnaryOp::Tanh => tape.tanh(x),
        UnaryOp::Sigmoid => tape.sigmoid(x),
        UnaryOp::Scale => tape.scale(x, 0.7),
        UnaryOp::MulSelf => tape.mul(x, x),
        UnaryOp::AddSelf => tape.add(x, x),
    }
}

fn op_strategy() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::LeakyRelu),
        Just(UnaryOp::Tanh),
        Just(UnaryOp::Sigmoid),
        Just(UnaryOp::Scale),
        Just(UnaryOp::MulSelf),
        Just(UnaryOp::AddSelf),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_unary_chains_gradcheck(
        ops in prop::collection::vec(op_strategy(), 1..5),
        vals in prop::collection::vec(0.05f32..1.5, 12),
    ) {
        // Positive-ish inputs keep leaky-ReLU kinks away from the
        // finite-difference step.
        let mut store = ParamStore::new();
        let p = store.add("p", Matrix::from_vec(4, 3, vals));
        let ops2 = ops.clone();
        check_param_grads(&store, &[p], 1e-3, 5e-2, move |t| {
            let mut x = t.param(p);
            for &op in &ops2 {
                x = apply(op, t, x);
            }
            t.mean_all(x)
        });
    }

    #[test]
    fn random_chains_ending_in_pooling_gradcheck(
        ops in prop::collection::vec(op_strategy(), 0..3),
        vals in prop::collection::vec(0.05f32..1.5, 12),
        use_matmul in any::<bool>(),
    ) {
        let mut store = ParamStore::new();
        let p = store.add("p", Matrix::from_vec(4, 3, vals));
        let w = store.add("w", Matrix::from_fn(3, 2, |i, j| 0.3 + 0.1 * (i * 2 + j) as f32));
        let ops2 = ops.clone();
        let checked: Vec<_> = if use_matmul { vec![p, w] } else { vec![p] };
        check_param_grads(&store, &checked, 1e-3, 5e-2, move |t| {
            let mut x = t.param(p);
            for &op in &ops2 {
                x = apply(op, t, x);
            }
            if use_matmul {
                let wv = t.param(w);
                x = t.matmul(x, wv);
            }
            let pooled = t.mean_pool_rows(x, 2);
            t.sum_squares(pooled)
        });
    }

    #[test]
    fn gather_concat_chains_gradcheck(
        idx in prop::collection::vec(0usize..4, 2..8),
        vals in prop::collection::vec(0.1f32..1.0, 12),
    ) {
        prop_assume!(idx.len() % 2 == 0);
        let mut store = ParamStore::new();
        let p = store.add("p", Matrix::from_vec(4, 3, vals));
        let idx2 = idx.clone();
        check_param_grads(&store, &[p], 1e-3, 5e-2, move |t| {
            let x = t.param(p);
            let g = t.gather_rows(x, &idx2);
            let cat = t.concat_cols(&[g, g]);
            let pooled = t.mean_pool_rows(cat, 2);
            t.mean_all(pooled)
        });
    }
}
