//! Property-based gradient verification: random compositions of tape ops
//! must match finite differences. This is the strongest guard the crate
//! has — any backward-rule regression in any op combination surfaces
//! here.

use hignn_tensor::gradcheck::check_param_grads;
use hignn_tensor::{Matrix, ParamStore, Tape, Var};
use proptest::prelude::*;

/// The unary ops we can chain while keeping shapes `4 x 3`.
#[derive(Clone, Copy, Debug)]
enum UnaryOp {
    LeakyRelu,
    Tanh,
    Sigmoid,
    Scale,
    MulSelf,
    AddSelf,
}

fn apply(op: UnaryOp, tape: &mut Tape, x: Var) -> Var {
    match op {
        UnaryOp::LeakyRelu => tape.leaky_relu(x, 0.1),
        UnaryOp::Tanh => tape.tanh(x),
        UnaryOp::Sigmoid => tape.sigmoid(x),
        UnaryOp::Scale => tape.scale(x, 0.7),
        UnaryOp::MulSelf => tape.mul(x, x),
        UnaryOp::AddSelf => tape.add(x, x),
    }
}

fn op_strategy() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::LeakyRelu),
        Just(UnaryOp::Tanh),
        Just(UnaryOp::Sigmoid),
        Just(UnaryOp::Scale),
        Just(UnaryOp::MulSelf),
        Just(UnaryOp::AddSelf),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_unary_chains_gradcheck(
        ops in prop::collection::vec(op_strategy(), 1..5),
        vals in prop::collection::vec(0.05f32..1.5, 12),
    ) {
        // Positive-ish inputs keep leaky-ReLU kinks away from the
        // finite-difference step.
        let mut store = ParamStore::new();
        let p = store.add("p", Matrix::from_vec(4, 3, vals));
        check_param_grads(&store, &[p], 1e-3, 5e-2, move |t| {
            let mut x = t.param(p);
            for &op in &ops {
                x = apply(op, t, x);
            }
            t.mean_all(x)
        });
    }

    #[test]
    fn random_chains_ending_in_pooling_gradcheck(
        ops in prop::collection::vec(op_strategy(), 0..3),
        vals in prop::collection::vec(0.05f32..1.5, 12),
        use_matmul in any::<bool>(),
    ) {
        let mut store = ParamStore::new();
        let p = store.add("p", Matrix::from_vec(4, 3, vals));
        let w = store.add("w", Matrix::from_fn(3, 2, |i, j| 0.3 + 0.1 * (i * 2 + j) as f32));
        let ops2 = ops.clone();
        let checked: Vec<_> = if use_matmul { vec![p, w] } else { vec![p] };
        check_param_grads(&store, &checked, 1e-3, 5e-2, move |t| {
            let mut x = t.param(p);
            for &op in &ops2 {
                x = apply(op, t, x);
            }
            if use_matmul {
                let wv = t.param(w);
                x = t.matmul(x, wv);
            }
            let pooled = t.mean_pool_rows(x, 2);
            t.sum_squares(pooled)
        });
    }

    #[test]
    fn gather_concat_chains_gradcheck(
        idx in prop::collection::vec(0usize..4, 2..8),
        vals in prop::collection::vec(0.1f32..1.0, 12),
    ) {
        prop_assume!(idx.len() % 2 == 0);
        let mut store = ParamStore::new();
        let p = store.add("p", Matrix::from_vec(4, 3, vals));
        check_param_grads(&store, &[p], 1e-3, 5e-2, move |t| {
            let x = t.param(p);
            let g = t.gather_rows(x, &idx);
            let cat = t.concat_cols(&[g, g]);
            let pooled = t.mean_pool_rows(cat, 2);
            t.mean_all(pooled)
        });
    }
}

/// Builds one side's CSR arrays (offsets + flat neighbour list) from an
/// edge list, without depending on the graph crate.
fn csr(n: usize, pairs: impl Iterator<Item = (usize, usize)>) -> (Vec<usize>, Vec<usize>) {
    let mut adj = vec![Vec::new(); n];
    for (v, o) in pairs {
        adj[v].push(o);
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut flat = Vec::new();
    offsets.push(0);
    for nbrs in adj {
        flat.extend(nbrs);
        offsets.push(flat.len());
    }
    (offsets, flat)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full Eq. 5 aggregation step for *both* sides, exercising the
    /// cross-side matrices `M_u^i` and `M_i^u`: each side's neighbourhood
    /// mean is transformed by its `M`, concatenated with the side's own
    /// embedding, projected by `W`, biased, and passed through leaky
    /// ReLU. All eight parameter tensors (features, M, W, b per side)
    /// must match finite differences.
    #[test]
    fn cross_side_aggregation_gradcheck(
        edges in prop::collection::vec((0usize..3, 0usize..4), 1..9),
        user_vals in prop::collection::vec(0.1f32..1.0, 9),
        item_vals in prop::collection::vec(0.1f32..1.0, 12),
    ) {
        const NL: usize = 3;
        const NR: usize = 4;
        const D: usize = 3;
        // Positive features and positive fixed weights keep every
        // pre-activation strictly positive, away from the leaky-ReLU
        // kink the finite-difference step would otherwise straddle.
        let mut store = ParamStore::new();
        let hu = store.add("hu", Matrix::from_vec(NL, D, user_vals));
        let hi = store.add("hi", Matrix::from_vec(NR, D, item_vals));
        let mu = store.add("m_u", Matrix::from_fn(D, D, |i, j| 0.2 + 0.07 * (i * D + j) as f32));
        let mi = store.add("m_i", Matrix::from_fn(D, D, |i, j| 0.15 + 0.06 * (i * D + j) as f32));
        let wu = store.add("w_u", Matrix::from_fn(2 * D, D, |i, j| 0.1 + 0.04 * (i + j) as f32));
        let wi = store.add("w_i", Matrix::from_fn(2 * D, D, |i, j| 0.12 + 0.05 * (i + j) as f32));
        let bu = store.add("b_u", Matrix::from_fn(1, D, |_, j| 0.1 + 0.1 * j as f32));
        let bi = store.add("b_i", Matrix::from_fn(1, D, |_, j| 0.2 + 0.1 * j as f32));

        let (offs_l, flat_l) = csr(NL, edges.iter().map(|&(u, i)| (u, i)));
        let (offs_r, flat_r) = csr(NR, edges.iter().map(|&(u, i)| (i, u)));

        let params = [hu, hi, mu, mi, wu, wi, bu, bi];
        check_param_grads(&store, &params, 1e-3, 5e-2, move |t| {
            let hu_v = t.param(hu);
            let hi_v = t.param(hi);
            let step = |t: &mut Tape, h: Var, other: Var, flat: &[usize], offs: &[usize],
                        m: hignn_tensor::ParamId, w: hignn_tensor::ParamId, b: hignn_tensor::ParamId| {
                let gathered = t.gather_rows(other, flat);
                let agg = t.segment_mean(gathered, offs);
                let m_v = t.param(m);
                let transformed = t.matmul(agg, m_v);
                let cat = t.concat_cols(&[h, transformed]);
                let w_v = t.param(w);
                let lin = t.matmul(cat, w_v);
                let b_v = t.param(b);
                let lin = t.add_bias(lin, b_v);
                t.leaky_relu(lin, 0.1)
            };
            let zu = step(t, hu_v, hi_v, &flat_l, &offs_l, mu, wu, bu);
            let zi = step(t, hi_v, hu_v, &flat_r, &offs_r, mi, wi, bi);
            let su = t.sum_squares(zu);
            let si = t.sum_squares(zi);
            t.add(su, si)
        });
    }

    /// The Eq. 7 predictor head: a leaky-ReLU MLP over pair features
    /// ending in a single logit column, trained with binary
    /// cross-entropy. Both hidden layers' weights/biases and the output
    /// layer must match finite differences through the BCE reduction.
    #[test]
    fn mlp_head_with_bce_gradcheck(
        x_vals in prop::collection::vec(0.05f32..1.2, 20),
        target_bits in prop::collection::vec(any::<bool>(), 4),
    ) {
        const ROWS: usize = 4;
        const D0: usize = 5;
        const H: usize = 3;
        let targets: Vec<f32> = target_bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let mut store = ParamStore::new();
        let x = store.add("x", Matrix::from_vec(ROWS, D0, x_vals));
        let w0 = store.add("head.w0", Matrix::from_fn(D0, H, |i, j| 0.1 + 0.05 * (i + 2 * j) as f32));
        let b0 = store.add("head.b0", Matrix::from_fn(1, H, |_, j| 0.1 + 0.1 * j as f32));
        let w1 = store.add("head.w1", Matrix::from_fn(H, H, |i, j| 0.08 + 0.06 * (i + j) as f32));
        let b1 = store.add("head.b1", Matrix::from_fn(1, H, |_, j| 0.05 + 0.1 * j as f32));
        let w2 = store.add("head.w2", Matrix::from_fn(H, 1, |i, _| 0.2 + 0.1 * i as f32));
        let b2 = store.add("head.b2", Matrix::from_vec(1, 1, vec![0.1]));

        let params = [x, w0, b0, w1, b1, w2, b2];
        check_param_grads(&store, &params, 1e-3, 5e-2, move |t| {
            let mut h = t.param(x);
            for (w, b) in [(w0, b0), (w1, b1)] {
                let w_v = t.param(w);
                let b_v = t.param(b);
                h = t.matmul(h, w_v);
                h = t.add_bias(h, b_v);
                h = t.leaky_relu(h, 0.1);
            }
            let w_v = t.param(w2);
            let b_v = t.param(b2);
            let logits = t.matmul(h, w_v);
            let logits = t.add_bias(logits, b_v);
            t.bce_with_logits(logits, &targets)
        });
    }
}
