//! Synthetic user-item interaction datasets (Taobao #1 / #2 analogues).
//!
//! The paper's datasets are proprietary Taobao click/transaction logs.
//! This generator substitutes them with synthetic logs that preserve the
//! properties HiGNN exploits (see DESIGN.md §5):
//!
//! * a **latent hierarchical topic tree** governs interactions — every
//!   item sits at a leaf, every user has a preferred root-to-leaf path and
//!   descends it stochastically when clicking, so co-click structure is
//!   hierarchical exactly as Fig. 1 motivates;
//! * **power-law** user activity and item popularity;
//! * purchases follow a logistic model on latent user-item affinity and
//!   item quality — the signal the CVR predictor must recover;
//! * a **cold-start** variant ([`TaobaoConfig::taobao2`]) with an order of
//!   magnitude lower density, reproducing the #1 vs #2 density gap.
//!
//! Ground truth (`GroundTruth`) is retained so experiments can compute
//! exact affinities — playing the role of the paper's online system and
//! human judgment.

use crate::hierarchy::TopicHierarchy;
use crate::samples::Sample;
use hignn_graph::{AliasTable, BipartiteGraph};
use hignn_tensor::{init, stable_sigmoid, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Configuration of the user-item generator.
#[derive(Clone, Debug)]
pub struct TaobaoConfig {
    /// Number of users.
    pub num_users: usize,
    /// Number of items.
    pub num_items: usize,
    /// Click events in the training window ("one week's logs").
    pub train_interactions: usize,
    /// Click events in the test window ("the following day").
    pub test_interactions: usize,
    /// Topic-tree branching factors.
    pub branching: Vec<usize>,
    /// Number of ontology categories (independent of the topic tree).
    pub num_categories: usize,
    /// Probability of descending to the preferred child at each tree
    /// level when clicking (higher = more focused users).
    pub focus: f64,
    /// Intercept of the purchase logit (calibrates base CVR).
    pub base_purchase_logit: f32,
    /// Purchase-logit gain on centred affinity.
    pub affinity_gain: f32,
    /// Purchase-logit gain on item quality.
    pub quality_gain: f32,
    /// Dimensionality of the GNN input features.
    pub feature_dim: usize,
    /// Maximum clicked-item history length kept per user (for DIN).
    pub max_history: usize,
    /// RNG seed; everything is deterministic given the seed.
    pub seed: u64,
}

impl TaobaoConfig {
    /// Dense dataset in the spirit of Taobao #1 (Table I), scaled by
    /// `scale` (1.0 ≈ 4k users, 1.6k items, 80k train clicks).
    pub fn taobao1(scale: f64) -> Self {
        let s = scale.max(0.01);
        TaobaoConfig {
            num_users: (4000.0 * s) as usize,
            num_items: (1600.0 * s) as usize,
            train_interactions: (80_000.0 * s) as usize,
            test_interactions: (30_000.0 * s) as usize,
            branching: vec![3, 3, 3],
            num_categories: 40,
            focus: 0.65,
            base_purchase_logit: -4.2,
            affinity_gain: 6.0,
            quality_gain: 0.35,
            feature_dim: 32,
            max_history: 30,
            seed: 20200420,
        }
    }

    /// Sparse cold-start dataset in the spirit of Taobao #2: an order of
    /// magnitude fewer interactions per item ("new arrival products") and
    /// a lower base conversion rate.
    pub fn taobao2(scale: f64) -> Self {
        let s = scale.max(0.01);
        TaobaoConfig {
            num_users: (3000.0 * s) as usize,
            num_items: (3000.0 * s) as usize,
            train_interactions: (11_000.0 * s) as usize,
            test_interactions: (6_000.0 * s) as usize,
            branching: vec![3, 3, 3],
            num_categories: 40,
            focus: 0.65,
            base_purchase_logit: -4.6,
            affinity_gain: 6.0,
            quality_gain: 0.35,
            feature_dim: 32,
            max_history: 30,
            seed: 20200421,
        }
    }
}

/// The latent structure behind a generated dataset.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// The planted topic tree.
    pub hierarchy: TopicHierarchy,
    /// Preferred root-to-leaf path per user (length `depth + 1`).
    pub user_paths: Vec<Vec<usize>>,
    /// Leaf topic node id per item.
    pub item_leaf: Vec<u32>,
    /// Latent item quality (standard-normal-ish).
    pub item_quality: Vec<f32>,
    /// Ontology category per item (independent of the topic tree).
    pub item_category: Vec<u32>,
    base_purchase_logit: f32,
    affinity_gain: f32,
    quality_gain: f32,
}

impl GroundTruth {
    /// Latent affinity in `[0, 1]`: the common-prefix depth of the user's
    /// preferred path and the item's leaf path, normalised by tree depth.
    pub fn affinity(&self, user: usize, item: usize) -> f32 {
        let depth = self.hierarchy.depth();
        let path = &self.user_paths[user];
        let leaf = self.item_leaf[item] as usize;
        let mut matching = 0usize;
        for (level, &p) in path.iter().enumerate().take(depth + 1).skip(1) {
            if self.hierarchy.ancestor_at_level(leaf, level) == p {
                matching = level;
            } else {
                break;
            }
        }
        matching as f32 / depth as f32
    }

    /// Probability that a click by `user` on `item` converts into a
    /// purchase — the planted logistic model.
    pub fn purchase_prob(&self, user: usize, item: usize) -> f32 {
        let a = self.affinity(user, item);
        stable_sigmoid(
            self.base_purchase_logit
                + self.affinity_gain * (a - 0.5)
                + self.quality_gain * self.item_quality[item],
        )
    }

    /// The item's leaf topic as a dense index in `0..num_leaves`.
    pub fn item_leaf_index(&self, item: usize) -> u32 {
        self.item_leaf[item] - self.hierarchy.leaves().start as u32
    }
}

/// A generated user-item dataset.
#[derive(Clone, Debug)]
pub struct InteractionDataset {
    /// Train-window click graph (edge weight = click count).
    pub graph: BipartiteGraph,
    /// Train CVR samples (clicked pairs, label = purchased).
    pub train: Vec<Sample>,
    /// Test CVR samples.
    pub test: Vec<Sample>,
    /// GNN input features per user (`num_users x feature_dim`).
    pub user_features: Matrix,
    /// GNN input features per item (`num_items x feature_dim`).
    pub item_features: Matrix,
    /// Predictor-side user profile features (gender, purchasing power,
    /// activity) — `num_users x 3`.
    pub user_profiles: Matrix,
    /// Predictor-side item statistics (log clicks, log purchases, noisy
    /// quality, popularity) — `num_items x 4`.
    pub item_stats: Matrix,
    /// Clicked-item history per user (most-clicked first, truncated).
    pub histories: Vec<Vec<u32>>,
    /// The planted latent structure.
    pub truth: GroundTruth,
}

impl InteractionDataset {
    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.graph.num_left()
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.graph.num_right()
    }
}

/// Draws an approximately standard-normal value (Irwin-Hall).
fn normalish(rng: &mut impl Rng) -> f32 {
    (0..12).map(|_| rng.gen_range(0.0f32..1.0)).sum::<f32>() - 6.0
}

/// Power-law weight `u^{-alpha}` clamped to `max`.
fn power_law(rng: &mut impl Rng, alpha: f64, max: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-4..1.0);
    u.powf(-alpha).min(max)
}

/// Generates a dataset from `cfg`.
pub fn generate_taobao(cfg: &TaobaoConfig) -> InteractionDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let hierarchy = TopicHierarchy::new(&cfg.branching);
    let depth = hierarchy.depth();
    let leaves: Vec<usize> = hierarchy.leaves().collect();

    // Each leaf topic spans a handful of ontology categories, so that
    // *qualified* discovered topics (diversity metric) are achievable.
    let leaf_categories: Vec<Vec<u32>> = leaves
        .iter()
        .map(|_| {
            let count = rng.gen_range(3..=5);
            (0..count).map(|_| rng.gen_range(0..cfg.num_categories as u32)).collect()
        })
        .collect();

    // ---- items -------------------------------------------------------
    let mut item_leaf = Vec::with_capacity(cfg.num_items);
    let mut item_quality = Vec::with_capacity(cfg.num_items);
    let mut item_category = Vec::with_capacity(cfg.num_items);
    let mut item_popularity = Vec::with_capacity(cfg.num_items);
    for _ in 0..cfg.num_items {
        let leaf_idx = rng.gen_range(0..leaves.len());
        item_leaf.push(leaves[leaf_idx] as u32);
        item_quality.push(normalish(&mut rng));
        let cats = &leaf_categories[leaf_idx];
        item_category.push(cats[rng.gen_range(0..cats.len())]);
        item_popularity.push(power_law(&mut rng, 0.7, 60.0));
    }

    // Per-leaf item alias tables.
    let mut leaf_items: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, &leaf) in item_leaf.iter().enumerate() {
        leaf_items.entry(leaf as usize).or_default().push(i);
    }
    let leaf_alias: HashMap<usize, AliasTable> = leaf_items
        .iter()
        .map(|(&leaf, items)| {
            let w: Vec<f64> = items.iter().map(|&i| item_popularity[i]).collect();
            (leaf, AliasTable::new(&w))
        })
        .collect();
    let global_alias = AliasTable::new(&item_popularity);

    // ---- users --------------------------------------------------------
    let mut user_paths = Vec::with_capacity(cfg.num_users);
    let mut user_activity = Vec::with_capacity(cfg.num_users);
    for _ in 0..cfg.num_users {
        let mut path = vec![0usize];
        let mut node = 0usize;
        for _ in 0..depth {
            let kids = hierarchy.children(node);
            node = kids[rng.gen_range(0..kids.len())];
            path.push(node);
        }
        user_paths.push(path);
        user_activity.push(power_law(&mut rng, 0.6, 40.0));
    }
    let user_alias = AliasTable::new(&user_activity);

    let truth = GroundTruth {
        hierarchy,
        user_paths,
        item_leaf,
        item_quality,
        item_category,
        base_purchase_logit: cfg.base_purchase_logit,
        affinity_gain: cfg.affinity_gain,
        quality_gain: cfg.quality_gain,
    };

    // ---- click / purchase event streams --------------------------------
    let draw_event = |rng: &mut StdRng| -> (u32, u32, bool) {
        let user = user_alias.sample(rng);
        // Descend the tree: preferred child with prob `focus`, else random.
        let path = &truth.user_paths[user];
        let mut node = 0usize;
        for level in 0..depth {
            let kids = truth.hierarchy.children(node);
            node = if rng.gen_range(0.0..1.0) < cfg.focus {
                path[level + 1]
            } else {
                kids[rng.gen_range(0..kids.len())]
            };
        }
        let item = match leaf_alias.get(&node) {
            Some(alias) => leaf_items[&node][alias.sample(rng)],
            None => global_alias.sample(rng), // leaf without items: popular fallback
        };
        let purchased = rng.gen_range(0.0f32..1.0) < truth.purchase_prob(user, item);
        (user as u32, item as u32, purchased)
    };

    let mut train_pairs: HashMap<(u32, u32), (u32, u32)> = HashMap::new();
    for _ in 0..cfg.train_interactions {
        let (u, i, p) = draw_event(&mut rng);
        let e = train_pairs.entry((u, i)).or_insert((0, 0));
        e.0 += 1;
        e.1 += p as u32;
    }
    let mut test_pairs: HashMap<(u32, u32), (u32, u32)> = HashMap::new();
    for _ in 0..cfg.test_interactions {
        let (u, i, p) = draw_event(&mut rng);
        let e = test_pairs.entry((u, i)).or_insert((0, 0));
        e.0 += 1;
        e.1 += p as u32;
    }

    let graph = BipartiteGraph::from_edges(
        cfg.num_users,
        cfg.num_items,
        train_pairs.iter().map(|(&(u, i), &(c, _))| (u, i, c as f32)),
    );

    let mut sorted_train: Vec<_> = train_pairs.iter().collect();
    sorted_train.sort_unstable_by_key(|(&k, _)| k);
    let train: Vec<Sample> = sorted_train
        .iter()
        .map(|(&(user, item), &(_, purchases))| Sample { user, item, label: purchases > 0 })
        .collect();
    let mut sorted_test: Vec<_> = test_pairs.iter().collect();
    sorted_test.sort_unstable_by_key(|(&k, _)| k);
    let test: Vec<Sample> = sorted_test
        .iter()
        .map(|(&(user, item), &(_, purchases))| Sample { user, item, label: purchases > 0 })
        .collect();

    // ---- features ------------------------------------------------------
    // GNN inputs are fixed random vectors ("id-hash features"): they carry
    // no topic information themselves, so any hierarchy the model finds
    // must come from the interaction structure.
    let scale = 1.0 / (cfg.feature_dim as f32).sqrt();
    let user_features = init::normal(cfg.num_users, cfg.feature_dim, scale, &mut rng);
    let item_features = init::normal(cfg.num_items, cfg.feature_dim, scale, &mut rng);

    // Predictor-side profile / statistic features (paper Fig. 2 inputs).
    let max_act = user_activity.iter().cloned().fold(1e-9, f64::max);
    let user_profiles = Matrix::from_fn(cfg.num_users, 3, |u, j| match j {
        0 => ((u * 2654435761) % 2) as f32, // "gender"
        1 => (((u * 40503) % 997) as f32) / 997.0, // "purchasing power"
        _ => (user_activity[u] / max_act) as f32, // activity level
    });
    let mut item_clicks = vec![0u32; cfg.num_items];
    let mut item_purchases = vec![0u32; cfg.num_items];
    for (&(_, i), &(c, p)) in &train_pairs {
        item_clicks[i as usize] += c;
        item_purchases[i as usize] += p;
    }
    let mut stat_rng = StdRng::seed_from_u64(cfg.seed ^ 0x5151);
    let item_stats = Matrix::from_fn(cfg.num_items, 4, |i, j| match j {
        0 => (1.0 + item_clicks[i] as f32).ln(),
        1 => (1.0 + item_purchases[i] as f32).ln(),
        2 => truth.item_quality[i] + 0.5 * normalish(&mut stat_rng), // noisy quality
        _ => (item_popularity[i] as f32).ln(),
    });

    // Click histories for DIN, most-clicked first.
    let mut histories: Vec<Vec<(u32, u32)>> = vec![Vec::new(); cfg.num_users];
    for (&(u, i), &(c, _)) in &train_pairs {
        histories[u as usize].push((i, c));
    }
    let histories: Vec<Vec<u32>> = histories
        .into_iter()
        .map(|mut h| {
            h.sort_unstable_by_key(|&(i, c)| (std::cmp::Reverse(c), i));
            h.truncate(cfg.max_history);
            h.into_iter().map(|(i, _)| i).collect()
        })
        .collect();

    InteractionDataset {
        graph,
        train,
        test,
        user_features,
        item_features,
        user_profiles,
        item_stats,
        histories,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::SampleStats;

    fn tiny() -> TaobaoConfig {
        TaobaoConfig {
            num_users: 200,
            num_items: 100,
            train_interactions: 3000,
            test_interactions: 500,
            branching: vec![3, 3],
            num_categories: 12,
            focus: 0.8,
            base_purchase_logit: -1.5,
            affinity_gain: 2.5,
            quality_gain: 0.8,
            feature_dim: 8,
            max_history: 10,
            seed: 7,
        }
    }

    #[test]
    fn shapes_are_consistent() {
        let ds = generate_taobao(&tiny());
        assert_eq!(ds.num_users(), 200);
        assert_eq!(ds.num_items(), 100);
        assert_eq!(ds.user_features.shape(), (200, 8));
        assert_eq!(ds.item_features.shape(), (100, 8));
        assert_eq!(ds.user_profiles.shape(), (200, 3));
        assert_eq!(ds.item_stats.shape(), (100, 4));
        assert_eq!(ds.histories.len(), 200);
        assert!(!ds.train.is_empty());
        assert!(!ds.test.is_empty());
        assert!(ds.graph.total_weight() as usize <= 3000);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_taobao(&tiny());
        let b = generate_taobao(&tiny());
        assert_eq!(a.train, b.train);
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert_eq!(a.user_features, b.user_features);
    }

    #[test]
    fn cvr_is_plausible() {
        let ds = generate_taobao(&tiny());
        let stats = SampleStats::of(&ds.train);
        let cvr = stats.positives as f64 / stats.total() as f64;
        assert!(cvr > 0.02 && cvr < 0.6, "cvr {cvr}");
    }

    #[test]
    fn affinity_reflects_tree_distance() {
        let ds = generate_taobao(&tiny());
        let t = &ds.truth;
        // An item at the user's own preferred leaf has affinity 1.
        let user = 0usize;
        let leaf = *t.user_paths[user].last().unwrap();
        if let Some(item) = t.item_leaf.iter().position(|&l| l as usize == leaf) {
            assert!((t.affinity(user, item) - 1.0).abs() < 1e-6);
        }
        // Affinities are within [0, 1].
        for item in 0..20 {
            let a = t.affinity(user, item);
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn purchase_prob_increases_with_affinity() {
        let ds = generate_taobao(&tiny());
        let t = &ds.truth;
        // Average purchase prob over high-affinity pairs beats low-affinity.
        let mut high = (0.0f64, 0usize);
        let mut low = (0.0f64, 0usize);
        for user in 0..50 {
            for item in 0..50 {
                let a = t.affinity(user, item);
                let p = t.purchase_prob(user, item) as f64;
                if a >= 1.0 {
                    high = (high.0 + p, high.1 + 1);
                } else if a == 0.0 {
                    low = (low.0 + p, low.1 + 1);
                }
            }
        }
        if high.1 > 0 && low.1 > 0 {
            assert!(high.0 / high.1 as f64 > low.0 / low.1 as f64 + 0.1);
        }
    }

    #[test]
    fn clicks_concentrate_on_preferred_subtree() {
        let ds = generate_taobao(&tiny());
        let t = &ds.truth;
        // Summed over train samples, mean affinity of clicked pairs must be
        // far above the random-pair baseline.
        let clicked: f64 = ds
            .train
            .iter()
            .map(|s| t.affinity(s.user as usize, s.item as usize) as f64)
            .sum::<f64>()
            / ds.train.len() as f64;
        let mut rng = StdRng::seed_from_u64(3);
        let random: f64 = (0..2000)
            .map(|_| {
                let u = rng.gen_range(0..ds.num_users());
                let i = rng.gen_range(0..ds.num_items());
                t.affinity(u, i) as f64
            })
            .sum::<f64>()
            / 2000.0;
        assert!(clicked > random + 0.2, "clicked {clicked} vs random {random}");
    }

    #[test]
    fn taobao2_is_sparser_than_taobao1() {
        let d1 = generate_taobao(&TaobaoConfig { seed: 1, ..TaobaoConfig::taobao1(0.05) });
        let d2 = generate_taobao(&TaobaoConfig { seed: 1, ..TaobaoConfig::taobao2(0.05) });
        assert!(d2.graph.density() < d1.graph.density());
        let cvr1 = SampleStats::of(&d1.train);
        let cvr2 = SampleStats::of(&d2.train);
        let r1 = cvr1.positives as f64 / cvr1.total() as f64;
        let r2 = cvr2.positives as f64 / cvr2.total() as f64;
        assert!(r2 < r1, "cold-start CVR {r2} should be below dense {r1}");
    }

    #[test]
    fn histories_are_bounded_and_valid() {
        let ds = generate_taobao(&tiny());
        for (u, h) in ds.histories.iter().enumerate() {
            assert!(h.len() <= 10);
            for &i in h {
                assert!(ds.graph.edge_weight(u, i as usize).is_some());
            }
        }
    }

    #[test]
    fn preset_constructors_scale_linearly() {
        let small = TaobaoConfig::taobao1(0.1);
        let large = TaobaoConfig::taobao1(0.2);
        assert_eq!(large.num_users, small.num_users * 2);
        assert_eq!(large.train_interactions, small.train_interactions * 2);
        // Scale floor prevents degenerate configs.
        let floor = TaobaoConfig::taobao2(0.0);
        assert!(floor.num_users > 0 && floor.num_items > 0);
    }

    #[test]
    fn user_profiles_are_bounded() {
        let ds = generate_taobao(&tiny());
        for u in 0..ds.num_users() {
            let p = ds.user_profiles.row(u);
            assert!(p[0] == 0.0 || p[0] == 1.0, "gender {p:?}");
            assert!((0.0..=1.0).contains(&p[1]), "power {p:?}");
            assert!((0.0..=1.0).contains(&p[2]), "activity {p:?}");
        }
    }

    #[test]
    fn item_stats_reflect_train_clicks() {
        let ds = generate_taobao(&tiny());
        // Column 0 is ln(1 + clicks); verify against the graph.
        for i in 0..20 {
            let clicks: f32 = ds
                .graph
                .neighbors(hignn_graph::Side::Right, i)
                .1
                .iter()
                .sum();
            let expected = (1.0 + clicks).ln();
            assert!(
                (ds.item_stats.get(i, 0) - expected).abs() < 1e-4,
                "item {i}: {} vs {expected}",
                ds.item_stats.get(i, 0)
            );
        }
    }
}
