//! # hignn-datasets
//!
//! Synthetic dataset generators substituting the paper's proprietary
//! Taobao logs (see DESIGN.md §5 for the substitution rationale):
//!
//! * [`hierarchy`] — planted ground-truth topic trees (the latent
//!   structure of Fig. 1).
//! * [`taobao`] — user-item click/purchase logs: dense
//!   ([`taobao::TaobaoConfig::taobao1`]) and cold-start
//!   ([`taobao::TaobaoConfig::taobao2`]) variants, with user profiles,
//!   item statistics, GNN input features, and exact ground truth.
//! * [`query_item`] — query-item click logs with per-topic vocabularies
//!   for the taxonomy pipeline (Taobao #3 analogue).
//! * [`samples`] — labelled CVR samples and the paper's 1:3 replicate
//!   sampling.
//!
//! Everything is deterministic given the config seed.

#![warn(missing_docs)]

pub mod hierarchy;
pub mod query_item;
pub mod samples;
pub mod taobao;

pub use hierarchy::TopicHierarchy;
pub use query_item::{generate_query_item, QueryItemConfig, QueryItemDataset, QueryItemTruth};
pub use samples::{replicate_positives, Sample, SampleStats};
pub use taobao::{generate_taobao, GroundTruth, InteractionDataset, TaobaoConfig};
