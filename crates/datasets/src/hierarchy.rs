//! Ground-truth topic hierarchies for synthetic data generation.
//!
//! The paper's motivating example (Fig. 1) is a topic tree over shopping
//! scenarios ("trip to beach" ⊂ "outdoor activities"). Our generators
//! plant such a tree as the *latent* structure behind every synthetic
//! dataset: items live at leaves, users/queries have affinities to
//! subtrees, and HiGNN's job is to rediscover the tree from interactions
//! alone. Keeping the tree explicit gives every experiment exact ground
//! truth (taking the role of the paper's human experts).

use rand::Rng;

/// A rooted tree of topics. Node 0 is the root; nodes are stored in BFS
/// order, so all nodes of one level are contiguous.
#[derive(Clone, Debug)]
pub struct TopicHierarchy {
    parent: Vec<usize>,
    children: Vec<Vec<usize>>,
    level: Vec<usize>,
    level_ranges: Vec<std::ops::Range<usize>>,
    names: Vec<String>,
    token_pools: Vec<Vec<String>>,
}

/// Word roots used to compose pseudo-realistic topic names and token
/// pools (deterministic in the node id).
const ROOTS: &[&str] = &[
    "home", "kitchen", "beauty", "care", "clean", "sport", "outdoor", "baby", "garden", "pet",
    "phone", "audio", "camp", "beach", "dress", "shoe", "skin", "hair", "health", "smart",
    "office", "travel", "light", "cook", "bath", "tea", "toy", "game", "bike", "run",
    "yoga", "fish", "art", "music", "book", "craft", "wine", "snack", "fresh", "cozy",
];

impl TopicHierarchy {
    /// Builds a hierarchy with the given branching factors;
    /// `branching.len()` is the depth below the root. For example
    /// `&[5, 4, 3]` creates 5 level-1 topics, 20 level-2 topics, and 60
    /// leaf topics.
    pub fn new(branching: &[usize]) -> Self {
        assert!(!branching.is_empty(), "TopicHierarchy: need at least one level");
        assert!(branching.iter().all(|&b| b > 0), "TopicHierarchy: zero branching");
        let mut parent = vec![0usize];
        let mut children: Vec<Vec<usize>> = vec![Vec::new()];
        let mut level = vec![0usize];
        let mut level_ranges = Vec::with_capacity(branching.len() + 1);
        level_ranges.push(0..1);
        let mut frontier = vec![0usize];
        for (depth, &b) in branching.iter().enumerate() {
            let start = parent.len();
            let mut next = Vec::with_capacity(frontier.len() * b);
            for &node in &frontier {
                for _ in 0..b {
                    let id = parent.len();
                    parent.push(node);
                    children.push(Vec::new());
                    children[node].push(id);
                    level.push(depth + 1);
                    next.push(id);
                }
            }
            level_ranges.push(start..parent.len());
            frontier = next;
        }
        let n = parent.len();
        let names = (0..n)
            .map(|id| {
                if id == 0 {
                    "root".to_owned()
                } else {
                    let a = ROOTS[id % ROOTS.len()];
                    let b = ROOTS[(id * 7 + 3) % ROOTS.len()];
                    format!("{a}-{b}-{id}")
                }
            })
            .collect();
        // Token pool per node: a few tokens distinctive to the node.
        let token_pools = (0..n)
            .map(|id| {
                (0..4)
                    .map(|k| {
                        let root = ROOTS[(id * 13 + k * 5) % ROOTS.len()];
                        format!("{root}{id}x{k}")
                    })
                    .collect()
            })
            .collect();
        TopicHierarchy { parent, children, level, level_ranges, names, token_pools }
    }

    /// Total number of nodes, including the root.
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Depth below the root (number of branching levels).
    pub fn depth(&self) -> usize {
        self.level_ranges.len() - 1
    }

    /// Ids of all nodes on `level` (0 = root).
    pub fn level_nodes(&self, level: usize) -> std::ops::Range<usize> {
        self.level_ranges[level].clone()
    }

    /// Ids of the leaf topics (deepest level).
    pub fn leaves(&self) -> std::ops::Range<usize> {
        self.level_ranges[self.depth()].clone()
    }

    /// Number of leaf topics.
    pub fn num_leaves(&self) -> usize {
        self.leaves().len()
    }

    /// Parent of `node` (the root is its own parent).
    pub fn parent(&self, node: usize) -> usize {
        self.parent[node]
    }

    /// Children of `node`.
    pub fn children(&self, node: usize) -> &[usize] {
        &self.children[node]
    }

    /// Level of `node` (0 = root).
    pub fn level(&self, node: usize) -> usize {
        self.level[node]
    }

    /// The ancestor of `node` at `level` (walks up; `level` must not
    /// exceed the node's own level).
    pub fn ancestor_at_level(&self, node: usize, level: usize) -> usize {
        assert!(level <= self.level[node], "ancestor_at_level: node is above level");
        let mut cur = node;
        while self.level[cur] > level {
            cur = self.parent[cur];
        }
        cur
    }

    /// True when `ancestor` lies on the root path of `node` (inclusive).
    pub fn is_ancestor(&self, ancestor: usize, node: usize) -> bool {
        if self.level[ancestor] > self.level[node] {
            return false;
        }
        self.ancestor_at_level(node, self.level[ancestor]) == ancestor
    }

    /// All leaves under `node`.
    pub fn leaves_under(&self, node: usize) -> Vec<usize> {
        if self.level[node] == self.depth() {
            return vec![node];
        }
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            if self.level[n] == self.depth() {
                out.push(n);
            } else {
                stack.extend_from_slice(&self.children[n]);
            }
        }
        out.sort_unstable();
        out
    }

    /// Human-readable name of `node`.
    pub fn name(&self, node: usize) -> &str {
        &self.names[node]
    }

    /// Distinctive tokens of `node` itself.
    pub fn own_tokens(&self, node: usize) -> &[String] {
        &self.token_pools[node]
    }

    /// Samples `count` tokens for content attached to `node`: mostly the
    /// node's own tokens, mixed with ancestor tokens with decreasing
    /// probability — this plants the hierarchical co-occurrence signal
    /// word2vec and HiGNN pick up. Equivalent to
    /// [`TopicHierarchy::sample_tokens_with`] at `own_prob = 0.6`,
    /// `generic_prob = 0.0`.
    pub fn sample_tokens(&self, node: usize, count: usize, rng: &mut impl Rng) -> Vec<String> {
        self.sample_tokens_with(node, count, 0.6, 0.0, rng)
    }

    /// Token sampling with explicit ambiguity controls.
    ///
    /// * `own_prob` — probability of stopping at each node while walking
    ///   toward the root (lower = more ancestor mixing, more ambiguous
    ///   text).
    /// * `generic_prob` — probability of emitting a topic-free generic
    ///   token instead (stopword-like noise shared across all topics).
    ///
    /// Real e-commerce titles are ambiguous: the same words appear across
    /// many topics, and only interaction structure disambiguates. These
    /// knobs reproduce that — the taxonomy experiments rely on them so
    /// that fixed text embeddings (SHOAL) genuinely underdetermine the
    /// topic while click structure (HiGNN) resolves it.
    pub fn sample_tokens_with(
        &self,
        node: usize,
        count: usize,
        own_prob: f64,
        generic_prob: f64,
        rng: &mut impl Rng,
    ) -> Vec<String> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            if rng.gen_range(0.0..1.0) < generic_prob {
                out.push(ROOTS[rng.gen_range(0..ROOTS.len())].to_owned());
                continue;
            }
            let mut cur = node;
            while cur != 0 && rng.gen_range(0.0..1.0) > own_prob {
                cur = self.parent[cur];
            }
            let pool = &self.token_pools[cur];
            out.push(pool[rng.gen_range(0..pool.len())].clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_of_tree() {
        let h = TopicHierarchy::new(&[3, 2]);
        assert_eq!(h.num_nodes(), 1 + 3 + 6);
        assert_eq!(h.depth(), 2);
        assert_eq!(h.num_leaves(), 6);
        assert_eq!(h.level_nodes(1), 1..4);
        assert_eq!(h.leaves(), 4..10);
    }

    #[test]
    fn parent_child_consistency() {
        let h = TopicHierarchy::new(&[2, 3]);
        for node in 1..h.num_nodes() {
            let p = h.parent(node);
            assert!(h.children(p).contains(&node));
            assert_eq!(h.level(node), h.level(p) + 1);
        }
        assert_eq!(h.parent(0), 0);
    }

    #[test]
    fn ancestors_and_leaves_under() {
        let h = TopicHierarchy::new(&[2, 2, 2]);
        let leaf = h.leaves().start;
        let l1 = h.ancestor_at_level(leaf, 1);
        assert_eq!(h.level(l1), 1);
        assert!(h.is_ancestor(l1, leaf));
        assert!(h.is_ancestor(0, leaf));
        assert!(!h.is_ancestor(leaf, l1));
        let under = h.leaves_under(l1);
        assert_eq!(under.len(), 4);
        assert!(under.iter().all(|&l| h.is_ancestor(l1, l)));
        assert_eq!(h.leaves_under(leaf), vec![leaf]);
    }

    #[test]
    fn token_sampling_prefers_own_pool() {
        let h = TopicHierarchy::new(&[2, 2]);
        let mut rng = StdRng::seed_from_u64(1);
        let leaf = h.leaves().start;
        let toks = h.sample_tokens(leaf, 1000, &mut rng);
        let own: Vec<&String> = h.own_tokens(leaf).iter().collect();
        let own_frac =
            toks.iter().filter(|t| own.contains(t)).count() as f64 / toks.len() as f64;
        assert!(own_frac > 0.5, "own fraction {own_frac}");
    }

    #[test]
    fn names_are_unique() {
        let h = TopicHierarchy::new(&[4, 4]);
        let mut names: Vec<&str> = (0..h.num_nodes()).map(|n| h.name(n)).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), h.num_nodes());
    }

    #[test]
    #[should_panic(expected = "node is above level")]
    fn ancestor_above_level_panics() {
        let h = TopicHierarchy::new(&[2]);
        h.ancestor_at_level(0, 1);
    }
}
