//! Synthetic query-item click datasets (Taobao #3 analogue, paper
//! Section V).
//!
//! In the taxonomy pipeline both sides of the bipartite graph carry
//! *text*: queries are search strings, items have titles, and both are
//! embedded into the same word2vec space. The generator attaches queries
//! to topic-tree nodes (general queries sit higher in the tree,
//! specific queries at leaves), gives items token bags from their leaf's
//! pool, and draws click edges between queries and items whose topics
//! agree — reproducing the premise that co-click structure reflects shared
//! search intention.

use crate::hierarchy::TopicHierarchy;
use hignn_graph::{AliasTable, BipartiteGraph};
use hignn_text::vocab::{tokenize, Vocab};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Configuration of the query-item generator.
#[derive(Clone, Debug)]
pub struct QueryItemConfig {
    /// Number of distinct queries.
    pub num_queries: usize,
    /// Number of items.
    pub num_items: usize,
    /// Click events to draw.
    pub interactions: usize,
    /// Topic-tree branching factors (the paper uses a 4-level taxonomy).
    pub branching: Vec<usize>,
    /// Number of ontology categories (for the diversity metric).
    pub num_categories: usize,
    /// Probability that a click stays inside the query's topic subtree.
    pub focus: f64,
    /// Tokens per item title.
    pub title_tokens: usize,
    /// Tokens per query.
    pub query_tokens: usize,
    /// RNG seed.
    pub seed: u64,
}

impl QueryItemConfig {
    /// Default laptop-scale configuration in the spirit of Taobao #3
    /// (Table V), scaled by `scale`.
    pub fn taobao3(scale: f64) -> Self {
        let s = scale.max(0.01);
        QueryItemConfig {
            num_queries: (2500.0 * s) as usize,
            num_items: (4000.0 * s) as usize,
            interactions: (60_000.0 * s) as usize,
            branching: vec![4, 4, 3],
            num_categories: 40,
            focus: 0.85,
            title_tokens: 6,
            query_tokens: 3,
            seed: 20200430,
        }
    }
}

/// Ground truth of a generated query-item dataset.
#[derive(Clone, Debug)]
pub struct QueryItemTruth {
    /// The planted topic tree.
    pub hierarchy: TopicHierarchy,
    /// Tree node each query is attached to (any level ≥ 1).
    pub query_node: Vec<u32>,
    /// Leaf topic per item.
    pub item_leaf: Vec<u32>,
    /// Ontology category per item.
    pub item_category: Vec<u32>,
}

impl QueryItemTruth {
    /// The item's leaf topic as a dense index in `0..num_leaves`.
    pub fn item_leaf_index(&self, item: usize) -> u32 {
        self.item_leaf[item] - self.hierarchy.leaves().start as u32
    }

    /// The item's ancestor topic at `level`, as a dense index within that
    /// level (useful for evaluating coarser taxonomy levels).
    pub fn item_topic_at_level(&self, item: usize, level: usize) -> u32 {
        let node = self
            .hierarchy
            .ancestor_at_level(self.item_leaf[item] as usize, level);
        (node - self.hierarchy.level_nodes(level).start) as u32
    }
}

/// A generated query-item dataset.
#[derive(Clone, Debug)]
pub struct QueryItemDataset {
    /// Click graph (left = queries, right = items; weight = click count).
    pub graph: BipartiteGraph,
    /// Raw query strings.
    pub query_texts: Vec<String>,
    /// Raw item titles.
    pub item_texts: Vec<String>,
    /// Vocabulary over all texts.
    pub vocab: Vocab,
    /// Encoded query token ids.
    pub query_tokens: Vec<Vec<u32>>,
    /// Encoded item title token ids.
    pub item_tokens: Vec<Vec<u32>>,
    /// Planted structure.
    pub truth: QueryItemTruth,
}

impl QueryItemDataset {
    /// Sentences for word2vec training: all query and title token
    /// sequences.
    pub fn corpus(&self) -> Vec<Vec<u32>> {
        self.query_tokens
            .iter()
            .chain(self.item_tokens.iter())
            .cloned()
            .collect()
    }
}

/// Generates a dataset from `cfg`.
pub fn generate_query_item(cfg: &QueryItemConfig) -> QueryItemDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let hierarchy = TopicHierarchy::new(&cfg.branching);
    let depth = hierarchy.depth();
    let leaves: Vec<usize> = hierarchy.leaves().collect();

    let leaf_categories: Vec<Vec<u32>> = leaves
        .iter()
        .map(|_| {
            let count = rng.gen_range(3..=5);
            (0..count).map(|_| rng.gen_range(0..cfg.num_categories as u32)).collect()
        })
        .collect();

    // ---- items ---------------------------------------------------------
    // Titles mix *intent* tokens (from the topic tree, ambiguous) with
    // *product-type* tokens (from the item's ontology category). Real
    // titles are dominated by type words ("dress", "sunglasses"), so a
    // text-only method clusters by category, while shared search intent
    // is only visible through co-click structure — the gap the paper's
    // diversity metric measures.
    let category_tokens: Vec<Vec<String>> = (0..cfg.num_categories)
        .map(|c| (0..3).map(|k| format!("type{c}w{k}")).collect())
        .collect();
    let mut item_leaf = Vec::with_capacity(cfg.num_items);
    let mut item_category = Vec::with_capacity(cfg.num_items);
    let mut item_popularity = Vec::with_capacity(cfg.num_items);
    let mut item_texts = Vec::with_capacity(cfg.num_items);
    for _ in 0..cfg.num_items {
        let leaf_idx = rng.gen_range(0..leaves.len());
        let leaf = leaves[leaf_idx];
        item_leaf.push(leaf as u32);
        let cats = &leaf_categories[leaf_idx];
        let category = cats[rng.gen_range(0..cats.len())];
        item_category.push(category);
        item_popularity.push({
            let u: f64 = rng.gen_range(1e-4..1.0);
            u.powf(-0.7).min(60.0)
        });
        let mut tokens =
            hierarchy.sample_tokens_with(leaf, cfg.title_tokens, 0.4, 0.2, &mut rng);
        let type_pool = &category_tokens[category as usize];
        for slot in tokens.iter_mut() {
            if rng.gen_range(0.0..1.0) < 0.45 {
                *slot = type_pool[rng.gen_range(0..type_pool.len())].clone();
            }
        }
        item_texts.push(tokens.join(" "));
    }
    let mut leaf_items: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, &leaf) in item_leaf.iter().enumerate() {
        leaf_items.entry(leaf as usize).or_default().push(i);
    }
    let leaf_alias: HashMap<usize, AliasTable> = leaf_items
        .iter()
        .map(|(&leaf, items)| {
            let w: Vec<f64> = items.iter().map(|&i| item_popularity[i]).collect();
            (leaf, AliasTable::new(&w))
        })
        .collect();
    let global_alias = AliasTable::new(&item_popularity);

    // ---- queries --------------------------------------------------------
    // Specific queries (leaves) dominate; general queries sit higher.
    let mut query_node = Vec::with_capacity(cfg.num_queries);
    let mut query_freq = Vec::with_capacity(cfg.num_queries);
    let mut query_texts = Vec::with_capacity(cfg.num_queries);
    for _ in 0..cfg.num_queries {
        let level = {
            let x: f64 = rng.gen_range(0.0..1.0);
            if x < 0.6 || depth == 1 {
                depth
            } else if x < 0.85 || depth == 2 {
                depth - 1
            } else {
                depth.saturating_sub(2).max(1)
            }
        };
        let range = hierarchy.level_nodes(level);
        let node = rng.gen_range(range.start..range.end);
        query_node.push(node as u32);
        query_freq.push({
            let u: f64 = rng.gen_range(1e-4..1.0);
            u.powf(-0.6).min(40.0)
        });
        query_texts.push(
            hierarchy
                .sample_tokens_with(node, cfg.query_tokens, 0.55, 0.2, &mut rng)
                .join(" "),
        );
    }
    let query_alias = AliasTable::new(&query_freq);

    // ---- click edges ----------------------------------------------------
    let mut pairs: HashMap<(u32, u32), u32> = HashMap::new();
    for _ in 0..cfg.interactions {
        let q = query_alias.sample(&mut rng);
        let node = query_node[q] as usize;
        let item = if rng.gen_range(0.0..1.0) < cfg.focus {
            // Stay inside the query's subtree: descend uniformly to a leaf.
            let mut cur = node;
            while hierarchy.level(cur) < depth {
                let kids = hierarchy.children(cur);
                cur = kids[rng.gen_range(0..kids.len())];
            }
            match leaf_alias.get(&cur) {
                Some(alias) => leaf_items[&cur][alias.sample(&mut rng)],
                None => global_alias.sample(&mut rng),
            }
        } else {
            global_alias.sample(&mut rng) // exploratory / noisy click
        };
        *pairs.entry((q as u32, item as u32)).or_insert(0) += 1;
    }
    let graph = BipartiteGraph::from_edges(
        cfg.num_queries,
        cfg.num_items,
        pairs.into_iter().map(|((q, i), c)| (q, i, c as f32)),
    );

    // ---- vocabulary -----------------------------------------------------
    let tokenized: Vec<Vec<String>> = query_texts
        .iter()
        .chain(item_texts.iter())
        .map(|t| tokenize(t))
        .collect();
    let vocab = Vocab::build(tokenized.iter().map(|d| d.as_slice()), 1);
    let query_tokens: Vec<Vec<u32>> =
        query_texts.iter().map(|t| vocab.encode_text(t)).collect();
    let item_tokens: Vec<Vec<u32>> =
        item_texts.iter().map(|t| vocab.encode_text(t)).collect();

    QueryItemDataset {
        graph,
        query_texts,
        item_texts,
        vocab,
        query_tokens,
        item_tokens,
        truth: QueryItemTruth { hierarchy, query_node, item_leaf, item_category },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> QueryItemConfig {
        QueryItemConfig {
            num_queries: 120,
            num_items: 200,
            interactions: 4000,
            branching: vec![3, 3],
            num_categories: 12,
            focus: 0.85,
            title_tokens: 5,
            query_tokens: 3,
            seed: 11,
        }
    }

    #[test]
    fn shapes_and_determinism() {
        let a = generate_query_item(&tiny());
        assert_eq!(a.graph.num_left(), 120);
        assert_eq!(a.graph.num_right(), 200);
        assert_eq!(a.query_texts.len(), 120);
        assert_eq!(a.item_tokens.len(), 200);
        assert!(!a.vocab.is_empty());
        let b = generate_query_item(&tiny());
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert_eq!(a.query_texts, b.query_texts);
    }

    #[test]
    fn clicks_respect_query_subtree() {
        let ds = generate_query_item(&tiny());
        let t = &ds.truth;
        let mut inside = 0usize;
        let mut total = 0usize;
        for &(q, i, w) in ds.graph.edges() {
            let node = t.query_node[q as usize] as usize;
            let leaf = t.item_leaf[i as usize] as usize;
            let w = w as usize;
            total += w;
            if t.hierarchy.is_ancestor(node, leaf) {
                inside += w;
            }
        }
        let frac = inside as f64 / total as f64;
        assert!(frac > 0.7, "in-subtree click fraction {frac}");
    }

    #[test]
    fn titles_are_topical_but_ambiguous() {
        let ds = generate_query_item(&tiny());
        let t = &ds.truth;
        // Titles carry leaf-pool tokens (topical signal) but deliberately
        // not exclusively (ambiguity: ancestor mixing + generic tokens).
        let mut own = 0usize;
        let mut total = 0usize;
        for (i, text) in ds.item_texts.iter().enumerate() {
            let leaf = t.item_leaf[i] as usize;
            let pool = t.hierarchy.own_tokens(leaf);
            for tok in text.split(' ') {
                total += 1;
                if pool.iter().any(|p| p == tok) {
                    own += 1;
                }
            }
        }
        let frac = own as f64 / total as f64;
        assert!(frac > 0.15, "titles lost topical signal: {frac}");
        assert!(frac < 0.75, "titles too unambiguous: {frac}");
    }

    #[test]
    fn corpus_covers_both_sides() {
        let ds = generate_query_item(&tiny());
        assert_eq!(ds.corpus().len(), 120 + 200);
    }

    #[test]
    fn leaf_index_is_dense() {
        let ds = generate_query_item(&tiny());
        let n_leaves = ds.truth.hierarchy.num_leaves() as u32;
        for i in 0..ds.graph.num_right() {
            assert!(ds.truth.item_leaf_index(i) < n_leaves);
        }
    }

    #[test]
    fn topic_at_level_matches_hierarchy() {
        let ds = generate_query_item(&tiny());
        let t = &ds.truth;
        for i in 0..10 {
            let l1 = t.item_topic_at_level(i, 1);
            assert!((l1 as usize) < t.hierarchy.level_nodes(1).len());
        }
    }
}
