//! Labelled samples and the paper's replicate-sampling strategy.
//!
//! *"We consider purchase behaviors as positive samples, and click
//! behaviors without purchasing as negative samples. Because the number of
//! positive samples is relatively small ... we adopt a replicate sampling
//! strategy to make the ratio of positive samples to negative samples
//! as 1:3"* (Section IV.B.1).

use rand::Rng;
use std::fmt;

/// One supervised CVR sample: a clicked `(user, item)` pair and whether
/// the click converted into a purchase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sample {
    /// User id.
    pub user: u32,
    /// Item id.
    pub item: u32,
    /// True when the user purchased the item.
    pub label: bool,
}

/// Counts of positives / negatives in a sample set (paper Tables II, VI).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SampleStats {
    /// Number of positive samples.
    pub positives: usize,
    /// Number of negative samples.
    pub negatives: usize,
}

impl SampleStats {
    /// Computes statistics over `samples`.
    pub fn of(samples: &[Sample]) -> Self {
        let positives = samples.iter().filter(|s| s.label).count();
        SampleStats { positives, negatives: samples.len() - positives }
    }

    /// Total sample count.
    pub fn total(&self) -> usize {
        self.positives + self.negatives
    }

    /// Negative-to-positive ratio (`inf` when there are no positives).
    pub fn neg_per_pos(&self) -> f64 {
        if self.positives == 0 {
            f64::INFINITY
        } else {
            self.negatives as f64 / self.positives as f64
        }
    }
}

impl fmt::Display for SampleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} positive / {} negative / {} total (1:{:.2})",
            self.positives,
            self.negatives,
            self.total(),
            self.neg_per_pos()
        )
    }
}

/// Replicates positive samples until the positive:negative ratio reaches
/// `1:target_neg_per_pos` (e.g. 3.0 for the paper's 1:3), then shuffles.
///
/// If positives are already abundant enough, the input is returned
/// shuffled but otherwise unchanged.
pub fn replicate_positives(
    samples: &[Sample],
    target_neg_per_pos: f64,
    rng: &mut impl Rng,
) -> Vec<Sample> {
    assert!(target_neg_per_pos > 0.0, "replicate_positives: ratio must be positive");
    let stats = SampleStats::of(samples);
    let mut out: Vec<Sample> = samples.to_vec();
    if stats.positives > 0 {
        let wanted_pos = (stats.negatives as f64 / target_neg_per_pos).ceil() as usize;
        if wanted_pos > stats.positives {
            let positives: Vec<Sample> =
                samples.iter().copied().filter(|s| s.label).collect();
            let extra = wanted_pos - stats.positives;
            out.reserve(extra);
            for _ in 0..extra {
                out.push(positives[rng.gen_range(0..positives.len())]);
            }
        }
    }
    // Fisher-Yates shuffle.
    for i in (1..out.len()).rev() {
        out.swap(i, rng.gen_range(0..=i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mk(pos: usize, neg: usize) -> Vec<Sample> {
        let mut v = Vec::new();
        for i in 0..pos {
            v.push(Sample { user: i as u32, item: 0, label: true });
        }
        for i in 0..neg {
            v.push(Sample { user: i as u32, item: 1, label: false });
        }
        v
    }

    #[test]
    fn stats_counts() {
        let s = SampleStats::of(&mk(2, 6));
        assert_eq!(s.positives, 2);
        assert_eq!(s.negatives, 6);
        assert_eq!(s.total(), 8);
        assert!((s.neg_per_pos() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn replicate_reaches_target_ratio() {
        let mut rng = StdRng::seed_from_u64(1);
        let balanced = replicate_positives(&mk(10, 300), 3.0, &mut rng);
        let s = SampleStats::of(&balanced);
        assert_eq!(s.negatives, 300);
        assert!(s.positives >= 100, "positives {}", s.positives);
        assert!(s.neg_per_pos() <= 3.0 + 1e-9);
    }

    #[test]
    fn replicate_noop_when_already_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let out = replicate_positives(&mk(100, 100), 3.0, &mut rng);
        assert_eq!(out.len(), 200);
    }

    #[test]
    fn replicate_handles_no_positives() {
        let mut rng = StdRng::seed_from_u64(3);
        let out = replicate_positives(&mk(0, 50), 3.0, &mut rng);
        assert_eq!(out.len(), 50);
        assert!(SampleStats::of(&out).neg_per_pos().is_infinite());
    }

    #[test]
    fn display_mentions_ratio() {
        let text = SampleStats::of(&mk(1, 3)).to_string();
        assert!(text.contains("1:3.00"), "{text}");
    }
}
