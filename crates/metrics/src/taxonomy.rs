//! Taxonomy quality metrics (paper Section V.D.1).
//!
//! *Accuracy*: the paper has domain experts pick 100 topics, sample 100
//! items per topic, and judge whether items belong; our synthetic
//! generator's ground-truth labels play the expert's role, so a sampled
//! item counts as correct when its ground-truth topic matches the
//! majority ground-truth topic of its assigned cluster.
//!
//! *Diversity*: *"Items belonging to a qualified topic should cover more
//! than two different categories. We define diversity as the ratio of the
//! number of qualified topics to the number of all topics"* — measured
//! against the (separate) ontology category labels.

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// Groups item indices by their assigned topic.
fn topic_members(assignment: &[u32]) -> HashMap<u32, Vec<usize>> {
    let mut map: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, &t) in assignment.iter().enumerate() {
        map.entry(t).or_default().push(i);
    }
    map
}

/// Expert-style accuracy: sample up to `topics_sampled` topics and up to
/// `items_per_topic` items in each; an item is correct when its
/// ground-truth label equals the majority ground-truth label of its topic.
///
/// Singleton-only inputs trivially score 1.0; the experiment binaries use
/// the paper's 100×100 sampling.
pub fn taxonomy_accuracy(
    assignment: &[u32],
    ground_truth: &[u32],
    topics_sampled: usize,
    items_per_topic: usize,
    rng: &mut impl Rng,
) -> f64 {
    assert_eq!(assignment.len(), ground_truth.len(), "taxonomy_accuracy: length mismatch");
    let members = topic_members(assignment);
    let mut topics: Vec<&Vec<usize>> = members.values().collect();
    topics.sort_by_key(|m| m[0]); // deterministic order before sampling
    topics.shuffle(rng);
    let mut correct = 0usize;
    let mut total = 0usize;
    for items in topics.into_iter().take(topics_sampled) {
        // Majority ground-truth label of the whole topic.
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for &i in items {
            *counts.entry(ground_truth[i]).or_insert(0) += 1;
        }
        let majority = counts
            .iter()
            .max_by_key(|&(label, c)| (*c, u32::MAX - label))
            .map(|(&label, _)| label)
            .unwrap();
        let mut sample: Vec<usize> = items.clone();
        sample.shuffle(rng);
        for &i in sample.iter().take(items_per_topic) {
            total += 1;
            if ground_truth[i] == majority {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Diversity: the fraction of topics whose members cover at least
/// `min_categories` distinct ontology categories (the paper's "more than
/// two different categories" ⇒ `min_categories = 3`).
pub fn taxonomy_diversity(
    assignment: &[u32],
    categories: &[u32],
    min_categories: usize,
) -> f64 {
    assert_eq!(assignment.len(), categories.len(), "taxonomy_diversity: length mismatch");
    let members = topic_members(assignment);
    if members.is_empty() {
        return 0.0;
    }
    let qualified = members
        .values()
        .filter(|items| {
            let mut cats: Vec<u32> = items.iter().map(|&i| categories[i]).collect();
            cats.sort_unstable();
            cats.dedup();
            cats.len() >= min_categories
        })
        .count();
    qualified as f64 / members.len() as f64
}

/// Normalised mutual information between two labelings — an additional
/// clustering-quality diagnostic not in the paper but useful for tests
/// and ablations.
pub fn normalized_mutual_info(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len(), "normalized_mutual_info: length mismatch");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let mut ca: HashMap<u32, f64> = HashMap::new();
    let mut cb: HashMap<u32, f64> = HashMap::new();
    let mut joint: HashMap<(u32, u32), f64> = HashMap::new();
    for i in 0..n {
        *ca.entry(a[i]).or_insert(0.0) += 1.0;
        *cb.entry(b[i]).or_insert(0.0) += 1.0;
        *joint.entry((a[i], b[i])).or_insert(0.0) += 1.0;
    }
    let n = n as f64;
    let mut mi = 0f64;
    for (&(x, y), &c) in &joint {
        let pxy = c / n;
        let px = ca[&x] / n;
        let py = cb[&y] / n;
        mi += pxy * (pxy / (px * py)).ln();
    }
    let h = |counts: &HashMap<u32, f64>| -> f64 {
        counts
            .values()
            .map(|&c| {
                let p = c / n;
                -p * p.ln()
            })
            .sum()
    };
    let (ha, hb) = (h(&ca), h(&cb));
    if ha <= 1e-12 || hb <= 1e-12 {
        // Convention matching scikit-learn: two constant labelings agree
        // perfectly (1.0); a constant vs an informative labeling carries
        // no mutual information (0.0).
        return if ha <= 1e-12 && hb <= 1e-12 { 1.0 } else { 0.0 };
    }
    (mi / (ha * hb).sqrt()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accuracy_perfect_clustering() {
        let mut rng = StdRng::seed_from_u64(1);
        let assignment = vec![0, 0, 1, 1, 2, 2];
        let truth = vec![5, 5, 7, 7, 9, 9];
        let acc = taxonomy_accuracy(&assignment, &truth, 10, 10, &mut rng);
        assert!((acc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_mixed_topics() {
        let mut rng = StdRng::seed_from_u64(2);
        // Topic 0 has 3 of label 1, 1 of label 2 -> majority 1, accuracy 3/4.
        let assignment = vec![0, 0, 0, 0];
        let truth = vec![1, 1, 1, 2];
        let acc = taxonomy_accuracy(&assignment, &truth, 10, 10, &mut rng);
        assert!((acc - 0.75).abs() < 1e-12);
    }

    #[test]
    fn accuracy_sampling_bounds_items() {
        let mut rng = StdRng::seed_from_u64(3);
        let assignment = vec![0; 1000];
        let truth = vec![1; 1000];
        let acc = taxonomy_accuracy(&assignment, &truth, 1, 5, &mut rng);
        assert!((acc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diversity_counts_qualified_topics() {
        // Topic 0 covers 3 categories (qualified), topic 1 covers 1.
        let assignment = vec![0, 0, 0, 1, 1];
        let categories = vec![10, 11, 12, 20, 20];
        let d = taxonomy_diversity(&assignment, &categories, 3);
        assert!((d - 0.5).abs() < 1e-12);
        // With threshold 1 everything qualifies.
        assert!((taxonomy_diversity(&assignment, &categories, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diversity_empty() {
        assert_eq!(taxonomy_diversity(&[], &[], 3), 0.0);
    }

    #[test]
    fn nmi_identical_and_independent() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((normalized_mutual_info(&a, &a) - 1.0).abs() < 1e-9);
        // Permuted labels still match perfectly.
        let b = vec![7, 7, 3, 3, 5, 5];
        assert!((normalized_mutual_info(&a, &b) - 1.0).abs() < 1e-9);
        // A constant labeling carries no information.
        let c = vec![1; 6];
        let nmi = normalized_mutual_info(&a, &c);
        assert!(nmi < 0.05, "nmi {nmi}");
    }
}
