//! Area under the ROC curve.
//!
//! The paper's offline evaluation metric: *"We adopt the area under the
//! receiver operator curve (AUC) to evaluate the performance of all the
//! methods ... Larger AUC means better performance."* Computed exactly via
//! the rank-sum (Mann-Whitney) formulation with average ranks for tied
//! scores.

/// Computes AUC from prediction scores and binary labels.
///
/// Returns 0.5 when either class is absent (no ranking information).
///
/// NaN scores do not panic: ranks are assigned with [`f32::total_cmp`],
/// under which positive NaN orders above `+inf` (and negative NaN below
/// `-inf`). A diverged model that emits NaN therefore still gets a
/// deterministic, finite AUC report — typically a poor one, since its
/// NaN-scored items rank at the extremes — instead of crashing the
/// evaluation pipeline.
///
/// ```
/// use hignn_metrics::auc;
/// let perfect = auc(&[0.1, 0.9], &[false, true]);
/// assert_eq!(perfect, 1.0);
/// ```
///
/// # Panics
/// Panics if `scores` and `labels` differ in length.
pub fn auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "auc: length mismatch");
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    // Sort indices by score ascending. `total_cmp` gives a total order
    // over all f32 bit patterns (see the NaN policy in the doc comment);
    // for finite scores it agrees with `partial_cmp`, so non-degenerate
    // inputs rank exactly as before.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // Average ranks over tie groups; ranks are 1-based.
    let mut rank_sum_pos = 0f64;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if labels[idx] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let pos = pos as f64;
    let neg = neg as f64;
    (rank_sum_pos - pos * (pos + 1.0) / 2.0) / (pos * neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert!((auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [false, false, true, true];
        assert!(auc(&scores, &labels).abs() < 1e-12);
    }

    #[test]
    fn random_ties_give_half() {
        let scores = [0.5; 10];
        let labels = [true, false, true, false, true, false, true, false, true, false];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_is_half() {
        assert_eq!(auc(&[0.1, 0.9], &[true, true]), 0.5);
        assert_eq!(auc(&[0.1, 0.9], &[false, false]), 0.5);
        assert_eq!(auc(&[], &[]), 0.5);
    }

    #[test]
    fn partial_overlap() {
        // One inversion among 2x2 pairs: AUC = 3/4.
        let scores = [0.1, 0.3, 0.4, 0.9];
        let labels = [false, true, false, true];
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn tie_between_classes_counts_half() {
        // pos and neg share score 0.5: counts as half a concordant pair.
        let scores = [0.5, 0.5];
        let labels = [true, false];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nan_scores_do_not_panic() {
        // Pre-fix, the rank sort used partial_cmp().unwrap() and panicked
        // on the first NaN comparison. Policy: total_cmp ranks positive
        // NaN above +inf, so here the NaN-scored negative outranks the
        // positive and AUC is 0 — deterministic and finite.
        let scores = [0.9, f32::NAN];
        let labels = [true, false];
        let v = auc(&scores, &labels);
        assert!(v.is_finite());
        assert_eq!(v, 0.0);
        // All-NaN scores: one tie group per NaN, still finite.
        assert!(auc(&[f32::NAN, f32::NAN], &[true, false]).is_finite());
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10 {
            let n = 50;
            let scores: Vec<f32> =
                (0..n).map(|_| (rng.gen_range(0..10) as f32) / 10.0).collect();
            let labels: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.3)).collect();
            let fast = auc(&scores, &labels);
            // Brute force over all pos/neg pairs.
            let mut concordant = 0f64;
            let mut total = 0f64;
            for i in 0..n {
                for j in 0..n {
                    if labels[i] && !labels[j] {
                        total += 1.0;
                        if scores[i] > scores[j] {
                            concordant += 1.0;
                        } else if scores[i] == scores[j] {
                            concordant += 0.5;
                        }
                    }
                }
            }
            let brute = if total == 0.0 { 0.5 } else { concordant / total };
            assert!((fast - brute).abs() < 1e-9, "fast {fast} brute {brute}");
        }
    }
}
