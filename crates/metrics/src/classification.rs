//! Classification and ranking metrics beyond AUC.

/// Mean binary cross entropy (log loss) of probabilities against labels.
///
/// Probabilities are clamped to `[eps, 1 - eps]` with `eps = 1e-7`.
pub fn log_loss(probs: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(probs.len(), labels.len(), "log_loss: length mismatch");
    if probs.is_empty() {
        return 0.0;
    }
    let eps = 1e-7f64;
    let mut total = 0f64;
    for (&p, &l) in probs.iter().zip(labels) {
        let p = (p as f64).clamp(eps, 1.0 - eps);
        total -= if l { p.ln() } else { (1.0 - p).ln() };
    }
    total / probs.len() as f64
}

/// Accuracy at a decision threshold.
pub fn accuracy(probs: &[f32], labels: &[bool], threshold: f32) -> f64 {
    assert_eq!(probs.len(), labels.len(), "accuracy: length mismatch");
    if probs.is_empty() {
        return 0.0;
    }
    let correct = probs
        .iter()
        .zip(labels)
        .filter(|&(&p, &l)| (p >= threshold) == l)
        .count();
    correct as f64 / probs.len() as f64
}

/// Precision of the top-`k` scored items: the fraction of the `k` highest
/// scores whose labels are positive.
pub fn precision_at_k(scores: &[f32], labels: &[bool], k: usize) -> f64 {
    assert_eq!(scores.len(), labels.len(), "precision_at_k: length mismatch");
    let k = k.min(scores.len());
    if k == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    let hits = order[..k].iter().filter(|&&i| labels[i]).count();
    hits as f64 / k as f64
}

/// Recall of the top-`k`: fraction of all positives ranked in the top `k`.
pub fn recall_at_k(scores: &[f32], labels: &[bool], k: usize) -> f64 {
    assert_eq!(scores.len(), labels.len(), "recall_at_k: length mismatch");
    let positives = labels.iter().filter(|&&l| l).count();
    if positives == 0 {
        return 0.0;
    }
    let k = k.min(scores.len());
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    let hits = order[..k].iter().filter(|&&i| labels[i]).count();
    hits as f64 / positives as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_loss_perfect_and_bad() {
        let good = log_loss(&[0.99, 0.01], &[true, false]);
        let bad = log_loss(&[0.01, 0.99], &[true, false]);
        assert!(good < 0.05);
        assert!(bad > 3.0);
    }

    #[test]
    fn log_loss_handles_extremes() {
        let l = log_loss(&[1.0, 0.0], &[false, true]);
        assert!(l.is_finite());
    }

    #[test]
    fn accuracy_threshold() {
        let probs = [0.9, 0.2, 0.6, 0.4];
        let labels = [true, false, false, true];
        assert!((accuracy(&probs, &labels, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(accuracy(&[], &[], 0.5), 0.0);
    }

    #[test]
    fn precision_at_k_basic() {
        let scores = [0.9, 0.8, 0.7, 0.1];
        let labels = [true, false, true, true];
        assert!((precision_at_k(&scores, &labels, 2) - 0.5).abs() < 1e-12);
        assert!((precision_at_k(&scores, &labels, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(precision_at_k(&scores, &labels, 0), 0.0);
        // k larger than n clamps.
        assert!((precision_at_k(&scores, &labels, 10) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn recall_at_k_basic() {
        let scores = [0.9, 0.8, 0.7, 0.1];
        let labels = [true, false, true, true];
        assert!((recall_at_k(&scores, &labels, 1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((recall_at_k(&scores, &labels, 4) - 1.0).abs() < 1e-12);
        assert_eq!(recall_at_k(&scores, &[false; 4], 2), 0.0);
    }
}
