//! # hignn-metrics
//!
//! Evaluation layer for the HiGNN reproduction:
//!
//! * [`mod@auc`] — exact rank-based AUC, the paper's offline metric.
//! * [`classification`] — log loss, accuracy, precision/recall@k.
//! * [`taxonomy`] — the paper's taxonomy *accuracy* (expert-style sampled
//!   judgment against ground truth) and *diversity* (qualified-topic
//!   ratio), plus NMI as an extra diagnostic.
//! * [`ab`] — online A/B metrics (UV / CNT / CTR / CVR and lifts).

#![warn(missing_docs)]

pub mod ab;
pub mod auc;
pub mod classification;
pub mod taxonomy;

pub use ab::{lift_pct, AbComparison, ArmStats};
pub use auc::auc;
pub use classification::{accuracy, log_loss, precision_at_k, recall_at_k};
pub use taxonomy::{normalized_mutual_info, taxonomy_accuracy, taxonomy_diversity};
