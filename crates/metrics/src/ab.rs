//! Online A/B-testing metrics (paper Table IV).
//!
//! The paper reports four commercial metrics per arm and day:
//! *UV* (unique clicked visitors), *CNT* (transaction count),
//! *CTR* (clicks / visits), and *CVR* (transactions / clicks), plus the
//! relative improvement of the treatment arm.

use std::fmt;

/// Raw counters accumulated by one experiment arm.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ArmStats {
    /// Number of page/item visits (impressions).
    pub visits: u64,
    /// Number of clicks.
    pub clicks: u64,
    /// Number of distinct visitors who clicked at least once.
    pub unique_clicked_visitors: u64,
    /// Number of purchases (transactions).
    pub transactions: u64,
}

impl ArmStats {
    /// Click-through rate: clicks / visits.
    pub fn ctr(&self) -> f64 {
        if self.visits == 0 {
            0.0
        } else {
            self.clicks as f64 / self.visits as f64
        }
    }

    /// Conversion rate: transactions / clicks.
    pub fn cvr(&self) -> f64 {
        if self.clicks == 0 {
            0.0
        } else {
            self.transactions as f64 / self.clicks as f64
        }
    }
}

/// A control-vs-treatment comparison for one period (e.g. one day).
#[derive(Clone, Copy, Debug)]
pub struct AbComparison {
    /// The control arm's counters.
    pub control: ArmStats,
    /// The treatment arm's counters.
    pub treatment: ArmStats,
}

/// Relative improvement in percent (`(new - old) / old * 100`).
pub fn lift_pct(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (new - old) / old * 100.0
    }
}

impl AbComparison {
    /// UV lift in percent.
    pub fn uv_lift(&self) -> f64 {
        lift_pct(
            self.control.unique_clicked_visitors as f64,
            self.treatment.unique_clicked_visitors as f64,
        )
    }

    /// Transaction-count lift in percent.
    pub fn cnt_lift(&self) -> f64 {
        lift_pct(self.control.transactions as f64, self.treatment.transactions as f64)
    }

    /// CTR lift in percent.
    pub fn ctr_lift(&self) -> f64 {
        lift_pct(self.control.ctr(), self.treatment.ctr())
    }

    /// CVR lift in percent.
    pub fn cvr_lift(&self) -> f64 {
        lift_pct(self.control.cvr(), self.treatment.cvr())
    }
}

impl fmt::Display for AbComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "UV  {:>8} -> {:>8} ({:+.2}%)",
            self.control.unique_clicked_visitors,
            self.treatment.unique_clicked_visitors,
            self.uv_lift()
        )?;
        writeln!(
            f,
            "CNT {:>8} -> {:>8} ({:+.2}%)",
            self.control.transactions,
            self.treatment.transactions,
            self.cnt_lift()
        )?;
        writeln!(
            f,
            "CTR {:>8.4} -> {:>8.4} ({:+.2}%)",
            self.control.ctr(),
            self.treatment.ctr(),
            self.ctr_lift()
        )?;
        write!(
            f,
            "CVR {:>8.4} -> {:>8.4} ({:+.2}%)",
            self.control.cvr(),
            self.treatment.cvr(),
            self.cvr_lift()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let arm = ArmStats { visits: 1000, clicks: 350, unique_clicked_visitors: 300, transactions: 42 };
        assert!((arm.ctr() - 0.35).abs() < 1e-12);
        assert!((arm.cvr() - 0.12).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators() {
        let arm = ArmStats::default();
        assert_eq!(arm.ctr(), 0.0);
        assert_eq!(arm.cvr(), 0.0);
    }

    #[test]
    fn lifts_match_paper_style() {
        // Paper Table IV day 1: UV 43,514 -> 44,341 (+1.90%).
        let cmp = AbComparison {
            control: ArmStats {
                visits: 100_000,
                clicks: 35_690,
                unique_clicked_visitors: 43_514,
                transactions: 54_438,
            },
            treatment: ArmStats {
                visits: 100_000,
                clicks: 35_810,
                unique_clicked_visitors: 44_341,
                transactions: 55_940,
            },
        };
        assert!((cmp.uv_lift() - 1.90).abs() < 0.01);
        assert!((cmp.cnt_lift() - 2.76).abs() < 0.01);
        assert!((cmp.ctr_lift() - 0.34).abs() < 0.01);
    }

    #[test]
    fn lift_pct_zero_base() {
        assert_eq!(lift_pct(0.0, 5.0), 0.0);
        assert!((lift_pct(2.0, 3.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn display_renders_all_rows() {
        let cmp = AbComparison { control: ArmStats::default(), treatment: ArmStats::default() };
        let s = cmp.to_string();
        for key in ["UV", "CNT", "CTR", "CVR"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
