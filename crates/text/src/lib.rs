//! # hignn-text
//!
//! Text substrate for the HiGNN reproduction's taxonomy pipeline
//! (paper Section V): a tokeniser and frequency vocabulary ([`vocab`]),
//! from-scratch skip-gram word2vec with negative sampling ([`word2vec`])
//! used to embed queries and item titles into one latent space, and Okapi
//! BM25 ([`bm25`]) used by the topic-description concentration score
//! (Eq. 16).
//!
//! ## Example
//!
//! ```
//! use hignn_text::vocab::{tokenize, Vocab};
//! use hignn_text::bm25::Bm25Index;
//!
//! let docs: Vec<Vec<String>> = ["beach dress summer", "running shoes sport"]
//!     .iter().map(|t| tokenize(t)).collect();
//! let vocab = Vocab::build(docs.iter().map(|d| d.as_slice()), 1);
//! let encoded: Vec<Vec<u32>> = docs.iter().map(|d| vocab.encode(d)).collect();
//! let idx = Bm25Index::new(&encoded);
//! let query = vocab.encode_text("beach dress");
//! assert_eq!(idx.best_doc(&query).unwrap().0, 0);
//! ```

#![warn(missing_docs)]

pub mod bm25;
pub mod vocab;
pub mod word2vec;

pub use bm25::Bm25Index;
pub use vocab::{tokenize, Vocab};
pub use word2vec::{cosine, mean_embedding, train_word2vec, Word2VecConfig};
