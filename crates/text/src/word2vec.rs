//! Skip-gram word2vec with negative sampling (Mikolov et al., 2013).
//!
//! The paper (Section V.B): *"the original keywords and titles of both
//! queries and items ... are composed of texts, which allows us to exploit
//! the widely used natural language processing technique, word2vec, to
//! embed the original features of queries and items into the same latent
//! space."* This is a from-scratch SGNS implementation; document (query /
//! item title) embeddings are mean word vectors.

use hignn_graph::AliasTable;
use hignn_tensor::{stable_sigmoid, Matrix};
use rand::Rng;

/// Hyper-parameters for [`train_word2vec`].
#[derive(Clone, Debug)]
pub struct Word2VecConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 10% over training).
    pub lr: f32,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Word2VecConfig { dim: 32, window: 4, negative: 5, epochs: 3, lr: 0.025 }
    }
}

/// Trains SGNS embeddings over encoded sentences; returns the input
/// (centre-word) embedding matrix of shape `vocab_size x dim`.
///
/// `token_counts` drives the `count^0.75` negative-sampling distribution.
pub fn train_word2vec(
    sentences: &[Vec<u32>],
    token_counts: &[u64],
    cfg: &Word2VecConfig,
    rng: &mut impl Rng,
) -> Matrix {
    let vocab_size = token_counts.len();
    assert!(vocab_size > 0, "train_word2vec: empty vocabulary");
    let bound = 0.5 / cfg.dim as f32;
    let mut input = Matrix::from_fn(vocab_size, cfg.dim, |_, _| rng.gen_range(-bound..bound));
    let mut output = Matrix::zeros(vocab_size, cfg.dim);

    let neg_weights: Vec<f64> =
        token_counts.iter().map(|&c| (c as f64).powf(0.75).max(1e-6)).collect();
    let neg_table = AliasTable::new(&neg_weights);

    let total_pairs: usize = sentences.iter().map(|s| s.len() * 2 * cfg.window).sum();
    let total_steps = (total_pairs * cfg.epochs).max(1);
    let mut step = 0usize;
    let mut grad_in = vec![0f32; cfg.dim];

    for _ in 0..cfg.epochs {
        for sent in sentences {
            for (pos, &center) in sent.iter().enumerate() {
                let w = rng.gen_range(1..=cfg.window);
                let lo = pos.saturating_sub(w);
                let hi = (pos + w + 1).min(sent.len());
                for (ctx_pos, &ctx_tok) in sent.iter().enumerate().take(hi).skip(lo) {
                    if ctx_pos == pos {
                        continue;
                    }
                    let progress = step as f32 / total_steps as f32;
                    let lr = cfg.lr * (1.0 - 0.9 * progress.min(1.0));
                    step += 1;
                    let context = ctx_tok as usize;
                    grad_in.iter_mut().for_each(|g| *g = 0.0);
                    // Positive pair + negatives.
                    for neg_i in 0..=cfg.negative {
                        let (target, label) = if neg_i == 0 {
                            (context, 1.0f32)
                        } else {
                            let t = neg_table.sample(rng);
                            if t == context {
                                continue;
                            }
                            (t, 0.0)
                        };
                        let dot: f32 = input
                            .row(center as usize)
                            .iter()
                            .zip(output.row(target))
                            .map(|(a, b)| a * b)
                            .sum();
                        let g = (stable_sigmoid(dot) - label) * lr;
                        for (gi, &ov) in grad_in.iter_mut().zip(output.row(target)) {
                            *gi += g * ov;
                        }
                        let center_row: Vec<f32> = input.row(center as usize).to_vec();
                        for (ov, &cv) in output.row_mut(target).iter_mut().zip(&center_row) {
                            *ov -= g * cv;
                        }
                    }
                    for (iv, &gi) in input.row_mut(center as usize).iter_mut().zip(&grad_in) {
                        *iv -= gi;
                    }
                }
            }
        }
    }
    input
}

/// Mean word vector of a token sequence (zero vector when empty).
pub fn mean_embedding(tokens: &[u32], embeddings: &Matrix) -> Vec<f32> {
    let dim = embeddings.cols();
    let mut out = vec![0f32; dim];
    if tokens.is_empty() {
        return out;
    }
    for &t in tokens {
        for (o, &v) in out.iter_mut().zip(embeddings.row(t as usize)) {
            *o += v;
        }
    }
    let inv = 1.0 / tokens.len() as f32;
    out.iter_mut().for_each(|o| *o *= inv);
    out
}

/// Cosine similarity between two vectors (0 when either is zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a corpus with two disjoint topics; words within a topic
    /// co-occur, words across topics never do.
    fn topic_corpus(rng: &mut StdRng) -> (Vec<Vec<u32>>, Vec<u64>) {
        // Tokens 0..4 = topic A, 5..9 = topic B.
        let mut sentences = Vec::new();
        for _ in 0..300 {
            let topic = rng.gen_range(0..2u32);
            let base = topic * 5;
            let sent: Vec<u32> = (0..8).map(|_| base + rng.gen_range(0..5)).collect();
            sentences.push(sent);
        }
        let mut counts = vec![0u64; 10];
        for s in &sentences {
            for &t in s {
                counts[t as usize] += 1;
            }
        }
        (sentences, counts)
    }

    #[test]
    fn embeddings_separate_topics() {
        let mut rng = StdRng::seed_from_u64(1);
        let (sentences, counts) = topic_corpus(&mut rng);
        let cfg = Word2VecConfig { dim: 16, window: 3, negative: 5, epochs: 4, lr: 0.05 };
        let emb = train_word2vec(&sentences, &counts, &cfg, &mut rng);
        assert!(emb.all_finite());
        // Average within-topic similarity must beat cross-topic similarity.
        let mut within = 0f32;
        let mut across = 0f32;
        let mut nw = 0;
        let mut na = 0;
        for a in 0..10usize {
            for b in (a + 1)..10usize {
                let sim = cosine(emb.row(a), emb.row(b));
                if (a < 5) == (b < 5) {
                    within += sim;
                    nw += 1;
                } else {
                    across += sim;
                    na += 1;
                }
            }
        }
        let (within, across) = (within / nw as f32, across / na as f32);
        assert!(
            within > across + 0.2,
            "topics not separated: within {within} across {across}"
        );
    }

    #[test]
    fn mean_embedding_averages() {
        let emb = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(mean_embedding(&[0, 1], &emb), vec![0.5, 0.5]);
        assert_eq!(mean_embedding(&[], &emb), vec![0.0, 0.0]);
        assert_eq!(mean_embedding(&[1, 1], &emb), vec![0.0, 1.0]);
    }

    #[test]
    fn cosine_properties() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }
}
