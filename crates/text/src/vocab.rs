//! Tokenisation and vocabulary construction.
//!
//! Section V of the paper embeds queries and item titles with word2vec so
//! both sides of the query-item graph share one latent space. This module
//! provides the supporting text plumbing: a simple tokeniser and a
//! frequency-thresholded [`Vocab`].

use std::collections::HashMap;

/// Lower-cases and splits on any non-alphanumeric character, dropping
/// empty tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_owned)
        .collect()
}

/// A token vocabulary with frequency counts.
#[derive(Clone, Debug, Default)]
pub struct Vocab {
    token_to_id: HashMap<String, u32>,
    id_to_token: Vec<String>,
    counts: Vec<u64>,
}

impl Vocab {
    /// Builds a vocabulary from token streams, keeping tokens that occur
    /// at least `min_count` times. Ids are assigned in descending
    /// frequency order (ties broken lexicographically) so id 0 is the most
    /// frequent token.
    pub fn build<'a>(docs: impl IntoIterator<Item = &'a [String]>, min_count: u64) -> Self {
        let mut freq: HashMap<&str, u64> = HashMap::new();
        for doc in docs {
            for tok in doc {
                *freq.entry(tok.as_str()).or_insert(0) += 1;
            }
        }
        let mut entries: Vec<(&str, u64)> =
            freq.into_iter().filter(|&(_, c)| c >= min_count).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let mut vocab = Vocab::default();
        for (tok, c) in entries {
            let id = vocab.id_to_token.len() as u32;
            vocab.token_to_id.insert(tok.to_owned(), id);
            vocab.id_to_token.push(tok.to_owned());
            vocab.counts.push(c);
        }
        vocab
    }

    /// Token id, if the token is in the vocabulary.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.token_to_id.get(token).copied()
    }

    /// The token string for `id`.
    pub fn token(&self, id: u32) -> &str {
        &self.id_to_token[id as usize]
    }

    /// Occurrence count of token `id`.
    pub fn count(&self, id: u32) -> u64 {
        self.counts[id as usize]
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True when the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// Encodes a token sequence, dropping out-of-vocabulary tokens.
    pub fn encode(&self, tokens: &[String]) -> Vec<u32> {
        tokens.iter().filter_map(|t| self.id(t)).collect()
    }

    /// Encodes raw text via [`tokenize`].
    pub fn encode_text(&self, text: &str) -> Vec<u32> {
        self.encode(&tokenize(text))
    }

    /// All occurrence counts (indexed by token id).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(tokenize("Beach-Dress, 100% cotton!"), vec!["beach", "dress", "100", "cotton"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("   "), Vec::<String>::new());
    }

    fn docs(texts: &[&str]) -> Vec<Vec<String>> {
        texts.iter().map(|t| tokenize(t)).collect()
    }

    #[test]
    fn build_orders_by_frequency() {
        let d = docs(&["a a a b b c", "a b"]);
        let v = Vocab::build(d.iter().map(|d| d.as_slice()), 1);
        assert_eq!(v.len(), 3);
        assert_eq!(v.token(0), "a");
        assert_eq!(v.count(0), 4);
        assert_eq!(v.token(1), "b");
        assert_eq!(v.token(2), "c");
    }

    #[test]
    fn min_count_filters() {
        let d = docs(&["rare common common"]);
        let v = Vocab::build(d.iter().map(|d| d.as_slice()), 2);
        assert_eq!(v.len(), 1);
        assert!(v.id("rare").is_none());
        assert!(v.id("common").is_some());
    }

    #[test]
    fn encode_drops_oov() {
        let d = docs(&["x y"]);
        let v = Vocab::build(d.iter().map(|d| d.as_slice()), 1);
        let ids = v.encode_text("x unknown y");
        assert_eq!(ids.len(), 2);
        assert_eq!(v.token(ids[0]), "x");
        assert_eq!(v.token(ids[1]), "y");
    }

    #[test]
    fn frequency_ties_broken_lexicographically() {
        let d = docs(&["beta alpha"]);
        let v = Vocab::build(d.iter().map(|d| d.as_slice()), 1);
        assert_eq!(v.token(0), "alpha");
        assert_eq!(v.token(1), "beta");
    }
}
