//! Okapi BM25 relevance scoring.
//!
//! The topic-description concentration score (paper Eq. 16) uses
//! `rel(q, D_k)`, *"the BM25 relevance"* between a query and the
//! concatenated titles of all items in topic `k`. [`Bm25Index`] indexes a
//! fixed document collection (one document per topic) and scores encoded
//! queries against any document.

use std::collections::HashMap;

/// A BM25 index over a fixed set of documents.
#[derive(Clone, Debug)]
pub struct Bm25Index {
    /// Per-document term frequencies.
    term_freqs: Vec<HashMap<u32, u32>>,
    /// Document lengths in tokens.
    doc_lens: Vec<usize>,
    /// Document frequency per term.
    doc_freq: HashMap<u32, u32>,
    avg_len: f64,
    k1: f64,
    b: f64,
}

impl Bm25Index {
    /// Builds an index with the standard parameters `k1 = 1.2`, `b = 0.75`.
    pub fn new(docs: &[Vec<u32>]) -> Self {
        Self::with_params(docs, 1.2, 0.75)
    }

    /// Builds an index with explicit BM25 parameters.
    pub fn with_params(docs: &[Vec<u32>], k1: f64, b: f64) -> Self {
        let mut term_freqs = Vec::with_capacity(docs.len());
        let mut doc_freq: HashMap<u32, u32> = HashMap::new();
        let mut doc_lens = Vec::with_capacity(docs.len());
        for doc in docs {
            let mut tf: HashMap<u32, u32> = HashMap::new();
            for &t in doc {
                *tf.entry(t).or_insert(0) += 1;
            }
            for &t in tf.keys() {
                *doc_freq.entry(t).or_insert(0) += 1;
            }
            doc_lens.push(doc.len());
            term_freqs.push(tf);
        }
        let avg_len = if docs.is_empty() {
            0.0
        } else {
            doc_lens.iter().sum::<usize>() as f64 / docs.len() as f64
        };
        Bm25Index { term_freqs, doc_lens, doc_freq, avg_len, k1, b }
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.term_freqs.len()
    }

    /// BM25 score of `query` against document `doc_id`.
    ///
    /// Uses the non-negative IDF variant
    /// `ln(1 + (N - df + 0.5) / (df + 0.5))`.
    pub fn score(&self, query: &[u32], doc_id: usize) -> f64 {
        let n = self.num_docs() as f64;
        let tf_map = &self.term_freqs[doc_id];
        let dl = self.doc_lens[doc_id] as f64;
        let norm = self.k1 * (1.0 - self.b + self.b * dl / self.avg_len.max(1e-12));
        let mut score = 0.0;
        for &t in query {
            let Some(&tf) = tf_map.get(&t) else { continue };
            let df = *self.doc_freq.get(&t).unwrap_or(&0) as f64;
            let idf = (1.0 + (n - df + 0.5) / (df + 0.5)).ln();
            let tf = tf as f64;
            score += idf * tf * (self.k1 + 1.0) / (tf + norm);
        }
        score
    }

    /// Scores `query` against every document.
    pub fn score_all(&self, query: &[u32]) -> Vec<f64> {
        (0..self.num_docs()).map(|d| self.score(query, d)).collect()
    }

    /// The document with the highest score for `query` (`None` when the
    /// index is empty).
    ///
    /// Scores are compared with [`f64::total_cmp`], so a NaN score
    /// (reachable only with pathological `k1`/`b` parameters) cannot
    /// panic the comparison: positive NaN orders above every finite
    /// score and is selected deterministically. Exact ties keep the
    /// later (highest-id) document, unchanged from before.
    pub fn best_doc(&self, query: &[u32]) -> Option<(usize, f64)> {
        (0..self.num_docs())
            .map(|d| (d, self.score(query, d)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Documents over a tiny integer vocabulary.
    fn docs() -> Vec<Vec<u32>> {
        vec![
            vec![0, 0, 1, 2],       // doc 0: mostly term 0
            vec![3, 3, 3, 4],       // doc 1: mostly term 3
            vec![0, 3, 5, 5, 5, 5], // doc 2: term 5 heavy
        ]
    }

    #[test]
    fn relevant_doc_scores_highest() {
        let idx = Bm25Index::new(&docs());
        let (best, score) = idx.best_doc(&[3]).unwrap();
        assert_eq!(best, 1);
        assert!(score > 0.0);
        assert_eq!(idx.best_doc(&[5, 5]).unwrap().0, 2);
    }

    #[test]
    fn rare_terms_weigh_more() {
        let idx = Bm25Index::new(&docs());
        // Term 1 appears in one doc, term 0 in two: same tf=1 in doc 0,
        // but term 1 has higher idf.
        let s_rare = idx.score(&[1], 0);
        let s_common = idx.score(&[0], 2); // tf=1 occurrence of term 0 in doc 2
        assert!(s_rare > s_common, "rare {s_rare} vs common {s_common}");
    }

    #[test]
    fn missing_terms_score_zero() {
        let idx = Bm25Index::new(&docs());
        assert_eq!(idx.score(&[99], 0), 0.0);
        assert_eq!(idx.score(&[], 1), 0.0);
    }

    #[test]
    fn score_all_covers_every_doc() {
        let idx = Bm25Index::new(&docs());
        let scores = idx.score_all(&[0]);
        assert_eq!(scores.len(), 3);
        assert!(scores[0] > scores[1]); // doc 1 lacks term 0
    }

    #[test]
    fn empty_index() {
        let idx = Bm25Index::new(&[]);
        assert_eq!(idx.num_docs(), 0);
        assert!(idx.best_doc(&[1]).is_none());
    }

    #[test]
    fn degenerate_queries_never_panic() {
        let idx = Bm25Index::new(&docs());
        // Empty query: every document scores 0.0; ties resolve to the
        // last document, exactly as with the old comparator.
        assert_eq!(idx.best_doc(&[]), Some((2, 0.0)));
        // Query of only unseen (zero-tf) terms behaves the same.
        assert_eq!(idx.best_doc(&[99, 100]), Some((2, 0.0)));
        // Index over empty documents, empty query.
        let empty_docs = Bm25Index::new(&[vec![], vec![]]);
        assert_eq!(empty_docs.best_doc(&[]), Some((1, 0.0)));
    }

    #[test]
    fn nan_scores_resolve_deterministically() {
        // k1 = -1 makes `(k1 + 1) / (tf + norm)` a 0/0 for a tf=1 term in
        // a doc where tf + norm == 0 — a real NaN through the public API.
        // Pre-fix, best_doc's partial_cmp().unwrap() panicked on it.
        let d = vec![vec![7], vec![8]];
        let idx = Bm25Index::with_params(&d, -1.0, 0.0);
        let nan = idx.score(&[7], 0);
        assert!(nan.is_nan());
        // The NaN's sign bit (and hence its total_cmp rank) is
        // platform-defined for 0/0, so derive the expectation from the
        // same total order best_doc uses.
        let (best, score) = idx.best_doc(&[7]).unwrap();
        if nan.total_cmp(&0.0).is_gt() {
            assert_eq!(best, 0);
            assert!(score.is_nan());
        } else {
            assert_eq!(best, 1);
            assert_eq!(score, 0.0);
        }
    }

    #[test]
    fn length_normalisation_penalises_long_docs() {
        // Same tf of the query term; longer doc should score lower.
        let d = vec![vec![7, 1, 2], vec![7, 1, 2, 3, 4, 5, 6, 8, 9, 10]];
        let idx = Bm25Index::new(&d);
        assert!(idx.score(&[7], 0) > idx.score(&[7], 1));
    }
}
