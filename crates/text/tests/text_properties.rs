//! Property-based tests for the text substrate.

use hignn_text::vocab::{tokenize, Vocab};
use hignn_text::{cosine, mean_embedding, Bm25Index};
use hignn_tensor::Matrix;
use proptest::prelude::*;

fn word_strategy() -> impl Strategy<Value = String> {
    "[a-z]{1,6}"
}

fn docs_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    prop::collection::vec(prop::collection::vec(word_strategy(), 1..8), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tokenize_output_is_lowercase_alphanumeric(s in ".{0,40}") {
        for tok in tokenize(&s) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(|c| c.is_alphanumeric()));
            // Some Unicode letters (e.g. U+1D434) have no lowercase
            // mapping; the guarantee is over ASCII.
            prop_assert!(tok.chars().all(|c| !c.is_ascii_uppercase()));
        }
    }

    #[test]
    fn vocab_ids_are_dense_and_sorted_by_frequency(docs in docs_strategy()) {
        let v = Vocab::build(docs.iter().map(|d| d.as_slice()), 1);
        // Ids cover 0..len and counts are non-increasing.
        for id in 0..v.len() as u32 {
            let tok = v.token(id);
            prop_assert_eq!(v.id(tok), Some(id));
        }
        for id in 1..v.len() as u32 {
            prop_assert!(v.count(id - 1) >= v.count(id));
        }
    }

    #[test]
    fn encode_respects_vocabulary(docs in docs_strategy()) {
        let v = Vocab::build(docs.iter().map(|d| d.as_slice()), 1);
        for doc in &docs {
            let ids = v.encode(doc);
            prop_assert_eq!(ids.len(), doc.len()); // min_count 1 keeps everything
            for (&id, tok) in ids.iter().zip(doc) {
                prop_assert_eq!(v.token(id), tok.as_str());
            }
        }
    }

    #[test]
    fn bm25_is_additive_over_query_terms(
        docs in prop::collection::vec(prop::collection::vec(0u32..30, 1..20), 2..6),
        q1 in 0u32..30,
        q2 in 0u32..30,
    ) {
        let idx = Bm25Index::new(&docs);
        for d in 0..docs.len() {
            let joint = idx.score(&[q1, q2], d);
            let split = idx.score(&[q1], d) + idx.score(&[q2], d);
            prop_assert!((joint - split).abs() < 1e-9);
        }
    }

    #[test]
    fn bm25_scores_are_nonnegative(
        docs in prop::collection::vec(prop::collection::vec(0u32..30, 1..20), 1..6),
        query in prop::collection::vec(0u32..40, 0..6),
    ) {
        let idx = Bm25Index::new(&docs);
        for s in idx.score_all(&query) {
            prop_assert!(s >= 0.0 && s.is_finite());
        }
    }

    #[test]
    fn mean_embedding_is_convex_combination(tokens in prop::collection::vec(0u32..5, 1..10)) {
        let emb = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f32);
        let m = mean_embedding(&tokens, &emb);
        // Each coordinate lies within the min/max of the participating rows.
        for (c, &val) in m.iter().enumerate() {
            let lo = tokens.iter().map(|&t| emb.get(t as usize, c)).fold(f32::MAX, f32::min);
            let hi = tokens.iter().map(|&t| emb.get(t as usize, c)).fold(f32::MIN, f32::max);
            prop_assert!(val >= lo - 1e-5 && val <= hi + 1e-5);
        }
    }

    #[test]
    fn cosine_is_bounded_and_symmetric(
        a in prop::collection::vec(-5.0f32..5.0, 4),
        b in prop::collection::vec(-5.0f32..5.0, 4),
    ) {
        let ab = cosine(&a, &b);
        let ba = cosine(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&ab));
        // Scale invariance.
        let a2: Vec<f32> = a.iter().map(|x| x * 2.0).collect();
        prop_assert!((cosine(&a2, &b) - ab).abs() < 1e-4);
    }
}
