//! Minimal flag parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag`
/// options.
#[derive(Clone, Debug, Default)]
pub struct Opts {
    /// The subcommand (first non-flag argument).
    pub command: String,
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Opts {
    /// Parses an argument iterator (excluding the program name).
    ///
    /// Every `--key` followed by a non-`--` token is a valued option;
    /// `--key` followed by another option (or the end) is a boolean flag.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Opts, String> {
        let mut out = Opts::default();
        let mut it = args.into_iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty option name".into());
                }
                match it.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = it.next().unwrap();
                        if out.values.insert(key.to_string(), value).is_some() {
                            return Err(format!("--{key} given twice"));
                        }
                    }
                    _ => out.flags.push(key.to_string()),
                }
            } else if out.command.is_empty() {
                out.command = arg;
            } else {
                return Err(format!("unexpected positional argument `{arg}`"));
            }
        }
        Ok(out)
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// An optional parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse `{v}`")),
        }
    }

    /// True when the boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Rejects any option or flag not in `allowed`, so a typo'd flag
    /// fails loudly instead of being silently ignored.
    pub fn assert_known(&self, allowed: &[&str]) -> Result<(), String> {
        let given = self.values.keys().map(String::as_str).chain(self.flags.iter().map(String::as_str));
        for key in given {
            if !allowed.contains(&key) {
                return Err(format!("unknown option --{key} (try `hignn help`)"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        Opts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_values_and_flags() {
        let o = parse(&["train", "--edges", "e.tsv", "--levels", "3", "--quiet"]).unwrap();
        assert_eq!(o.command, "train");
        assert_eq!(o.require("edges").unwrap(), "e.tsv");
        assert_eq!(o.get_or::<usize>("levels", 1).unwrap(), 3);
        assert!(o.flag("quiet"));
        assert!(!o.flag("verbose"));
    }

    #[test]
    fn defaults_and_errors() {
        let o = parse(&["stats"]).unwrap();
        assert_eq!(o.get_or::<f64>("alpha", 5.0).unwrap(), 5.0);
        assert!(o.require("edges").is_err());
        assert!(parse(&["x", "--k", "1", "--k", "2"]).is_err());
        assert!(parse(&["x", "stray", "positional"]).is_err());
    }

    #[test]
    fn unknown_options_are_rejected() {
        let o = parse(&["train", "--edges", "e.tsv", "--levles", "3"]).unwrap();
        let err = o.assert_known(&["edges", "levels"]).unwrap_err();
        assert!(err.contains("levles"), "{err}");
        assert!(o.assert_known(&["edges", "levles"]).is_ok());
    }

    #[test]
    fn bad_parse_reports_key() {
        let o = parse(&["x", "--levels", "abc"]).unwrap();
        let err = o.get_or::<usize>("levels", 1).unwrap_err();
        assert!(err.contains("levels"), "{err}");
    }
}
