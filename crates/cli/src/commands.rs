//! The `hignn` subcommands.

use crate::opts::Opts;
use hignn::io::{load_hierarchy, save_hierarchy};
use hignn::prelude::*;
use hignn_graph::edgelist::read_edge_list;
use hignn_graph::GraphStats;
use hignn_tensor::serialize::write_matrix;
use hignn_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::io::{BufWriter, Write};

/// Usage text printed by `hignn help`.
pub const USAGE: &str = "\
hignn — Hierarchical Bipartite Graph Neural Networks (ICDE 2020)

USAGE:
  hignn stats    --edges FILE
  hignn train    --edges FILE --out MODEL [--levels 3] [--alpha 5]
                 [--dim 32] [--epochs 4] [--seed 0] [--no-normalize]
  hignn info     --model MODEL
  hignn embed    --model MODEL --side user|item --out FILE.hgmx
  hignn generate --out FILE [--kind taobao1|taobao2] [--scale 0.5] [--seed 0]
  hignn help

FORMATS:
  edges  : text lines `left right [weight]` (tab/space/comma separated,
           `#` comments); vertex ids are compacted to dense ranges
  MODEL  : binary hierarchy (hignn::io)
  .hgmx  : binary matrix (hignn_tensor::serialize)
";

/// Runs a parsed command, writing human output to `out`. Returns an
/// error message on failure (the binary maps it to exit code 1).
pub fn run(opts: &Opts, out: &mut dyn Write) -> Result<(), String> {
    match opts.command.as_str() {
        "stats" => stats(opts, out),
        "train" => train(opts, out),
        "info" => info(opts, out),
        "embed" => embed(opts, out),
        "generate" => generate(opts, out),
        "help" | "" => {
            let _ = writeln!(out, "{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `hignn help`)")),
    }
}

fn emit(out: &mut dyn Write, text: String) {
    let _ = writeln!(out, "{text}");
}

fn load_edges(opts: &Opts) -> Result<hignn_graph::edgelist::ParsedEdgeList, String> {
    let path = opts.require("edges")?;
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    read_edge_list(file).map_err(|e| format!("{path}: {e}"))
}

fn stats(opts: &Opts, out: &mut dyn Write) -> Result<(), String> {
    let parsed = load_edges(opts)?;
    emit(out, GraphStats::compute(&parsed.graph).to_string());
    Ok(())
}

fn train(opts: &Opts, out: &mut dyn Write) -> Result<(), String> {
    let parsed = load_edges(opts)?;
    let model_path = opts.require("out")?.to_string();
    let levels: usize = opts.get_or("levels", 3)?;
    let alpha: f64 = opts.get_or("alpha", 5.0)?;
    let dim: usize = opts.get_or("dim", 32)?;
    let epochs: usize = opts.get_or("epochs", 4)?;
    let seed: u64 = opts.get_or("seed", 0)?;
    let g = &parsed.graph;
    emit(
        out,
        format!(
            "training HiGNN: {} x {} vertices, {} edges, L = {levels}, alpha = {alpha}",
            g.num_left(),
            g.num_right(),
            g.num_edges()
        ),
    );
    // Text edge lists carry no vertex features; use trainable random
    // tables (the featureless-graph treatment, see DESIGN.md §6).
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCE1);
    let scale = 1.0 / (dim as f32).sqrt();
    let uf = init::normal(g.num_left(), dim, scale, &mut rng);
    let if_ = init::normal(g.num_right(), dim, scale, &mut rng);
    let cfg = HignnConfig {
        levels,
        sage: BipartiteSageConfig { input_dim: dim, dim, ..Default::default() },
        train: SageTrainConfig { epochs, trainable_features: true, ..Default::default() },
        cluster_counts: ClusterCounts::AlphaDecay { alpha },
        kmeans: KMeansAlgo::Lloyd,
        normalize: !opts.flag("no-normalize"),
        seed,
    };
    let hierarchy = build_hierarchy(g, &uf, &if_, &cfg);
    for (l, level) in hierarchy.levels().iter().enumerate() {
        emit(
            out,
            format!(
                "level {}: {} -> {} user clusters, {} -> {} item clusters, loss {:.4}",
                l + 1,
                level.user_embeddings.rows(),
                level.user_assignment.num_clusters(),
                level.item_embeddings.rows(),
                level.item_assignment.num_clusters(),
                level.epoch_losses.last().copied().unwrap_or(f32::NAN)
            ),
        );
    }
    save_hierarchy(&model_path, &hierarchy).map_err(|e| format!("{model_path}: {e}"))?;
    emit(out, format!("saved model to {model_path}"));
    Ok(())
}

fn info(opts: &Opts, out: &mut dyn Write) -> Result<(), String> {
    let path = opts.require("model")?;
    let h = load_hierarchy(path).map_err(|e| format!("{path}: {e}"))?;
    emit(
        out,
        format!(
            "hierarchy: {} levels | {} users (dim {}) | {} items (dim {})",
            h.num_levels(),
            h.num_users(),
            h.user_dim(),
            h.num_items(),
            h.item_dim()
        ),
    );
    for (l, level) in h.levels().iter().enumerate() {
        emit(
            out,
            format!(
                "  level {}: {} user clusters, {} item clusters, coarsened graph {} edges",
                l + 1,
                level.user_assignment.num_clusters(),
                level.item_assignment.num_clusters(),
                level.coarsened.num_edges()
            ),
        );
    }
    Ok(())
}

fn embed(opts: &Opts, out: &mut dyn Write) -> Result<(), String> {
    let path = opts.require("model")?;
    let side = opts.require("side")?.to_string();
    let out_path = opts.require("out")?.to_string();
    let h = load_hierarchy(path).map_err(|e| format!("{path}: {e}"))?;
    let matrix: Matrix = match side.as_str() {
        "user" => h.hierarchical_users(),
        "item" => h.hierarchical_items(),
        other => return Err(format!("--side must be `user` or `item`, got `{other}`")),
    };
    let file = File::create(&out_path).map_err(|e| format!("{out_path}: {e}"))?;
    let mut w = BufWriter::new(file);
    write_matrix(&mut w, &matrix).map_err(|e| format!("{out_path}: {e}"))?;
    emit(
        out,
        format!("wrote {} {}x{} hierarchical embeddings to {out_path}", side, matrix.rows(), matrix.cols()),
    );
    Ok(())
}

fn generate(opts: &Opts, out: &mut dyn Write) -> Result<(), String> {
    use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
    use hignn_graph::edgelist::write_edge_list;
    let out_path = opts.require("out")?.to_string();
    let kind = opts.get("kind").unwrap_or("taobao1");
    let scale: f64 = opts.get_or("scale", 0.5)?;
    let seed: u64 = opts.get_or("seed", 0)?;
    let cfg = match kind {
        "taobao1" => TaobaoConfig { seed, ..TaobaoConfig::taobao1(scale) },
        "taobao2" => TaobaoConfig { seed, ..TaobaoConfig::taobao2(scale) },
        other => return Err(format!("--kind must be taobao1 or taobao2, got `{other}`")),
    };
    let ds = generate_taobao(&cfg);
    let file = File::create(&out_path).map_err(|e| format!("{out_path}: {e}"))?;
    let mut w = BufWriter::new(file);
    write_edge_list(&mut w, &ds.graph).map_err(|e| format!("{out_path}: {e}"))?;
    emit(
        out,
        format!(
            "wrote {} edges ({} users x {} items, {kind}, scale {scale}) to {out_path}",
            ds.graph.num_edges(),
            ds.num_users(),
            ds.num_items()
        ),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::Opts;

    fn run_args(args: &[&str]) -> (Result<(), String>, String) {
        let opts = Opts::parse(args.iter().map(|s| s.to_string())).unwrap();
        let mut buf = Vec::new();
        let result = run(&opts, &mut buf);
        (result, String::from_utf8(buf).unwrap())
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hignn_cli_test_{}_{name}", std::process::id()))
    }

    #[test]
    fn help_prints_usage() {
        let (res, text) = run_args(&["help"]);
        assert!(res.is_ok());
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let (res, _) = run_args(&["bogus"]);
        assert!(res.unwrap_err().contains("bogus"));
    }

    #[test]
    fn generate_stats_train_info_embed_roundtrip() {
        let edges = temp_path("edges.tsv");
        let model = temp_path("model.hgh");
        let emb = temp_path("users.hgmx");
        let edges_s = edges.to_str().unwrap();
        let model_s = model.to_str().unwrap();
        let emb_s = emb.to_str().unwrap();

        // generate
        let (res, text) =
            run_args(&["generate", "--out", edges_s, "--kind", "taobao2", "--scale", "0.05", "--seed", "4"]);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("wrote"));

        // stats
        let (res, text) = run_args(&["stats", "--edges", edges_s]);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("density"));

        // train (tiny settings)
        let (res, text) = run_args(&[
            "train", "--edges", edges_s, "--out", model_s, "--levels", "2", "--dim", "8",
            "--epochs", "1", "--alpha", "6",
        ]);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("saved model"));

        // info
        let (res, text) = run_args(&["info", "--model", model_s]);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("hierarchy: 2 levels"), "{text}");

        // embed
        let (res, text) = run_args(&["embed", "--model", model_s, "--side", "user", "--out", emb_s]);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("hierarchical embeddings"));
        // The written matrix parses back.
        let m = hignn_tensor::serialize::read_matrix(
            &mut std::io::BufReader::new(File::open(&emb).unwrap()),
        )
        .unwrap();
        assert_eq!(m.cols(), 16); // 2 levels x dim 8

        for p in [edges, model, emb] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn embed_rejects_bad_side() {
        let (res, _) = run_args(&["embed", "--model", "nope.hgh", "--side", "user", "--out", "x"]);
        assert!(res.is_err()); // missing model file
        let model = temp_path("side_model.hgh");
        let edges = temp_path("side_edges.tsv");
        let (r1, _) = run_args(&["generate", "--out", edges.to_str().unwrap(), "--scale", "0.05"]);
        assert!(r1.is_ok());
        let (r2, _) = run_args(&[
            "train", "--edges", edges.to_str().unwrap(), "--out", model.to_str().unwrap(),
            "--levels", "1", "--dim", "4", "--epochs", "1",
        ]);
        assert!(r2.is_ok());
        let (res, _) = run_args(&[
            "embed", "--model", model.to_str().unwrap(), "--side", "sideways", "--out", "x",
        ]);
        assert!(res.unwrap_err().contains("sideways"));
        let _ = std::fs::remove_file(model);
        let _ = std::fs::remove_file(edges);
    }

    #[test]
    fn stats_reports_missing_file() {
        let (res, _) = run_args(&["stats", "--edges", "/nonexistent/x.tsv"]);
        assert!(res.is_err());
    }
}
