//! The `hignn` subcommands.
//!
//! Every failure surfaces as a [`HignnError`], which the binary maps to
//! a distinct exit code: 2 usage/config, 3 I/O, 4 corruption, 5
//! divergence, 6 injected fault (`main.rs`).

use crate::opts::Opts;
use hignn::checkpoint::CheckpointStore;
use hignn::io::{load_hierarchy, save_hierarchy};
use hignn::prelude::*;
use hignn::stack::GuardPolicy;
use hignn_graph::edgelist::{read_edge_list_with, LinePolicy, ParsedEdgeList};
use hignn_graph::GraphStats;
use hignn_serve::{
    latency_sweep, recall_sweep, BeamWidth, ServeModel, TopKRequest, DEFAULT_BEAM_WIDTH,
    DEFAULT_SCORER_SEED, DEFAULT_TOP_K,
};
use hignn_tensor::serialize::write_matrix;
use hignn_tensor::{init, MathMode, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::io::{BufWriter, Write};

/// Usage text printed by `hignn help`.
pub const USAGE: &str = "\
hignn — Hierarchical Bipartite Graph Neural Networks (ICDE 2020)

USAGE:
  hignn stats    --edges FILE [--lenient]
  hignn train    --edges FILE --out MODEL [--levels 3] [--alpha 5]
                 [--dim 32] [--epochs 4] [--seed 0] [--no-normalize]
                 [--objective edge|contrastive|cluster]
                 [--math bitwise|fast]
                 [--threads N] [--checkpoint DIR | --resume DIR]
                 [--on-divergence abort|rollback|off] [--lenient]
                 [--deadline-secs N] [--max-retries N]
                 [--metrics FILE.json] [--log-format plain|json]
  hignn info     --model MODEL
  hignn embed    --model MODEL --side user|item --out FILE.hgmx
  hignn generate --out FILE [--kind taobao1|taobao2] [--scale 0.5] [--seed 0]
  hignn topk     --model MODEL --user U [--topk 10] [--beam-width 16]
                 [--scorer-seed 2020] [--math bitwise|fast]
  hignn serve-bench --model MODEL [--topk 10] [--beam-width 16]
                 [--serve-threads N] [--requests 256] [--scorer-seed 2020]
                 [--math bitwise|fast]
  hignn ingest   --model MODEL --base-edges FILE --new-edges FILE
                 --out-model MODEL2 --out-delta DELTA
                 [--drift-threshold 0.05] [--no-normalize] [--lenient]
  hignn apply-delta --model MODEL --delta DELTA --out MODEL2
  hignn help

OBJECTIVES:
  --objective selects the per-level unsupervised loss: `edge` (the
  paper's Eq. 5 edge reconstruction, default), `contrastive` (InfoNCE
  cross-level alignment), or `cluster` (edge reconstruction plus a
  centroid-tightening penalty). The objective is recorded in checkpoint
  metadata, so --resume refuses to continue under a different one.

MATH TIERS:
  --math selects the numeric contract (DESIGN.md §14): `bitwise` (the
  default; every kernel is bit-identical to the naive scalar oracle) or
  `fast` (SIMD kernels that may reorder within-row accumulation;
  verified against an f64 oracle within stated tolerances). Both tiers
  are deterministic — reruns and any thread count reproduce the same
  bits within a tier. The tier is recorded in checkpoint metadata, so
  --resume refuses to continue under a different one (exit 2).

THREADS:
  --threads N trains, infers, and clusters on N worker threads
  (default: all available cores). The thread count never changes the
  result — any N produces a bit-identical model, and a checkpoint
  written at one thread count resumes at any other.

CRASH RECOVERY:
  --checkpoint DIR persists each completed level atomically; after a
  crash, rerun the same command with --resume DIR to continue from the
  last durable level. The resumed model is identical to an
  uninterrupted run. Checkpoints are CRC-checked and fingerprinted
  against the training inputs.

SUPERVISED EXECUTION:
  A worker panic never loses the run: the failed shard is re-executed
  deterministically (bitwise-identical result). Transient I/O errors at
  the durable write sites retry with exponential backoff; --max-retries N
  sets the budget (default 3). --deadline-secs N arms a watchdog that,
  when the build exceeds N seconds at an epoch or level boundary,
  checkpoints-and-aborts with exit code 7 instead of hanging — rerun
  with --resume to continue byte-identically.

OBSERVABILITY:
  --metrics FILE.json writes a schema-stable JSON run report
  (hignn-metrics/v1): counters, gauges, per-level phase span timings,
  per-epoch loss series, minibatch loss/grad-norm/latency histograms,
  and workspace buffer-pool stats. --log-format plain|json emits
  progress heartbeats and per-level events on stderr (stdout stays
  clean). Both are inert: enabling them never changes a bit of the
  trained model. Counter totals ride inside checkpoint metadata, so a
  resumed run continues its counters instead of restarting at zero.

SERVING:
  `topk` answers one recommendation request by coarse-to-fine beam
  search over the trained cluster tree: level-L cluster representatives
  are scored first, the best --beam-width branches descend, and the
  surviving leaves are re-ranked exactly (Eq. 7 MLP). --beam-width inf
  prunes nothing and is bitwise identical to exhaustively scoring every
  item. The Eq. 7 head is derived deterministically from --scorer-seed,
  so (model, seed) fully determines every ranking. `serve-bench` replays
  --requests requests through the engine on --serve-threads workers
  (default: all cores; any N is bitwise identical to 1) and reports
  p50/p99 latency, QPS, and recall@k against the exhaustive oracle.

STREAMING (DESIGN.md §15):
  `ingest` appends a batch of new interactions (which may introduce new
  users and items — ids unseen in --base-edges declare new vertices) to
  a trained model without retraining: new vertices get inductive
  level-1 embeddings (weighted neighbour means), stream through the
  single-pass K-means to join existing clusters, and clusters whose
  centroid drifted past --drift-threshold are re-coarsened bounded to
  their own members. The patched model is written to --out-model and a
  CRC-framed HGHD delta to --out-delta. `apply-delta` replays such a
  delta onto a replica's copy of the *base* model, producing the
  identical patched model byte for byte; a delta applied to the wrong
  base, or applied twice, is refused (fingerprint check, exit 4).
  --no-normalize must match how the model was trained.

EXIT CODES:
  0 ok | 2 usage/config | 3 I/O | 4 corrupt data | 5 diverged
  6 injected fault | 7 deadline exceeded (checkpointed; resumable)

FORMATS:
  edges  : text lines `left right [weight]` (tab/space/comma separated,
           `#` comments); vertex ids are compacted to dense ranges
  MODEL  : binary hierarchy (hignn::io, CRC-checked v2; reads v1 too)
  .hgmx  : binary matrix (hignn_tensor::serialize)
";

/// Runs a parsed command, writing human output to `out`. The binary
/// maps the error's [`HignnError::exit_code`] to the process status.
pub fn run(opts: &Opts, out: &mut dyn Write) -> Result<(), HignnError> {
    match opts.command.as_str() {
        "stats" => stats(opts, out),
        "train" => train(opts, out),
        "info" => info(opts, out),
        "embed" => embed(opts, out),
        "generate" => generate(opts, out),
        "topk" => topk(opts, out),
        "serve-bench" => serve_bench(opts, out),
        "ingest" => ingest(opts, out),
        "apply-delta" => apply_delta_cmd(opts, out),
        "help" | "" => {
            let _ = writeln!(out, "{USAGE}");
            Ok(())
        }
        other => Err(HignnError::Config(format!("unknown command `{other}` (try `hignn help`)"))),
    }
}

fn emit(out: &mut dyn Write, text: String) {
    let _ = writeln!(out, "{text}");
}

/// Lifts the option parser's string errors into usage errors (exit 2).
fn usage<T>(r: Result<T, String>) -> Result<T, HignnError> {
    r.map_err(HignnError::Config)
}

fn load_edges(opts: &Opts, out: &mut dyn Write) -> Result<ParsedEdgeList, HignnError> {
    let path = usage(opts.require("edges"))?;
    let policy = if opts.flag("lenient") { LinePolicy::Lenient } else { LinePolicy::Strict };
    let file = File::open(path).map_err(|e| HignnError::io(path, e))?;
    let parsed = read_edge_list_with(file, policy).map_err(|e| HignnError::io(path, e))?;
    if parsed.skipped_lines > 0 {
        emit(out, format!("warning: skipped {} malformed lines in {path}", parsed.skipped_lines));
    }
    Ok(parsed)
}

fn stats(opts: &Opts, out: &mut dyn Write) -> Result<(), HignnError> {
    usage(opts.assert_known(&["edges", "lenient"]))?;
    let parsed = load_edges(opts, out)?;
    emit(out, GraphStats::compute(&parsed.graph).to_string());
    Ok(())
}

fn train(opts: &Opts, out: &mut dyn Write) -> Result<(), HignnError> {
    usage(opts.assert_known(&[
        "edges", "out", "levels", "alpha", "dim", "epochs", "seed", "no-normalize", "objective",
        "math", "threads", "checkpoint", "resume", "on-divergence", "lenient", "fault", "metrics",
        "log-format", "deadline-secs", "max-retries", "retry-base-ms",
    ]))?;
    let model_path = usage(opts.require("out"))?.to_string();
    let levels: usize = usage(opts.get_or("levels", 3))?;
    let alpha: f64 = usage(opts.get_or("alpha", 5.0))?;
    let dim: usize = usage(opts.get_or("dim", 32))?;
    let epochs: usize = usage(opts.get_or("epochs", 4))?;
    let seed: u64 = usage(opts.get_or("seed", 0))?;
    let default_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads: usize = usage(opts.get_or("threads", default_threads))?;
    let objective = match opts.get("objective") {
        Some(token) => ObjectiveSpec::parse(token).map_err(HignnError::Config)?,
        None => ObjectiveSpec::default(),
    };
    let math = parse_math(opts)?;

    // Crash-safety options. `--resume DIR` implies checkpointing to DIR.
    let (ckpt_dir, resume) = match (opts.get("resume"), opts.get("checkpoint")) {
        (Some(_), Some(_)) => {
            return Err(HignnError::Config(
                "--checkpoint and --resume are mutually exclusive (resume implies \
                 checkpointing to the same directory)"
                    .into(),
            ));
        }
        (Some(d), None) => (Some(d.to_string()), true),
        (None, Some(d)) => (Some(d.to_string()), false),
        (None, None) => (None, false),
    };
    let guard = match opts.get("on-divergence").unwrap_or("abort") {
        "off" => GuardPolicy::Off,
        "abort" => GuardPolicy::Abort,
        "rollback" => GuardPolicy::Rollback { max_retries: 2 },
        other => {
            return Err(HignnError::Config(format!(
                "--on-divergence must be abort, rollback, or off; got `{other}`"
            )));
        }
    };
    // Hidden fault-injection hook for the crash-recovery test harness;
    // deliberately undocumented in USAGE.
    let fault = opts.get("fault").map(FaultPlan::parse).transpose().map_err(HignnError::Config)?;

    // Supervised-execution knobs: watchdog deadline and transient-I/O
    // retry budget (both validated before any filesystem access).
    let deadline_secs: Option<u64> = opts.get("deadline-secs").map(str::parse).transpose().map_err(
        |_| HignnError::Config("--deadline-secs must be a positive integer".into()),
    )?;
    let max_retries: Option<u32> = opts.get("max-retries").map(str::parse).transpose().map_err(
        |_| HignnError::Config("--max-retries must be a non-negative integer".into()),
    )?;
    let mut retry = match max_retries {
        Some(n) => RetryPolicy::with_max_retries(n),
        None => RetryPolicy::default(),
    };
    // Hidden test-harness knob (like --fault): overrides the backoff
    // base so fault-injection tests never wall-sleep.
    if let Some(ms) = opts.get("retry-base-ms") {
        let ms: u64 = ms.parse().map_err(|_| {
            HignnError::Config("--retry-base-ms must be a non-negative integer".into())
        })?;
        retry.base_delay = std::time::Duration::from_millis(ms);
    }
    // The CLI's own durable writes (model save, metrics report) ride the
    // same retry layer as the checkpoint sites inside the build.
    let io_arm = IoFaultArm::from_plan(fault);
    let sleeper = WallSleeper;

    // Observability: both knobs validate (and thus can exit 2) before
    // any filesystem access. Recording is inert — it never changes the
    // trained model — so flipping these alters no result bytes.
    let metrics_path = opts.get("metrics").map(str::to_string);
    match opts.get("log-format") {
        None => {}
        Some("plain") => hignn_obs::set_log_format(Some(hignn_obs::LogFormat::Plain)),
        Some("json") => hignn_obs::set_log_format(Some(hignn_obs::LogFormat::Json)),
        Some(other) => {
            return Err(HignnError::Config(format!(
                "--log-format must be plain or json, got `{other}`"
            )));
        }
    }
    if metrics_path.is_some() {
        hignn_obs::set_enabled(true);
        hignn_obs::global().reset();
    }

    // One validated spec carries every knob (including --threads). Built
    // before any filesystem access, so usage/config errors (exit 2) take
    // precedence over I/O errors (exit 3).
    let mut builder = HignnBuilder::new()
        .levels(levels)
        .input_dim(dim)
        .embedding_dim(dim)
        .epochs(epochs)
        // Text edge lists carry no vertex features; use trainable random
        // tables (the featureless-graph treatment, see DESIGN.md §6).
        .trainable_features(true)
        .objective(objective)
        .math(math)
        .alpha_decay(alpha)
        .kmeans(KMeansAlgo::Lloyd)
        .normalize(!opts.flag("no-normalize"))
        .seed(seed)
        .threads(threads)
        .guard(guard)
        .resume(resume);
    if let Some(dir) = &ckpt_dir {
        builder = builder.checkpoint_dir(dir);
    }
    if let Some(fault) = fault {
        builder = builder.fault(fault);
    }
    if let Some(secs) = deadline_secs {
        builder = builder.deadline(std::time::Duration::from_secs(secs));
    }
    builder = builder.retry_policy(retry);
    let spec = builder.build()?;

    let parsed = load_edges(opts, out)?;
    let g = &parsed.graph;
    emit(
        out,
        format!(
            "training HiGNN: {} x {} vertices, {} edges, L = {levels}, alpha = {alpha}",
            g.num_left(),
            g.num_right(),
            g.num_edges()
        ),
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCE1);
    let scale = 1.0 / (dim as f32).sqrt();
    let uf = init::normal(g.num_left(), dim, scale, &mut rng);
    let if_ = init::normal(g.num_right(), dim, scale, &mut rng);

    if resume {
        let dir = spec.checkpoint_dir().expect("resume implies a checkpoint directory");
        let meta = CheckpointStore::create(dir)?.read_meta()?;
        emit(
            out,
            format!(
                "resuming from checkpoint: {}/{} levels already complete",
                meta.levels_done, meta.levels_total
            ),
        );
    }
    let hierarchy = spec.run(g, &uf, &if_)?;
    for (l, level) in hierarchy.levels().iter().enumerate() {
        emit(
            out,
            format!(
                "level {}: {} -> {} user clusters, {} -> {} item clusters, loss {:.4}",
                l + 1,
                level.user_embeddings.rows(),
                level.user_assignment.num_clusters(),
                level.item_embeddings.rows(),
                level.item_assignment.num_clusters(),
                level.epoch_losses.last().copied().unwrap_or(f32::NAN)
            ),
        );
    }
    with_retry(&retry, &sleeper, WriteSite::SaveHierarchy.name(), || {
        if let Some(arm) = &io_arm {
            arm.check(WriteSite::SaveHierarchy)?;
        }
        save_hierarchy(&model_path, &hierarchy).map_err(|e| HignnError::io(&model_path, e))
    })?;
    emit(out, format!("saved model to {model_path}"));
    if let Some(path) = &metrics_path {
        let report = hignn_obs::report::render(
            hignn_obs::global(),
            &[
                ("command", hignn_obs::report::json_str("train")),
                ("seed", hignn_obs::report::json_u64(seed)),
                ("levels", hignn_obs::report::json_u64(levels as u64)),
                ("threads", hignn_obs::report::json_u64(threads as u64)),
            ],
        );
        hignn_obs::set_enabled(false);
        with_retry(&retry, &sleeper, WriteSite::MetricsReport.name(), || {
            if let Some(arm) = &io_arm {
                arm.check(WriteSite::MetricsReport)?;
            }
            std::fs::write(path, &report).map_err(|e| HignnError::io(path, e))
        })?;
        emit(out, format!("wrote metrics report to {path}"));
    }
    Ok(())
}

fn info(opts: &Opts, out: &mut dyn Write) -> Result<(), HignnError> {
    usage(opts.assert_known(&["model"]))?;
    let path = usage(opts.require("model"))?;
    let h = load_hierarchy(path).map_err(|e| HignnError::io(path, e))?;
    emit(
        out,
        format!(
            "hierarchy: {} levels | {} users (dim {}) | {} items (dim {})",
            h.num_levels(),
            h.num_users(),
            h.user_dim(),
            h.num_items(),
            h.item_dim()
        ),
    );
    for (l, level) in h.levels().iter().enumerate() {
        emit(
            out,
            format!(
                "  level {}: {} user clusters, {} item clusters, coarsened graph {} edges",
                l + 1,
                level.user_assignment.num_clusters(),
                level.item_assignment.num_clusters(),
                level.coarsened.num_edges()
            ),
        );
    }
    Ok(())
}

fn embed(opts: &Opts, out: &mut dyn Write) -> Result<(), HignnError> {
    usage(opts.assert_known(&["model", "side", "out"]))?;
    let path = usage(opts.require("model"))?;
    let side = usage(opts.require("side"))?.to_string();
    let out_path = usage(opts.require("out"))?.to_string();
    let h = load_hierarchy(path).map_err(|e| HignnError::io(path, e))?;
    let matrix: Matrix = match side.as_str() {
        "user" => h.hierarchical_users(),
        "item" => h.hierarchical_items(),
        other => {
            return Err(HignnError::Config(format!(
                "--side must be `user` or `item`, got `{other}`"
            )));
        }
    };
    let file = File::create(&out_path).map_err(|e| HignnError::io(&out_path, e))?;
    let mut w = BufWriter::new(file);
    write_matrix(&mut w, &matrix).map_err(|e| HignnError::io(&out_path, e))?;
    emit(
        out,
        format!(
            "wrote {} {}x{} hierarchical embeddings to {out_path}",
            side,
            matrix.rows(),
            matrix.cols()
        ),
    );
    Ok(())
}

fn generate(opts: &Opts, out: &mut dyn Write) -> Result<(), HignnError> {
    use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
    use hignn_graph::edgelist::write_edge_list;
    usage(opts.assert_known(&["out", "kind", "scale", "seed"]))?;
    let out_path = usage(opts.require("out"))?.to_string();
    let kind = opts.get("kind").unwrap_or("taobao1");
    let scale: f64 = usage(opts.get_or("scale", 0.5))?;
    let seed: u64 = usage(opts.get_or("seed", 0))?;
    let cfg = match kind {
        "taobao1" => TaobaoConfig { seed, ..TaobaoConfig::taobao1(scale) },
        "taobao2" => TaobaoConfig { seed, ..TaobaoConfig::taobao2(scale) },
        other => {
            return Err(HignnError::Config(format!(
                "--kind must be taobao1 or taobao2, got `{other}`"
            )));
        }
    };
    let ds = generate_taobao(&cfg);
    let file = File::create(&out_path).map_err(|e| HignnError::io(&out_path, e))?;
    let mut w = BufWriter::new(file);
    write_edge_list(&mut w, &ds.graph).map_err(|e| HignnError::io(&out_path, e))?;
    emit(
        out,
        format!(
            "wrote {} edges ({} users x {} items, {kind}, scale {scale}) to {out_path}",
            ds.graph.num_edges(),
            ds.num_users(),
            ds.num_items()
        ),
    );
    Ok(())
}

/// Parses `--beam-width` (positive integer or `inf`; defaults to the
/// engine's default width).
fn parse_beam(opts: &Opts) -> Result<BeamWidth, HignnError> {
    match opts.get("beam-width") {
        None => Ok(DEFAULT_BEAM_WIDTH),
        Some(token) => token
            .parse()
            .map_err(|e: String| HignnError::Config(format!("--beam-width: {e}"))),
    }
}

/// Parses `--math` (`bitwise` | `fast`; defaults to bitwise).
fn parse_math(opts: &Opts) -> Result<MathMode, HignnError> {
    match opts.get("math") {
        None => Ok(MathMode::default()),
        Some(token) => {
            MathMode::parse(token).map_err(|e| HignnError::Config(format!("--math: {e}")))
        }
    }
}

fn topk(opts: &Opts, out: &mut dyn Write) -> Result<(), HignnError> {
    usage(opts.assert_known(&["model", "user", "topk", "beam-width", "scorer-seed", "math"]))?;
    let path = usage(opts.require("model"))?;
    let user: usize = usage(opts.require("user"))?
        .parse()
        .map_err(|_| HignnError::Config("--user must be a non-negative integer".into()))?;
    let k: usize = usage(opts.get_or("topk", DEFAULT_TOP_K))?;
    let beam = parse_beam(opts)?;
    let seed: u64 = usage(opts.get_or("scorer-seed", DEFAULT_SCORER_SEED))?;
    let math = parse_math(opts)?;
    let model = ServeModel::load_with_math(path, seed, math)?;
    let ranked = model.top_k(user, k, beam)?;
    emit(out, format!("user {user} top-{k} (beam {beam}, scorer seed {seed}):"));
    for (rank, s) in ranked.iter().enumerate() {
        emit(out, format!("  {:>3}. item {:<10} score {:+.6}", rank + 1, s.item, s.score));
    }
    Ok(())
}

fn serve_bench(opts: &Opts, out: &mut dyn Write) -> Result<(), HignnError> {
    usage(opts.assert_known(&[
        "model", "topk", "beam-width", "serve-threads", "requests", "scorer-seed", "math",
    ]))?;
    let path = usage(opts.require("model"))?;
    let k: usize = usage(opts.get_or("topk", DEFAULT_TOP_K))?;
    let beam = parse_beam(opts)?;
    let seed: u64 = usage(opts.get_or("scorer-seed", DEFAULT_SCORER_SEED))?;
    let default_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads: usize = usage(opts.get_or("serve-threads", default_threads))?;
    if threads == 0 {
        return Err(HignnError::Config("--serve-threads must be at least 1".into()));
    }
    let requests: usize = usage(opts.get_or("requests", 256))?;
    if requests == 0 {
        return Err(HignnError::Config("--requests must be at least 1".into()));
    }
    let math = parse_math(opts)?;
    let model = ServeModel::load_with_math(path, seed, math)?;
    // Surface bad (k, user-range) combinations as usage errors before
    // the sweep, which asserts requests are valid.
    model.top_k(0, k, beam)?;
    let stream: Vec<TopKRequest> = (0..requests)
        .map(|i| TopKRequest { user: i % model.num_users(), k, beam })
        .collect();
    emit(
        out,
        format!(
            "serve-bench: {} users, {} items, {} levels | {requests} requests, beam {beam}",
            model.num_users(),
            model.num_items(),
            model.num_levels()
        ),
    );
    let lat = latency_sweep(&model, &stream, threads)?;
    emit(
        out,
        format!(
            "latency ({} threads): p50 {:.1}us | p99 {:.1}us | {:.0} qps",
            lat.threads, lat.p50_us, lat.p99_us, lat.qps
        ),
    );
    let users: Vec<usize> = (0..model.num_users().min(64)).collect();
    let rec = recall_sweep(&model, &users, k, beam)?;
    emit(out, format!("recall@{k} vs exhaustive (beam {beam}): {:.4}", rec.recall));
    Ok(())
}

/// Reads one edge-list file under the shared `--lenient` policy.
fn read_edges_file(
    path: &str,
    opts: &Opts,
    out: &mut dyn Write,
) -> Result<ParsedEdgeList, HignnError> {
    let policy = if opts.flag("lenient") { LinePolicy::Lenient } else { LinePolicy::Strict };
    let file = File::open(path).map_err(|e| HignnError::io(path, e))?;
    let parsed = read_edge_list_with(file, policy).map_err(|e| HignnError::io(path, e))?;
    if parsed.skipped_lines > 0 {
        emit(out, format!("warning: skipped {} malformed lines in {path}", parsed.skipped_lines));
    }
    Ok(parsed)
}

fn ingest(opts: &Opts, out: &mut dyn Write) -> Result<(), HignnError> {
    use hignn::ingest::{save_delta, IngestConfig, IngestEngine};
    use std::collections::HashMap;
    usage(opts.assert_known(&[
        "model", "base-edges", "new-edges", "out-model", "out-delta", "drift-threshold",
        "no-normalize", "lenient",
    ]))?;
    let model_path = usage(opts.require("model"))?.to_string();
    let base_path = usage(opts.require("base-edges"))?.to_string();
    let new_path = usage(opts.require("new-edges"))?.to_string();
    let out_model = usage(opts.require("out-model"))?.to_string();
    let out_delta = usage(opts.require("out-delta"))?.to_string();
    let drift_threshold: f32 = usage(opts.get_or("drift-threshold", 0.05_f32))?;
    if drift_threshold.is_nan() || drift_threshold < 0.0 {
        return Err(HignnError::Config("--drift-threshold must be >= 0".into()));
    }
    let cfg = IngestConfig { drift_threshold, normalize: !opts.flag("no-normalize") };

    let hierarchy = load_hierarchy(&model_path).map_err(|e| HignnError::io(&model_path, e))?;
    let base = read_edges_file(&base_path, opts, out)?;
    let batch = read_edges_file(&new_path, opts, out)?;

    // The model was trained on --base-edges with original ids compacted
    // to dense ranges; remap the new batch through the same tables,
    // handing unseen originals fresh dense ids above the base ranges.
    let mut left: HashMap<u64, u32> =
        base.left_ids.iter().enumerate().map(|(d, &o)| (o, d as u32)).collect();
    let mut right: HashMap<u64, u32> =
        base.right_ids.iter().enumerate().map(|(d, &o)| (o, d as u32)).collect();
    let mut edges = Vec::with_capacity(batch.graph.num_edges());
    for &(l, r, w) in batch.graph.edges() {
        let nl = left.len() as u32;
        let u = *left.entry(batch.left_ids[l as usize]).or_insert(nl);
        let nr = right.len() as u32;
        let i = *right.entry(batch.right_ids[r as usize]).or_insert(nr);
        edges.push((u, i, w));
    }

    let mut engine = IngestEngine::new(hierarchy, base.graph, cfg)?;
    let (report, delta) = engine.ingest(&edges)?;
    emit(
        out,
        format!(
            "ingested {} edges: +{} users, +{} items | moved {} users, {} items | \
             dirty clusters {}u/{}i | max drift {:.2e}u/{:.2e}i | dead {}u/{}i",
            report.new_edges,
            report.new_users,
            report.new_items,
            report.moved_users,
            report.moved_items,
            report.dirty_user_clusters,
            report.dirty_item_clusters,
            report.max_user_drift,
            report.max_item_drift,
            report.dead_user_clusters,
            report.dead_item_clusters,
        ),
    );
    save_delta(&out_delta, &delta).map_err(|e| HignnError::io(&out_delta, e))?;
    emit(out, format!("wrote delta seq {} to {out_delta}", delta.seq));
    save_hierarchy(&out_model, engine.hierarchy()).map_err(|e| HignnError::io(&out_model, e))?;
    emit(
        out,
        format!(
            "saved patched model ({} users, {} items) to {out_model}",
            engine.hierarchy().num_users(),
            engine.hierarchy().num_items()
        ),
    );
    Ok(())
}

fn apply_delta_cmd(opts: &Opts, out: &mut dyn Write) -> Result<(), HignnError> {
    use hignn::ingest::load_delta;
    usage(opts.assert_known(&["model", "delta", "out"]))?;
    let model_path = usage(opts.require("model"))?.to_string();
    let delta_path = usage(opts.require("delta"))?.to_string();
    let out_path = usage(opts.require("out"))?.to_string();
    let mut hierarchy =
        load_hierarchy(&model_path).map_err(|e| HignnError::io(&model_path, e))?;
    let delta = load_delta(&delta_path).map_err(|e| HignnError::io(&delta_path, e))?;
    hignn::ingest::apply_delta(&mut hierarchy, &delta)?;
    save_hierarchy(&out_path, &hierarchy).map_err(|e| HignnError::io(&out_path, e))?;
    emit(
        out,
        format!(
            "applied delta seq {} ({} users, {} items) -> {out_path}",
            delta.seq,
            hierarchy.num_users(),
            hierarchy.num_items()
        ),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::Opts;

    fn run_args(args: &[&str]) -> (Result<(), HignnError>, String) {
        let opts = Opts::parse(args.iter().map(|s| s.to_string())).unwrap();
        let mut buf = Vec::new();
        let result = run(&opts, &mut buf);
        (result, String::from_utf8(buf).unwrap())
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hignn_cli_test_{}_{name}", std::process::id()))
    }

    #[test]
    fn help_prints_usage() {
        let (res, text) = run_args(&["help"]);
        assert!(res.is_ok());
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let (res, _) = run_args(&["bogus"]);
        let err = res.unwrap_err();
        assert!(err.to_string().contains("bogus"));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn typoed_flag_errors_instead_of_being_ignored() {
        let (res, _) = run_args(&["train", "--edges", "e.tsv", "--out", "m.hgh", "--levles", "2"]);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 2, "typo must be a usage error: {err}");
        assert!(err.to_string().contains("levles"), "{err}");
    }

    #[test]
    fn zero_threads_is_a_usage_error() {
        let (res, _) = run_args(&[
            "train", "--edges", "e.tsv", "--out", "m.hgh", "--threads", "0",
        ]);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 2, "--threads 0 must exit 2: {err}");
        assert!(err.to_string().contains("threads"), "{err}");
    }

    #[test]
    fn generate_stats_train_info_embed_roundtrip() {
        let edges = temp_path("edges.tsv");
        let model = temp_path("model.hgh");
        let emb = temp_path("users.hgmx");
        let edges_s = edges.to_str().unwrap();
        let model_s = model.to_str().unwrap();
        let emb_s = emb.to_str().unwrap();

        // generate
        let (res, text) =
            run_args(&["generate", "--out", edges_s, "--kind", "taobao2", "--scale", "0.05", "--seed", "4"]);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("wrote"));

        // stats
        let (res, text) = run_args(&["stats", "--edges", edges_s]);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("density"));

        // train (tiny settings)
        let (res, text) = run_args(&[
            "train", "--edges", edges_s, "--out", model_s, "--levels", "2", "--dim", "8",
            "--epochs", "1", "--alpha", "6",
        ]);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("saved model"));

        // info
        let (res, text) = run_args(&["info", "--model", model_s]);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("hierarchy: 2 levels"), "{text}");

        // embed
        let (res, text) = run_args(&["embed", "--model", model_s, "--side", "user", "--out", emb_s]);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("hierarchical embeddings"));
        // The written matrix parses back.
        let m = hignn_tensor::serialize::read_matrix(
            &mut std::io::BufReader::new(File::open(&emb).unwrap()),
        )
        .unwrap();
        assert_eq!(m.cols(), 16); // 2 levels x dim 8

        for p in [edges, model, emb] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn crash_and_resume_reproduces_uninterrupted_model() {
        let edges = temp_path("cr_edges.tsv");
        let clean = temp_path("cr_clean.hgh");
        let resumed = temp_path("cr_resumed.hgh");
        let ckpt = temp_path("cr_ckpt");
        let edges_s = edges.to_str().unwrap();

        let (res, _) = run_args(&["generate", "--out", edges_s, "--scale", "0.04", "--seed", "9"]);
        assert!(res.is_ok(), "{res:?}");

        let base = [
            "train", "--edges", edges_s, "--levels", "2", "--dim", "8", "--epochs", "1",
            "--alpha", "6", "--seed", "3",
        ];
        // Uninterrupted run.
        let mut clean_args = base.to_vec();
        clean_args.extend(["--out", clean.to_str().unwrap()]);
        let (res, _) = run_args(&clean_args);
        assert!(res.is_ok(), "{res:?}");

        // Crash after level 1's checkpoint (hidden --fault flag).
        let mut crash_args = base.to_vec();
        let ckpt_s = ckpt.to_str().unwrap();
        crash_args.extend([
            "--out", resumed.to_str().unwrap(), "--checkpoint", ckpt_s,
            "--fault", "crash-after-level=1",
        ]);
        let (res, _) = run_args(&crash_args);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 6, "expected injected-fault exit, got: {err}");
        assert!(!resumed.exists(), "crashed run must not have written a model");

        // Resume and finish.
        let mut resume_args = base.to_vec();
        resume_args.extend(["--out", resumed.to_str().unwrap(), "--resume", ckpt_s]);
        let (res, text) = run_args(&resume_args);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("resuming from checkpoint: 1/2"), "{text}");

        // Byte-for-byte identical to the uninterrupted model.
        let a = std::fs::read(&clean).unwrap();
        let b = std::fs::read(&resumed).unwrap();
        assert_eq!(a, b, "resumed model differs from uninterrupted run");

        // Resuming with a different seed is refused (fingerprint).
        let mut wrong = base.to_vec();
        let last = wrong.len() - 1;
        wrong[last] = "4"; // --seed 4
        wrong.extend(["--out", resumed.to_str().unwrap(), "--resume", ckpt_s]);
        let (res, _) = run_args(&wrong);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 2, "fingerprint mismatch is a config error: {err}");
        assert!(err.to_string().contains("fingerprint"), "{err}");

        for p in [edges, clean, resumed] {
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_dir_all(&ckpt);
    }

    #[test]
    fn corrupted_checkpoint_is_detected_on_resume() {
        let edges = temp_path("cor_edges.tsv");
        let model = temp_path("cor_model.hgh");
        let ckpt = temp_path("cor_ckpt");
        let edges_s = edges.to_str().unwrap();
        let ckpt_s = ckpt.to_str().unwrap();

        let (res, _) = run_args(&["generate", "--out", edges_s, "--scale", "0.04", "--seed", "9"]);
        assert!(res.is_ok(), "{res:?}");
        let base = [
            "train", "--edges", edges_s, "--out", model.to_str().unwrap(), "--levels", "2",
            "--dim", "8", "--epochs", "1", "--alpha", "6", "--seed", "3",
        ];
        // Corrupt the level-1 checkpoint after writing it, then crash.
        let mut crash = base.to_vec();
        crash.extend(["--checkpoint", ckpt_s, "--fault", "corrupt=1:100:64"]);
        let (res, _) = run_args(&crash);
        assert_eq!(res.unwrap_err().exit_code(), 6);

        // Resume must detect the corruption (exit 4), never panic or
        // silently produce a wrong model.
        let mut resume = base.to_vec();
        resume.extend(["--resume", ckpt_s]);
        let (res, _) = run_args(&resume);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 4, "expected corruption exit, got: {err}");

        let _ = std::fs::remove_file(edges);
        let _ = std::fs::remove_file(model);
        let _ = std::fs::remove_dir_all(&ckpt);
    }

    #[test]
    fn bad_objective_is_a_usage_error() {
        let (res, _) = run_args(&[
            "train", "--edges", "e.tsv", "--out", "m.hgh", "--objective", "sideways",
        ]);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 2, "--objective sideways must exit 2: {err}");
        assert!(err.to_string().contains("objective"), "{err}");
        assert!(err.to_string().contains("contrastive"), "should list valid tokens: {err}");
    }

    #[test]
    fn bad_math_is_a_usage_error() {
        let (res, _) =
            run_args(&["train", "--edges", "e.tsv", "--out", "m.hgh", "--math", "sloppy"]);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 2, "--math sloppy must exit 2: {err}");
        let msg = err.to_string();
        assert!(msg.contains("--math"), "{msg}");
        assert!(msg.contains("bitwise") && msg.contains("fast"), "should list tokens: {msg}");
        // The serving commands validate the same token.
        let (res, _) = run_args(&["topk", "--model", "m.hgh", "--user", "0", "--math", "x"]);
        assert_eq!(res.unwrap_err().exit_code(), 2);
    }

    #[test]
    fn resume_with_different_math_is_refused() {
        let edges = temp_path("math_edges.tsv");
        let model = temp_path("math_model.hgh");
        let ckpt = temp_path("math_ckpt");
        let edges_s = edges.to_str().unwrap();
        let ckpt_s = ckpt.to_str().unwrap();

        let (res, _) = run_args(&["generate", "--out", edges_s, "--scale", "0.04", "--seed", "9"]);
        assert!(res.is_ok(), "{res:?}");
        let base = [
            "train", "--edges", edges_s, "--out", model.to_str().unwrap(), "--levels", "2",
            "--dim", "8", "--epochs", "1", "--alpha", "6", "--seed", "3", "--math", "fast",
        ];
        // Checkpoint one level under the fast tier, crash.
        let mut crash = base.to_vec();
        crash.extend(["--checkpoint", ckpt_s, "--fault", "crash-after-level=1"]);
        let (res, _) = run_args(&crash);
        assert_eq!(res.unwrap_err().exit_code(), 6);

        // Resuming under the other tier must be refused with an error
        // naming both tiers (a hierarchy is built under one contract).
        let mut resume = base.to_vec();
        resume.extend(["--resume", ckpt_s]);
        let flip = resume.iter().position(|a| *a == "fast").unwrap();
        resume[flip] = "bitwise";
        let (res, _) = run_args(&resume);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 2, "math mismatch is a config error: {err}");
        let msg = err.to_string();
        assert!(msg.contains("math tier"), "{msg}");
        assert!(msg.contains("`fast`") && msg.contains("`bitwise`"), "{msg}");

        // The matching tier still resumes fine.
        let mut ok = base.to_vec();
        ok.extend(["--resume", ckpt_s]);
        let (res, text) = run_args(&ok);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("resuming from checkpoint: 1/2"), "{text}");

        let _ = std::fs::remove_file(edges);
        let _ = std::fs::remove_file(model);
        let _ = std::fs::remove_dir_all(&ckpt);
    }

    #[test]
    fn resume_with_different_objective_is_refused() {
        let edges = temp_path("obj_edges.tsv");
        let model = temp_path("obj_model.hgh");
        let ckpt = temp_path("obj_ckpt");
        let edges_s = edges.to_str().unwrap();
        let ckpt_s = ckpt.to_str().unwrap();

        let (res, _) = run_args(&["generate", "--out", edges_s, "--scale", "0.04", "--seed", "9"]);
        assert!(res.is_ok(), "{res:?}");
        let base = [
            "train", "--edges", edges_s, "--out", model.to_str().unwrap(), "--levels", "2",
            "--dim", "8", "--epochs", "1", "--alpha", "6", "--seed", "3",
        ];
        // Checkpoint one level under the default (edge) objective, crash.
        let mut crash = base.to_vec();
        crash.extend(["--checkpoint", ckpt_s, "--fault", "crash-after-level=1"]);
        let (res, _) = run_args(&crash);
        assert_eq!(res.unwrap_err().exit_code(), 6);

        // Resuming under a different objective must be refused with a
        // structured error naming both objectives, not a bare
        // fingerprint mismatch.
        let mut resume = base.to_vec();
        resume.extend(["--resume", ckpt_s, "--objective", "contrastive"]);
        let (res, _) = run_args(&resume);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 2, "objective mismatch is a config error: {err}");
        let msg = err.to_string();
        assert!(msg.contains("objective"), "{msg}");
        assert!(msg.contains("`edge`") && msg.contains("`contrastive`"), "{msg}");

        // The matching objective still resumes fine.
        let mut ok = base.to_vec();
        ok.extend(["--resume", ckpt_s, "--objective", "edge"]);
        let (res, text) = run_args(&ok);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("resuming from checkpoint: 1/2"), "{text}");

        let _ = std::fs::remove_file(edges);
        let _ = std::fs::remove_file(model);
        let _ = std::fs::remove_dir_all(&ckpt);
    }

    #[test]
    fn bad_supervision_flags_are_usage_errors() {
        for args in [
            ["train", "--edges", "e.tsv", "--out", "m.hgh", "--deadline-secs", "abc"],
            ["train", "--edges", "e.tsv", "--out", "m.hgh", "--deadline-secs", "0"],
            ["train", "--edges", "e.tsv", "--out", "m.hgh", "--max-retries", "-1"],
        ] {
            let (res, _) = run_args(&args);
            let err = res.unwrap_err();
            assert_eq!(err.exit_code(), 2, "{args:?} must exit 2, got: {err}");
        }
    }

    #[test]
    fn transient_fault_at_model_save_recovers_bitwise_within_retries() {
        let edges = temp_path("ts_edges.tsv");
        let clean = temp_path("ts_clean.hgh");
        let faulted = temp_path("ts_faulted.hgh");
        let edges_s = edges.to_str().unwrap();

        let (res, _) = run_args(&["generate", "--out", edges_s, "--scale", "0.04", "--seed", "9"]);
        assert!(res.is_ok(), "{res:?}");
        let base = [
            "train", "--edges", edges_s, "--levels", "1", "--dim", "8", "--epochs", "1",
            "--alpha", "6", "--seed", "3",
        ];
        let mut clean_args = base.to_vec();
        clean_args.extend(["--out", clean.to_str().unwrap()]);
        let (res, _) = run_args(&clean_args);
        assert!(res.is_ok(), "{res:?}");

        // Two injected transient failures at the model-save site, budget
        // of three retries: the run must succeed and write identical
        // bytes (zero backoff base so the test never wall-sleeps).
        let mut fault_args = base.to_vec();
        fault_args.extend([
            "--out", faulted.to_str().unwrap(), "--fault", "io-error=save-hierarchy:2",
            "--max-retries", "3", "--retry-base-ms", "0",
        ]);
        let (res, _) = run_args(&fault_args);
        assert!(res.is_ok(), "retries must absorb the fault: {res:?}");
        let a = std::fs::read(&clean).unwrap();
        let b = std::fs::read(&faulted).unwrap();
        assert_eq!(a, b, "retried model save must be bitwise identical");

        // Same fault beyond the retry budget: documented I/O exit.
        let mut exhausted = base.to_vec();
        exhausted.extend([
            "--out", faulted.to_str().unwrap(), "--fault", "io-error=save-hierarchy:5",
            "--max-retries", "1", "--retry-base-ms", "0",
        ]);
        let (res, _) = run_args(&exhausted);
        assert_eq!(res.unwrap_err().exit_code(), 3, "exhausted retries exit 3");

        for p in [edges, clean, faulted] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn deadline_expiry_exits_7_and_resume_completes_byte_identically() {
        let edges = temp_path("dl_edges.tsv");
        let clean = temp_path("dl_clean.hgh");
        let resumed = temp_path("dl_resumed.hgh");
        let ckpt = temp_path("dl_ckpt");
        let edges_s = edges.to_str().unwrap();
        let ckpt_s = ckpt.to_str().unwrap();

        let (res, _) = run_args(&["generate", "--out", edges_s, "--scale", "0.04", "--seed", "9"]);
        assert!(res.is_ok(), "{res:?}");
        let base = [
            "train", "--edges", edges_s, "--levels", "2", "--dim", "8", "--epochs", "2",
            "--alpha", "6", "--seed", "3",
        ];
        let mut clean_args = base.to_vec();
        clean_args.extend(["--out", clean.to_str().unwrap()]);
        let (res, _) = run_args(&clean_args);
        assert!(res.is_ok(), "{res:?}");

        // A virtual 1-hour stall after level 2 epoch 0 trips a 60s
        // deadline without any real waiting: graceful abort, exit 7,
        // level 1 already durable.
        let mut dead = base.to_vec();
        dead.extend([
            "--out", resumed.to_str().unwrap(), "--checkpoint", ckpt_s,
            "--deadline-secs", "60", "--fault", "stall=2:0:3600000",
        ]);
        let (res, text) = run_args(&dead);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 7, "deadline abort must exit 7: {err}");
        assert!(err.to_string().contains("--resume"), "{err}");
        assert!(!resumed.exists(), "aborted run must not have written a model");
        assert!(!text.contains("saved model"), "{text}");

        // Resume without the deadline: finishes and matches the
        // undeadlined model byte for byte.
        let mut resume_args = base.to_vec();
        resume_args.extend(["--out", resumed.to_str().unwrap(), "--resume", ckpt_s]);
        let (res, text) = run_args(&resume_args);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("resuming from checkpoint: 1/2"), "{text}");
        let a = std::fs::read(&clean).unwrap();
        let b = std::fs::read(&resumed).unwrap();
        assert_eq!(a, b, "deadline-aborted + resumed model differs from undeadlined run");

        for p in [edges, clean, resumed] {
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_dir_all(&ckpt);
    }

    #[test]
    fn lenient_flag_reports_skipped_lines() {
        let edges = temp_path("len_edges.tsv");
        std::fs::write(&edges, "1 2 1.0\nbroken line\n3 4 1.0\n5 6 1.0\n7 8 1.0\n").unwrap();
        let edges_s = edges.to_str().unwrap();
        // Strict (default): fails naming the line and content.
        let (res, _) = run_args(&["stats", "--edges", edges_s]);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 4, "malformed text is corrupt data: {err}");
        assert!(err.to_string().contains("line 2"), "{err}");
        // Lenient: succeeds with a warning.
        let (res, text) = run_args(&["stats", "--edges", edges_s, "--lenient"]);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("skipped 1 malformed"), "{text}");
        let _ = std::fs::remove_file(&edges);
    }

    #[test]
    fn embed_rejects_bad_side() {
        let (res, _) = run_args(&["embed", "--model", "nope.hgh", "--side", "user", "--out", "x"]);
        assert!(res.is_err()); // missing model file
        let model = temp_path("side_model.hgh");
        let edges = temp_path("side_edges.tsv");
        let (r1, _) = run_args(&["generate", "--out", edges.to_str().unwrap(), "--scale", "0.05"]);
        assert!(r1.is_ok());
        let (r2, _) = run_args(&[
            "train", "--edges", edges.to_str().unwrap(), "--out", model.to_str().unwrap(),
            "--levels", "1", "--dim", "4", "--epochs", "1",
        ]);
        assert!(r2.is_ok());
        let (res, _) = run_args(&[
            "embed", "--model", model.to_str().unwrap(), "--side", "sideways", "--out", "x",
        ]);
        let err = res.unwrap_err();
        assert!(err.to_string().contains("sideways"));
        assert_eq!(err.exit_code(), 2);
        let _ = std::fs::remove_file(model);
        let _ = std::fs::remove_file(edges);
    }

    /// Generates and trains a tiny model, returning its path (caller
    /// removes it).
    fn tiny_model(tag: &str) -> std::path::PathBuf {
        let edges = temp_path(&format!("{tag}_edges.tsv"));
        let model = temp_path(&format!("{tag}_model.hgh"));
        let (res, _) =
            run_args(&["generate", "--out", edges.to_str().unwrap(), "--scale", "0.05", "--seed", "7"]);
        assert!(res.is_ok(), "{res:?}");
        let (res, _) = run_args(&[
            "train", "--edges", edges.to_str().unwrap(), "--out", model.to_str().unwrap(),
            "--levels", "2", "--dim", "8", "--epochs", "1", "--alpha", "6",
        ]);
        assert!(res.is_ok(), "{res:?}");
        let _ = std::fs::remove_file(edges);
        model
    }

    #[test]
    fn topk_serves_and_beam_inf_matches_default_schema() {
        let model = tiny_model("topk");
        let model_s = model.to_str().unwrap();
        let (res, text) = run_args(&["topk", "--model", model_s, "--user", "0", "--topk", "5"]);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("top-5"), "{text}");
        assert_eq!(text.lines().filter(|l| l.contains("item")).count(), 5, "{text}");

        // Beam inf parses and serves too.
        let (res, text) = run_args(&[
            "topk", "--model", model_s, "--user", "1", "--beam-width", "inf",
        ]);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("beam inf"), "{text}");

        // Identical query, identical output (engine determinism through
        // the CLI surface).
        let (_, a) = run_args(&["topk", "--model", model_s, "--user", "2"]);
        let (_, b) = run_args(&["topk", "--model", model_s, "--user", "2"]);
        assert_eq!(a, b);
        let _ = std::fs::remove_file(model);
    }

    #[test]
    fn malformed_serve_requests_are_usage_errors_not_panics() {
        let model = tiny_model("badreq");
        let model_s = model.to_str().unwrap();
        // k = 0.
        let (res, _) = run_args(&["topk", "--model", model_s, "--user", "0", "--topk", "0"]);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("at least 1"), "{err}");
        // k > number of items.
        let (res, _) = run_args(&["topk", "--model", model_s, "--user", "0", "--topk", "9999999"]);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("exceeds"), "{err}");
        // Unknown user.
        let (res, _) = run_args(&["topk", "--model", model_s, "--user", "9999999"]);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("unknown user"), "{err}");
        // Bad beam width.
        for bad in ["0", "wide"] {
            let (res, _) =
                run_args(&["topk", "--model", model_s, "--user", "0", "--beam-width", bad]);
            let err = res.unwrap_err();
            assert_eq!(err.exit_code(), 2, "beam `{bad}`: {err}");
            assert!(err.to_string().contains("beam-width"), "{err}");
        }
        // serve-bench validates its own knobs.
        let (res, _) = run_args(&["serve-bench", "--model", model_s, "--serve-threads", "0"]);
        assert_eq!(res.unwrap_err().exit_code(), 2);
        let (res, _) = run_args(&["serve-bench", "--model", model_s, "--requests", "0"]);
        assert_eq!(res.unwrap_err().exit_code(), 2);
        let _ = std::fs::remove_file(model);
    }

    #[test]
    fn corrupt_model_is_a_structured_serve_error() {
        let model = tiny_model("corrupt_serve");
        let model_s = model.to_str().unwrap();
        let mut bytes = std::fs::read(&model).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&model, &bytes).unwrap();
        let (res, _) = run_args(&["topk", "--model", model_s, "--user", "0"]);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 4, "corrupt model must exit 4: {err}");
        // Missing model file stays an I/O error.
        let (res, _) = run_args(&["topk", "--model", "/nonexistent/m.hgh", "--user", "0"]);
        assert_eq!(res.unwrap_err().exit_code(), 3);
        let _ = std::fs::remove_file(model);
    }

    #[test]
    fn serve_bench_reports_latency_and_perfect_recall_at_beam_inf() {
        let model = tiny_model("sbench");
        let model_s = model.to_str().unwrap();
        let (res, text) = run_args(&[
            "serve-bench", "--model", model_s, "--requests", "16", "--serve-threads", "2",
            "--beam-width", "inf", "--topk", "5",
        ]);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("p50"), "{text}");
        assert!(text.contains("qps"), "{text}");
        assert!(text.contains("recall@5 vs exhaustive (beam inf): 1.0000"), "{text}");
        let _ = std::fs::remove_file(model);
    }

    #[test]
    fn ingest_patches_model_and_delta_replays_bitwise() {
        let edges = temp_path("ing_edges.tsv");
        let model = temp_path("ing_model.hgh");
        let newe = temp_path("ing_new.tsv");
        let patched = temp_path("ing_patched.hgh");
        let replayed = temp_path("ing_replayed.hgh");
        let delta = temp_path("ing_delta.hgd");
        let edges_s = edges.to_str().unwrap();
        let model_s = model.to_str().unwrap();

        let (res, _) =
            run_args(&["generate", "--out", edges_s, "--scale", "0.05", "--seed", "7"]);
        assert!(res.is_ok(), "{res:?}");
        let (res, _) = run_args(&[
            "train", "--edges", edges_s, "--out", model_s, "--levels", "2", "--dim", "8",
            "--epochs", "1", "--alpha", "6",
        ]);
        assert!(res.is_ok(), "{res:?}");
        let (_, info_before) = run_args(&["info", "--model", model_s]);
        let users_before: usize = info_before
            .split("levels | ")
            .nth(1)
            .and_then(|s| s.split(" users").next())
            .unwrap()
            .parse()
            .unwrap();

        // Original id 900000 is unseen in the base file -> a new user;
        // 55 is a new item; ids 0/1 are existing vertices.
        std::fs::write(
            &newe,
            "900000\t0\t1.0\n900000\t1\t2.0\n0\t900055\t1.0\n900000\t900055\t1.0\n",
        )
        .unwrap();
        let (res, text) = run_args(&[
            "ingest", "--model", model_s, "--base-edges", edges_s, "--new-edges",
            newe.to_str().unwrap(), "--out-model", patched.to_str().unwrap(), "--out-delta",
            delta.to_str().unwrap(),
        ]);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("+1 users, +1 items"), "{text}");
        assert!(text.contains("wrote delta seq 1"), "{text}");

        // Replaying the delta on the base model reproduces the patched
        // model byte for byte — the replica catch-up contract.
        let (res, _) = run_args(&[
            "apply-delta", "--model", model_s, "--delta", delta.to_str().unwrap(), "--out",
            replayed.to_str().unwrap(),
        ]);
        assert!(res.is_ok(), "{res:?}");
        assert_eq!(
            std::fs::read(&patched).unwrap(),
            std::fs::read(&replayed).unwrap(),
            "apply-delta output differs from the ingesting writer's model"
        );

        // The patched model serves the brand-new user.
        let new_user = users_before.to_string();
        let (res, text) = run_args(&[
            "topk", "--model", patched.to_str().unwrap(), "--user", &new_user, "--topk", "5",
        ]);
        assert!(res.is_ok(), "new user must be servable: {res:?}");
        assert!(text.contains("top-5"), "{text}");
        // ...and the base model still does not know it.
        let (res, _) = run_args(&["topk", "--model", model_s, "--user", &new_user]);
        assert_eq!(res.unwrap_err().exit_code(), 2);

        // Applying the delta to the *patched* model (wrong base /
        // double apply) is refused as corruption.
        let (res, _) = run_args(&[
            "apply-delta", "--model", patched.to_str().unwrap(), "--delta",
            delta.to_str().unwrap(), "--out", replayed.to_str().unwrap(),
        ]);
        assert_eq!(res.unwrap_err().exit_code(), 4, "double apply must exit 4");

        // A corrupt delta file is a structured error, exit 4.
        let mut bytes = std::fs::read(&delta).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&delta, &bytes).unwrap();
        let (res, _) = run_args(&[
            "apply-delta", "--model", model_s, "--delta", delta.to_str().unwrap(), "--out",
            replayed.to_str().unwrap(),
        ]);
        assert_eq!(res.unwrap_err().exit_code(), 4, "corrupt delta must exit 4");

        for p in [edges, model, newe, patched, replayed, delta] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn ingest_flags_are_validated() {
        // Missing required flags exit 2.
        let (res, _) = run_args(&["ingest", "--model", "m.hgh"]);
        assert_eq!(res.unwrap_err().exit_code(), 2);
        let (res, _) = run_args(&["apply-delta", "--model", "m.hgh"]);
        assert_eq!(res.unwrap_err().exit_code(), 2);
        // Negative drift threshold exits 2 before touching the disk.
        let (res, _) = run_args(&[
            "ingest", "--model", "m.hgh", "--base-edges", "b.tsv", "--new-edges", "n.tsv",
            "--out-model", "p.hgh", "--out-delta", "d.hgd", "--drift-threshold", "-1",
        ]);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("drift-threshold"), "{err}");
    }

    #[test]
    fn stats_reports_missing_file() {
        let (res, _) = run_args(&["stats", "--edges", "/nonexistent/x.tsv"]);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 3, "missing file is an I/O error: {err}");
    }

    #[test]
    fn bad_log_format_is_a_usage_error() {
        let (res, _) = run_args(&[
            "train", "--edges", "e.tsv", "--out", "m.hgh", "--log-format", "xml",
        ]);
        let err = res.unwrap_err();
        assert_eq!(err.exit_code(), 2, "--log-format xml must exit 2: {err}");
        assert!(err.to_string().contains("log-format"), "{err}");
    }

    #[test]
    fn metrics_report_is_written_and_inert() {
        let edges = temp_path("met_edges.tsv");
        let plain = temp_path("met_plain.hgh");
        let observed = temp_path("met_observed.hgh");
        let report = temp_path("met_report.json");
        let edges_s = edges.to_str().unwrap();

        let (res, _) = run_args(&["generate", "--out", edges_s, "--scale", "0.04", "--seed", "2"]);
        assert!(res.is_ok(), "{res:?}");
        let base = [
            "train", "--edges", edges_s, "--levels", "2", "--dim", "8", "--epochs", "2",
            "--alpha", "6", "--seed", "5",
        ];
        // Metrics off.
        let mut off = base.to_vec();
        off.extend(["--out", plain.to_str().unwrap()]);
        let (res, _) = run_args(&off);
        assert!(res.is_ok(), "{res:?}");
        // Metrics on.
        let mut on = base.to_vec();
        let report_s = report.to_str().unwrap();
        on.extend(["--out", observed.to_str().unwrap(), "--metrics", report_s]);
        let (res, text) = run_args(&on);
        assert!(res.is_ok(), "{res:?}");
        assert!(text.contains("wrote metrics report"), "{text}");

        // Inertness: observing the run changed no model bytes.
        let a = std::fs::read(&plain).unwrap();
        let b = std::fs::read(&observed).unwrap();
        assert_eq!(a, b, "metrics-on model differs from metrics-off model");

        // The report carries every promised section.
        let json = std::fs::read_to_string(&report).unwrap();
        assert!(json.contains("\"schema\":\"hignn-metrics/v1\""), "{json}");
        assert!(json.contains("\"command\":\"train\""));
        assert!(json.contains("\"seed\":5"));
        for key in [
            "train.batches",
            "train.epochs",
            "stack.levels_built",
            "workspace.leases",
            "train.batch_loss",
            "train.epoch_loss",
            "level1.train",
            "level1.cluster",
            "level2.embed",
            "io.save_hierarchy",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "report missing {key}: {json}");
        }

        for p in [edges, plain, observed, report] {
            let _ = std::fs::remove_file(p);
        }
    }
}
