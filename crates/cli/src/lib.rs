//! # hignn-cli
//!
//! Command implementations behind the `hignn` binary: train a hierarchy
//! from a text edge list, inspect graphs and saved models, export
//! hierarchical embeddings, and generate synthetic datasets. The binary
//! is a thin `main` over [`run`]; everything here is unit-testable.

#![warn(missing_docs)]

pub mod commands;
pub mod opts;

pub use commands::run;
