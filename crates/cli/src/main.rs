//! The `hignn` command-line binary (see [`hignn_cli::commands::USAGE`]).

use hignn_cli::opts::Opts;

fn main() {
    let opts = match Opts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    if let Err(e) = hignn_cli::run(&opts, &mut stdout) {
        eprintln!("error: {e}");
        // Distinct exit codes per failure class: 2 usage/config, 3 I/O,
        // 4 corrupt data, 5 diverged, 6 injected fault.
        std::process::exit(e.exit_code());
    }
}
