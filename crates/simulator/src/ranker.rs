//! Ranking policies served by the simulator.
//!
//! A [`Ranker`] scores candidate items for a user; the serving loop shows
//! the top-scored items. Model-backed rankers (HiGNN predictor, DIN) are
//! wrapped via [`ScoreFnRanker`]; [`PopularityRanker`] and
//! [`RandomRanker`] provide non-personalised controls; and
//! [`TopicAffinityRanker`] recommends within the topics a user has
//! historically clicked — the taxonomy-matched recommendation policy of
//! the paper's Section V.D.4 A/B test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A serving-time ranking policy.
pub trait Ranker {
    /// Scores each candidate item for `user` (higher = ranked earlier).
    fn score(&self, user: usize, candidates: &[u32]) -> Vec<f32>;

    /// Display name.
    fn name(&self) -> &str;
}

/// The boxed scoring function wrapped by [`ScoreFnRanker`].
pub type ScoreFn<'a> = Box<dyn Fn(usize, &[u32]) -> Vec<f32> + 'a>;

/// Wraps any scoring closure as a ranker.
pub struct ScoreFnRanker<'a> {
    name: String,
    f: ScoreFn<'a>,
}

impl<'a> ScoreFnRanker<'a> {
    /// Creates a ranker from a batch scoring function.
    pub fn new(name: impl Into<String>, f: impl Fn(usize, &[u32]) -> Vec<f32> + 'a) -> Self {
        ScoreFnRanker { name: name.into(), f: Box::new(f) }
    }
}

impl Ranker for ScoreFnRanker<'_> {
    fn score(&self, user: usize, candidates: &[u32]) -> Vec<f32> {
        (self.f)(user, candidates)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Ranks by a static per-item popularity score.
pub struct PopularityRanker {
    scores: Vec<f32>,
}

impl PopularityRanker {
    /// Creates a ranker from per-item popularity values.
    pub fn new(scores: Vec<f32>) -> Self {
        PopularityRanker { scores }
    }
}

impl Ranker for PopularityRanker {
    fn score(&self, _user: usize, candidates: &[u32]) -> Vec<f32> {
        candidates.iter().map(|&i| self.scores[i as usize]).collect()
    }

    fn name(&self) -> &str {
        "popularity"
    }
}

/// Random ranking (deterministic per `(user, item)` pair so A/B reruns
/// are stable).
pub struct RandomRanker {
    seed: u64,
}

impl RandomRanker {
    /// Creates a random ranker with a fixed seed.
    pub fn new(seed: u64) -> Self {
        RandomRanker { seed }
    }
}

impl Ranker for RandomRanker {
    fn score(&self, user: usize, candidates: &[u32]) -> Vec<f32> {
        candidates
            .iter()
            .map(|&i| {
                let mut rng =
                    StdRng::seed_from_u64(self.seed ^ (user as u64) << 32 ^ i as u64);
                rng.gen_range(0.0f32..1.0)
            })
            .collect()
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// Taxonomy-matched recommendations: an item scores by how much click
/// mass its topic received from this user's history, with a small
/// popularity tiebreak. The quality of the *topic assignment* directly
/// drives the quality of the ranking — which is exactly what the
/// Section V.D.4 A/B test measures (HiGNN topics vs SHOAL topics).
pub struct TopicAffinityRanker {
    name: String,
    /// Item → topic id.
    item_topic: Vec<u32>,
    /// Per-user click mass per topic (dense, `num_topics` wide).
    user_topic_mass: Vec<Vec<f32>>,
    /// Popularity tiebreak per item, scaled small.
    popularity: Vec<f32>,
}

impl TopicAffinityRanker {
    /// Builds the ranker from a topic assignment and user click
    /// histories (`histories[u]` lists clicked item ids).
    pub fn new(
        name: impl Into<String>,
        item_topic: Vec<u32>,
        histories: &[Vec<u32>],
        popularity: Vec<f32>,
    ) -> Self {
        let num_topics = item_topic.iter().copied().max().map_or(1, |m| m as usize + 1);
        let user_topic_mass = histories
            .iter()
            .map(|h| {
                let mut mass = vec![0f32; num_topics];
                for &i in h {
                    mass[item_topic[i as usize] as usize] += 1.0;
                }
                // Normalise so users with long histories don't dominate.
                let total: f32 = mass.iter().sum();
                if total > 0.0 {
                    for m in &mut mass {
                        *m /= total;
                    }
                }
                mass
            })
            .collect();
        let max_pop = popularity.iter().cloned().fold(1e-9f32, f32::max);
        let popularity = popularity.iter().map(|&p| 0.01 * p / max_pop).collect();
        TopicAffinityRanker { name: name.into(), item_topic, user_topic_mass, popularity }
    }
}

impl Ranker for TopicAffinityRanker {
    fn score(&self, user: usize, candidates: &[u32]) -> Vec<f32> {
        let mass = &self.user_topic_mass[user];
        candidates
            .iter()
            .map(|&i| {
                mass[self.item_topic[i as usize] as usize] + self.popularity[i as usize]
            })
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popularity_ranks_by_score() {
        let r = PopularityRanker::new(vec![0.1, 0.9, 0.5]);
        let s = r.score(0, &[0, 1, 2]);
        assert!(s[1] > s[2] && s[2] > s[0]);
    }

    #[test]
    fn random_is_deterministic_per_pair() {
        let r = RandomRanker::new(7);
        assert_eq!(r.score(3, &[1, 2]), r.score(3, &[1, 2]));
        assert_ne!(r.score(3, &[1]), r.score(4, &[1]));
    }

    #[test]
    fn topic_affinity_prefers_history_topics() {
        // Items 0,1 in topic 0; items 2,3 in topic 1.
        let item_topic = vec![0, 0, 1, 1];
        let histories = vec![vec![0, 0, 1], vec![2, 3]];
        let r = TopicAffinityRanker::new("t", item_topic, &histories, vec![1.0; 4]);
        let s0 = r.score(0, &[1, 2]);
        assert!(s0[0] > s0[1], "user 0 should prefer topic 0: {s0:?}");
        let s1 = r.score(1, &[1, 2]);
        assert!(s1[1] > s1[0], "user 1 should prefer topic 1: {s1:?}");
    }

    #[test]
    fn empty_history_falls_back_to_popularity() {
        let item_topic = vec![0, 1];
        let histories = vec![vec![]];
        let r = TopicAffinityRanker::new("t", item_topic, &histories, vec![1.0, 5.0]);
        let s = r.score(0, &[0, 1]);
        assert!(s[1] > s[0]);
    }

    #[test]
    fn score_fn_wrapper() {
        let r = ScoreFnRanker::new("wrapped", |u, c| {
            c.iter().map(|&i| (u as f32) + i as f32).collect()
        });
        assert_eq!(r.name(), "wrapped");
        assert_eq!(r.score(1, &[0, 2]), vec![1.0, 3.0]);
    }
}
