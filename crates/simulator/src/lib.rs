//! # hignn-simulator
//!
//! Online serving and A/B-testing simulator substituting the paper's
//! Taobao production experiments (Table IV and Section V.D.4):
//!
//! * [`ranker`] — serving policies: model-backed ([`ranker::ScoreFnRanker`]),
//!   popularity/random controls, and taxonomy-matched recommendation
//!   ([`ranker::TopicAffinityRanker`]).
//! * [`ab`] — the two-arm day-by-day A/B harness with a planted user
//!   behaviour model and common random numbers across arms.

#![warn(missing_docs)]

pub mod ab;
pub mod ranker;

pub use ab::{run_ab, AbConfig, AbOutcome};
pub use ranker::{PopularityRanker, RandomRanker, Ranker, ScoreFnRanker, TopicAffinityRanker};
