//! Two-arm A/B serving simulation (paper Table IV and Section V.D.4).
//!
//! The simulator replays identical visit streams through a control and a
//! treatment ranking policy. Per session it draws a visiting user and a
//! candidate item pool, each arm ranks and shows its top items, and the
//! simulated user clicks/purchases according to the *planted* behaviour
//! model of the dataset's [`GroundTruth`] (affinity + quality logistic
//! with position bias). Common random numbers — the same click/purchase
//! uniforms for both arms — remove almost all cross-arm noise, so ranking
//! quality differences surface directly in UV / CNT / CTR / CVR lifts.

use crate::ranker::Ranker;
use hignn_datasets::GroundTruth;
use hignn_metrics::{AbComparison, ArmStats};
use hignn_tensor::stable_sigmoid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Configuration of the serving simulation.
#[derive(Clone, Debug)]
pub struct AbConfig {
    /// Sessions simulated per day.
    pub sessions_per_day: usize,
    /// Items shown per session.
    pub items_per_page: usize,
    /// Candidate pool size sampled per session.
    pub candidates: usize,
    /// Number of days (the paper reports two).
    pub days: usize,
    /// Click-logit intercept.
    pub click_base_logit: f32,
    /// Click-logit gain on centred affinity.
    pub click_affinity_gain: f32,
    /// Click-logit gain on item quality.
    pub click_quality_gain: f32,
    /// Multiplicative position-bias decay per rank.
    pub position_decay: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AbConfig {
    fn default() -> Self {
        AbConfig {
            sessions_per_day: 20_000,
            items_per_page: 6,
            candidates: 40,
            days: 2,
            click_base_logit: -1.2,
            click_affinity_gain: 3.0,
            click_quality_gain: 0.5,
            position_decay: 0.9,
            seed: 99,
        }
    }
}

/// Per-day outcome of an A/B run.
#[derive(Clone, Debug)]
pub struct AbOutcome {
    /// One comparison per simulated day.
    pub days: Vec<AbComparison>,
}

impl AbOutcome {
    /// Aggregates all days into one comparison.
    pub fn total(&self) -> AbComparison {
        let sum = |pick: fn(&AbComparison) -> ArmStats| -> ArmStats {
            let mut acc = ArmStats::default();
            for d in &self.days {
                let a = pick(d);
                acc.visits += a.visits;
                acc.clicks += a.clicks;
                acc.unique_clicked_visitors += a.unique_clicked_visitors;
                acc.transactions += a.transactions;
            }
            acc
        };
        AbComparison { control: sum(|d| d.control), treatment: sum(|d| d.treatment) }
    }
}

/// Runs a control-vs-treatment A/B test over the planted behaviour model.
///
/// `candidate_pool` restricts the items eligible for recommendation (the
/// paper's online test serves *new arrival products*); pass all items for
/// an unrestricted run.
pub fn run_ab(
    truth: &GroundTruth,
    candidate_pool: &[u32],
    control: &dyn Ranker,
    treatment: &dyn Ranker,
    cfg: &AbConfig,
) -> AbOutcome {
    assert!(!candidate_pool.is_empty(), "run_ab: empty candidate pool");
    assert!(cfg.items_per_page <= cfg.candidates, "run_ab: page larger than pool");
    let num_users = truth.user_paths.len();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut days = Vec::with_capacity(cfg.days);

    for _day in 0..cfg.days {
        let mut arms = [ArmStats::default(), ArmStats::default()];
        let mut clicked_users: [HashSet<u32>; 2] = [HashSet::new(), HashSet::new()];
        for _session in 0..cfg.sessions_per_day {
            let user = rng.gen_range(0..num_users);
            // Candidate pool for this session (without replacement-ish).
            let candidates: Vec<u32> = (0..cfg.candidates)
                .map(|_| candidate_pool[rng.gen_range(0..candidate_pool.len())])
                .collect();
            // Common random numbers for both arms.
            let click_u: Vec<f32> =
                (0..cfg.items_per_page).map(|_| rng.gen_range(0.0f32..1.0)).collect();
            let buy_u: Vec<f32> =
                (0..cfg.items_per_page).map(|_| rng.gen_range(0.0f32..1.0)).collect();

            for (arm_idx, ranker) in [control, treatment].into_iter().enumerate() {
                let scores = ranker.score(user, &candidates);
                debug_assert_eq!(scores.len(), candidates.len());
                let mut order: Vec<usize> = (0..candidates.len()).collect();
                order.sort_by(|&a, &b| {
                    scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b))
                });
                let arm = &mut arms[arm_idx];
                for (rank, &slot) in order.iter().take(cfg.items_per_page).enumerate() {
                    let item = candidates[slot] as usize;
                    arm.visits += 1;
                    let affinity = truth.affinity(user, item);
                    let p_click = stable_sigmoid(
                        cfg.click_base_logit
                            + cfg.click_affinity_gain * (affinity - 0.5)
                            + cfg.click_quality_gain * truth.item_quality[item],
                    ) * cfg.position_decay.powi(rank as i32);
                    if click_u[rank] < p_click {
                        arm.clicks += 1;
                        clicked_users[arm_idx].insert(user as u32);
                        if buy_u[rank] < truth.purchase_prob(user, item) {
                            arm.transactions += 1;
                        }
                    }
                }
            }
        }
        arms[0].unique_clicked_visitors = clicked_users[0].len() as u64;
        arms[1].unique_clicked_visitors = clicked_users[1].len() as u64;
        days.push(AbComparison { control: arms[0], treatment: arms[1] });
    }
    AbOutcome { days }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranker::{RandomRanker, ScoreFnRanker};
    use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};

    fn tiny_truth() -> GroundTruth {
        let cfg = TaobaoConfig {
            num_users: 150,
            num_items: 120,
            train_interactions: 2000,
            test_interactions: 100,
            branching: vec![3, 3],
            num_categories: 10,
            focus: 0.8,
            base_purchase_logit: -1.0,
            affinity_gain: 2.5,
            quality_gain: 0.5,
            feature_dim: 4,
            max_history: 5,
            seed: 31,
        };
        generate_taobao(&cfg).truth
    }

    fn tiny_ab() -> AbConfig {
        AbConfig { sessions_per_day: 600, days: 2, candidates: 20, items_per_page: 4, ..Default::default() }
    }

    #[test]
    fn oracle_beats_random() {
        let truth = tiny_truth();
        let pool: Vec<u32> = (0..120).collect();
        let oracle = ScoreFnRanker::new("oracle", |u, c| {
            c.iter().map(|&i| truth.affinity(u, i as usize)).collect()
        });
        let random = RandomRanker::new(3);
        let outcome = run_ab(&truth, &pool, &random, &oracle, &tiny_ab());
        let total = outcome.total();
        assert!(
            total.ctr_lift() > 5.0,
            "oracle CTR lift too small: {:+.2}%",
            total.ctr_lift()
        );
        assert!(total.cnt_lift() > 5.0, "CNT lift {:+.2}%", total.cnt_lift());
    }

    #[test]
    fn identical_rankers_tie() {
        let truth = tiny_truth();
        let pool: Vec<u32> = (0..120).collect();
        let a = RandomRanker::new(5);
        let b = RandomRanker::new(5);
        let outcome = run_ab(&truth, &pool, &a, &b, &tiny_ab());
        let total = outcome.total();
        // Same policy + common random numbers = exactly identical arms.
        assert_eq!(total.control, total.treatment);
        assert_eq!(total.ctr_lift(), 0.0);
    }

    #[test]
    fn produces_one_comparison_per_day() {
        let truth = tiny_truth();
        let pool: Vec<u32> = (0..120).collect();
        let a = RandomRanker::new(1);
        let b = RandomRanker::new(2);
        let cfg = AbConfig { days: 3, sessions_per_day: 50, candidates: 10, items_per_page: 3, ..Default::default() };
        let outcome = run_ab(&truth, &pool, &a, &b, &cfg);
        assert_eq!(outcome.days.len(), 3);
        for d in &outcome.days {
            assert_eq!(d.control.visits, 150);
            assert_eq!(d.treatment.visits, 150);
        }
    }

    #[test]
    fn restricted_pool_only_serves_pool_items() {
        let truth = tiny_truth();
        // Pool of a single item: every visit shows it; CTR is defined.
        let pool = vec![7u32];
        let a = RandomRanker::new(1);
        let b = RandomRanker::new(2);
        let cfg = AbConfig { days: 1, sessions_per_day: 30, candidates: 3, items_per_page: 2, ..Default::default() };
        let outcome = run_ab(&truth, &pool, &a, &b, &cfg);
        assert_eq!(outcome.days[0].control.visits, 60);
    }

    #[test]
    fn position_bias_reduces_clicks_down_the_page() {
        // With a ranker whose ordering is stable, lower positions should
        // accumulate fewer clicks thanks to position_decay < 1. We check
        // indirectly: decay 1.0 vs 0.5 must change total clicks.
        let truth = tiny_truth();
        let pool: Vec<u32> = (0..120).collect();
        let a = RandomRanker::new(9);
        let run = |decay: f32| {
            let cfg = AbConfig {
                sessions_per_day: 400,
                days: 1,
                candidates: 10,
                items_per_page: 5,
                position_decay: decay,
                seed: 21,
                ..Default::default()
            };
            run_ab(&truth, &pool, &a, &a, &cfg).total().control.clicks
        };
        let no_decay = run(1.0);
        let strong_decay = run(0.5);
        assert!(
            strong_decay < no_decay,
            "decay 0.5 clicks {strong_decay} !< decay 1.0 clicks {no_decay}"
        );
    }

    #[test]
    #[should_panic(expected = "page larger than pool")]
    fn oversized_page_rejected() {
        let truth = tiny_truth();
        let a = RandomRanker::new(1);
        let cfg = AbConfig { candidates: 3, items_per_page: 5, ..Default::default() };
        run_ab(&truth, &[1], &a, &a, &cfg);
    }

    #[test]
    #[should_panic(expected = "empty candidate pool")]
    fn empty_pool_rejected() {
        let truth = tiny_truth();
        let a = RandomRanker::new(1);
        run_ab(&truth, &[], &a, &a, &tiny_ab());
    }
}
