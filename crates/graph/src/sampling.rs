//! Neighbour and negative sampling.
//!
//! Bipartite GraphSAGE minibatches sample a fixed fanout of neighbours per
//! vertex at each depth (the paper's complexity analysis, Section III.D,
//! speaks of `K1`/`K2` neighbours at depths 1 and 2). The unsupervised
//! losses (Eqs. 5 and 12) additionally need negative samples drawn from a
//! degree-biased distribution `P_n` — implemented here with Walker's alias
//! method using the customary `deg^0.75` unigram distribution.

use crate::bipartite::{BipartiteGraph, Side};
use rand::Rng;

/// Sentinel index returned for vertices with no neighbours.
///
/// Callers append one zero row at this index to the opposite side's
/// feature matrix, so isolated vertices aggregate a zero vector instead of
/// noise.
pub fn null_vertex(graph: &BipartiteGraph, side: Side) -> usize {
    graph.num_vertices(side.opposite())
}

/// How neighbours are drawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingMode {
    /// Each neighbour equally likely.
    Uniform,
    /// Probability proportional to edge weight `S(e)` — repeated clicks
    /// make a neighbour more likely to be aggregated.
    WeightBiased,
}

/// Samples exactly `fanout` neighbours (with replacement) for each vertex
/// in `vertices`, flattened into one vector of length
/// `vertices.len() * fanout`.
///
/// Vertices without neighbours yield [`null_vertex`] entries.
pub fn sample_neighbors(
    graph: &BipartiteGraph,
    side: Side,
    vertices: &[usize],
    fanout: usize,
    mode: SamplingMode,
    rng: &mut impl Rng,
) -> Vec<usize> {
    let null = null_vertex(graph, side);
    let mut out = Vec::with_capacity(vertices.len() * fanout);
    for &v in vertices {
        let (nbrs, _w, cum) = graph.neighbors_cum(side, v);
        if nbrs.is_empty() {
            out.extend(std::iter::repeat_n(null, fanout));
            continue;
        }
        match mode {
            SamplingMode::Uniform => {
                for _ in 0..fanout {
                    out.push(nbrs[rng.gen_range(0..nbrs.len())] as usize);
                }
            }
            SamplingMode::WeightBiased => {
                let total = *cum.last().unwrap();
                if total > 0.0 {
                    for _ in 0..fanout {
                        let x = rng.gen_range(0.0..total);
                        // First slot whose cumulative weight exceeds x.
                        let k = cum.partition_point(|&c| c <= x).min(nbrs.len() - 1);
                        out.push(nbrs[k] as usize);
                    }
                } else {
                    // All incident weights are 0 (or the total is NaN):
                    // `gen_range(0.0..0.0)` would panic on an empty range,
                    // and there is no weight signal to bias by — fall back
                    // to uniform. Both branches consume exactly one RNG
                    // draw per sample (the vendored rand pulls a single
                    // u64 for float and bounded-int ranges alike), so the
                    // stream stays aligned for every other vertex.
                    for _ in 0..fanout {
                        out.push(nbrs[rng.gen_range(0..nbrs.len())] as usize);
                    }
                }
            }
        }
    }
    out
}

/// Walker alias table for O(1) sampling from an arbitrary discrete
/// distribution.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds a table from non-negative weights (not necessarily
    /// normalised).
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "AliasTable: empty weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "AliasTable: weights sum to zero");
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are numerically 1.0.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen_range(0.0..1.0) < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table is empty (never true for constructed tables).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

/// Degree-biased negative sampler over one side of a bipartite graph.
///
/// Implements the `P_n` distribution of Eqs. 5 and 12 as the standard
/// `deg(v)^power` unigram distribution (`power = 0.75` by convention);
/// vertices with zero degree receive a small floor so that every vertex
/// can appear as a negative.
#[derive(Clone, Debug)]
pub struct NegativeSampler {
    table: AliasTable,
}

impl NegativeSampler {
    /// Builds a sampler for vertices on `side` of `graph`.
    pub fn new(graph: &BipartiteGraph, side: Side, power: f64) -> Self {
        let weights: Vec<f64> = graph
            .degrees(side)
            .iter()
            .map(|&d| (d as f64).powf(power).max(1e-3))
            .collect();
        NegativeSampler { table: AliasTable::new(&weights) }
    }

    /// Side-generic constructor with the conventional `deg^0.75` unigram
    /// smoothing — the `P_n` every shipped training objective draws
    /// negatives from. Objective implementations build their samplers
    /// through this (one call per side) instead of hard-coding the power
    /// at each trainer call site.
    pub fn degree_biased(graph: &BipartiteGraph, side: Side) -> Self {
        Self::new(graph, side, 0.75)
    }

    /// Draws one negative vertex id.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        self.table.sample(rng)
    }

    /// Draws `n` negative vertex ids.
    pub fn sample_many(&self, n: usize, rng: &mut impl Rng) -> Vec<usize> {
        (0..n).map(|_| self.table.sample(rng)).collect()
    }

    /// Draws `n` negative vertex ids from a private stream derived from
    /// `seed`. For callers that need sampler determinism without an RNG
    /// of their own (shard workers derive `seed` from their logical
    /// coordinates); identical `(n, seed)` always yields identical draws.
    pub fn sample_many_seeded(&self, n: usize, seed: u64) -> Vec<usize> {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        self.sample_many(n, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            3,
            3,
            vec![(0, 0, 1.0), (0, 1, 9.0), (1, 1, 1.0)],
        )
    }

    #[test]
    fn fixed_fanout_shape() {
        let g = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_neighbors(&g, Side::Left, &[0, 1], 4, SamplingMode::Uniform, &mut rng);
        assert_eq!(s.len(), 8);
        // User 1 has only neighbour 1.
        assert!(s[4..].iter().all(|&x| x == 1));
    }

    #[test]
    fn isolated_vertices_get_null() {
        let g = toy();
        let mut rng = StdRng::seed_from_u64(2);
        let s = sample_neighbors(&g, Side::Left, &[2], 3, SamplingMode::Uniform, &mut rng);
        assert_eq!(s, vec![null_vertex(&g, Side::Left); 3]);
        assert_eq!(null_vertex(&g, Side::Left), 3); // == num_right
    }

    #[test]
    fn weight_bias_prefers_heavy_edges() {
        let g = toy();
        let mut rng = StdRng::seed_from_u64(3);
        let s =
            sample_neighbors(&g, Side::Left, &[0], 10_000, SamplingMode::WeightBiased, &mut rng);
        let heavy = s.iter().filter(|&&x| x == 1).count() as f64 / s.len() as f64;
        assert!((heavy - 0.9).abs() < 0.02, "heavy fraction {heavy}");
    }

    #[test]
    fn weight_bias_zero_total_falls_back_to_uniform() {
        // All edges incident to user 0 have weight 0. Pre-fix this hit
        // `gen_range(0.0..0.0)` — an empty range — and panicked.
        let g = BipartiteGraph::from_edges_unchecked(
            2,
            2,
            vec![(0, 0, 0.0), (0, 1, 0.0), (1, 1, 3.0)],
        );
        let mut rng = StdRng::seed_from_u64(11);
        let s = sample_neighbors(
            &g,
            Side::Left,
            &[0, 1],
            10_000,
            SamplingMode::WeightBiased,
            &mut rng,
        );
        assert_eq!(s.len(), 20_000);
        // Zero-total vertex: uniform over its two neighbours.
        let first = s[..10_000].iter().filter(|&&x| x == 0).count() as f64 / 10_000.0;
        assert!((first - 0.5).abs() < 0.02, "first fraction {first}");
        // The positive-weight vertex still samples weight-biased.
        assert!(s[10_000..].iter().all(|&x| x == 1));
    }

    #[test]
    fn zero_total_fallback_keeps_rng_stream_aligned() {
        // The fallback must consume exactly one draw per sample, so the
        // samples for vertices *after* a zero-total vertex are identical
        // to what they'd be if the zero-total vertex were uniform-mode.
        let g = BipartiteGraph::from_edges_unchecked(
            2,
            2,
            vec![(0, 0, 0.0), (0, 1, 0.0), (1, 0, 1.0), (1, 1, 3.0)],
        );
        let mut rng_a = StdRng::seed_from_u64(12);
        let a = sample_neighbors(&g, Side::Left, &[0, 1], 8, SamplingMode::WeightBiased, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(12);
        let b0 = sample_neighbors(&g, Side::Left, &[0], 8, SamplingMode::Uniform, &mut rng_b);
        let b1 = sample_neighbors(&g, Side::Left, &[1], 8, SamplingMode::WeightBiased, &mut rng_b);
        assert_eq!(&a[..8], &b0[..]);
        assert_eq!(&a[8..], &b1[..]);
    }

    #[test]
    fn uniform_is_roughly_even() {
        let g = toy();
        let mut rng = StdRng::seed_from_u64(4);
        let s = sample_neighbors(&g, Side::Left, &[0], 10_000, SamplingMode::Uniform, &mut rng);
        let first = s.iter().filter(|&&x| x == 0).count() as f64 / s.len() as f64;
        assert!((first - 0.5).abs() < 0.02, "first fraction {first}");
    }

    #[test]
    fn alias_table_matches_distribution() {
        let table = AliasTable::new(&[1.0, 2.0, 7.0]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        let freqs: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((freqs[0] - 0.1).abs() < 0.01);
        assert!((freqs[1] - 0.2).abs() < 0.01);
        assert!((freqs[2] - 0.7).abs() < 0.01);
    }

    #[test]
    fn alias_table_single_category() {
        let table = AliasTable::new(&[5.0]);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(table.sample(&mut rng), 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn alias_table_rejects_zero_mass() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn negative_sampler_biased_to_popular() {
        let g = BipartiteGraph::from_edges(
            4,
            2,
            vec![(0, 0, 1.0), (1, 0, 1.0), (2, 0, 1.0), (3, 1, 1.0)],
        );
        let sampler = NegativeSampler::new(&g, Side::Right, 0.75);
        let mut rng = StdRng::seed_from_u64(7);
        let draws = sampler.sample_many(50_000, &mut rng);
        let popular = draws.iter().filter(|&&v| v == 0).count() as f64 / draws.len() as f64;
        // deg 3 vs deg 1 with 0.75 power: 3^0.75 / (3^0.75 + 1) ≈ 0.695.
        assert!((popular - 0.695).abs() < 0.02, "popular fraction {popular}");
    }

    #[test]
    fn degree_biased_matches_explicit_power() {
        let g = toy();
        let a = NegativeSampler::degree_biased(&g, Side::Right);
        let b = NegativeSampler::new(&g, Side::Right, 0.75);
        let mut ra = StdRng::seed_from_u64(9);
        let mut rb = StdRng::seed_from_u64(9);
        assert_eq!(a.sample_many(1000, &mut ra), b.sample_many(1000, &mut rb));
    }

    #[test]
    fn seeded_sampling_is_deterministic_and_seed_sensitive() {
        let g = toy();
        let s = NegativeSampler::degree_biased(&g, Side::Left);
        assert_eq!(s.sample_many_seeded(64, 7), s.sample_many_seeded(64, 7));
        assert_ne!(s.sample_many_seeded(64, 7), s.sample_many_seeded(64, 8));
        // Matches an external StdRng with the same seed.
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(s.sample_many_seeded(64, 7), s.sample_many(64, &mut rng));
    }

    #[test]
    fn objective_constructor_path_keeps_zero_weight_fallback() {
        // Regression at the objective-facing call site: training
        // objectives build their samplers with `degree_biased` and embed
        // through weight-biased neighbour sampling. On a graph whose
        // incident weights are all zero, both must stay panic-free (PR 5
        // uniform fallback) and deterministic.
        let g = BipartiteGraph::from_edges_unchecked(
            3,
            3,
            vec![(0, 0, 0.0), (0, 1, 0.0), (1, 1, 0.0), (2, 2, 0.0)],
        );
        let users = NegativeSampler::degree_biased(&g, Side::Left);
        let items = NegativeSampler::degree_biased(&g, Side::Right);
        assert_eq!(users.sample_many_seeded(32, 5), users.sample_many_seeded(32, 5));
        assert_eq!(items.sample_many_seeded(32, 5), items.sample_many_seeded(32, 5));
        let mut rng = StdRng::seed_from_u64(13);
        let s = sample_neighbors(
            &g,
            Side::Left,
            &[0, 1, 2],
            16,
            SamplingMode::WeightBiased,
            &mut rng,
        );
        assert_eq!(s.len(), 48);
        assert!(s.iter().all(|&x| x <= 2), "fallback must stay within real neighbours");
    }

    #[test]
    fn negative_sampler_covers_zero_degree() {
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0, 1.0)]);
        let sampler = NegativeSampler::new(&g, Side::Right, 0.75);
        let mut rng = StdRng::seed_from_u64(8);
        // Vertex 1 has zero degree but must still be sampleable.
        let draws = sampler.sample_many(10_000, &mut rng);
        assert!(draws.contains(&1));
    }
}
