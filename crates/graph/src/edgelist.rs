//! Text edge-list import/export.
//!
//! Real interaction logs arrive as delimited text (`user item [weight]`
//! per line). This module reads and writes that format so the library
//! can ingest external datasets without custom glue:
//!
//! ```text
//! # comments and blank lines are skipped
//! 0<TAB>5<TAB>2.0
//! 1<TAB>3          # weight defaults to 1.0
//! ```
//!
//! Vertex ids may be arbitrary non-negative integers; the reader
//! compacts them to dense `0..n` ranges and returns the id maps so
//! callers can translate back.

use crate::bipartite::BipartiteGraph;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Result of parsing an edge list: the graph plus the original ids in
/// dense order (`left_ids[k]` is the original id of left vertex `k`).
#[derive(Debug)]
pub struct ParsedEdgeList {
    /// The parsed graph with dense vertex ids.
    pub graph: BipartiteGraph,
    /// Original left-side ids, indexed by dense id.
    pub left_ids: Vec<u64>,
    /// Original right-side ids, indexed by dense id.
    pub right_ids: Vec<u64>,
    /// Malformed lines skipped ([`LinePolicy::Lenient`] only; always 0
    /// under [`LinePolicy::Strict`]).
    pub skipped_lines: usize,
}

/// What to do with a malformed data line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LinePolicy {
    /// Fail on the first malformed line with an error naming the
    /// 1-based line number and quoting the offending content.
    #[default]
    Strict,
    /// Skip malformed lines, counting them in
    /// [`ParsedEdgeList::skipped_lines`].
    Lenient,
}

fn bad_line(line_no: usize, msg: &str, content: &str) -> io::Error {
    // Quote the offending content (truncated) so the operator can find
    // and fix it without opening the file at the reported line.
    let shown: String = if content.chars().count() > 60 {
        let head: String = content.chars().take(57).collect();
        format!("{head}...")
    } else {
        content.to_string()
    };
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("line {line_no}: {msg}: `{shown}`"),
    )
}

/// Reads a whitespace/tab/comma-delimited edge list with
/// [`LinePolicy::Strict`].
///
/// Each data line is `left right [weight]`; `#`-prefixed lines and blank
/// lines are skipped; a missing weight defaults to 1.0. The first
/// malformed line fails the parse with an error naming its 1-based line
/// number and quoting its content; use [`read_edge_list_with`] with
/// [`LinePolicy::Lenient`] to skip malformed lines instead.
///
/// ```
/// use hignn_graph::edgelist::read_edge_list;
/// let parsed = read_edge_list("7 9 2.0\n7 11\n".as_bytes()).unwrap();
/// assert_eq!(parsed.graph.num_edges(), 2);
/// assert_eq!(parsed.left_ids, vec![7]);
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> io::Result<ParsedEdgeList> {
    read_edge_list_with(reader, LinePolicy::Strict)
}

/// Reads an edge list with an explicit malformed-line policy.
pub fn read_edge_list_with<R: Read>(reader: R, policy: LinePolicy) -> io::Result<ParsedEdgeList> {
    let mut left_map: HashMap<u64, u32> = HashMap::new();
    let mut right_map: HashMap<u64, u32> = HashMap::new();
    let mut left_ids: Vec<u64> = Vec::new();
    let mut right_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32, f32)> = Vec::new();
    let mut skipped_lines = 0usize;

    let parse_line = |line_no: usize, data: &str| -> io::Result<(u64, u64, f32)> {
        let mut fields =
            data.split(|c: char| c == ',' || c.is_whitespace()).filter(|f| !f.is_empty());
        let left: u64 = fields
            .next()
            .ok_or_else(|| bad_line(line_no, "missing left id", data))?
            .parse()
            .map_err(|_| bad_line(line_no, "left id is not a non-negative integer", data))?;
        let right: u64 = fields
            .next()
            .ok_or_else(|| bad_line(line_no, "missing right id", data))?
            .parse()
            .map_err(|_| bad_line(line_no, "right id is not a non-negative integer", data))?;
        let weight: f32 = match fields.next() {
            Some(w) => {
                w.parse().map_err(|_| bad_line(line_no, "weight is not a number", data))?
            }
            None => 1.0,
        };
        if fields.next().is_some() {
            return Err(bad_line(line_no, "too many fields (expected `left right [weight]`)", data));
        }
        if !(weight.is_finite() && weight > 0.0) {
            return Err(bad_line(line_no, "weight must be positive and finite", data));
        }
        Ok((left, right, weight))
    };

    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let data = line.split('#').next().unwrap_or("").trim();
        if data.is_empty() {
            continue;
        }
        let (left, right, weight) = match parse_line(line_no, data) {
            Ok(parsed) => parsed,
            Err(e) => match policy {
                LinePolicy::Strict => return Err(e),
                LinePolicy::Lenient => {
                    skipped_lines += 1;
                    continue;
                }
            },
        };
        let l = *left_map.entry(left).or_insert_with(|| {
            left_ids.push(left);
            (left_ids.len() - 1) as u32
        });
        let r = *right_map.entry(right).or_insert_with(|| {
            right_ids.push(right);
            (right_ids.len() - 1) as u32
        });
        edges.push((l, r, weight));
    }
    if edges.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            if skipped_lines > 0 {
                format!("edge list has no valid lines ({skipped_lines} malformed lines skipped)")
            } else {
                "edge list is empty".to_string()
            },
        ));
    }
    let graph = BipartiteGraph::from_edges(left_ids.len(), right_ids.len(), edges);
    Ok(ParsedEdgeList { graph, left_ids, right_ids, skipped_lines })
}

/// Writes a graph as a tab-separated edge list (`left right weight`).
pub fn write_edge_list<W: Write>(writer: &mut W, graph: &BipartiteGraph) -> io::Result<()> {
    for &(l, r, w) in graph.edges() {
        writeln!(writer, "{l}\t{r}\t{w}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_delimiters_and_comments() {
        let text = "\
# a comment
10\t20\t2.5
10 21          # trailing comment; no weight -> defaults to 1.0
11,20,1.0

12 22 0.5
";
        let parsed = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(parsed.graph.num_left(), 3);
        assert_eq!(parsed.graph.num_right(), 3);
        assert_eq!(parsed.graph.num_edges(), 4);
        // Dense ids follow first-seen order.
        assert_eq!(parsed.left_ids, vec![10, 11, 12]);
        assert_eq!(parsed.right_ids, vec![20, 21, 22]);
        // Default weight 1.0 for the two-field line.
        assert_eq!(parsed.graph.edge_weight(0, 1), Some(1.0));
        assert_eq!(parsed.graph.edge_weight(0, 0), Some(2.5));
    }

    #[test]
    fn duplicate_edges_merge() {
        let text = "1 2 1.0\n1 2 2.0\n";
        let parsed = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(parsed.graph.num_edges(), 1);
        assert_eq!(parsed.graph.edge_weight(0, 0), Some(3.0));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_edge_list("abc 2 1.0\n".as_bytes()).is_err());
        assert!(read_edge_list("1\n".as_bytes()).is_err());
        assert!(read_edge_list("1 2 -1.0\n".as_bytes()).is_err());
        assert!(read_edge_list("1 2 3 4\n".as_bytes()).is_err());
        assert!(read_edge_list("".as_bytes()).is_err());
        // Error message names the 1-based line and quotes its content.
        let err = read_edge_list("1 2 1.0\nbroken line\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("`broken line`"), "{msg}");
        // Over-long content is truncated, not dumped wholesale.
        let long = format!("1 2 {}\n", "x".repeat(500));
        let msg = read_edge_list(long.as_bytes()).unwrap_err().to_string();
        assert!(msg.contains("..."), "{msg}");
        assert!(msg.len() < 200, "error message too long: {} chars", msg.len());
    }

    #[test]
    fn lenient_mode_skips_and_counts_malformed_lines() {
        let text = "1 2 1.0\nbroken\n3 4\n5 six 2.0\n";
        let parsed = read_edge_list_with(text.as_bytes(), LinePolicy::Lenient).unwrap();
        assert_eq!(parsed.graph.num_edges(), 2);
        assert_eq!(parsed.skipped_lines, 2);
        // Strict mode reports zero skips on clean input.
        let clean = read_edge_list("1 2 1.0\n".as_bytes()).unwrap();
        assert_eq!(clean.skipped_lines, 0);
        // All-malformed input still errors, mentioning the skip count.
        let err = read_edge_list_with("junk\nmore junk\n".as_bytes(), LinePolicy::Lenient)
            .unwrap_err();
        assert!(err.to_string().contains("2 malformed"), "{err}");
    }

    #[test]
    fn roundtrip_through_text() {
        let g = BipartiteGraph::from_edges(2, 3, vec![(0, 0, 1.0), (1, 2, 2.5)]);
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &g).unwrap();
        let parsed = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(parsed.graph.num_edges(), 2);
        assert_eq!(parsed.graph.total_weight(), 3.5);
    }
}
