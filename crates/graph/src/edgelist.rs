//! Text edge-list import/export.
//!
//! Real interaction logs arrive as delimited text (`user item [weight]`
//! per line). This module reads and writes that format so the library
//! can ingest external datasets without custom glue:
//!
//! ```text
//! # comments and blank lines are skipped
//! 0<TAB>5<TAB>2.0
//! 1<TAB>3          # weight defaults to 1.0
//! ```
//!
//! Vertex ids may be arbitrary non-negative integers; the reader
//! compacts them to dense `0..n` ranges and returns the id maps so
//! callers can translate back.

use crate::bipartite::BipartiteGraph;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Result of parsing an edge list: the graph plus the original ids in
/// dense order (`left_ids[k]` is the original id of left vertex `k`).
#[derive(Debug)]
pub struct ParsedEdgeList {
    /// The parsed graph with dense vertex ids.
    pub graph: BipartiteGraph,
    /// Original left-side ids, indexed by dense id.
    pub left_ids: Vec<u64>,
    /// Original right-side ids, indexed by dense id.
    pub right_ids: Vec<u64>,
}

fn bad_line(line_no: usize, msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("line {line_no}: {msg}"))
}

/// Reads a whitespace/tab/comma-delimited edge list.
///
/// Each data line is `left right [weight]`; `#`-prefixed lines and blank
/// lines are skipped; a missing weight defaults to 1.0.
///
/// ```
/// use hignn_graph::edgelist::read_edge_list;
/// let parsed = read_edge_list("7 9 2.0\n7 11\n".as_bytes()).unwrap();
/// assert_eq!(parsed.graph.num_edges(), 2);
/// assert_eq!(parsed.left_ids, vec![7]);
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> io::Result<ParsedEdgeList> {
    let mut left_map: HashMap<u64, u32> = HashMap::new();
    let mut right_map: HashMap<u64, u32> = HashMap::new();
    let mut left_ids: Vec<u64> = Vec::new();
    let mut right_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32, f32)> = Vec::new();

    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let data = line.split('#').next().unwrap_or("").trim();
        if data.is_empty() {
            continue;
        }
        let mut fields = data.split(|c: char| c == ',' || c.is_whitespace()).filter(|f| !f.is_empty());
        let left: u64 = fields
            .next()
            .ok_or_else(|| bad_line(line_no, "missing left id"))?
            .parse()
            .map_err(|_| bad_line(line_no, "left id is not a non-negative integer"))?;
        let right: u64 = fields
            .next()
            .ok_or_else(|| bad_line(line_no, "missing right id"))?
            .parse()
            .map_err(|_| bad_line(line_no, "right id is not a non-negative integer"))?;
        let weight: f32 = match fields.next() {
            Some(w) => w
                .parse()
                .map_err(|_| bad_line(line_no, "weight is not a number"))?,
            None => 1.0,
        };
        if fields.next().is_some() {
            return Err(bad_line(line_no, "too many fields"));
        }
        if !(weight.is_finite() && weight > 0.0) {
            return Err(bad_line(line_no, "weight must be positive and finite"));
        }
        let l = *left_map.entry(left).or_insert_with(|| {
            left_ids.push(left);
            (left_ids.len() - 1) as u32
        });
        let r = *right_map.entry(right).or_insert_with(|| {
            right_ids.push(right);
            (right_ids.len() - 1) as u32
        });
        edges.push((l, r, weight));
    }
    if edges.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "edge list is empty"));
    }
    let graph = BipartiteGraph::from_edges(left_ids.len(), right_ids.len(), edges);
    Ok(ParsedEdgeList { graph, left_ids, right_ids })
}

/// Writes a graph as a tab-separated edge list (`left right weight`).
pub fn write_edge_list<W: Write>(writer: &mut W, graph: &BipartiteGraph) -> io::Result<()> {
    for &(l, r, w) in graph.edges() {
        writeln!(writer, "{l}\t{r}\t{w}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_delimiters_and_comments() {
        let text = "\
# a comment
10\t20\t2.5
10 21          # trailing comment; no weight -> defaults to 1.0
11,20,1.0

12 22 0.5
";
        let parsed = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(parsed.graph.num_left(), 3);
        assert_eq!(parsed.graph.num_right(), 3);
        assert_eq!(parsed.graph.num_edges(), 4);
        // Dense ids follow first-seen order.
        assert_eq!(parsed.left_ids, vec![10, 11, 12]);
        assert_eq!(parsed.right_ids, vec![20, 21, 22]);
        // Default weight 1.0 for the two-field line.
        assert_eq!(parsed.graph.edge_weight(0, 1), Some(1.0));
        assert_eq!(parsed.graph.edge_weight(0, 0), Some(2.5));
    }

    #[test]
    fn duplicate_edges_merge() {
        let text = "1 2 1.0\n1 2 2.0\n";
        let parsed = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(parsed.graph.num_edges(), 1);
        assert_eq!(parsed.graph.edge_weight(0, 0), Some(3.0));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_edge_list("abc 2 1.0\n".as_bytes()).is_err());
        assert!(read_edge_list("1\n".as_bytes()).is_err());
        assert!(read_edge_list("1 2 -1.0\n".as_bytes()).is_err());
        assert!(read_edge_list("1 2 3 4\n".as_bytes()).is_err());
        assert!(read_edge_list("".as_bytes()).is_err());
        // Error message names the line.
        let err = read_edge_list("1 2 1.0\nbroken\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn roundtrip_through_text() {
        let g = BipartiteGraph::from_edges(2, 3, vec![(0, 0, 1.0), (1, 2, 2.5)]);
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &g).unwrap();
        let parsed = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(parsed.graph.num_edges(), 2);
        assert_eq!(parsed.graph.total_weight(), 3.5);
    }
}
