//! Summary statistics for bipartite graphs — the quantities the paper
//! reports in its dataset tables (Tables I and V): vertex counts, edge
//! count, and density, plus degree diagnostics.

use crate::bipartite::{BipartiteGraph, Side};
use std::fmt;

/// Summary statistics of a bipartite graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of left vertices (users / queries).
    pub num_left: usize,
    /// Number of right vertices (items).
    pub num_right: usize,
    /// Number of distinct edges.
    pub num_edges: usize,
    /// Sum of all edge weights (total interaction count).
    pub total_weight: f64,
    /// `num_edges / (num_left * num_right)`.
    pub density: f64,
    /// Mean degree on the left side.
    pub avg_degree_left: f64,
    /// Mean degree on the right side.
    pub avg_degree_right: f64,
    /// Maximum degree on the left side.
    pub max_degree_left: usize,
    /// Maximum degree on the right side.
    pub max_degree_right: usize,
    /// Number of isolated left vertices.
    pub isolated_left: usize,
    /// Number of isolated right vertices.
    pub isolated_right: usize,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn compute(graph: &BipartiteGraph) -> Self {
        let dl = graph.degrees(Side::Left);
        let dr = graph.degrees(Side::Right);
        let avg = |d: &[usize]| {
            if d.is_empty() {
                0.0
            } else {
                d.iter().sum::<usize>() as f64 / d.len() as f64
            }
        };
        GraphStats {
            num_left: graph.num_left(),
            num_right: graph.num_right(),
            num_edges: graph.num_edges(),
            total_weight: graph.total_weight(),
            density: graph.density(),
            avg_degree_left: avg(&dl),
            avg_degree_right: avg(&dr),
            max_degree_left: dl.iter().copied().max().unwrap_or(0),
            max_degree_right: dr.iter().copied().max().unwrap_or(0),
            isolated_left: dl.iter().filter(|&&d| d == 0).count(),
            isolated_right: dr.iter().filter(|&&d| d == 0).count(),
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "left vertices : {}", self.num_left)?;
        writeln!(f, "right vertices: {}", self.num_right)?;
        writeln!(f, "edges         : {}", self.num_edges)?;
        writeln!(f, "total weight  : {:.0}", self.total_weight)?;
        writeln!(f, "density       : {:.3e}", self.density)?;
        writeln!(
            f,
            "avg degree    : {:.2} (left) / {:.2} (right)",
            self.avg_degree_left, self.avg_degree_right
        )?;
        write!(
            f,
            "max degree    : {} (left) / {} (right)",
            self.max_degree_left, self.max_degree_right
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_toy_graph() {
        let g = BipartiteGraph::from_edges(
            3,
            2,
            vec![(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)],
        );
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_left, 3);
        assert_eq!(s.num_right, 2);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.total_weight, 6.0);
        assert!((s.density - 0.5).abs() < 1e-12);
        assert!((s.avg_degree_left - 1.0).abs() < 1e-12);
        assert!((s.avg_degree_right - 1.5).abs() < 1e-12);
        assert_eq!(s.max_degree_left, 2);
        assert_eq!(s.isolated_left, 1);
        assert_eq!(s.isolated_right, 0);
    }

    #[test]
    fn display_renders() {
        let g = BipartiteGraph::from_edges(1, 1, vec![(0, 0, 2.0)]);
        let text = GraphStats::compute(&g).to_string();
        assert!(text.contains("edges"));
        assert!(text.contains("density"));
    }
}
