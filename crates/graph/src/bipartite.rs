//! Weighted bipartite graphs in compressed sparse row form.
//!
//! The paper's data model (Section III.A) is a quadruple
//! `G = (U, I, E, S)`: two vertex sets (users/queries on the *left*,
//! items on the *right*), an edge set, and a weight function `S(e)`
//! giving the connection strength (click counts). [`BipartiteGraph`]
//! stores both adjacency directions in CSR with per-slice cumulative
//! weights so that weight-biased neighbour sampling is a binary search.

use std::collections::HashMap;

/// Which side of the bipartite graph a vertex belongs to.
///
/// In the supervised pipeline the left side holds users and the right side
/// items; in the taxonomy pipeline the left side holds queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// Users (supervised pipeline) or queries (taxonomy pipeline).
    Left,
    /// Items.
    Right,
}

impl Side {
    /// The other side.
    pub fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// One direction of CSR adjacency.
#[derive(Clone, Debug, Default)]
struct Csr {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
    weights: Vec<f32>,
    /// Cumulative weights within each vertex's slice; `cum[k]` is the sum of
    /// `weights[offsets[v]..=k]` for `k` in the slice of `v`.
    cum_weights: Vec<f32>,
}

impl Csr {
    fn build(num_src: usize, edges: &[(u32, u32, f32)], swap: bool) -> Csr {
        let mut degrees = vec![0usize; num_src];
        for &(a, b, _) in edges {
            let src = if swap { b } else { a };
            degrees[src as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(num_src + 1);
        offsets.push(0);
        for d in &degrees {
            offsets.push(offsets.last().unwrap() + d);
        }
        let total = *offsets.last().unwrap();
        let mut neighbors = vec![0u32; total];
        let mut weights = vec![0f32; total];
        let mut cursor = offsets[..num_src].to_vec();
        for &(a, b, w) in edges {
            let (src, dst) = if swap { (b, a) } else { (a, b) };
            let pos = cursor[src as usize];
            neighbors[pos] = dst;
            weights[pos] = w;
            cursor[src as usize] += 1;
        }
        // Sort each slice by neighbour id for deterministic layout.
        let mut cum_weights = vec![0f32; total];
        for v in 0..num_src {
            let (lo, hi) = (offsets[v], offsets[v + 1]);
            let mut pairs: Vec<(u32, f32)> = neighbors[lo..hi]
                .iter()
                .copied()
                .zip(weights[lo..hi].iter().copied())
                .collect();
            pairs.sort_by_key(|&(n, _)| n);
            let mut acc = 0f32;
            for (k, (n, w)) in pairs.into_iter().enumerate() {
                neighbors[lo + k] = n;
                weights[lo + k] = w;
                acc += w;
                cum_weights[lo + k] = acc;
            }
        }
        Csr { offsets, neighbors, weights, cum_weights }
    }

    #[inline]
    fn slice(&self, v: usize) -> (&[u32], &[f32], &[f32]) {
        let (lo, hi) = (self.offsets[v], self.offsets[v + 1]);
        (&self.neighbors[lo..hi], &self.weights[lo..hi], &self.cum_weights[lo..hi])
    }
}

/// A weighted bipartite graph `G = (U, I, E, S)`.
#[derive(Clone, Debug)]
pub struct BipartiteGraph {
    num_left: usize,
    num_right: usize,
    edges: Vec<(u32, u32, f32)>,
    left: Csr,
    right: Csr,
    total_weight: f64,
}

impl BipartiteGraph {
    /// Builds a graph from `(left, right, weight)` edges.
    ///
    /// Parallel edges are merged by summing their weights — this is how
    /// repeated clicks become connection strength, and it is exactly the
    /// accumulation rule of the coarsening step (Eq. 6).
    ///
    /// # Panics
    /// Panics on out-of-range vertex ids or non-positive weights.
    pub fn from_edges(
        num_left: usize,
        num_right: usize,
        raw_edges: impl IntoIterator<Item = (u32, u32, f32)>,
    ) -> Self {
        Self::build(num_left, num_right, raw_edges, true)
    }

    /// Test-only constructor that skips the positive-weight check, so
    /// degenerate states the public constructors reject (e.g. a vertex
    /// whose incident edges all have weight 0) can still be exercised
    /// against defensive code paths such as weight-biased sampling.
    #[cfg(test)]
    pub(crate) fn from_edges_unchecked(
        num_left: usize,
        num_right: usize,
        raw_edges: impl IntoIterator<Item = (u32, u32, f32)>,
    ) -> Self {
        Self::build(num_left, num_right, raw_edges, false)
    }

    fn build(
        num_left: usize,
        num_right: usize,
        raw_edges: impl IntoIterator<Item = (u32, u32, f32)>,
        check_weights: bool,
    ) -> Self {
        let mut merged: HashMap<(u32, u32), f32> = HashMap::new();
        for (l, r, w) in raw_edges {
            assert!((l as usize) < num_left, "left vertex {l} out of range ({num_left})");
            assert!((r as usize) < num_right, "right vertex {r} out of range ({num_right})");
            if check_weights {
                assert!(w > 0.0, "edge weight must be positive, got {w}");
            }
            *merged.entry((l, r)).or_insert(0.0) += w;
        }
        let mut edges: Vec<(u32, u32, f32)> =
            merged.into_iter().map(|((l, r), w)| (l, r, w)).collect();
        edges.sort_unstable_by_key(|&(l, r, _)| (l, r));
        let left = Csr::build(num_left, &edges, false);
        let right = Csr::build(num_right, &edges, true);
        let total_weight = edges.iter().map(|&(_, _, w)| w as f64).sum();
        BipartiteGraph { num_left, num_right, edges, left, right, total_weight }
    }

    /// Number of left vertices (users / queries).
    pub fn num_left(&self) -> usize {
        self.num_left
    }

    /// Number of right vertices (items).
    pub fn num_right(&self) -> usize {
        self.num_right
    }

    /// Number of vertices on `side`.
    pub fn num_vertices(&self, side: Side) -> usize {
        match side {
            Side::Left => self.num_left,
            Side::Right => self.num_right,
        }
    }

    /// Number of (merged) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The merged edge list, sorted by `(left, right)`.
    pub fn edges(&self) -> &[(u32, u32, f32)] {
        &self.edges
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Edge density `|E| / (|U| * |I|)`.
    pub fn density(&self) -> f64 {
        if self.num_left == 0 || self.num_right == 0 {
            0.0
        } else {
            self.edges.len() as f64 / (self.num_left as f64 * self.num_right as f64)
        }
    }

    /// Degree of vertex `v` on `side`.
    pub fn degree(&self, side: Side, v: usize) -> usize {
        let csr = self.csr(side);
        csr.offsets[v + 1] - csr.offsets[v]
    }

    /// Neighbour ids (on the opposite side) and their edge weights.
    pub fn neighbors(&self, side: Side, v: usize) -> (&[u32], &[f32]) {
        let (n, w, _) = self.csr(side).slice(v);
        (n, w)
    }

    /// Neighbour ids, edge weights, and within-slice cumulative weights
    /// (for weight-biased sampling via binary search).
    pub fn neighbors_cum(&self, side: Side, v: usize) -> (&[u32], &[f32], &[f32]) {
        self.csr(side).slice(v)
    }

    /// The weight of edge `(l, r)`, if present.
    pub fn edge_weight(&self, l: usize, r: usize) -> Option<f32> {
        let (nbrs, ws, _) = self.left.slice(l);
        nbrs.binary_search(&(r as u32)).ok().map(|k| ws[k])
    }

    /// Degrees of every vertex on `side`.
    pub fn degrees(&self, side: Side) -> Vec<usize> {
        let csr = self.csr(side);
        csr.offsets.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Weighted degree (sum of incident edge weights) of every vertex.
    pub fn weighted_degrees(&self, side: Side) -> Vec<f64> {
        let csr = self.csr(side);
        (0..self.num_vertices(side))
            .map(|v| {
                let (lo, hi) = (csr.offsets[v], csr.offsets[v + 1]);
                csr.weights[lo..hi].iter().map(|&w| w as f64).sum()
            })
            .collect()
    }

    /// CSR offsets for `side` (useful for building segment-mean inputs).
    pub fn offsets(&self, side: Side) -> &[usize] {
        &self.csr(side).offsets
    }

    /// Flat neighbour array for `side` (aligned with [`Self::offsets`]).
    pub fn flat_neighbors(&self, side: Side) -> &[u32] {
        &self.csr(side).neighbors
    }

    fn csr(&self, side: Side) -> &Csr {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> BipartiteGraph {
        // 3 users, 2 items.
        BipartiteGraph::from_edges(
            3,
            2,
            vec![(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0), (2, 0, 4.0)],
        )
    }

    #[test]
    fn basic_shape() {
        let g = toy();
        assert_eq!(g.num_left(), 3);
        assert_eq!(g.num_right(), 2);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.total_weight(), 10.0);
        assert!((g.density() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_both_sides() {
        let g = toy();
        let (n, w) = g.neighbors(Side::Left, 0);
        assert_eq!(n, &[0, 1]);
        assert_eq!(w, &[1.0, 2.0]);
        let (n, w) = g.neighbors(Side::Right, 1);
        assert_eq!(n, &[0, 1]);
        assert_eq!(w, &[2.0, 3.0]);
        assert_eq!(g.degree(Side::Left, 1), 1);
        assert_eq!(g.degree(Side::Right, 0), 2);
    }

    #[test]
    fn parallel_edges_merge_by_sum() {
        let g = BipartiteGraph::from_edges(1, 1, vec![(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 0), Some(3.5));
    }

    #[test]
    fn edge_weight_lookup() {
        let g = toy();
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
        assert_eq!(g.edge_weight(1, 0), None);
    }

    #[test]
    fn cumulative_weights_are_prefix_sums() {
        let g = toy();
        let (_, w, cum) = g.neighbors_cum(Side::Left, 0);
        assert_eq!(w, &[1.0, 2.0]);
        assert_eq!(cum, &[1.0, 3.0]);
    }

    #[test]
    fn isolated_vertices_have_empty_slices() {
        let g = BipartiteGraph::from_edges(3, 3, vec![(0, 0, 1.0)]);
        assert_eq!(g.degree(Side::Left, 2), 0);
        let (n, w) = g.neighbors(Side::Left, 2);
        assert!(n.is_empty() && w.is_empty());
    }

    #[test]
    fn degrees_and_weighted_degrees() {
        let g = toy();
        assert_eq!(g.degrees(Side::Left), vec![2, 1, 1]);
        assert_eq!(g.degrees(Side::Right), vec![2, 2]);
        assert_eq!(g.weighted_degrees(Side::Right), vec![5.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        BipartiteGraph::from_edges(1, 1, vec![(1, 0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_weight() {
        BipartiteGraph::from_edges(1, 1, vec![(0, 0, 0.0)]);
    }

    #[test]
    fn side_opposite() {
        assert_eq!(Side::Left.opposite(), Side::Right);
        assert_eq!(Side::Right.opposite(), Side::Left);
    }
}
