//! # hignn-graph
//!
//! Bipartite-graph substrate for the HiGNN reproduction: weighted
//! bipartite graphs in CSR form ([`BipartiteGraph`]), fixed-fanout and
//! weight-biased neighbour sampling plus degree-biased negative sampling
//! ([`sampling`]), and cluster-induced coarsening implementing the paper's
//! Eq. 6 ([`mod@coarsen`]).
//!
//! ## Example
//!
//! ```
//! use hignn_graph::{BipartiteGraph, Side};
//! use hignn_graph::coarsen::{coarsen, Assignment};
//!
//! // 4 users x 2 items.
//! let g = BipartiteGraph::from_edges(4, 2, vec![
//!     (0, 0, 1.0), (1, 0, 2.0), (2, 1, 1.0), (3, 1, 4.0),
//! ]);
//! assert_eq!(g.degree(Side::Right, 0), 2);
//!
//! // Merge users pairwise, keep items.
//! let c = coarsen(
//!     &g,
//!     &Assignment::new(vec![0, 0, 1, 1], 2),
//!     &Assignment::identity(2),
//! );
//! assert_eq!(c.edge_weight(0, 0), Some(3.0));
//! ```

#![warn(missing_docs)]

pub mod bipartite;
pub mod coarsen;
pub mod edgelist;
pub mod sampling;
pub mod serialize;
pub mod stats;

pub use bipartite::{BipartiteGraph, Side};
pub use coarsen::{coarsen, Assignment};
pub use sampling::{sample_neighbors, AliasTable, NegativeSampler, SamplingMode};
pub use stats::GraphStats;
