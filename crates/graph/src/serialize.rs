//! Binary serialisation for bipartite graphs.
//!
//! Format (little-endian):
//!
//! ```text
//! graph := "HGBG" u32(version=1) u64(num_left) u64(num_right)
//!          u64(num_edges) { u32(left) u32(right) f32(weight) }*
//! ```

use crate::bipartite::BipartiteGraph;
use std::io::{self, Read, Write};

const GRAPH_MAGIC: &[u8; 4] = b"HGBG";
const VERSION: u32 = 1;

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Writes a graph in the `HGBG` format.
pub fn write_graph<W: Write>(w: &mut W, g: &BipartiteGraph) -> io::Result<()> {
    w.write_all(GRAPH_MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(g.num_left() as u64).to_le_bytes())?;
    w.write_all(&(g.num_right() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for &(l, r, weight) in g.edges() {
        w.write_all(&l.to_le_bytes())?;
        w.write_all(&r.to_le_bytes())?;
        w.write_all(&weight.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a graph in the `HGBG` format.
pub fn read_graph<R: Read>(r: &mut R) -> io::Result<BipartiteGraph> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != GRAPH_MAGIC {
        return Err(bad_data("graph: bad magic"));
    }
    let mut u32buf = [0u8; 4];
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u32buf)
        .map_err(|_| bad_data("graph: truncated in `version` field"))?;
    if u32::from_le_bytes(u32buf) != VERSION {
        return Err(bad_data("graph: unsupported version"));
    }
    let mut read_dim = |r: &mut R, what: &str| -> io::Result<usize> {
        r.read_exact(&mut u64buf)
            .map_err(|_| bad_data(&format!("graph: truncated in `{what}` field")))?;
        Ok(u64::from_le_bytes(u64buf) as usize)
    };
    let num_left = read_dim(r, "num_left")?;
    let num_right = read_dim(r, "num_right")?;
    let num_edges = read_dim(r, "num_edges")?;
    if num_edges > 1 << 32 {
        return Err(bad_data("graph: implausible edge count"));
    }
    // Grow incrementally instead of pre-allocating `num_edges` slots: a
    // corrupt count then fails at EOF without a giant allocation.
    let mut edges = Vec::new();
    let mut f32buf = [0u8; 4];
    for k in 0..num_edges {
        let field = |buf: &mut [u8], r: &mut R, what: &str| -> io::Result<()> {
            r.read_exact(buf).map_err(|_| {
                bad_data(&format!("graph: truncated in edge {k} of {num_edges} (`{what}`)"))
            })
        };
        field(&mut u32buf, r, "left")?;
        let l = u32::from_le_bytes(u32buf);
        field(&mut u32buf, r, "right")?;
        let rt = u32::from_le_bytes(u32buf);
        field(&mut f32buf, r, "weight")?;
        let weight = f32::from_le_bytes(f32buf);
        if (l as usize) >= num_left || (rt as usize) >= num_right {
            return Err(bad_data(&format!("graph: edge {k} endpoint out of range")));
        }
        if !(weight.is_finite() && weight > 0.0) {
            return Err(bad_data(&format!("graph: edge {k} has invalid weight")));
        }
        edges.push((l, rt, weight));
    }
    Ok(BipartiteGraph::from_edges(num_left, num_right, edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            3,
            4,
            vec![(0, 0, 1.5), (1, 2, 2.0), (2, 3, 0.5), (0, 3, 4.0)],
        )
    }

    #[test]
    fn roundtrip() {
        let g = toy();
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        let back = read_graph(&mut buf.as_slice()).unwrap();
        assert_eq!(back.num_left(), 3);
        assert_eq!(back.num_right(), 4);
        assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(read_graph(&mut &b"XXXX\x01\0\0\0"[..]).is_err());
    }

    #[test]
    fn rejects_out_of_range_edges() {
        let g = toy();
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        // Corrupt the left endpoint of the first edge to 0xFFFFFFFF.
        let edge_start = 4 + 4 + 8 + 8 + 8;
        buf[edge_start..edge_start + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_graph(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = BipartiteGraph::from_edges(2, 2, Vec::<(u32, u32, f32)>::new());
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        let back = read_graph(&mut buf.as_slice()).unwrap();
        assert_eq!(back.num_edges(), 0);
        assert_eq!(back.num_left(), 2);
    }
}
