//! Cluster-induced graph coarsening (paper Eq. 6 and the
//! `F(C_u, C_i, G^{l-1})` step of Algorithm 1).
//!
//! Given cluster assignments for both sides, the coarsened graph has one
//! vertex per cluster and an edge `(C_u, C_i)` whose weight is the sum of
//! all member edge weights: `S(C_u, C_i) = Σ S(e)` over
//! `e = (u, i), u ∈ C_u, i ∈ C_i`. An edge exists iff that sum is
//! positive — exactly the paper's rule.

use crate::bipartite::BipartiteGraph;
use std::collections::HashMap;

/// A cluster assignment of one vertex side: `assignment[v]` is the cluster
/// id of vertex `v`, in `0..num_clusters`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    assignment: Vec<u32>,
    num_clusters: usize,
}

impl Assignment {
    /// Wraps a raw assignment vector.
    ///
    /// # Panics
    /// Panics if any entry is `>= num_clusters`.
    pub fn new(assignment: Vec<u32>, num_clusters: usize) -> Self {
        assert!(
            assignment.iter().all(|&c| (c as usize) < num_clusters),
            "assignment id out of range (num_clusters = {num_clusters})"
        );
        Assignment { assignment, num_clusters }
    }

    /// The identity assignment (every vertex its own cluster).
    pub fn identity(n: usize) -> Self {
        Assignment { assignment: (0..n as u32).collect(), num_clusters: n }
    }

    /// Cluster id of vertex `v`.
    #[inline]
    pub fn cluster_of(&self, v: usize) -> u32 {
        self.assignment[v]
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Number of assigned vertices.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True when no vertices are assigned.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Raw assignment slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.assignment
    }

    /// Members of each cluster.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.num_clusters];
        for (v, &c) in self.assignment.iter().enumerate() {
            out[c as usize].push(v as u32);
        }
        out
    }

    /// Size of each cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.num_clusters];
        for &c in &self.assignment {
            out[c as usize] += 1;
        }
        out
    }

    /// Composes this assignment with a coarser one applied to its
    /// clusters: the result maps each original vertex to the coarser
    /// cluster of its cluster. Used to chase a vertex up the HiGNN
    /// hierarchy (`u → C_u^1 → C_u^2 → ...`).
    pub fn compose(&self, coarser: &Assignment) -> Assignment {
        assert_eq!(
            self.num_clusters,
            coarser.len(),
            "compose: coarser assignment must cover this assignment's clusters"
        );
        let assignment = self
            .assignment
            .iter()
            .map(|&c| coarser.cluster_of(c as usize))
            .collect();
        Assignment { assignment, num_clusters: coarser.num_clusters() }
    }
}

/// Coarsens `graph` by the given left/right assignments (Eq. 6).
pub fn coarsen(
    graph: &BipartiteGraph,
    left: &Assignment,
    right: &Assignment,
) -> BipartiteGraph {
    let _span = hignn_obs::span("graph.coarsen");
    if hignn_obs::enabled() {
        hignn_obs::counter_add("graph.coarsen_calls", 1);
        hignn_obs::counter_add("graph.coarsen_edges_in", graph.num_edges() as u64);
    }
    assert_eq!(left.len(), graph.num_left(), "left assignment size mismatch");
    assert_eq!(right.len(), graph.num_right(), "right assignment size mismatch");
    let mut merged: HashMap<(u32, u32), f32> = HashMap::with_capacity(graph.num_edges() / 2);
    for &(l, r, w) in graph.edges() {
        let cl = left.cluster_of(l as usize);
        let cr = right.cluster_of(r as usize);
        *merged.entry((cl, cr)).or_insert(0.0) += w;
    }
    BipartiteGraph::from_edges(
        left.num_clusters(),
        right.num_clusters(),
        merged.into_iter().map(|((l, r), w)| (l, r, w)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> BipartiteGraph {
        // 4 users, 4 items.
        BipartiteGraph::from_edges(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (0, 1, 2.0),
                (1, 0, 3.0),
                (2, 2, 4.0),
                (3, 3, 5.0),
                (3, 2, 6.0),
            ],
        )
    }

    #[test]
    fn coarsen_sums_weights() {
        let g = toy();
        // Users {0,1} -> 0, {2,3} -> 1; items {0,1} -> 0, {2,3} -> 1.
        let left = Assignment::new(vec![0, 0, 1, 1], 2);
        let right = Assignment::new(vec![0, 0, 1, 1], 2);
        let c = coarsen(&g, &left, &right);
        assert_eq!(c.num_left(), 2);
        assert_eq!(c.num_right(), 2);
        assert_eq!(c.num_edges(), 2);
        assert_eq!(c.edge_weight(0, 0), Some(6.0)); // 1 + 2 + 3
        assert_eq!(c.edge_weight(1, 1), Some(15.0)); // 4 + 5 + 6
        assert_eq!(c.edge_weight(0, 1), None);
    }

    #[test]
    fn total_weight_is_preserved() {
        let g = toy();
        let left = Assignment::new(vec![0, 1, 0, 1], 2);
        let right = Assignment::new(vec![1, 0, 1, 0], 2);
        let c = coarsen(&g, &left, &right);
        assert!((c.total_weight() - g.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn identity_assignment_roundtrip() {
        let g = toy();
        let c = coarsen(
            &g,
            &Assignment::identity(g.num_left()),
            &Assignment::identity(g.num_right()),
        );
        assert_eq!(c.num_edges(), g.num_edges());
        for &(l, r, w) in g.edges() {
            assert_eq!(c.edge_weight(l as usize, r as usize), Some(w));
        }
    }

    #[test]
    fn compose_chases_hierarchy() {
        let fine = Assignment::new(vec![0, 0, 1, 2], 3);
        let coarse = Assignment::new(vec![0, 0, 1], 2);
        let chased = fine.compose(&coarse);
        assert_eq!(chased.as_slice(), &[0, 0, 0, 1]);
        assert_eq!(chased.num_clusters(), 2);
    }

    #[test]
    fn members_and_sizes() {
        let a = Assignment::new(vec![1, 0, 1, 1], 2);
        assert_eq!(a.sizes(), vec![1, 3]);
        let m = a.members();
        assert_eq!(m[0], vec![1]);
        assert_eq!(m[1], vec![0, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_assignment() {
        Assignment::new(vec![0, 2], 2);
    }

    #[test]
    fn coarsen_to_single_cluster() {
        let g = toy();
        let c = coarsen(
            &g,
            &Assignment::new(vec![0; 4], 1),
            &Assignment::new(vec![0; 4], 1),
        );
        assert_eq!(c.num_edges(), 1);
        assert_eq!(c.edge_weight(0, 0), Some(21.0));
    }
}
