//! Property-based tests for the bipartite-graph substrate.

use hignn_graph::coarsen::{coarsen, Assignment};
use hignn_graph::{sample_neighbors, BipartiteGraph, SamplingMode, Side};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graph_strategy() -> impl Strategy<Value = BipartiteGraph> {
    (2usize..10, 2usize..10)
        .prop_flat_map(|(nl, nr)| {
            let edges =
                prop::collection::vec((0..nl as u32, 0..nr as u32, 0.1f32..5.0), 1..30);
            (Just(nl), Just(nr), edges)
        })
        .prop_map(|(nl, nr, edges)| BipartiteGraph::from_edges(nl, nr, edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sampled_neighbors_are_real_neighbors(g in graph_strategy(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vertices: Vec<usize> = (0..g.num_left()).collect();
        for mode in [SamplingMode::Uniform, SamplingMode::WeightBiased] {
            let sampled = sample_neighbors(&g, Side::Left, &vertices, 4, mode, &mut rng);
            prop_assert_eq!(sampled.len(), vertices.len() * 4);
            for (k, &s) in sampled.iter().enumerate() {
                let v = vertices[k / 4];
                let (nbrs, _) = g.neighbors(Side::Left, v);
                if nbrs.is_empty() {
                    prop_assert_eq!(s, g.num_right()); // null sentinel
                } else {
                    prop_assert!(nbrs.contains(&(s as u32)));
                }
            }
        }
    }

    #[test]
    fn edge_weights_positive_and_merged(g in graph_strategy()) {
        for &(l, r, w) in g.edges() {
            prop_assert!(w > 0.0);
            prop_assert_eq!(g.edge_weight(l as usize, r as usize), Some(w));
        }
        // Total weight equals sum over both CSR directions.
        let left_sum: f64 = g.weighted_degrees(Side::Left).iter().sum();
        let right_sum: f64 = g.weighted_degrees(Side::Right).iter().sum();
        prop_assert!((left_sum - g.total_weight()).abs() < 1e-3);
        prop_assert!((right_sum - g.total_weight()).abs() < 1e-3);
    }

    #[test]
    fn coarsen_by_identity_is_isomorphic(g in graph_strategy()) {
        let c = coarsen(
            &g,
            &Assignment::identity(g.num_left()),
            &Assignment::identity(g.num_right()),
        );
        prop_assert_eq!(c.edges(), g.edges());
    }

    #[test]
    fn double_coarsen_equals_composed_coarsen(g in graph_strategy()) {
        // Coarsening twice equals coarsening once by the composition.
        let nl = g.num_left();
        let nr = g.num_right();
        let l1 = Assignment::new((0..nl).map(|v| (v / 2) as u32).collect(), nl.div_ceil(2));
        let r1 = Assignment::new((0..nr).map(|v| (v / 2) as u32).collect(), nr.div_ceil(2));
        let g1 = coarsen(&g, &l1, &r1);
        let l2 = Assignment::new(
            (0..g1.num_left()).map(|v| (v / 2) as u32).collect(),
            g1.num_left().div_ceil(2),
        );
        let r2 = Assignment::new(
            (0..g1.num_right()).map(|v| (v / 2) as u32).collect(),
            g1.num_right().div_ceil(2),
        );
        let g2 = coarsen(&g1, &l2, &r2);
        let composed = coarsen(&g, &l1.compose(&l2), &r1.compose(&r2));
        // Weights may differ by f32 summation order; structure must match
        // exactly and weights within rounding.
        prop_assert_eq!(g2.num_edges(), composed.num_edges());
        for (a, b) in g2.edges().iter().zip(composed.edges()) {
            prop_assert_eq!((a.0, a.1), (b.0, b.1));
            prop_assert!((a.2 - b.2).abs() <= 1e-4 * (1.0 + a.2.abs()));
        }
    }

    #[test]
    fn graph_serialization_roundtrips(g in graph_strategy()) {
        use hignn_graph::serialize::{read_graph, write_graph};
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        let back = read_graph(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.edges(), g.edges());
        prop_assert_eq!(back.num_left(), g.num_left());
        prop_assert_eq!(back.num_right(), g.num_right());
    }
}
