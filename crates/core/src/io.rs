//! Persistence for trained hierarchies.
//!
//! Training the HiGNN stack is the expensive step; serving only needs
//! the per-level embeddings and cluster assignments. [`save_hierarchy`]
//! / [`load_hierarchy`] write the whole structure in a dependency-free
//! binary format built from the substrate formats
//! (`hignn_tensor::serialize`, `hignn_graph::serialize`):
//!
//! ```text
//! hierarchy := "HGHI" u32(version=1) u64(num_users) u64(num_items)
//!              u64(num_levels) level*
//! level     := matrix(user_emb) matrix(item_emb)
//!              assignment(user) assignment(item) graph(coarsened)
//!              u64(num_losses) f32*
//! assignment := u64(num_clusters) u64(len) u32*
//! ```

use crate::stack::{Hierarchy, Level};
use hignn_graph::serialize::{read_graph, write_graph};
use hignn_graph::Assignment;
use hignn_tensor::serialize::{read_matrix, write_matrix};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const HIERARCHY_MAGIC: &[u8; 4] = b"HGHI";
const VERSION: u32 = 1;

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_assignment<W: Write>(w: &mut W, a: &Assignment) -> io::Result<()> {
    write_u64(w, a.num_clusters() as u64)?;
    write_u64(w, a.len() as u64)?;
    for &c in a.as_slice() {
        w.write_all(&c.to_le_bytes())?;
    }
    Ok(())
}

fn read_assignment<R: Read>(r: &mut R) -> io::Result<Assignment> {
    let num_clusters = read_u64(r)? as usize;
    let len = read_u64(r)? as usize;
    if len > 1 << 32 || num_clusters > 1 << 32 {
        return Err(bad_data("assignment: implausible size"));
    }
    let mut values = Vec::with_capacity(len);
    let mut buf = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        let c = u32::from_le_bytes(buf);
        if c as usize >= num_clusters {
            return Err(bad_data("assignment: cluster id out of range"));
        }
        values.push(c);
    }
    Ok(Assignment::new(values, num_clusters))
}

/// Writes a hierarchy to any writer.
pub fn write_hierarchy<W: Write>(w: &mut W, h: &Hierarchy) -> io::Result<()> {
    w.write_all(HIERARCHY_MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    write_u64(w, h.num_users() as u64)?;
    write_u64(w, h.num_items() as u64)?;
    write_u64(w, h.num_levels() as u64)?;
    for level in h.levels() {
        write_matrix(w, &level.user_embeddings)?;
        write_matrix(w, &level.item_embeddings)?;
        write_assignment(w, &level.user_assignment)?;
        write_assignment(w, &level.item_assignment)?;
        write_graph(w, &level.coarsened)?;
        write_u64(w, level.epoch_losses.len() as u64)?;
        for &l in &level.epoch_losses {
            w.write_all(&l.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a hierarchy from any reader.
pub fn read_hierarchy<R: Read>(r: &mut R) -> io::Result<Hierarchy> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != HIERARCHY_MAGIC {
        return Err(bad_data("hierarchy: bad magic"));
    }
    let mut vbuf = [0u8; 4];
    r.read_exact(&mut vbuf)?;
    if u32::from_le_bytes(vbuf) != VERSION {
        return Err(bad_data("hierarchy: unsupported version"));
    }
    let num_users = read_u64(r)? as usize;
    let num_items = read_u64(r)? as usize;
    let num_levels = read_u64(r)? as usize;
    if num_levels > 64 {
        return Err(bad_data("hierarchy: implausible level count"));
    }
    let mut levels = Vec::with_capacity(num_levels);
    for _ in 0..num_levels {
        let user_embeddings = read_matrix(r)?;
        let item_embeddings = read_matrix(r)?;
        let user_assignment = read_assignment(r)?;
        let item_assignment = read_assignment(r)?;
        let coarsened = read_graph(r)?;
        let num_losses = read_u64(r)? as usize;
        if num_losses > 1 << 20 {
            return Err(bad_data("hierarchy: implausible loss count"));
        }
        let mut epoch_losses = Vec::with_capacity(num_losses);
        let mut buf = [0u8; 4];
        for _ in 0..num_losses {
            r.read_exact(&mut buf)?;
            epoch_losses.push(f32::from_le_bytes(buf));
        }
        if user_assignment.len() != user_embeddings.rows()
            || item_assignment.len() != item_embeddings.rows()
        {
            return Err(bad_data("hierarchy: level shape mismatch"));
        }
        levels.push(Level {
            user_embeddings,
            item_embeddings,
            user_assignment,
            item_assignment,
            coarsened,
            epoch_losses,
        });
    }
    Hierarchy::from_parts(levels, num_users, num_items)
        .map_err(|e| bad_data(&format!("hierarchy: {e}")))
}

/// Saves a hierarchy to a file.
pub fn save_hierarchy(path: impl AsRef<Path>, h: &Hierarchy) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_hierarchy(&mut w, h)
}

/// Loads a hierarchy from a file.
pub fn load_hierarchy(path: impl AsRef<Path>) -> io::Result<Hierarchy> {
    let mut r = BufReader::new(File::open(path)?);
    read_hierarchy(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use hignn_graph::{BipartiteGraph, SamplingMode};
    use hignn_tensor::init;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny_hierarchy() -> Hierarchy {
        let mut rng = StdRng::seed_from_u64(3);
        let mut edges = Vec::new();
        for u in 0..16u32 {
            for _ in 0..3 {
                edges.push((u, rng.gen_range(0..16u32), 1.0));
            }
        }
        let g = BipartiteGraph::from_edges(16, 16, edges);
        let uf = init::xavier_uniform(16, 6, &mut rng);
        let if_ = init::xavier_uniform(16, 6, &mut rng);
        let cfg = HignnConfig {
            levels: 2,
            sage: BipartiteSageConfig {
                input_dim: 6,
                dim: 6,
                fanouts: vec![3, 2],
                sampling: SamplingMode::Uniform,
                ..Default::default()
            },
            train: SageTrainConfig { epochs: 1, batch_edges: 16, neg_pool: 8, ..Default::default() },
            cluster_counts: ClusterCounts::Fixed(vec![(6, 6), (2, 2)]),
            kmeans: KMeansAlgo::Lloyd,
            normalize: true,
            seed: 4,
        };
        build_hierarchy(&g, &uf, &if_, &cfg)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let h = tiny_hierarchy();
        let mut buf = Vec::new();
        write_hierarchy(&mut buf, &h).unwrap();
        let back = read_hierarchy(&mut buf.as_slice()).unwrap();
        assert_eq!(back.num_levels(), h.num_levels());
        assert_eq!(back.num_users(), h.num_users());
        assert_eq!(back.num_items(), h.num_items());
        for (a, b) in h.levels().iter().zip(back.levels()) {
            assert_eq!(a.user_embeddings, b.user_embeddings);
            assert_eq!(a.item_embeddings, b.item_embeddings);
            assert_eq!(a.user_assignment, b.user_assignment);
            assert_eq!(a.item_assignment, b.item_assignment);
            assert_eq!(a.coarsened.edges(), b.coarsened.edges());
            assert_eq!(a.epoch_losses, b.epoch_losses);
        }
        // Derived hierarchical embeddings are identical.
        assert!(h.hierarchical_users().max_abs_diff(&back.hierarchical_users()) < 1e-9);
    }

    #[test]
    fn file_roundtrip() {
        let h = tiny_hierarchy();
        let path = std::env::temp_dir().join("hignn_io_test.hgh");
        save_hierarchy(&path, &h).unwrap();
        let back = load_hierarchy(&path).unwrap();
        assert_eq!(back.num_levels(), h.num_levels());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_corrupt_stream() {
        let h = tiny_hierarchy();
        let mut buf = Vec::new();
        write_hierarchy(&mut buf, &h).unwrap();
        buf[0] = b'X';
        assert!(read_hierarchy(&mut buf.as_slice()).is_err());
        // Truncation errors out rather than panicking.
        let mut buf2 = Vec::new();
        write_hierarchy(&mut buf2, &h).unwrap();
        buf2.truncate(buf2.len() / 2);
        assert!(read_hierarchy(&mut buf2.as_slice()).is_err());
    }
}
