//! Persistence for trained hierarchies.
//!
//! Training the HiGNN stack is the expensive step; serving only needs
//! the per-level embeddings and cluster assignments. [`save_hierarchy`]
//! / [`load_hierarchy`] write the whole structure in a dependency-free
//! binary format built from the substrate formats
//! (`hignn_tensor::serialize`, `hignn_graph::serialize`).
//!
//! Format v2 (current; every payload is integrity-checked):
//!
//! ```text
//! hierarchy := "HGHI" u32(version=2) section(header) section(level)*
//! section   := u64(payload_len) payload u32(crc32 of payload)
//! header    := u64(num_users) u64(num_items) u64(num_levels)
//! level     := matrix(user_emb) matrix(item_emb)
//!              assignment(user) assignment(item) graph(coarsened)
//!              u64(num_losses) f32*
//! assignment := u64(num_clusters) u64(len) u32*
//! ```
//!
//! Format v1 (legacy; still readable, no checksums):
//!
//! ```text
//! hierarchy := "HGHI" u32(version=1) u64(num_users) u64(num_items)
//!              u64(num_levels) level*
//! ```
//!
//! Robustness guarantees of the readers:
//!
//! * every section's CRC32 is verified before its payload is parsed
//!   (v2), so random corruption surfaces as `InvalidData`, never as a
//!   silently wrong hierarchy;
//! * declared lengths are validated against the bytes actually present
//!   — buffers grow incrementally while reading instead of trusting a
//!   header-declared size, so a corrupt length cannot trigger a huge
//!   up-front allocation;
//! * truncated files fail with a clean `InvalidData`/`UnexpectedEof`
//!   error at every cut point (fuzzed in `tests/`).

use crate::crc32::crc32;
use crate::stack::{Hierarchy, Level};
use hignn_graph::serialize::{read_graph, write_graph};
use hignn_graph::Assignment;
use hignn_tensor::serialize::{read_matrix, write_matrix};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const HIERARCHY_MAGIC: &[u8; 4] = b"HGHI";
/// Current format version (CRC-checked sections).
pub const FORMAT_VERSION: u32 = 2;
/// Legacy checksum-free version; still accepted by [`read_hierarchy`].
pub const FORMAT_VERSION_V1: u32 = 1;

/// Hard cap on a single section's declared payload length (1 GiB).
/// Catches corrupt headers long before address-space exhaustion.
const MAX_SECTION_LEN: u64 = 1 << 30;

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

// ---------------------------------------------------------------------
// CRC-framed sections (shared with `crate::checkpoint`).

/// Writes one length-prefixed, CRC-trailed section.
pub(crate) fn write_section<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    write_u64(w, payload.len() as u64)?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

/// Reads one section, verifying length plausibility and the CRC.
///
/// The payload buffer grows incrementally via `Read::take`, so a
/// corrupt declared length fails at end-of-input instead of
/// pre-allocating the declared size.
pub(crate) fn read_section<R: Read>(r: &mut R, what: &str) -> io::Result<Vec<u8>> {
    let len = read_u64(r)?;
    if len > MAX_SECTION_LEN {
        return Err(bad_data(&format!("{what}: implausible section length {len}")));
    }
    let mut payload = Vec::new();
    let got = r.take(len).read_to_end(&mut payload)?;
    if got as u64 != len {
        return Err(bad_data(&format!(
            "{what}: truncated section (declared {len} bytes, found {got})"
        )));
    }
    let mut crc_buf = [0u8; 4];
    r.read_exact(&mut crc_buf).map_err(|_| {
        bad_data(&format!("{what}: truncated section (checksum missing)"))
    })?;
    let expected = u32::from_le_bytes(crc_buf);
    let actual = crc32(&payload);
    if actual != expected {
        return Err(bad_data(&format!(
            "{what}: checksum mismatch (stored {expected:#010x}, computed {actual:#010x})"
        )));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------
// Zero-copy section access for read-only consumers (serving).

/// A zero-copy reader over CRC-framed sections held in memory.
///
/// Where the streaming reader copies each payload out of a `Read`
/// stream, the cursor walks a byte slice already in memory and hands
/// back *borrowed* payload slices after verifying the frame: declared
/// length within the 1 GiB plausibility cap and the buffer, and the trailing
/// CRC32 matching the payload. Nothing is copied and nothing is
/// mutated, which is what a serving process wants — validate once at
/// load, then parse sections in place.
///
/// Corruption surfaces as `InvalidData`, which [`crate::error::HignnError::io`]
/// promotes to `Corrupt` (exit code 4); a truncated or bit-flipped file
/// can never panic the reader or silently yield wrong sections.
#[derive(Clone, Debug)]
pub struct SectionCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SectionCursor<'a> {
    /// A cursor over raw section frames (no container magic/version).
    pub fn new(buf: &'a [u8]) -> SectionCursor<'a> {
        SectionCursor { buf, pos: 0 }
    }

    /// A cursor positioned after the `HGHI` magic and version word of a
    /// v2 hierarchy image. Rejects bad magic, v1 (which has no section
    /// framing — use [`read_hierarchy`]), and unknown versions.
    pub fn over_hierarchy(bytes: &'a [u8]) -> io::Result<SectionCursor<'a>> {
        if bytes.len() < 8 {
            return Err(bad_data("hierarchy: truncated before version word"));
        }
        if &bytes[..4] != HIERARCHY_MAGIC {
            return Err(bad_data("hierarchy: bad magic"));
        }
        match u32::from_le_bytes(bytes[4..8].try_into().unwrap()) {
            FORMAT_VERSION => Ok(SectionCursor { buf: bytes, pos: 8 }),
            FORMAT_VERSION_V1 => Err(bad_data(
                "hierarchy: v1 files have no section framing (read with read_hierarchy)",
            )),
            other => Err(bad_data(&format!(
                "hierarchy: unsupported version {other} (this build reads v1 and v2)"
            ))),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor has consumed the whole buffer.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Verifies and returns the next section's payload as a borrowed
    /// slice, advancing past its frame.
    pub fn next_section(&mut self, what: &str) -> io::Result<&'a [u8]> {
        let rest = &self.buf[self.pos..];
        if rest.len() < 8 {
            return Err(bad_data(&format!("{what}: truncated section (length missing)")));
        }
        let len = u64::from_le_bytes(rest[..8].try_into().unwrap());
        if len > MAX_SECTION_LEN {
            return Err(bad_data(&format!("{what}: implausible section length {len}")));
        }
        let len = len as usize;
        let body = &rest[8..];
        if body.len() < len {
            return Err(bad_data(&format!(
                "{what}: truncated section (declared {len} bytes, found {})",
                body.len()
            )));
        }
        let payload = &body[..len];
        let tail = &body[len..];
        if tail.len() < 4 {
            return Err(bad_data(&format!("{what}: truncated section (checksum missing)")));
        }
        let expected = u32::from_le_bytes(tail[..4].try_into().unwrap());
        let actual = crc32(payload);
        if actual != expected {
            return Err(bad_data(&format!(
                "{what}: checksum mismatch (stored {expected:#010x}, computed {actual:#010x})"
            )));
        }
        self.pos += 8 + len + 4;
        Ok(payload)
    }
}

/// Reads a hierarchy from an in-memory byte image.
///
/// The v2 path walks the image with a [`SectionCursor`], so payload
/// bytes are CRC-verified and parsed *in place* — no per-section copy —
/// and each level is decoded exactly once. Legacy v1 images fall back
/// to the streaming [`read_hierarchy`]. This is the loading path of the
/// read-only serving view (`hignn-serve`).
pub fn read_hierarchy_bytes(bytes: &[u8]) -> io::Result<Hierarchy> {
    // v1 has no section framing; delegate to the streaming reader.
    if bytes.len() >= 8
        && &bytes[..4] == HIERARCHY_MAGIC
        && u32::from_le_bytes(bytes[4..8].try_into().unwrap()) == FORMAT_VERSION_V1
    {
        return read_hierarchy(&mut &bytes[..]);
    }
    let mut cursor = SectionCursor::over_hierarchy(bytes)?;
    let header = cursor.next_section("hierarchy header")?;
    if header.len() != 24 {
        return Err(bad_data(&format!(
            "hierarchy header: expected 24 bytes, got {}",
            header.len()
        )));
    }
    let num_users = u64::from_le_bytes(header[..8].try_into().unwrap()) as usize;
    let num_items = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
    let num_levels = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
    if num_levels > 64 {
        return Err(bad_data("hierarchy: implausible level count"));
    }
    let mut levels = Vec::with_capacity(num_levels);
    for l in 0..num_levels {
        let what = format!("hierarchy level {}", l + 1);
        let payload = cursor.next_section(&what)?;
        levels.push(decode_level(payload, &what)?);
    }
    if !cursor.is_exhausted() {
        return Err(bad_data(&format!(
            "hierarchy: {} trailing bytes after the last level",
            cursor.remaining()
        )));
    }
    Hierarchy::from_parts(levels, num_users, num_items)
        .map_err(|e| bad_data(&format!("hierarchy: {e}")))
}

// ---------------------------------------------------------------------
// Assignment + level codecs.

fn write_assignment<W: Write>(w: &mut W, a: &Assignment) -> io::Result<()> {
    write_u64(w, a.num_clusters() as u64)?;
    write_u64(w, a.len() as u64)?;
    for &c in a.as_slice() {
        w.write_all(&c.to_le_bytes())?;
    }
    Ok(())
}

fn read_assignment<R: Read>(r: &mut R) -> io::Result<Assignment> {
    let num_clusters = read_u64(r)? as usize;
    let len = read_u64(r)? as usize;
    if len > 1 << 32 || num_clusters > 1 << 32 {
        return Err(bad_data("assignment: implausible size"));
    }
    // Grow incrementally rather than trusting the declared length with
    // one big allocation; truncation then fails at EOF cheaply.
    let mut values = Vec::new();
    let mut buf = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut buf)
            .map_err(|_| bad_data("assignment: truncated cluster array"))?;
        let c = u32::from_le_bytes(buf);
        if c as usize >= num_clusters {
            return Err(bad_data("assignment: cluster id out of range"));
        }
        values.push(c);
    }
    Ok(Assignment::new(values, num_clusters))
}

fn write_level<W: Write>(w: &mut W, level: &Level) -> io::Result<()> {
    write_matrix(w, &level.user_embeddings)?;
    write_matrix(w, &level.item_embeddings)?;
    write_assignment(w, &level.user_assignment)?;
    write_assignment(w, &level.item_assignment)?;
    write_graph(w, &level.coarsened)?;
    write_u64(w, level.epoch_losses.len() as u64)?;
    for &l in &level.epoch_losses {
        w.write_all(&l.to_le_bytes())?;
    }
    Ok(())
}

fn read_level<R: Read>(r: &mut R) -> io::Result<Level> {
    let user_embeddings = read_matrix(r)?;
    let item_embeddings = read_matrix(r)?;
    let user_assignment = read_assignment(r)?;
    let item_assignment = read_assignment(r)?;
    let coarsened = read_graph(r)?;
    let num_losses = read_u64(r)? as usize;
    if num_losses > 1 << 20 {
        return Err(bad_data("hierarchy: implausible loss count"));
    }
    let mut epoch_losses = Vec::new();
    let mut buf = [0u8; 4];
    for _ in 0..num_losses {
        r.read_exact(&mut buf)
            .map_err(|_| bad_data("hierarchy: truncated loss history"))?;
        epoch_losses.push(f32::from_le_bytes(buf));
    }
    if user_assignment.len() != user_embeddings.rows()
        || item_assignment.len() != item_embeddings.rows()
    {
        return Err(bad_data("hierarchy: level shape mismatch"));
    }
    Ok(Level {
        user_embeddings,
        item_embeddings,
        user_assignment,
        item_assignment,
        coarsened,
        epoch_losses,
    })
}

/// Encodes one level into a standalone byte buffer (also used for
/// per-level checkpoint records).
pub(crate) fn encode_level(level: &Level) -> Vec<u8> {
    let mut buf = Vec::new();
    write_level(&mut buf, level).expect("in-memory write cannot fail");
    buf
}

/// Decodes one level from a buffer, rejecting trailing garbage.
///
/// Public so read-only consumers (the serving engine) can decode level
/// payloads handed out by a [`SectionCursor`] without re-reading the
/// file through the copying [`read_hierarchy`] path.
pub fn decode_level(bytes: &[u8], what: &str) -> io::Result<Level> {
    let mut slice = bytes;
    let level = read_level(&mut slice)?;
    if !slice.is_empty() {
        return Err(bad_data(&format!("{what}: {} trailing bytes after level", slice.len())));
    }
    Ok(level)
}

// ---------------------------------------------------------------------
// Whole-hierarchy readers/writers.

/// Writes a hierarchy in the current (v2, CRC-checked) format.
pub fn write_hierarchy<W: Write>(w: &mut W, h: &Hierarchy) -> io::Result<()> {
    w.write_all(HIERARCHY_MAGIC)?;
    w.write_all(&FORMAT_VERSION.to_le_bytes())?;
    let mut header = Vec::with_capacity(24);
    write_u64(&mut header, h.num_users() as u64)?;
    write_u64(&mut header, h.num_items() as u64)?;
    write_u64(&mut header, h.num_levels() as u64)?;
    write_section(w, &header)?;
    for level in h.levels() {
        write_section(w, &encode_level(level))?;
    }
    Ok(())
}

/// Writes a hierarchy in the legacy v1 format (no checksums). Kept so
/// compatibility with pre-v2 files stays testable; new code should use
/// [`write_hierarchy`].
pub fn write_hierarchy_v1<W: Write>(w: &mut W, h: &Hierarchy) -> io::Result<()> {
    w.write_all(HIERARCHY_MAGIC)?;
    w.write_all(&FORMAT_VERSION_V1.to_le_bytes())?;
    write_u64(w, h.num_users() as u64)?;
    write_u64(w, h.num_items() as u64)?;
    write_u64(w, h.num_levels() as u64)?;
    for level in h.levels() {
        write_level(w, level)?;
    }
    Ok(())
}

/// Reads a hierarchy in either format version (v2 with per-section
/// CRC verification, or legacy v1).
pub fn read_hierarchy<R: Read>(r: &mut R) -> io::Result<Hierarchy> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != HIERARCHY_MAGIC {
        return Err(bad_data("hierarchy: bad magic"));
    }
    let mut vbuf = [0u8; 4];
    r.read_exact(&mut vbuf)?;
    match u32::from_le_bytes(vbuf) {
        FORMAT_VERSION => read_hierarchy_v2(r),
        FORMAT_VERSION_V1 => read_hierarchy_v1(r),
        other => Err(bad_data(&format!(
            "hierarchy: unsupported version {other} (this build reads v1 and v2)"
        ))),
    }
}

fn read_hierarchy_v2<R: Read>(r: &mut R) -> io::Result<Hierarchy> {
    let header = read_section(r, "hierarchy header")?;
    if header.len() != 24 {
        return Err(bad_data(&format!(
            "hierarchy header: expected 24 bytes, got {}",
            header.len()
        )));
    }
    let mut hs = header.as_slice();
    let num_users = read_u64(&mut hs)? as usize;
    let num_items = read_u64(&mut hs)? as usize;
    let num_levels = read_u64(&mut hs)? as usize;
    if num_levels > 64 {
        return Err(bad_data("hierarchy: implausible level count"));
    }
    let mut levels = Vec::with_capacity(num_levels);
    for l in 0..num_levels {
        let payload = read_section(r, &format!("hierarchy level {}", l + 1))?;
        levels.push(decode_level(&payload, &format!("hierarchy level {}", l + 1))?);
    }
    Hierarchy::from_parts(levels, num_users, num_items)
        .map_err(|e| bad_data(&format!("hierarchy: {e}")))
}

fn read_hierarchy_v1<R: Read>(r: &mut R) -> io::Result<Hierarchy> {
    let num_users = read_u64(r)? as usize;
    let num_items = read_u64(r)? as usize;
    let num_levels = read_u64(r)? as usize;
    if num_levels > 64 {
        return Err(bad_data("hierarchy: implausible level count"));
    }
    let mut levels = Vec::with_capacity(num_levels);
    for _ in 0..num_levels {
        levels.push(read_level(r)?);
    }
    Hierarchy::from_parts(levels, num_users, num_items)
        .map_err(|e| bad_data(&format!("hierarchy: {e}")))
}

/// Saves a hierarchy to a file **atomically**: the bytes are written to
/// a sibling temp file, fsynced, then renamed over the target, so a
/// crash mid-save can never leave a half-written model at `path`.
pub fn save_hierarchy(path: impl AsRef<Path>, h: &Hierarchy) -> io::Result<()> {
    let _span = hignn_obs::span("io.save_hierarchy");
    let mut bytes = Vec::new();
    write_hierarchy(&mut bytes, h)?;
    if hignn_obs::enabled() {
        hignn_obs::counter_add("io.hierarchy_bytes_written", bytes.len() as u64);
    }
    atomic_write(path.as_ref(), &bytes)
}

/// Loads a hierarchy from a file (either format version).
pub fn load_hierarchy(path: impl AsRef<Path>) -> io::Result<Hierarchy> {
    let _span = hignn_obs::span("io.load_hierarchy");
    let path = path.as_ref();
    if hignn_obs::enabled() {
        if let Ok(meta) = std::fs::metadata(path) {
            hignn_obs::counter_add("io.hierarchy_bytes_read", meta.len());
        }
    }
    let mut r = BufReader::new(File::open(path)?);
    read_hierarchy(&mut r)
}

/// Writes `bytes` to `path` via temp file + fsync + rename (+ directory
/// fsync), the strongest crash-atomicity portable file systems offer.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = BufWriter::new(File::create(&tmp)?);
        f.write_all(bytes)?;
        f.flush()?;
        f.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself. Directory fsync is best-effort: some
    // platforms refuse to open directories for writing.
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use hignn_graph::{BipartiteGraph, SamplingMode};
    use hignn_tensor::init;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny_hierarchy() -> Hierarchy {
        let mut rng = StdRng::seed_from_u64(3);
        let mut edges = Vec::new();
        for u in 0..16u32 {
            for _ in 0..3 {
                edges.push((u, rng.gen_range(0..16u32), 1.0));
            }
        }
        let g = BipartiteGraph::from_edges(16, 16, edges);
        let uf = init::xavier_uniform(16, 6, &mut rng);
        let if_ = init::xavier_uniform(16, 6, &mut rng);
        let cfg = HignnConfig {
            levels: 2,
            sage: BipartiteSageConfig {
                input_dim: 6,
                dim: 6,
                fanouts: vec![3, 2],
                sampling: SamplingMode::Uniform,
                ..Default::default()
            },
            train: SageTrainConfig { epochs: 1, batch_edges: 16, neg_pool: 8, ..Default::default() },
            cluster_counts: ClusterCounts::Fixed(vec![(6, 6), (2, 2)]),
            kmeans: KMeansAlgo::Lloyd,
            normalize: true,
            seed: 4,
        };
        build_hierarchy(&g, &uf, &if_, &cfg)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let h = tiny_hierarchy();
        let mut buf = Vec::new();
        write_hierarchy(&mut buf, &h).unwrap();
        let back = read_hierarchy(&mut buf.as_slice()).unwrap();
        assert_eq!(back.num_levels(), h.num_levels());
        assert_eq!(back.num_users(), h.num_users());
        assert_eq!(back.num_items(), h.num_items());
        for (a, b) in h.levels().iter().zip(back.levels()) {
            assert_eq!(a.user_embeddings, b.user_embeddings);
            assert_eq!(a.item_embeddings, b.item_embeddings);
            assert_eq!(a.user_assignment, b.user_assignment);
            assert_eq!(a.item_assignment, b.item_assignment);
            assert_eq!(a.coarsened.edges(), b.coarsened.edges());
            assert_eq!(a.epoch_losses, b.epoch_losses);
        }
        // Derived hierarchical embeddings are identical.
        assert!(h.hierarchical_users().max_abs_diff(&back.hierarchical_users()) < 1e-9);
    }

    #[test]
    fn v1_files_still_load() {
        let h = tiny_hierarchy();
        let mut v1 = Vec::new();
        write_hierarchy_v1(&mut v1, &h).unwrap();
        let back = read_hierarchy(&mut v1.as_slice()).unwrap();
        assert_eq!(back.num_levels(), h.num_levels());
        for (a, b) in h.levels().iter().zip(back.levels()) {
            assert_eq!(a.user_embeddings, b.user_embeddings);
            assert_eq!(a.coarsened.edges(), b.coarsened.edges());
        }
    }

    #[test]
    fn file_roundtrip() {
        let h = tiny_hierarchy();
        let path = std::env::temp_dir().join("hignn_io_test.hgh");
        save_hierarchy(&path, &h).unwrap();
        let back = load_hierarchy(&path).unwrap();
        assert_eq!(back.num_levels(), h.num_levels());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_corrupt_stream() {
        let h = tiny_hierarchy();
        let mut buf = Vec::new();
        write_hierarchy(&mut buf, &h).unwrap();
        buf[0] = b'X';
        assert!(read_hierarchy(&mut buf.as_slice()).is_err());
        // Truncation errors out rather than panicking.
        let mut buf2 = Vec::new();
        write_hierarchy(&mut buf2, &h).unwrap();
        buf2.truncate(buf2.len() / 2);
        assert!(read_hierarchy(&mut buf2.as_slice()).is_err());
    }

    #[test]
    fn detects_every_single_byte_corruption_in_payloads() {
        let h = tiny_hierarchy();
        let mut clean = Vec::new();
        write_hierarchy(&mut clean, &h).unwrap();
        // Flip one byte at a spread of positions; the v2 reader must
        // error (checksum/format) — silently wrong data is the failure
        // mode this format exists to prevent. Every byte of the file is
        // covered by magic/version checks, section length validation,
        // or a section CRC.
        for pos in (0..clean.len()).step_by(17) {
            let mut evil = clean.clone();
            evil[pos] ^= 0x40;
            assert!(
                read_hierarchy(&mut evil.as_slice()).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn implausible_section_length_is_rejected_without_allocation() {
        let h = tiny_hierarchy();
        let mut buf = Vec::new();
        write_hierarchy(&mut buf, &h).unwrap();
        // Overwrite the header section's length with a huge value; the
        // reader must reject it (not attempt a 2^60-byte allocation).
        buf[8..16].copy_from_slice(&(1u64 << 60).to_le_bytes());
        let err = read_hierarchy(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("implausible"), "{err}");
    }

    #[test]
    fn zero_copy_reader_matches_streaming_reader() {
        let h = tiny_hierarchy();
        let mut buf = Vec::new();
        write_hierarchy(&mut buf, &h).unwrap();
        let zc = read_hierarchy_bytes(&buf).unwrap();
        let streamed = read_hierarchy(&mut buf.as_slice()).unwrap();
        assert_eq!(zc.num_levels(), streamed.num_levels());
        for (a, b) in zc.levels().iter().zip(streamed.levels()) {
            assert_eq!(a.user_embeddings, b.user_embeddings);
            assert_eq!(a.item_embeddings, b.item_embeddings);
            assert_eq!(a.user_assignment, b.user_assignment);
            assert_eq!(a.item_assignment, b.item_assignment);
            assert_eq!(a.coarsened.edges(), b.coarsened.edges());
            assert_eq!(a.epoch_losses, b.epoch_losses);
        }
        // v1 images take the legacy fallback and still load.
        let mut v1 = Vec::new();
        write_hierarchy_v1(&mut v1, &h).unwrap();
        let back = read_hierarchy_bytes(&v1).unwrap();
        assert_eq!(back.num_levels(), h.num_levels());
    }

    #[test]
    fn zero_copy_reader_rejects_every_truncation_and_corruption() {
        let h = tiny_hierarchy();
        let mut clean = Vec::new();
        write_hierarchy(&mut clean, &h).unwrap();
        // Every prefix truncation errors instead of panicking.
        for cut in (0..clean.len()).step_by(23) {
            let err = read_hierarchy_bytes(&clean[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}: {err}");
        }
        // Every spread single-byte flip is detected.
        for pos in (0..clean.len()).step_by(17) {
            let mut evil = clean.clone();
            evil[pos] ^= 0x40;
            assert!(read_hierarchy_bytes(&evil).is_err(), "flip at byte {pos} went undetected");
        }
        // Trailing garbage after the last level is rejected.
        let mut padded = clean.clone();
        padded.extend_from_slice(&[0u8; 9]);
        let err = read_hierarchy_bytes(&padded).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
        // An implausible section length is rejected without allocating.
        let mut huge = clean.clone();
        huge[8..16].copy_from_slice(&(1u64 << 60).to_le_bytes());
        let err = read_hierarchy_bytes(&huge).unwrap_err();
        assert!(err.to_string().contains("implausible"), "{err}");
    }

    #[test]
    fn section_cursor_returns_borrowed_payloads() {
        let mut framed = Vec::new();
        write_section(&mut framed, b"alpha").unwrap();
        write_section(&mut framed, b"").unwrap();
        write_section(&mut framed, b"omega").unwrap();
        let mut cur = SectionCursor::new(&framed);
        let a = cur.next_section("a").unwrap();
        assert_eq!(a, b"alpha");
        // Zero-copy: the payload slice points into the framed buffer.
        assert_eq!(a.as_ptr(), framed[8..].as_ptr());
        assert_eq!(cur.next_section("b").unwrap(), b"");
        assert_eq!(cur.next_section("c").unwrap(), b"omega");
        assert!(cur.is_exhausted());
        assert!(cur.next_section("past end").is_err());
    }

    #[test]
    fn atomic_save_leaves_no_temp_file() {
        let h = tiny_hierarchy();
        let dir = std::env::temp_dir().join(format!("hignn_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.hgh");
        save_hierarchy(&path, &h).unwrap();
        assert!(path.exists());
        assert!(!path.with_extension("tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
