//! The HiGNN hierarchy (paper Algorithm 1).
//!
//! HiGNN stacks bipartite GraphSAGE modules and a deterministic clustering
//! algorithm alternately: level `l` trains a GraphSAGE on `G^{l-1}`,
//! K-means clusters each side's embeddings (`K_u(Z_u^l)`, `K_i(Z_i^l)`),
//! the clusters become the vertices of a coarsened graph `G^l` with
//! summed edge weights (Eq. 6) and mean-member-embedding features, and the
//! process repeats until `L` levels are built.
//!
//! The learned [`Hierarchy`] exposes the paper's *hierarchical user
//! preference* `z_u^H = CONCAT(z_u^1, ..., z_u^L)` and *hierarchical item
//! attractiveness* `z_i^H` by chasing each vertex up its cluster chain.

use crate::checkpoint::{run_fingerprint, CheckpointMeta, CheckpointStore, FaultPlan, WriteSite};
use crate::error::HignnError;
use crate::retry::{with_retry, RetryPolicy, Sleeper, WallSleeper};
use crate::sage::BipartiteSageConfig;
use crate::supervise::{IoFaultArm, PanicOnce, Watchdog};
use crate::trainer::{
    train_unsupervised_checked, EpochHooks, SageTrainConfig, TrainError, TrainGuard,
};
use hignn_cluster::ch_index::select_k_by_ch;
use hignn_cluster::kmeans::{kmeans_with_mode, mean_by_cluster, KMeansConfig};
use hignn_cluster::streaming::single_pass_kmeans_with;
use hignn_graph::{coarsen, Assignment, BipartiteGraph};
use hignn_tensor::parallel::{ParallelExecutor, ROW_CHUNK};
use hignn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many clusters each level uses.
#[derive(Clone, Debug)]
pub enum ClusterCounts {
    /// `K_l = K_{l-1} / alpha` (the supervised pipeline's strategy;
    /// the paper finds `alpha = 5` best).
    AlphaDecay {
        /// The decay factor `alpha`.
        alpha: f64,
    },
    /// Explicit `(K_u, K_i)` per level.
    Fixed(Vec<(usize, usize)>),
    /// Calinski-Harabasz-guided selection (the taxonomy pipeline's
    /// strategy, Eq. 13): per level, the candidate `k` maximising CH wins.
    ChSelect {
        /// Candidate divisors of the current vertex count.
        divisors: Vec<f64>,
    },
}

/// Which K-means variant clusters each level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KMeansAlgo {
    /// Full Lloyd iterations (k-means++ seeded).
    Lloyd,
    /// Single-pass (MacQueen) K-means — the paper's large-scale choice.
    SinglePass,
}

/// Configuration of the full HiGNN stack.
#[derive(Clone, Debug)]
pub struct HignnConfig {
    /// Number of levels `L` (the paper uses 3 for prediction, 4 for
    /// taxonomy).
    pub levels: usize,
    /// GraphSAGE configuration (its `input_dim` is overridden per level).
    pub sage: BipartiteSageConfig,
    /// Unsupervised training hyper-parameters.
    pub train: SageTrainConfig,
    /// Cluster-count strategy.
    pub cluster_counts: ClusterCounts,
    /// K-means variant.
    pub kmeans: KMeansAlgo,
    /// L2-normalise each level's embeddings before clustering and
    /// output (GraphSAGE's standard practice; keeps Euclidean K-means
    /// from clustering by degree-driven norm instead of topic).
    pub normalize: bool,
    /// Base RNG seed (each level derives its own).
    pub seed: u64,
}

impl Default for HignnConfig {
    fn default() -> Self {
        HignnConfig {
            levels: 3,
            sage: BipartiteSageConfig::default(),
            train: SageTrainConfig::default(),
            cluster_counts: ClusterCounts::AlphaDecay { alpha: 5.0 },
            kmeans: KMeansAlgo::Lloyd,
            normalize: true,
            seed: 0,
        }
    }
}

/// One learned level of the hierarchy.
#[derive(Clone, Debug)]
pub struct Level {
    /// `Z_u^l`: embeddings of the left vertices of `G^{l-1}`.
    pub user_embeddings: Matrix,
    /// `Z_i^l`: embeddings of the right vertices of `G^{l-1}`.
    pub item_embeddings: Matrix,
    /// `C_u^l`: left vertices of `G^{l-1}` → left vertices of `G^l`.
    pub user_assignment: Assignment,
    /// `C_i^l`: right-side assignment.
    pub item_assignment: Assignment,
    /// The coarsened graph `G^l`.
    pub coarsened: BipartiteGraph,
    /// Mean unsupervised loss per training epoch (diagnostic).
    pub epoch_losses: Vec<f32>,
}

/// The full hierarchical structure `{G^l, Z_u^l, Z_i^l}`.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    levels: Vec<Level>,
    num_users: usize,
    num_items: usize,
}

impl Hierarchy {
    /// Reassembles a hierarchy from its parts (used by
    /// [`crate::io::read_hierarchy`]). Validates that assignment chains
    /// line up: level 1 covers the original vertices, and each level's
    /// cluster count matches the next level's vertex count.
    pub fn from_parts(
        levels: Vec<Level>,
        num_users: usize,
        num_items: usize,
    ) -> Result<Self, String> {
        let h = Hierarchy { levels, num_users, num_items };
        h.validate()?;
        Ok(h)
    }

    /// Checks the assignment-chain invariants (shared by
    /// [`Hierarchy::from_parts`] and the streaming mutation path in
    /// [`crate::ingest`], which revalidates after patching level 1).
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.levels.is_empty() {
            return Err("no levels".into());
        }
        if self.levels[0].user_assignment.len() != self.num_users {
            return Err(format!(
                "level 1 covers {} users, expected {}",
                self.levels[0].user_assignment.len(),
                self.num_users
            ));
        }
        if self.levels[0].item_assignment.len() != self.num_items {
            return Err(format!(
                "level 1 covers {} items, expected {}",
                self.levels[0].item_assignment.len(),
                self.num_items
            ));
        }
        for w in self.levels.windows(2) {
            if w[0].user_assignment.num_clusters() != w[1].user_assignment.len() {
                return Err("user assignment chain mismatch".into());
            }
            if w[0].item_assignment.num_clusters() != w[1].item_assignment.len() {
                return Err("item assignment chain mismatch".into());
            }
        }
        Ok(())
    }

    /// Crate-private mutable access for the streaming ingest path
    /// ([`crate::ingest::apply_delta`]), which appends level-1 vertices
    /// and swaps coarsened graphs, then revalidates via
    /// [`Hierarchy::validate`]. Not public: external code must go
    /// through the delta protocol so the chain invariants cannot be
    /// silently broken.
    pub(crate) fn parts_mut(&mut self) -> (&mut Vec<Level>, &mut usize, &mut usize) {
        (&mut self.levels, &mut self.num_users, &mut self.num_items)
    }

    /// Number of levels actually built (may be fewer than requested when
    /// the graph collapses early).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The levels, finest first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Number of original users.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of original items.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Dimensionality of the hierarchical user embedding `z_u^H`.
    pub fn user_dim(&self) -> usize {
        self.levels.iter().map(|l| l.user_embeddings.cols()).sum()
    }

    /// Dimensionality of the hierarchical item embedding `z_i^H`.
    pub fn item_dim(&self) -> usize {
        self.levels.iter().map(|l| l.item_embeddings.cols()).sum()
    }

    /// The cluster chain of user `u`: its vertex id in `G^{l-1}` for each
    /// level `l = 1..=L` (`chain[0] == u`).
    pub fn user_chain(&self, u: usize) -> Vec<usize> {
        let mut chain = Vec::with_capacity(self.levels.len());
        let mut v = u;
        for level in &self.levels {
            chain.push(v);
            v = level.user_assignment.cluster_of(v) as usize;
        }
        chain
    }

    /// The cluster chain of item `i`.
    pub fn item_chain(&self, i: usize) -> Vec<usize> {
        let mut chain = Vec::with_capacity(self.levels.len());
        let mut v = i;
        for level in &self.levels {
            chain.push(v);
            v = level.item_assignment.cluster_of(v) as usize;
        }
        chain
    }

    /// `z_u^H = CONCAT(z_u^1, z_u^2, ..., z_u^L)` for one user.
    pub fn hierarchical_user(&self, u: usize) -> Vec<f32> {
        let chain = self.user_chain(u);
        let mut out = Vec::with_capacity(self.user_dim());
        for (level, &v) in self.levels.iter().zip(&chain) {
            out.extend_from_slice(level.user_embeddings.row(v));
        }
        out
    }

    /// `z_i^H` for one item.
    pub fn hierarchical_item(&self, i: usize) -> Vec<f32> {
        let chain = self.item_chain(i);
        let mut out = Vec::with_capacity(self.item_dim());
        for (level, &v) in self.levels.iter().zip(&chain) {
            out.extend_from_slice(level.item_embeddings.row(v));
        }
        out
    }

    /// Hierarchical embeddings of all users (`num_users x user_dim`).
    pub fn hierarchical_users(&self) -> Matrix {
        self.hierarchical_users_with(&ParallelExecutor::single())
    }

    /// [`Hierarchy::hierarchical_users`] with an explicit executor. Each
    /// user's chain walk is independent, so extraction runs over fixed
    /// row chunks merged in chunk order — bit-identical at any worker
    /// count.
    pub fn hierarchical_users_with(&self, exec: &ParallelExecutor) -> Matrix {
        let dim = self.user_dim();
        let mut out = Matrix::zeros(self.num_users, dim);
        let chunks = exec.map_chunks(self.num_users, ROW_CHUNK, |_, range| {
            let mut block = Matrix::zeros(range.len(), dim);
            for (local, u) in range.enumerate() {
                block.set_row(local, &self.hierarchical_user(u));
            }
            block
        });
        let mut row = 0;
        for block in &chunks {
            for r in 0..block.rows() {
                out.set_row(row, block.row(r));
                row += 1;
            }
        }
        out
    }

    /// Hierarchical embeddings of all items (`num_items x item_dim`).
    pub fn hierarchical_items(&self) -> Matrix {
        self.hierarchical_items_with(&ParallelExecutor::single())
    }

    /// [`Hierarchy::hierarchical_items`] with an explicit executor;
    /// bit-identical at any worker count.
    pub fn hierarchical_items_with(&self, exec: &ParallelExecutor) -> Matrix {
        let dim = self.item_dim();
        let mut out = Matrix::zeros(self.num_items, dim);
        let chunks = exec.map_chunks(self.num_items, ROW_CHUNK, |_, range| {
            let mut block = Matrix::zeros(range.len(), dim);
            for (local, i) in range.enumerate() {
                block.set_row(local, &self.hierarchical_item(i));
            }
            block
        });
        let mut row = 0;
        for block in &chunks {
            for r in 0..block.rows() {
                out.set_row(row, block.row(r));
                row += 1;
            }
        }
        out
    }

    /// Item assignment at hierarchy level `l` (1-based), composed down to
    /// the original items — i.e. each original item's cluster id in `G^l`.
    pub fn item_clusters_at(&self, l: usize) -> Assignment {
        assert!(l >= 1 && l <= self.levels.len(), "level out of range");
        let mut acc = self.levels[0].item_assignment.clone();
        for level in &self.levels[1..l] {
            acc = acc.compose(&level.item_assignment);
        }
        acc
    }

    /// User assignment at hierarchy level `l` (1-based), composed down to
    /// the original users.
    pub fn user_clusters_at(&self, l: usize) -> Assignment {
        assert!(l >= 1 && l <= self.levels.len(), "level out of range");
        let mut acc = self.levels[0].user_assignment.clone();
        for level in &self.levels[1..l] {
            acc = acc.compose(&level.user_assignment);
        }
        acc
    }
}

/// `(k, precomputed assignment)` per side — CH selection already ran
/// K-means, so its assignment is reused instead of clustering twice.
type SideCounts = (usize, Option<Vec<u32>>);

fn pick_counts(
    strategy: &ClusterCounts,
    level: usize,
    zu: &Matrix,
    zi: &Matrix,
    rng: &mut StdRng,
) -> (SideCounts, SideCounts) {
    let clamp = |k: usize, n: usize| k.clamp(2.min(n.max(1)), n.max(1));
    match strategy {
        ClusterCounts::AlphaDecay { alpha } => {
            let ku = clamp((zu.rows() as f64 / alpha).round() as usize, zu.rows());
            let ki = clamp((zi.rows() as f64 / alpha).round() as usize, zi.rows());
            ((ku, None), (ki, None))
        }
        ClusterCounts::Fixed(counts) => {
            let (ku, ki) = counts
                .get(level - 1)
                .copied()
                .unwrap_or_else(|| *counts.last().expect("Fixed counts empty"));
            ((clamp(ku, zu.rows()), None), (clamp(ki, zi.rows()), None))
        }
        ClusterCounts::ChSelect { divisors } => {
            let pick = |z: &Matrix, rng: &mut StdRng| -> SideCounts {
                let candidates: Vec<usize> = divisors
                    .iter()
                    .map(|d| clamp((z.rows() as f64 / d).round() as usize, z.rows()))
                    .filter(|&k| k >= 2 && k < z.rows())
                    .collect();
                if candidates.is_empty() {
                    return (clamp(2, z.rows()), None);
                }
                let (k, assignment, _ch) = select_k_by_ch(z, &candidates, rng);
                (k, Some(assignment))
            };
            (pick(zu, rng), pick(zi, rng))
        }
    }
}

/// What to do when [`TrainGuard`] detects a non-finite loss or
/// parameter during a level's training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardPolicy {
    /// No per-epoch checks (the pre-guard behaviour).
    Off,
    /// Check every epoch; stop the whole build with
    /// [`HignnError::Diverged`] on the first NaN/Inf.
    Abort,
    /// Check every epoch; on divergence, roll back to the last
    /// completed level (the last checkpoint) and retrain the failed
    /// level with a perturbed RNG stream, up to `max_retries` times
    /// before giving up with [`HignnError::Diverged`].
    Rollback {
        /// Retraining attempts per level before aborting.
        max_retries: usize,
    },
}

/// Options for [`build_hierarchy_with`]: checkpointing, resume,
/// divergence policy, fault injection, and the supervised execution
/// runtime's knobs (watchdog deadline, transient-I/O retry policy).
#[derive(Clone, Copy)]
pub struct BuildOptions<'a> {
    /// Where to persist per-level checkpoints (`None` = no
    /// checkpointing, the plain [`build_hierarchy`] behaviour).
    pub checkpoint: Option<&'a CheckpointStore>,
    /// Resume from the checkpoint directory instead of starting fresh.
    /// Requires `checkpoint` and a meta record whose fingerprint
    /// matches the current inputs.
    pub resume: bool,
    /// Numeric-health policy.
    pub guard: GuardPolicy,
    /// Deliberate fault to inject (testing only).
    pub fault: Option<FaultPlan>,
    /// Worker threads for training, inference, and clustering. Purely
    /// physical: any value produces bit-identical hierarchies (and
    /// checkpoints written at one thread count resume at any other),
    /// because all work decomposition is derived from the config, never
    /// from this knob.
    pub threads: usize,
    /// Watchdog deadline over the whole build (real time plus any
    /// injected virtual delay). When it expires at an epoch or level
    /// boundary the build performs a graceful checkpoint-and-abort with
    /// [`HignnError::DeadlineExceeded`] (exit code 7); `None` disables
    /// the watchdog.
    pub deadline: Option<std::time::Duration>,
    /// Retry policy for transient faults at the checkpoint write sites.
    pub retry: RetryPolicy,
    /// Injectable waiting between retries. `None` = real
    /// [`WallSleeper`] sleeping; tests pass a
    /// [`crate::retry::RecordingSleeper`] so nothing wall-sleeps.
    pub sleeper: Option<&'a dyn Sleeper>,
}

impl Default for BuildOptions<'_> {
    fn default() -> Self {
        BuildOptions {
            checkpoint: None,
            resume: false,
            guard: GuardPolicy::Off,
            fault: None,
            threads: 1,
            deadline: None,
            retry: RetryPolicy::default(),
            sleeper: None,
        }
    }
}

impl std::fmt::Debug for BuildOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuildOptions")
            .field("checkpoint", &self.checkpoint.is_some())
            .field("resume", &self.resume)
            .field("guard", &self.guard)
            .field("fault", &self.fault)
            .field("threads", &self.threads)
            .field("deadline", &self.deadline)
            .field("retry", &self.retry)
            .field("sleeper", &if self.sleeper.is_some() { "injected" } else { "wall" })
            .finish()
    }
}

/// The stopping condition of Algorithm 1's outer loop: a coarsened
/// graph too small (or too sparse) to cluster further.
fn coarse_exhausted(g: &BipartiteGraph) -> bool {
    g.num_edges() == 0 || g.num_left() < 4 || g.num_right() < 4
}

/// Seed of level `level`'s clustering RNG. Each level derives its own
/// stream (rather than sharing one sequential generator) so that a
/// resumed build replays the exact stream of an uninterrupted one.
/// `retry > 0` perturbs the stream for [`GuardPolicy::Rollback`].
fn level_rng_seed(base: u64, level: usize, retry: u64) -> u64 {
    (base ^ 0xC1A5)
        .wrapping_add(((level - 1) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(retry.wrapping_mul(0x5851_F42D_4C95_7F2D))
}

enum LevelFailure {
    NonFinite { epoch: usize, detail: String },
    Injected { description: String },
    Deadline,
}

/// Trains, clusters, and coarsens one level. Returns the level plus the
/// next level's input features. Pure function of its arguments —
/// the determinism that makes checkpoint/resume byte-identical.
#[allow(clippy::too_many_arguments)]
fn build_one_level(
    g: &BipartiteGraph,
    xu: &Matrix,
    xi: &Matrix,
    cfg: &HignnConfig,
    level: usize,
    retry: u64,
    exec: &ParallelExecutor,
    guard: TrainGuard,
    hooks: EpochHooks<'_>,
) -> Result<(Level, Matrix, Matrix), LevelFailure> {
    let mut rng = StdRng::seed_from_u64(level_rng_seed(cfg.seed, level, retry));
    // (Z_u^l, Z_i^l) <- BG(G^{l-1}, X_u^{l-1}, X_i^{l-1})
    let sage_cfg = BipartiteSageConfig { input_dim: xu.cols(), ..cfg.sage.clone() };
    // Trainable feature tables only make sense at level 1 (raw
    // vertices with uninformative features); coarser levels inherit
    // informative mean-member embeddings.
    let mut train_cfg = cfg.train.clone();
    if level > 1 {
        train_cfg.trainable_features = false;
    }
    // Coarsened graphs are orders of magnitude smaller; give them
    // proportionally more epochs (still cheap) so the upper levels
    // are not undertrained relative to level 1.
    if g.num_edges() < 2000 {
        train_cfg.epochs = (train_cfg.epochs * 4).min(60);
    }
    let train_seed = cfg
        .seed
        .wrapping_add(level as u64)
        .wrapping_add(retry.wrapping_mul(0xA24B_AED4_963E_E407));
    // Algorithm-1 phase spans: `level{l}.{train,embed,cluster,coarsen}`.
    let trained = {
        let _span = hignn_obs::span_owned(format!("level{level}.train"));
        train_unsupervised_checked(
            g, xu, xi, sage_cfg, &train_cfg, train_seed, exec, guard, hooks,
        )
        .map_err(|e| match e {
            TrainError::NonFinite { epoch, detail } => LevelFailure::NonFinite { epoch, detail },
            TrainError::Injected { description, .. } => LevelFailure::Injected { description },
            TrainError::DeadlineExceeded { .. } => LevelFailure::Deadline,
        })
    }?;
    let (mut zu, mut zi) = {
        let _span = hignn_obs::span_owned(format!("level{level}.embed"));
        trained.embed_all_with(g, xu, xi, exec)
    };
    if cfg.normalize {
        zu.l2_normalize_rows();
        zi.l2_normalize_rows();
    }
    if guard.enabled && !(zu.all_finite() && zi.all_finite()) {
        return Err(LevelFailure::NonFinite {
            epoch: train_cfg.epochs.saturating_sub(1),
            detail: "non-finite level embedding after inference".into(),
        });
    }

    // C_u^l, C_i^l <- K_u(Z_u^l), K_i(Z_i^l)
    let (au, ai) = {
        let _span = hignn_obs::span_owned(format!("level{level}.cluster"));
        let ((ku, au_pre), (ki, ai_pre)) =
            pick_counts(&cfg.cluster_counts, level, &zu, &zi, &mut rng);
        let cluster = |z: &Matrix, k: usize, pre: Option<Vec<u32>>, rng: &mut StdRng| -> Vec<u32> {
            if let Some(a) = pre {
                return a;
            }
            match cfg.kmeans {
                KMeansAlgo::Lloyd => {
                    kmeans_with_mode(z, &KMeansConfig::new(k), rng, exec, cfg.train.math)
                        .assignment
                }
                KMeansAlgo::SinglePass => single_pass_kmeans_with(z, k, 4 * k, rng, exec).1,
            }
        };
        let au_raw = cluster(&zu, ku, au_pre, &mut rng);
        let ai_raw = cluster(&zi, ki, ai_pre, &mut rng);
        let num_ku =
            au_raw.iter().map(|&c| c as usize + 1).max().unwrap_or(1).max(ku.min(zu.rows()));
        let num_ki =
            ai_raw.iter().map(|&c| c as usize + 1).max().unwrap_or(1).max(ki.min(zi.rows()));
        (Assignment::new(au_raw, num_ku), Assignment::new(ai_raw, num_ki))
    };

    // (G^l, X_u^l, X_i^l) <- F(C_u^l, C_i^l, G^{l-1})
    let (coarsened, new_xu, new_xi) = {
        let _span = hignn_obs::span_owned(format!("level{level}.coarsen"));
        (
            coarsen(g, &au, &ai),
            mean_by_cluster(&zu, au.as_slice(), au.num_clusters()),
            mean_by_cluster(&zi, ai.as_slice(), ai.num_clusters()),
        )
    };

    Ok((
        Level {
            user_embeddings: zu,
            item_embeddings: zi,
            user_assignment: au,
            item_assignment: ai,
            coarsened,
            epoch_losses: trained.epoch_losses,
        },
        new_xu,
        new_xi,
    ))
}

/// Builds the full HiGNN hierarchy over `graph` (Algorithm 1).
///
/// Stops early (returning fewer levels) if a coarsened graph becomes too
/// small to cluster further or loses all edges. Infallible convenience
/// wrapper over [`build_hierarchy_with`] with default options (no
/// checkpointing, no guard, no faults).
pub fn build_hierarchy(
    graph: &BipartiteGraph,
    user_feats: &Matrix,
    item_feats: &Matrix,
    cfg: &HignnConfig,
) -> Hierarchy {
    build_hierarchy_with(graph, user_feats, item_feats, cfg, &BuildOptions::default())
        .expect("infallible without checkpointing, guard, or fault injection")
}

/// [`build_hierarchy`] with crash safety: per-level checkpointing,
/// resume, numeric-health guards, and (for tests) fault injection.
///
/// With `opts.checkpoint` set, every completed level is persisted
/// atomically before the next begins, and `opts.resume` continues an
/// interrupted run from its last durable level — producing a hierarchy
/// **identical** to the uninterrupted one (each level's RNG stream is
/// derived independently from `cfg.seed`, so nothing depends on how
/// many levels ran in this process).
pub fn build_hierarchy_with(
    graph: &BipartiteGraph,
    user_feats: &Matrix,
    item_feats: &Matrix,
    cfg: &HignnConfig,
    opts: &BuildOptions<'_>,
) -> Result<Hierarchy, HignnError> {
    assert!(cfg.levels >= 1, "build_hierarchy: need at least one level");
    assert_eq!(user_feats.rows(), graph.num_left(), "user feature rows");
    assert_eq!(item_feats.rows(), graph.num_right(), "item feature rows");
    if opts.resume && opts.checkpoint.is_none() {
        return Err(HignnError::Config("resume requires a checkpoint directory".into()));
    }

    // Arm the supervised execution runtime: the deadline watchdog, the
    // injectable transient-I/O fault, and the injectable sleeper for
    // the retry layer's backoff.
    let watchdog = opts.deadline.map(Watchdog::new);
    let io_arm = IoFaultArm::from_plan(opts.fault);
    let wall = WallSleeper;
    let sleeper: &dyn Sleeper = opts.sleeper.unwrap_or(&wall);
    // Retry-wrapped durable write: checks the armed fault first so
    // injected faults exercise exactly the path a real flaky disk hits.
    let durable_write = |site: WriteSite, op: &mut dyn FnMut() -> Result<(), HignnError>| {
        with_retry(&opts.retry, sleeper, site.name(), || {
            if let Some(arm) = &io_arm {
                arm.check(site)?;
            }
            op()
        })
    };

    let fingerprint = run_fingerprint(graph, user_feats, item_feats, cfg);
    let mut levels: Vec<Level> = Vec::with_capacity(cfg.levels);
    if let Some(store) = opts.checkpoint {
        if opts.resume {
            let (_meta, loaded) =
                store.load_state(
                    fingerprint,
                    cfg.levels,
                    cfg.train.objective.kind().id(),
                    cfg.train.math.id(),
                )?;
            levels = loaded;
            if hignn_obs::log_enabled() {
                hignn_obs::log_event(
                    "resume",
                    &[("levels_done", hignn_obs::LogValue::Uint(levels.len() as u64))],
                );
            }
        } else {
            // Fresh run: (re)initialise the meta record.
            durable_write(WriteSite::WriteMeta, &mut || {
                store.write_meta(&CheckpointMeta {
                    fingerprint,
                    seed: cfg.seed,
                    levels_total: cfg.levels as u64,
                    levels_done: 0,
                    threads: opts.threads.max(1) as u64,
                    objective: cfg.train.objective.kind().id(),
                    math: cfg.train.math.id(),
                })
            })?;
        }
    }

    // Replay the loop state up to the last completed level. The inputs
    // of level l+1 are a deterministic function of level l's stored
    // embeddings and assignments, so nothing extra needs persisting.
    let mut g = graph.clone();
    let mut xu = user_feats.clone();
    let mut xi = item_feats.clone();
    for level in &levels {
        g = level.coarsened.clone();
        xu = mean_by_cluster(
            &level.user_embeddings,
            level.user_assignment.as_slice(),
            level.user_assignment.num_clusters(),
        );
        xi = mean_by_cluster(
            &level.item_embeddings,
            level.item_assignment.as_slice(),
            level.item_assignment.num_clusters(),
        );
    }

    let resumed_done = levels.last().is_some_and(|l| coarse_exhausted(&l.coarsened));
    let start = levels.len() + 1;
    let guard = match opts.guard {
        GuardPolicy::Off => TrainGuard::default(),
        _ => TrainGuard::checking(),
    };
    let exec = ParallelExecutor::new(opts.threads);

    if !resumed_done {
        for level in start..=cfg.levels {
            // Level-boundary watchdog check: completed levels are
            // durable, so expiring here is the cleanest abort point.
            if let Some(w) = &watchdog {
                if w.expired() {
                    return Err(w.abort_error(levels.len()));
                }
            }
            let crash_after_epoch = match opts.fault {
                Some(FaultPlan::CrashAfterEpoch { level: fl, epoch }) if fl == level => Some(epoch),
                _ => None,
            };
            let panic_once = match opts.fault {
                Some(FaultPlan::WorkerPanic { level: fl, epoch, shard }) if fl == level => {
                    Some(PanicOnce::new(epoch, shard))
                }
                _ => None,
            };
            let stall_after_epoch = match opts.fault {
                Some(FaultPlan::StallEpoch { level: fl, epoch, virtual_ms }) if fl == level => {
                    Some((epoch, virtual_ms))
                }
                _ => None,
            };
            let hooks = EpochHooks {
                crash_after_epoch,
                panic_once: panic_once.as_ref(),
                stall_after_epoch,
                watchdog: watchdog.as_ref(),
            };
            let mut retry: u64 = 0;
            let (built, new_xu, new_xi) = loop {
                match build_one_level(&g, &xu, &xi, cfg, level, retry, &exec, guard, hooks) {
                    Ok(out) => break out,
                    Err(LevelFailure::Injected { description }) => {
                        return Err(HignnError::FaultInjected {
                            description: format!("level {level}: {description}"),
                        });
                    }
                    Err(LevelFailure::Deadline) => {
                        // Mid-level expiry: the partial level is
                        // discarded (exactly like a crash there) and
                        // every completed level is already durable —
                        // graceful checkpoint-and-abort.
                        let w = watchdog.as_ref().expect("deadline failure requires a watchdog");
                        return Err(w.abort_error(levels.len()));
                    }
                    Err(LevelFailure::NonFinite { epoch, detail }) => match opts.guard {
                        GuardPolicy::Rollback { max_retries } if (retry as usize) < max_retries => {
                            retry += 1;
                        }
                        _ => return Err(HignnError::Diverged { level, epoch, detail }),
                    },
                }
            };

            // Count the level before the meta commit point so the
            // checkpointed counter snapshot includes it.
            if hignn_obs::enabled() {
                hignn_obs::counter_add("stack.levels_built", 1);
            }
            if let Some(store) = opts.checkpoint {
                // Level record first, then the meta commit point: a
                // crash in between leaves an orphan level file that a
                // resumed run simply overwrites. Both writes ride the
                // transient-retry layer; the atomic temp+rename
                // protocol makes a failed attempt invisible, so a
                // retried write is bitwise identical to a first-try one.
                durable_write(WriteSite::SaveLevel, &mut || store.save_level(level, &built))?;
                durable_write(WriteSite::WriteMeta, &mut || {
                    store.write_meta(&CheckpointMeta {
                        fingerprint,
                        seed: cfg.seed,
                        levels_total: cfg.levels as u64,
                        levels_done: level as u64,
                        threads: opts.threads.max(1) as u64,
                        objective: cfg.train.objective.kind().id(),
                        math: cfg.train.math.id(),
                    })
                })?;
            }
            match opts.fault {
                Some(FaultPlan::CrashAfterLevel(fl)) if fl == level => {
                    return Err(HignnError::FaultInjected {
                        description: format!("simulated crash after level {level} checkpoint"),
                    });
                }
                Some(FaultPlan::TruncateCheckpoint { level: fl, keep_bytes }) if fl == level => {
                    let store = opts.checkpoint.ok_or_else(|| {
                        HignnError::Config("truncate fault requires a checkpoint directory".into())
                    })?;
                    store.truncate_level(level, keep_bytes)?;
                    return Err(HignnError::FaultInjected {
                        description: format!(
                            "truncated level {level} checkpoint to {keep_bytes} bytes and crashed"
                        ),
                    });
                }
                Some(FaultPlan::CorruptCheckpoint { level: fl, offset, mask }) if fl == level => {
                    let store = opts.checkpoint.ok_or_else(|| {
                        HignnError::Config("corrupt fault requires a checkpoint directory".into())
                    })?;
                    store.corrupt_level(level, offset, mask)?;
                    return Err(HignnError::FaultInjected {
                        description: format!(
                            "corrupted level {level} checkpoint at offset {offset} and crashed"
                        ),
                    });
                }
                _ => {}
            }

            if hignn_obs::log_enabled() {
                use hignn_obs::LogValue;
                hignn_obs::log_event(
                    "level_done",
                    &[
                        ("level", LogValue::Uint(level as u64)),
                        ("user_clusters", LogValue::Uint(built.user_assignment.num_clusters() as u64)),
                        ("item_clusters", LogValue::Uint(built.item_assignment.num_clusters() as u64)),
                        ("coarse_edges", LogValue::Uint(built.coarsened.num_edges() as u64)),
                    ],
                );
            }
            let done = coarse_exhausted(&built.coarsened);
            g = built.coarsened.clone();
            levels.push(built);
            if done && level < cfg.levels {
                break;
            }
            xu = new_xu;
            xi = new_xi;
        }
    }

    Ok(Hierarchy { levels, num_users: graph.num_left(), num_items: graph.num_right() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hignn_graph::SamplingMode;
    use hignn_tensor::init;
    use rand::Rng;

    fn block_graph(blocks: usize, per: usize, rng: &mut StdRng) -> BipartiteGraph {
        let n = blocks * per;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            let b = u as usize / per;
            for _ in 0..5 {
                let i = (b * per + rng.gen_range(0..per)) as u32;
                edges.push((u, i, 1.0));
            }
        }
        BipartiteGraph::from_edges(n, n, edges)
    }

    fn small_cfg(levels: usize) -> HignnConfig {
        HignnConfig {
            levels,
            sage: BipartiteSageConfig {
                input_dim: 8,
                dim: 8,
                fanouts: vec![4, 3],
                sampling: SamplingMode::Uniform,
                ..Default::default()
            },
            train: SageTrainConfig {
                epochs: 3,
                batch_edges: 32,
                lr: 5e-3,
                neg_pool: 16,
                ..Default::default()
            },
            cluster_counts: ClusterCounts::AlphaDecay { alpha: 4.0 },
            kmeans: KMeansAlgo::Lloyd,
            normalize: true,
            seed: 1,
        }
    }

    #[test]
    fn builds_requested_levels() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = block_graph(4, 10, &mut rng);
        let uf = init::xavier_uniform(40, 8, &mut rng);
        let if_ = init::xavier_uniform(40, 8, &mut rng);
        let h = build_hierarchy(&g, &uf, &if_, &small_cfg(2));
        assert_eq!(h.num_levels(), 2);
        assert_eq!(h.num_users(), 40);
        // Level 1 embeds original vertices; level 2 embeds ~40/4 clusters.
        assert_eq!(h.levels()[0].user_embeddings.rows(), 40);
        let k1 = h.levels()[0].user_assignment.num_clusters();
        assert_eq!(h.levels()[1].user_embeddings.rows(), k1);
        assert!((2..=12).contains(&k1), "k1 = {k1}");
    }

    #[test]
    fn hierarchical_embeddings_concat_levels() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = block_graph(3, 8, &mut rng);
        let uf = init::xavier_uniform(24, 8, &mut rng);
        let if_ = init::xavier_uniform(24, 8, &mut rng);
        let h = build_hierarchy(&g, &uf, &if_, &small_cfg(2));
        assert_eq!(h.user_dim(), 16);
        let zh = h.hierarchical_users();
        assert_eq!(zh.shape(), (24, 16));
        // The chained embedding equals level embeddings at chain positions.
        let chain = h.user_chain(5);
        let manual: Vec<f32> = h.levels()[0]
            .user_embeddings
            .row(chain[0])
            .iter()
            .chain(h.levels()[1].user_embeddings.row(chain[1]))
            .copied()
            .collect();
        assert_eq!(zh.row(5), manual.as_slice());
    }

    #[test]
    fn coarsening_preserves_total_weight() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = block_graph(3, 8, &mut rng);
        let uf = init::xavier_uniform(24, 8, &mut rng);
        let if_ = init::xavier_uniform(24, 8, &mut rng);
        let h = build_hierarchy(&g, &uf, &if_, &small_cfg(2));
        for level in h.levels() {
            assert!((level.coarsened.total_weight() - g.total_weight()).abs() < 1e-3);
        }
    }

    #[test]
    fn clusters_at_composes() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = block_graph(3, 8, &mut rng);
        let uf = init::xavier_uniform(24, 8, &mut rng);
        let if_ = init::xavier_uniform(24, 8, &mut rng);
        let h = build_hierarchy(&g, &uf, &if_, &small_cfg(2));
        let at2 = h.item_clusters_at(2);
        for i in 0..24 {
            let chain = h.item_chain(i);
            let expected = h.levels()[1].item_assignment.cluster_of(chain[1]);
            assert_eq!(at2.cluster_of(i), expected);
        }
    }

    #[test]
    fn recovers_block_structure_at_top_level() {
        // 3 blocks of 12; after one level with alpha ~ 12 the user clusters
        // should align with blocks far better than chance.
        let mut rng = StdRng::seed_from_u64(9);
        let g = block_graph(3, 12, &mut rng);
        let uf = init::xavier_uniform(36, 8, &mut rng);
        let if_ = init::xavier_uniform(36, 8, &mut rng);
        let mut cfg = small_cfg(1);
        cfg.cluster_counts = ClusterCounts::Fixed(vec![(3, 3)]);
        cfg.train.epochs = 30;
        cfg.train.lr = 1e-2;
        let h = build_hierarchy(&g, &uf, &if_, &cfg);
        let assignment: Vec<u32> = (0..36)
            .map(|u| h.levels()[0].user_assignment.cluster_of(u))
            .collect();
        let truth: Vec<u32> = (0..36).map(|u| (u / 12) as u32).collect();
        let nmi = hignn_metrics::normalized_mutual_info(&assignment, &truth);
        assert!(nmi > 0.5, "block recovery NMI {nmi}");
    }

    #[test]
    fn ch_select_strategy_runs() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = block_graph(3, 8, &mut rng);
        let uf = init::xavier_uniform(24, 8, &mut rng);
        let if_ = init::xavier_uniform(24, 8, &mut rng);
        let mut cfg = small_cfg(2);
        cfg.cluster_counts = ClusterCounts::ChSelect { divisors: vec![3.0, 5.0, 8.0] };
        let h = build_hierarchy(&g, &uf, &if_, &cfg);
        assert!(h.num_levels() >= 1);
    }

    #[test]
    fn single_pass_kmeans_strategy_runs() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = block_graph(3, 8, &mut rng);
        let uf = init::xavier_uniform(24, 8, &mut rng);
        let if_ = init::xavier_uniform(24, 8, &mut rng);
        let mut cfg = small_cfg(1);
        cfg.kmeans = KMeansAlgo::SinglePass;
        let h = build_hierarchy(&g, &uf, &if_, &cfg);
        assert_eq!(h.num_levels(), 1);
    }
}
