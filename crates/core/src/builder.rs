//! Builder-style configuration: one validated entry point for training.
//!
//! Historically four overlapping config surfaces fed a hierarchy build —
//! [`SageTrainConfig`], [`BipartiteSageConfig`], [`HignnConfig`], and
//! [`BuildOptions`] — each carrying its own defaults and no validation
//! until deep inside the build. [`HignnBuilder`] collapses them: every
//! knob (including the `threads` worker count, which appears here
//! **exactly once**) is set through one chainable builder, and
//! [`HignnBuilder::build`] validates the whole configuration up front,
//! returning a frozen [`TrainSpec`] that runs the build.
//!
//! ```
//! use hignn::prelude::*;
//! use hignn_graph::BipartiteGraph;
//! use hignn_tensor::init;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut edges = Vec::new();
//! for u in 0..20u32 {
//!     let base = if u < 10 { 0 } else { 10 };
//!     for k in 0..4u32 { edges.push((u, base + (u + k) % 10, 1.0)); }
//! }
//! let graph = BipartiteGraph::from_edges(20, 20, edges);
//! let mut rng = StdRng::seed_from_u64(0);
//! let user_feats = init::xavier_uniform(20, 8, &mut rng);
//! let item_feats = init::xavier_uniform(20, 8, &mut rng);
//!
//! let spec = HignnBuilder::new()
//!     .levels(2)
//!     .input_dim(8)
//!     .embedding_dim(8)
//!     .fanouts(vec![3, 2])
//!     .epochs(1)
//!     .batch_edges(32)
//!     .alpha_decay(4.0)
//!     .seed(7)
//!     .threads(1)
//!     .build()
//!     .unwrap();
//! let hierarchy = spec.run(&graph, &user_feats, &item_feats).unwrap();
//! assert_eq!(hierarchy.hierarchical_users().rows(), 20);
//! ```

use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::checkpoint::{CheckpointStore, FaultPlan};
use crate::error::HignnError;
use crate::objective::ObjectiveSpec;
use crate::retry::RetryPolicy;
use crate::sage::{Aggregator, BipartiteSageConfig};
use crate::stack::{
    build_hierarchy_with, BuildOptions, ClusterCounts, GuardPolicy, Hierarchy, HignnConfig,
    KMeansAlgo,
};
use crate::trainer::SageTrainConfig;
use hignn_graph::{BipartiteGraph, SamplingMode};
use hignn_tensor::{MathMode, Matrix};

/// Chainable, validated configuration of a full HiGNN training run.
///
/// Construct with [`HignnBuilder::new`] (paper defaults), override what
/// you need, then call [`HignnBuilder::build`] to validate everything at
/// once and obtain a [`TrainSpec`].
#[derive(Clone, Debug)]
pub struct HignnBuilder {
    cfg: HignnConfig,
    threads: usize,
    guard: GuardPolicy,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    fault: Option<FaultPlan>,
    deadline: Option<Duration>,
    retry: RetryPolicy,
}

impl Default for HignnBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl HignnBuilder {
    /// A builder with the paper's defaults (3 levels, mean aggregator,
    /// alpha-decay cluster counts, 1 worker thread).
    pub fn new() -> Self {
        HignnBuilder {
            cfg: HignnConfig::default(),
            threads: 1,
            guard: GuardPolicy::Off,
            checkpoint_dir: None,
            resume: false,
            fault: None,
            deadline: None,
            retry: RetryPolicy::default(),
        }
    }

    // --- hierarchy shape -------------------------------------------------

    /// Number of levels `L`.
    pub fn levels(mut self, levels: usize) -> Self {
        self.cfg.levels = levels;
        self
    }

    /// Base RNG seed (each level derives its own stream).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// L2-normalise each level's embeddings (default on).
    pub fn normalize(mut self, normalize: bool) -> Self {
        self.cfg.normalize = normalize;
        self
    }

    // --- GraphSAGE -------------------------------------------------------

    /// Input feature dimensionality of level 1.
    pub fn input_dim(mut self, dim: usize) -> Self {
        self.cfg.sage.input_dim = dim;
        self
    }

    /// Embedding dimensionality of every step output.
    pub fn embedding_dim(mut self, dim: usize) -> Self {
        self.cfg.sage.dim = dim;
        self
    }

    /// Neighbours sampled per depth (`fanouts.len()` = number of steps).
    pub fn fanouts(mut self, fanouts: Vec<usize>) -> Self {
        self.cfg.sage.fanouts = fanouts;
        self
    }

    /// Neighbour sampling mode (uniform or edge-weight-biased).
    pub fn sampling(mut self, mode: SamplingMode) -> Self {
        self.cfg.sage.sampling = mode;
        self
    }

    /// Neighbourhood aggregator (mean in the paper).
    pub fn aggregator(mut self, agg: Aggregator) -> Self {
        self.cfg.sage.aggregator = agg;
        self
    }

    /// Share weights across sides (query-item variant, Section V.B).
    pub fn shared_weights(mut self, shared: bool) -> Self {
        self.cfg.sage.shared_weights = shared;
        self
    }

    /// Replaces the whole GraphSAGE sub-config at once.
    pub fn sage_config(mut self, sage: BipartiteSageConfig) -> Self {
        self.cfg.sage = sage;
        self
    }

    // --- training --------------------------------------------------------

    /// Training epochs per level.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.cfg.train.epochs = epochs;
        self
    }

    /// Edges per minibatch.
    pub fn batch_edges(mut self, batch_edges: usize) -> Self {
        self.cfg.train.batch_edges = batch_edges;
        self
    }

    /// Learning rate.
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.cfg.train.lr = lr;
        self
    }

    /// Learn level-1 input features instead of using the provided ones.
    pub fn trainable_features(mut self, trainable: bool) -> Self {
        self.cfg.train.trainable_features = trainable;
        self
    }

    /// Gradient shards per batch. Part of the numeric contract: changing
    /// it changes results (unlike [`HignnBuilder::threads`]).
    pub fn grad_shards(mut self, shards: usize) -> Self {
        self.cfg.train.grad_shards = shards;
        self
    }

    /// Training objective (default: Eq. 5 edge reconstruction). The
    /// choice is recorded in checkpoint metadata, so a resumed run must
    /// use the same objective.
    pub fn objective(mut self, objective: ObjectiveSpec) -> Self {
        self.cfg.train.objective = objective;
        self
    }

    /// Math tier for the hot kernels (default [`MathMode::Bitwise`]).
    /// [`MathMode::FastMath`] vectorises matmul/activation/optimizer
    /// loops with a relaxed — but still deterministic — accumulation
    /// order. The choice is recorded in checkpoint metadata, so a
    /// resumed run must use the same tier.
    pub fn math(mut self, math: MathMode) -> Self {
        self.cfg.train.math = math;
        self
    }

    /// Replaces the whole training sub-config at once.
    pub fn train_config(mut self, train: SageTrainConfig) -> Self {
        self.cfg.train = train;
        self
    }

    // --- clustering ------------------------------------------------------

    /// Cluster-count strategy `K_l = K_{l-1} / alpha`.
    pub fn alpha_decay(mut self, alpha: f64) -> Self {
        self.cfg.cluster_counts = ClusterCounts::AlphaDecay { alpha };
        self
    }

    /// Explicit `(K_u, K_i)` per level.
    pub fn fixed_counts(mut self, counts: Vec<(usize, usize)>) -> Self {
        self.cfg.cluster_counts = ClusterCounts::Fixed(counts);
        self
    }

    /// Calinski-Harabasz-guided cluster-count selection (Eq. 13).
    pub fn ch_select(mut self, divisors: Vec<f64>) -> Self {
        self.cfg.cluster_counts = ClusterCounts::ChSelect { divisors };
        self
    }

    /// K-means variant (Lloyd or single-pass).
    pub fn kmeans(mut self, algo: KMeansAlgo) -> Self {
        self.cfg.kmeans = algo;
        self
    }

    // --- execution -------------------------------------------------------

    /// Worker threads for training, inference, and clustering. Purely
    /// physical: any value >= 1 produces bit-identical hierarchies.
    /// This is the *only* place the thread count is configured.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Numeric-health policy on NaN/Inf during training.
    pub fn guard(mut self, guard: GuardPolicy) -> Self {
        self.guard = guard;
        self
    }

    /// Persist per-level checkpoints under `dir` (created on demand).
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Resume from the checkpoint directory instead of starting fresh.
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Injects a deliberate fault (testing only).
    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Watchdog deadline over the whole build. On expiry the run
    /// performs a graceful checkpoint-and-abort with exit code 7
    /// instead of hanging; `--resume` then continues byte-identically.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Retry budget for transient I/O faults at the durable write
    /// sites (exponential backoff; see [`RetryPolicy`]). The CLI's
    /// `--max-retries` flag lands here.
    pub fn max_retries(mut self, max_retries: u32) -> Self {
        self.retry = RetryPolicy::with_max_retries(max_retries);
        self
    }

    /// Full retry policy, for callers that also tune the backoff
    /// schedule (the test harness drives this with a zero base delay).
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    // --- finalisation ----------------------------------------------------

    /// Validates every knob at once and freezes the configuration.
    pub fn build(self) -> Result<TrainSpec, HignnError> {
        let err = |msg: String| Err(HignnError::Config(msg));
        if self.cfg.levels == 0 {
            return err("levels must be at least 1".into());
        }
        if self.threads == 0 {
            return err("threads must be at least 1 (0 workers cannot make progress)".into());
        }
        if self.cfg.sage.fanouts.is_empty() {
            return err("fanouts must name at least one aggregation step".into());
        }
        if self.cfg.sage.fanouts.contains(&0) {
            return err("every fanout must be at least 1".into());
        }
        if self.cfg.sage.input_dim == 0 || self.cfg.sage.dim == 0 {
            return err("input_dim and embedding_dim must be positive".into());
        }
        if self.cfg.train.epochs == 0 {
            return err("epochs must be at least 1".into());
        }
        if self.cfg.train.batch_edges == 0 {
            return err("batch_edges must be at least 1".into());
        }
        if !(self.cfg.train.lr.is_finite() && self.cfg.train.lr > 0.0) {
            return err(format!("learning rate must be finite and positive, got {}", self.cfg.train.lr));
        }
        if self.cfg.train.grad_shards == 0 {
            return err("grad_shards must be at least 1".into());
        }
        match self.cfg.train.objective {
            ObjectiveSpec::EdgeReconstruction => {}
            ObjectiveSpec::HierarchicalContrastive { temperature } => {
                if !(temperature.is_finite() && temperature > 0.0) {
                    return err(format!(
                        "contrastive temperature must be finite and positive, got {temperature}"
                    ));
                }
            }
            ObjectiveSpec::ClusterConstraint { lambda } => {
                if !(lambda.is_finite() && lambda >= 0.0) {
                    return err(format!(
                        "cluster-constraint lambda must be finite and non-negative, got {lambda}"
                    ));
                }
            }
        }
        match &self.cfg.cluster_counts {
            ClusterCounts::AlphaDecay { alpha } => {
                if !(alpha.is_finite() && *alpha > 1.0) {
                    return err(format!("alpha decay factor must be > 1, got {alpha}"));
                }
            }
            ClusterCounts::Fixed(counts) => {
                if counts.is_empty() {
                    return err("fixed cluster counts must name at least one level".into());
                }
            }
            ClusterCounts::ChSelect { divisors } => {
                if divisors.is_empty() {
                    return err("CH selection needs at least one candidate divisor".into());
                }
            }
        }
        if self.resume && self.checkpoint_dir.is_none() {
            return err("resume requires a checkpoint directory".into());
        }
        let fault_needs_store = matches!(
            self.fault,
            Some(FaultPlan::TruncateCheckpoint { .. } | FaultPlan::CorruptCheckpoint { .. })
        );
        if fault_needs_store && self.checkpoint_dir.is_none() {
            return err("checkpoint faults require a checkpoint directory".into());
        }
        if let Some(d) = self.deadline {
            if d.is_zero() {
                return err("deadline must be positive (zero would abort before any work)".into());
            }
        }
        Ok(TrainSpec {
            cfg: self.cfg,
            threads: self.threads,
            guard: self.guard,
            checkpoint_dir: self.checkpoint_dir,
            resume: self.resume,
            fault: self.fault,
            deadline: self.deadline,
            retry: self.retry,
        })
    }
}

/// A validated, frozen training configuration produced by
/// [`HignnBuilder::build`]. Running it is deterministic in everything
/// except [`TrainSpec::threads`], which is purely physical.
#[derive(Clone, Debug)]
pub struct TrainSpec {
    cfg: HignnConfig,
    threads: usize,
    guard: GuardPolicy,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    fault: Option<FaultPlan>,
    deadline: Option<Duration>,
    retry: RetryPolicy,
}

impl TrainSpec {
    /// The underlying (validated) stack configuration.
    pub fn config(&self) -> &HignnConfig {
        &self.cfg
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Numeric-health policy.
    pub fn guard(&self) -> GuardPolicy {
        self.guard
    }

    /// Checkpoint directory, if checkpointing is enabled.
    pub fn checkpoint_dir(&self) -> Option<&Path> {
        self.checkpoint_dir.as_deref()
    }

    /// Whether the run resumes from the checkpoint directory.
    pub fn resume(&self) -> bool {
        self.resume
    }

    /// Builds the full hierarchy (Algorithm 1) under this spec.
    pub fn run(
        &self,
        graph: &BipartiteGraph,
        user_feats: &Matrix,
        item_feats: &Matrix,
    ) -> Result<Hierarchy, HignnError> {
        let store = match &self.checkpoint_dir {
            Some(dir) => Some(CheckpointStore::create(dir)?),
            None => None,
        };
        let opts = BuildOptions {
            checkpoint: store.as_ref(),
            resume: self.resume,
            guard: self.guard,
            fault: self.fault,
            threads: self.threads,
            deadline: self.deadline,
            retry: self.retry,
            sleeper: None,
        };
        build_hierarchy_with(graph, user_feats, item_feats, &self.cfg, &opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hignn_tensor::init;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_inputs() -> (BipartiteGraph, Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut edges = Vec::new();
        for u in 0..24u32 {
            let b = u / 8;
            for _ in 0..4 {
                edges.push((u, b * 8 + rng.gen_range(0..8), 1.0));
            }
        }
        let g = BipartiteGraph::from_edges(24, 24, edges);
        let uf = init::xavier_uniform(24, 8, &mut rng);
        let if_ = init::xavier_uniform(24, 8, &mut rng);
        (g, uf, if_)
    }

    fn small_builder() -> HignnBuilder {
        HignnBuilder::new()
            .levels(2)
            .input_dim(8)
            .embedding_dim(8)
            .fanouts(vec![4, 3])
            .sampling(SamplingMode::Uniform)
            .epochs(2)
            .batch_edges(32)
            .alpha_decay(4.0)
            .seed(1)
    }

    #[test]
    fn builder_runs_a_build() {
        let (g, uf, if_) = toy_inputs();
        let spec = small_builder().build().unwrap();
        let h = spec.run(&g, &uf, &if_).unwrap();
        assert_eq!(h.num_levels(), 2);
        assert_eq!(h.num_users(), 24);
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let cases: Vec<(HignnBuilder, &str)> = vec![
            (small_builder().levels(0), "levels"),
            (small_builder().threads(0), "threads"),
            (small_builder().fanouts(vec![]), "fanouts"),
            (small_builder().fanouts(vec![4, 0]), "fanout"),
            (small_builder().embedding_dim(0), "dim"),
            (small_builder().epochs(0), "epochs"),
            (small_builder().batch_edges(0), "batch_edges"),
            (small_builder().learning_rate(f32::NAN), "learning rate"),
            (small_builder().learning_rate(-1.0), "learning rate"),
            (small_builder().grad_shards(0), "grad_shards"),
            (
                small_builder()
                    .objective(ObjectiveSpec::HierarchicalContrastive { temperature: f32::NAN }),
                "temperature",
            ),
            (
                small_builder().objective(ObjectiveSpec::ClusterConstraint { lambda: -1.0 }),
                "lambda",
            ),
            (small_builder().alpha_decay(1.0), "alpha"),
            (small_builder().fixed_counts(vec![]), "cluster counts"),
            (small_builder().ch_select(vec![]), "divisor"),
            (small_builder().resume(true), "checkpoint"),
        ];
        for (builder, needle) in cases {
            match builder.build() {
                Err(HignnError::Config(msg)) => {
                    assert!(msg.contains(needle), "{msg:?} should mention {needle:?}")
                }
                other => panic!("expected Config error mentioning {needle:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn threads_do_not_change_the_result() {
        let (g, uf, if_) = toy_inputs();
        let h1 = small_builder().threads(1).build().unwrap().run(&g, &uf, &if_).unwrap();
        let h4 = small_builder().threads(4).build().unwrap().run(&g, &uf, &if_).unwrap();
        assert_eq!(h1.num_levels(), h4.num_levels());
        for (l1, l4) in h1.levels().iter().zip(h4.levels()) {
            assert_eq!(l1.user_embeddings.data(), l4.user_embeddings.data());
            assert_eq!(l1.item_embeddings.data(), l4.item_embeddings.data());
            assert_eq!(l1.user_assignment.as_slice(), l4.user_assignment.as_slice());
            assert_eq!(l1.item_assignment.as_slice(), l4.item_assignment.as_slice());
        }
    }

    #[test]
    fn math_selection_reaches_the_spec() {
        let spec = small_builder().math(MathMode::FastMath).build().unwrap();
        assert_eq!(spec.config().train.math, MathMode::FastMath);
        // Default stays bitwise.
        let spec = small_builder().build().unwrap();
        assert_eq!(spec.config().train.math, MathMode::Bitwise);
    }

    #[test]
    fn fastmath_build_stays_close_to_bitwise() {
        let (g, uf, if_) = toy_inputs();
        let slow = small_builder().build().unwrap().run(&g, &uf, &if_).unwrap();
        let fast =
            small_builder().math(MathMode::FastMath).build().unwrap().run(&g, &uf, &if_).unwrap();
        assert_eq!(slow.num_levels(), fast.num_levels());
        // End-to-end tolerance: two epochs of training compound kernel
        // rounding, so this is a sanity bound, not a kernel tolerance.
        for (ls, lf) in slow.levels().iter().zip(fast.levels()) {
            assert!(ls.user_embeddings.max_abs_diff(&lf.user_embeddings) < 5e-2);
            assert!(ls.item_embeddings.max_abs_diff(&lf.item_embeddings) < 5e-2);
        }
        // And FastMath is itself deterministic across runs.
        let fast2 =
            small_builder().math(MathMode::FastMath).build().unwrap().run(&g, &uf, &if_).unwrap();
        for (l1, l2) in fast.levels().iter().zip(fast2.levels()) {
            assert_eq!(l1.user_embeddings.data(), l2.user_embeddings.data());
            assert_eq!(l1.item_embeddings.data(), l2.item_embeddings.data());
        }
    }

    #[test]
    fn objective_selection_reaches_the_spec() {
        let spec = small_builder()
            .objective(ObjectiveSpec::ClusterConstraint { lambda: 0.25 })
            .build()
            .unwrap();
        assert_eq!(
            spec.config().train.objective,
            ObjectiveSpec::ClusterConstraint { lambda: 0.25 }
        );
        // Default stays edge reconstruction.
        let spec = small_builder().build().unwrap();
        assert_eq!(spec.config().train.objective, ObjectiveSpec::EdgeReconstruction);
    }
}
